"""MPI+CUDA Perlin Noise: row blocks per rank, explicit per-step downloads.

No inter-node traffic: the paper observes that the Flush version's d2h
transfers "cannot be overlapped easily with computation" and that MPI+CUDA
matches the OmpSs Flush version (Fig. 12).
"""

from __future__ import annotations

import numpy as np

from ...cuda import KernelSpec, arithmetic_cost
from ...hardware.cluster import Machine
from ...mpi import MPIWorld
from ..base import AppResult, make_contexts
from .common import FLOPS_PER_PIXEL, PerlinSize, mpixels_per_s, perlin_block

__all__ = ["run_mpi_cuda"]


def run_mpi_cuda(machine: Machine, size: PerlinSize, flush: bool = True,
                 functional: bool = True, verify: bool = False) -> AppResult:
    env = machine.env
    world = MPIWorld(env, machine.network) if machine.is_cluster else None
    contexts = make_contexts(machine)
    p = machine.num_nodes
    if size.height % p != 0:
        raise ValueError(f"image height {size.height} not divisible by {p}")
    rows = size.height // p
    chunk_bytes = 4 * rows * size.width

    image = (np.empty(size.pixels, dtype=np.float32)
             if functional else None)
    starts: dict[int, float] = {}
    ends: dict[int, float] = {}

    def rank_proc(rank: int):
        ctx = contexts[rank]
        row0 = rank * rows

        def body(out, z):
            out[:] = perlin_block(row0, rows, size.width, z, size.scale)

        kernel = KernelSpec(
            name=f"perlin_rank{rank}",
            cost=lambda spec, pixels: arithmetic_cost(
                spec, FLOPS_PER_PIXEL * pixels),
            func=body,
        )
        chunk = (image[row0 * size.width:(row0 + rows) * size.width]
                 if functional else None)
        ctx.malloc(chunk_bytes)
        if world is not None:
            yield from world.comm(rank).Barrier()
        starts[rank] = env.now
        for step in range(size.steps):
            func_args = (chunk, float(step)) if functional else ()
            yield ctx.launch(kernel, func_args=func_args,
                             pixels=rows * size.width)
            if flush:
                yield ctx.memcpy(chunk_bytes, "d2h")
                # The Flush use-case has a host consumer of each frame; in
                # the distributed run that consumer lives on rank 0, so the
                # frame is gathered there every step.
                if world is not None:
                    if rank != 0:
                        yield from world.comm(rank).Send(
                            None, chunk_bytes, 0, tag=step)
                    else:
                        for src in range(1, p):
                            yield from world.comm(0).Recv(source=src,
                                                          tag=step)
        yield ctx.synchronize()
        if world is not None:
            yield from world.comm(rank).Barrier()
        ends[rank] = env.now
        if not flush:
            yield ctx.memcpy(chunk_bytes, "d2h")

    procs = [env.process(rank_proc(r)) for r in range(p)]
    env.run(until=env.all_of(procs))
    elapsed = max(ends.values()) - min(starts.values())
    return AppResult(
        name="perlin", version="mpi_cuda", makespan=elapsed,
        metric=mpixels_per_s(size, elapsed), metric_unit="Mpixels/s",
        output=({"image": image} if (verify and functional) else None),
    )
