"""Perlin Noise filter in Serial / CUDA / MPI+CUDA / OmpSs versions."""

from .common import (
    FLOPS_PER_PIXEL,
    PAPER_PERLIN,
    PerlinSize,
    TEST_PERLIN,
    mpixels_per_s,
    perlin_block,
    serial_perlin,
)
from .cuda_single import run_cuda
from .mpi_cuda import run_mpi_cuda
from .ompss import run_ompss
from .serial import run_serial

__all__ = [
    "PerlinSize",
    "TEST_PERLIN",
    "PAPER_PERLIN",
    "FLOPS_PER_PIXEL",
    "perlin_block",
    "serial_perlin",
    "mpixels_per_s",
    "run_serial",
    "run_cuda",
    "run_mpi_cuda",
    "run_ompss",
]
