"""Serial Perlin Noise reference."""

from __future__ import annotations

from ..base import AppResult
from .common import PerlinSize, serial_perlin

__all__ = ["run_serial"]


def run_serial(size: PerlinSize) -> AppResult:
    image = serial_perlin(size)
    return AppResult(
        name="perlin", version="serial", makespan=0.0, metric=0.0,
        metric_unit="Mpixels/s", output={"image": image},
    )
