"""OmpSs Perlin Noise: Flush vs NoFlush variants (Figs. 7 and 12).

One output-only task per row block per step.  In the *Flush* variant each
step ends with a flushing ``taskwait`` (the image returns to host memory);
the *NoFlush* variant uses ``taskwait noflush`` so frames stay on the GPUs.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ...api import Program, target, task
from ...cuda.kernels import arithmetic_cost
from ...hardware.cluster import Machine
from ...runtime.config import RuntimeConfig
from ..base import AppResult
from .common import FLOPS_PER_PIXEL, PerlinSize, mpixels_per_s, perlin_block

__all__ = ["run_ompss"]


def _perlin_cost(spec, bound):
    return arithmetic_cost(spec, FLOPS_PER_PIXEL * bound["rows"] * bound["width"])


@target(device="cuda", copy_deps=True)
@task(outputs=("block",), cost=_perlin_cost, label="perlin_task")
def perlin_task(block, row0, rows, width, z, scale):
    block[:] = perlin_block(row0, rows, width, z, scale)


def run_ompss(machine: Machine, size: PerlinSize,
              config: Optional[RuntimeConfig] = None,
              flush: bool = True, verify: bool = False) -> AppResult:
    config = config or RuntimeConfig()
    prog = Program(machine, config)
    image = prog.array("image", size.pixels)
    rb, w = size.rows_per_task, size.width
    be = size.block_elements

    timings = {}

    def main():
        timings["t0"] = prog.env.now
        for step in range(size.steps):
            z = float(step)
            for b in range(size.blocks):
                row0 = b * rb
                start = row0 * w
                perlin_task(image[start:start + be], row0, rb, w, z,
                            size.scale)
            # Flush: the frame must be in host memory after every step.
            yield from prog.taskwait(noflush=not flush)
        timings["t1"] = prog.env.now
        if verify:
            yield from prog.taskwait()

    prog.run(main())
    elapsed = timings["t1"] - timings["t0"]
    output = None
    if verify and config.functional:
        output = {"image": np.array(image.np)}
    return AppResult(
        name="perlin", version="ompss", makespan=elapsed,
        metric=mpixels_per_s(size, elapsed), metric_unit="Mpixels/s",
        stats=prog.stats, metrics=prog.metrics.snapshot(), output=output,
    )
