"""Shared pieces of the Perlin Noise image filter.

The paper filters a 1024x1024 image, comparing a *Flush* variant (the image
returns to host memory after every step — as when a CPU stage consumes each
frame) with a *NoFlush* variant (frames stay on the GPU, as when Perlin is
one filter in an all-GPU pipeline).

The functional body is a real 2D gradient (Perlin) noise, vectorized with
NumPy, evaluated per row-block; successive steps vary the ``z`` (time)
offset, so every frame writes every pixel.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["PerlinSize", "perlin_block", "serial_perlin", "mpixels_per_s",
           "TEST_PERLIN", "PAPER_PERLIN", "FLOPS_PER_PIXEL"]

#: Arithmetic intensity of the kernel (for the GPU cost model): gradient
#: hashes, fades and lerps per pixel.
FLOPS_PER_PIXEL = 220.0


@dataclass(frozen=True)
class PerlinSize:
    """Image of height x width pixels, tasks of rows_per_task rows,
    ``steps`` filter applications."""

    height: int
    width: int
    rows_per_task: int
    steps: int = 4
    #: noise feature size in pixels.
    scale: float = 64.0

    def __post_init__(self):
        if self.height % self.rows_per_task != 0:
            raise ValueError(
                f"height {self.height} not a multiple of rows_per_task "
                f"{self.rows_per_task}"
            )

    @property
    def blocks(self) -> int:
        return self.height // self.rows_per_task

    @property
    def pixels(self) -> int:
        return self.height * self.width

    @property
    def block_elements(self) -> int:
        return self.rows_per_task * self.width


TEST_PERLIN = PerlinSize(height=32, width=32, rows_per_task=8, steps=2,
                         scale=8.0)
#: The paper's 1024x1024 image (Section IV.A.2).
PAPER_PERLIN = PerlinSize(height=1024, width=1024, rows_per_task=64,
                          steps=16)

# Classic Perlin permutation table (Ken Perlin's reference ordering).
_rng = np.random.default_rng(20120529)  # IPDPS 2012 vintage, deterministic
_PERM = _rng.permutation(256)
_PERM = np.concatenate([_PERM, _PERM]).astype(np.int64)


def _fade(t: np.ndarray) -> np.ndarray:
    return t * t * t * (t * (t * 6 - 15) + 10)


def _grad(h: np.ndarray, x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """2D gradient selection from the low 3 bits of the hash."""
    h = h & 7
    u = np.where(h < 4, x, y)
    v = np.where(h < 4, y, x)
    return (np.where(h & 1, -u, u) + np.where(h & 2, -2.0 * v, 2.0 * v))


def perlin_block(row0: int, rows: int, width: int, z: float,
                 scale: float) -> np.ndarray:
    """Perlin noise values for image rows [row0, row0+rows), flattened."""
    ys = (np.arange(row0, row0 + rows, dtype=np.float64) / scale + z)
    xs = np.arange(width, dtype=np.float64) / scale + 0.5 * z
    gx, gy = np.meshgrid(xs, ys)
    x0 = np.floor(gx).astype(np.int64)
    y0 = np.floor(gy).astype(np.int64)
    fx = gx - x0
    fy = gy - y0
    x0 &= 255
    y0 &= 255
    u = _fade(fx)
    v = _fade(fy)
    aa = _PERM[_PERM[x0] + y0]
    ab = _PERM[_PERM[x0] + y0 + 1]
    ba = _PERM[_PERM[x0 + 1] + y0]
    bb = _PERM[_PERM[x0 + 1] + y0 + 1]
    n00 = _grad(aa, fx, fy)
    n10 = _grad(ba, fx - 1, fy)
    n01 = _grad(ab, fx, fy - 1)
    n11 = _grad(bb, fx - 1, fy - 1)
    nx0 = n00 + u * (n10 - n00)
    nx1 = n01 + u * (n11 - n01)
    return (nx0 + v * (nx1 - nx0)).astype(np.float32).reshape(-1)


def serial_perlin(size: PerlinSize) -> np.ndarray:
    """Reference: the image after the final step."""
    out = np.empty(size.pixels, dtype=np.float32)
    for step in range(size.steps):
        z = float(step)
        for b in range(size.blocks):
            row0 = b * size.rows_per_task
            start = row0 * size.width
            out[start:start + size.block_elements] = perlin_block(
                row0, size.rows_per_task, size.width, z, size.scale)
    return out


def mpixels_per_s(size: PerlinSize, seconds: float) -> float:
    return size.pixels * size.steps / seconds / 1e6
