"""Single-GPU CUDA Perlin Noise with explicit transfers."""

from __future__ import annotations

import numpy as np

from ...cuda import KernelSpec, arithmetic_cost
from ...hardware.cluster import Machine
from ..base import AppResult, make_contexts
from .common import FLOPS_PER_PIXEL, PerlinSize, mpixels_per_s, perlin_block

__all__ = ["run_cuda"]


def run_cuda(machine: Machine, size: PerlinSize, flush: bool = True,
             functional: bool = True, verify: bool = False) -> AppResult:
    env = machine.env
    ctx = make_contexts(machine)[0]
    image = (np.empty(size.pixels, dtype=np.float32)
             if functional else None)
    image_bytes = 4 * size.pixels

    def body(out, z):
        out[:] = perlin_block(0, size.height, size.width, z, size.scale)

    kernel = KernelSpec(
        name="perlin_frame",
        cost=lambda spec, pixels: arithmetic_cost(
            spec, FLOPS_PER_PIXEL * pixels),
        func=body,
    )

    ctx.malloc(image_bytes)
    timings = {}

    def main():
        timings["t0"] = env.now
        for step in range(size.steps):
            func_args = (image, float(step)) if functional else ()
            yield ctx.launch(kernel, func_args=func_args, pixels=size.pixels)
            if flush:
                yield ctx.memcpy(image_bytes, "d2h")
        yield ctx.synchronize()
        timings["t1"] = env.now
        if not flush:
            yield ctx.memcpy(image_bytes, "d2h")

    proc = env.process(main())
    env.run(until=proc)
    elapsed = timings["t1"] - timings["t0"]
    return AppResult(
        name="perlin", version="cuda", makespan=elapsed,
        metric=mpixels_per_s(size, elapsed), metric_unit="Mpixels/s",
        output=({"image": image} if (verify and functional) else None),
    )
