"""Matrix Multiplication in Serial / CUDA / MPI+CUDA / OmpSs versions."""

from .common import (
    MatmulSize,
    PAPER_MATMUL,
    TEST_MATMUL,
    build_matrix,
    gflops,
    serial_matmul_tiled,
    tile_start,
    tiled_to_dense,
)
from .cuda_single import run_cuda
from .mpi_cuda import process_grid, run_mpi_cuda
from .ompss import run_ompss
from .serial import run_serial

__all__ = [
    "MatmulSize",
    "PAPER_MATMUL",
    "TEST_MATMUL",
    "build_matrix",
    "gflops",
    "serial_matmul_tiled",
    "tile_start",
    "tiled_to_dense",
    "run_serial",
    "run_cuda",
    "run_mpi_cuda",
    "run_ompss",
    "process_grid",
]
