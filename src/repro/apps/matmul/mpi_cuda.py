"""MPI+CUDA Matrix Multiplication: the SUMMA algorithm (paper Section IV.A).

One MPI rank per cluster node, each driving its GPU explicitly (no overlap
techniques, matching the paper's baseline).  Tiles are distributed cyclically
over a near-square process grid; each SUMMA step broadcasts the k-th tile
column of A along process rows and the k-th tile row of B along process
columns, then every rank accumulates into its resident C tiles on the GPU.
"""

from __future__ import annotations

import numpy as np

from ...cuda import SGEMM
from ...hardware.cluster import Machine
from ...mpi import MPIWorld
from ..base import AppResult, make_contexts
from .common import MatmulSize, gflops, init_tile_value, tile_start

__all__ = ["run_mpi_cuda", "process_grid"]


def process_grid(p: int) -> tuple[int, int]:
    """Near-square grid factorization (pr >= pc, pr * pc == p)."""
    pc = int(np.sqrt(p))
    while p % pc != 0:
        pc -= 1
    return p // pc, pc


def run_mpi_cuda(machine: Machine, size: MatmulSize,
                 functional: bool = True, verify: bool = False) -> AppResult:
    env = machine.env
    world = MPIWorld(env, machine.network) if machine.is_cluster else None
    contexts = make_contexts(machine)
    p = machine.num_nodes
    pr, pc = process_grid(p)
    nt, bs, te = size.nt, size.bs, size.tile_elements
    tile_bytes = 4 * te

    ends: dict[int, float] = {}
    starts: dict[int, float] = {}
    gathered: dict[tuple[int, int], np.ndarray] = {}

    def owner(i: int, j: int) -> int:
        return (i % pr) * pc + (j % pc)

    def rank_proc(rank: int):
        ctx = contexts[rank]
        pi, pj = divmod(rank, pc)
        my_rows = [i for i in range(nt) if i % pr == pi]
        my_cols = [j for j in range(nt) if j % pc == pj]

        # Each rank initializes and uploads its own tiles.
        local: dict[tuple[str, int, int], np.ndarray] = {}

        def make_tile(which, i, j):
            if not functional:
                return None
            return np.full(te, init_tile_value(which, i, j),
                           dtype=np.float32)

        c_tiles = {(i, j): make_tile("C", i, j)
                   for i in my_rows for j in my_cols}
        ctx.malloc(len(c_tiles) * tile_bytes          # resident C
                   + (len(my_rows) + len(my_cols)) * tile_bytes)  # panels
        for _ in c_tiles:
            yield ctx.memcpy(tile_bytes, "h2d")
        if world is not None:
            yield from world.comm(rank).Barrier()
        starts[rank] = env.now

        for k in range(nt):
            # --- distribute the A tile-column k along process rows -------
            a_panel: dict[int, np.ndarray] = {}
            for i in my_rows:
                src = owner(i, k)
                if src == rank:
                    a_panel[i] = make_tile("A", i, k)
                    # Blocking sends: the baseline implements no
                    # communication/computation overlap (paper IV.A.2).
                    for peer_pj in range(pc):
                        peer = pi * pc + peer_pj
                        if peer != rank:
                            yield from world.comm(rank).Send(
                                a_panel[i], tile_bytes, peer, tag=k * nt + i)
                else:
                    a_panel[i] = yield from world.comm(rank).Recv(
                        source=src, tag=k * nt + i)
            # --- distribute the B tile-row k along process columns -------
            b_panel: dict[int, np.ndarray] = {}
            for j in my_cols:
                src = owner(k, j)
                if src == rank:
                    b_panel[j] = make_tile("B", k, j)
                    for peer_pi in range(pr):
                        peer = peer_pi * pc + pj
                        if peer != rank:
                            yield from world.comm(rank).Send(
                                b_panel[j], tile_bytes, peer,
                                tag=nt * nt + k * nt + j)
                else:
                    b_panel[j] = yield from world.comm(rank).Recv(
                        source=src, tag=nt * nt + k * nt + j)
            # --- upload panels, accumulate into resident C tiles ----------
            for i in my_rows:
                yield ctx.memcpy(tile_bytes, "h2d")
            for j in my_cols:
                yield ctx.memcpy(tile_bytes, "h2d")
            for i in my_rows:
                for j in my_cols:
                    func_args = ()
                    if functional:
                        func_args = (a_panel[i], b_panel[j],
                                     c_tiles[(i, j)], bs, bs, bs)
                    yield ctx.launch(SGEMM, func_args=func_args,
                                     m=bs, n=bs, k=bs)
            yield ctx.synchronize()

        # Results back to the host.
        for _ in c_tiles:
            yield ctx.memcpy(tile_bytes, "d2h")
        if world is not None:
            yield from world.comm(rank).Barrier()
        ends[rank] = env.now
        if functional:
            gathered.update(c_tiles)

    procs = [env.process(rank_proc(r)) for r in range(p)]
    env.run(until=env.all_of(procs))
    elapsed = max(ends.values()) - min(starts.values())

    output = None
    if verify and functional:
        c = np.empty(size.elements, dtype=np.float32)
        for (i, j), tile in gathered.items():
            s = tile_start(size, i, j)
            c[s:s + te] = tile
        output = {"c": c}
    return AppResult(
        name="matmul", version="mpi_cuda", makespan=elapsed,
        metric=gflops(size, elapsed), metric_unit="GFLOP/s",
        stats={"messages": world.messages_sent if world else 0,
               "net_bytes": world.bytes_sent if world else 0},
        output=output,
    )
