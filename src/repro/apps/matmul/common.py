"""Shared pieces of the Matrix Multiplication application.

The paper's Matmul multiplies 12288x12288 single-precision matrices stored
in tiles of 1024x1024 (Figure 1); every version here uses the same
tile-major layout: matrix element (r, c) of tile (i, j) lives in the flat
array at ``(i * nt + j) * bs * bs + r * bs + c``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["MatmulSize", "tile_start", "serial_matmul_tiled",
           "gflops", "init_tile_value", "PAPER_MATMUL", "TEST_MATMUL"]


@dataclass(frozen=True)
class MatmulSize:
    """Problem size: n x n matrix in bs x bs tiles."""

    n: int
    bs: int

    def __post_init__(self):
        if self.n % self.bs != 0:
            raise ValueError(f"matrix size {self.n} not a multiple of tile "
                             f"size {self.bs}")

    @property
    def nt(self) -> int:
        return self.n // self.bs

    @property
    def elements(self) -> int:
        return self.n * self.n

    @property
    def tile_elements(self) -> int:
        return self.bs * self.bs

    @property
    def flops(self) -> float:
        return 2.0 * self.n ** 3


#: The paper's evaluation size (Section IV.A.2).
PAPER_MATMUL = MatmulSize(n=12288, bs=1024)
#: Small functional-mode size for correctness tests.
TEST_MATMUL = MatmulSize(n=64, bs=16)


def tile_start(size: MatmulSize, i: int, j: int) -> int:
    """Flat offset of tile (i, j) in the tile-major layout."""
    return (i * size.nt + j) * size.tile_elements


def init_tile_value(which: str, i: int, j: int) -> float:
    """Deterministic per-tile fill values (so every version initializes the
    same matrices without sharing state)."""
    base = {"A": 1.0, "B": 2.0, "C": 0.0}[which]
    if base == 0.0:
        return 0.0
    return base + 0.25 * ((i * 31 + j * 17) % 8)


def build_matrix(size: MatmulSize, which: str) -> np.ndarray:
    """A full matrix in tile-major layout with the standard fill."""
    out = np.empty(size.elements, dtype=np.float32)
    for i in range(size.nt):
        for j in range(size.nt):
            s = tile_start(size, i, j)
            out[s:s + size.tile_elements] = init_tile_value(which, i, j)
    return out


def tiled_to_dense(size: MatmulSize, flat: np.ndarray) -> np.ndarray:
    """Convert tile-major storage to a dense (n, n) array."""
    dense = np.empty((size.n, size.n), dtype=np.float32)
    for i in range(size.nt):
        for j in range(size.nt):
            s = tile_start(size, i, j)
            tile = flat[s:s + size.tile_elements].reshape(size.bs, size.bs)
            dense[i * size.bs:(i + 1) * size.bs,
                  j * size.bs:(j + 1) * size.bs] = tile
    return dense


def serial_matmul_tiled(size: MatmulSize, a: np.ndarray, b: np.ndarray,
                        c: np.ndarray) -> None:
    """Reference tiled multiply: C += A @ B on tile-major flat arrays."""
    bs, nt, te = size.bs, size.nt, size.tile_elements
    for i in range(nt):
        for j in range(nt):
            cs = tile_start(size, i, j)
            ct = c[cs:cs + te].reshape(bs, bs)
            for k in range(nt):
                at = a[tile_start(size, i, k):
                       tile_start(size, i, k) + te].reshape(bs, bs)
                bt = b[tile_start(size, k, j):
                       tile_start(size, k, j) + te].reshape(bs, bs)
                ct += at @ bt


def gflops(size: MatmulSize, seconds: float) -> float:
    return size.flops / seconds / 1e9
