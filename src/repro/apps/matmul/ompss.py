"""OmpSs Matrix Multiplication (paper Figure 1).

One annotated task per tile triple calling the CUBLAS sgemm kernel; the same
main runs unmodified on the multi-GPU node and on the GPU cluster.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ...api import Program, target, task
from ...cuda import SGEMM
from ...hardware.cluster import Machine
from ...runtime.config import RuntimeConfig
from ..base import AppResult
from .common import (
    MatmulSize,
    build_matrix,
    gflops,
    init_tile_value,
    tile_start,
)
from .init_variants import init_tile_gpu, init_tile_smp

__all__ = ["run_ompss"]


@target(device="cuda", copy_deps=True)
@task(inputs=("a", "b"), inouts=("c",), cost=SGEMM, label="matmul_tile")
def matmul_tile(a, b, c, m, n, k):
    pass  # computation performed by the CUBLAS sgemm kernel


def run_ompss(machine: Machine, size: MatmulSize,
              config: Optional[RuntimeConfig] = None,
              init: str = "seq", verify: bool = False) -> AppResult:
    """Run the OmpSs matmul; returns timing of the multiply phase only
    (initialization determines data placement, as in Fig. 9)."""
    config = config or RuntimeConfig()
    prog = Program(machine, config)
    te, bs, nt = size.tile_elements, size.bs, size.nt

    if init not in ("seq", "smp", "gpu"):
        raise ValueError(f"unknown init mode {init!r}")
    seq_data = (lambda w: build_matrix(size, w)) \
        if (init == "seq" and config.functional) else (lambda w: None)
    a = prog.array("A", size.elements, init=seq_data("A"))
    b = prog.array("B", size.elements, init=seq_data("B"))
    c = prog.array("C", size.elements, init=seq_data("C"))

    def tile(handle, i, j):
        s = tile_start(size, i, j)
        return handle[s:s + te]

    timings = {}

    def main():
        if init != "seq":
            fill = init_tile_smp if init == "smp" else init_tile_gpu
            for which, handle in (("A", a), ("B", b), ("C", c)):
                for i in range(nt):
                    for j in range(nt):
                        fill(tile(handle, i, j),
                             init_tile_value(which, i, j), te)
            yield from prog.taskwait(noflush=True)
        timings["t0"] = prog.env.now
        for i in range(nt):
            for j in range(nt):
                for k in range(nt):
                    matmul_tile(tile(a, i, k), tile(b, k, j),
                                tile(c, i, j), bs, bs, bs)
        yield from prog.taskwait(noflush=True)
        timings["t1"] = prog.env.now
        if verify:
            yield from prog.taskwait()  # flush results to the host

    prog.run(main())
    elapsed = timings["t1"] - timings["t0"]
    output = None
    if verify and config.functional:
        output = {"c": np.array(c.np)}
    return AppResult(
        name="matmul", version="ompss", makespan=elapsed,
        metric=gflops(size, elapsed), metric_unit="GFLOP/s",
        stats=prog.stats, metrics=prog.metrics.snapshot(), output=output,
    )
