"""Serial Matrix Multiplication (the annotation starting point)."""

from __future__ import annotations

from .common import MatmulSize, build_matrix, gflops, serial_matmul_tiled
from ..base import AppResult

__all__ = ["run_serial"]


def run_serial(size: MatmulSize) -> AppResult:
    a = build_matrix(size, "A")
    b = build_matrix(size, "B")
    c = build_matrix(size, "C")
    serial_matmul_tiled(size, a, b, c)
    return AppResult(
        name="matmul", version="serial", makespan=0.0, metric=0.0,
        metric_unit="GFLOP/s",
        output={"c": c},
    )
