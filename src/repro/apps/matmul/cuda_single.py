"""Single-GPU CUDA Matrix Multiplication (explicit management baseline).

The programmer writes everything the OmpSs runtime does implicitly: device
allocation, host<->device transfers per tile, kernel launches, and
synchronization.  The straightforward version streams tile triples through
the device — re-transferring A and B tiles for every (i, j) — which is
exactly the kind of untuned code the paper argues most programmers write.
"""

from __future__ import annotations

import numpy as np

from ...cuda import SGEMM
from ...hardware.cluster import Machine
from ..base import AppResult, make_contexts
from .common import MatmulSize, build_matrix, gflops, tile_start

__all__ = ["run_cuda"]


def run_cuda(machine: Machine, size: MatmulSize,
             functional: bool = True, verify: bool = False) -> AppResult:
    env = machine.env
    ctx = make_contexts(machine)[0]
    te, bs, nt = size.tile_elements, size.bs, size.nt
    tile_bytes = 4 * te

    a = build_matrix(size, "A") if functional else None
    b = build_matrix(size, "B") if functional else None
    c = build_matrix(size, "C") if functional else None

    # Device buffers for one tile of each operand.
    ctx.malloc(3 * tile_bytes)
    # Device-side tile copies (functional mode only).
    dev = {name: np.zeros(te, dtype=np.float32) for name in "abc"} \
        if functional else None

    timings = {}

    def main():
        timings["t0"] = env.now
        for i in range(nt):
            for j in range(nt):
                cs = tile_start(size, i, j)
                if functional:
                    dev["c"][:] = c[cs:cs + te]
                yield ctx.memcpy(tile_bytes, "h2d")        # C tile in
                for k in range(nt):
                    if functional:
                        dev["a"][:] = a[tile_start(size, i, k):
                                        tile_start(size, i, k) + te]
                        dev["b"][:] = b[tile_start(size, k, j):
                                        tile_start(size, k, j) + te]
                    yield ctx.memcpy(tile_bytes, "h2d")    # A tile in
                    yield ctx.memcpy(tile_bytes, "h2d")    # B tile in
                    func_args = ((dev["a"], dev["b"], dev["c"], bs, bs, bs)
                                 if functional else ())
                    yield ctx.launch(SGEMM, func_args=func_args,
                                     m=bs, n=bs, k=bs)
                yield ctx.memcpy(tile_bytes, "d2h")        # C tile out
                if functional:
                    c[cs:cs + te] = dev["c"]
        yield ctx.synchronize()
        timings["t1"] = env.now

    proc = env.process(main())
    env.run(until=proc)
    elapsed = timings["t1"] - timings["t0"]
    return AppResult(
        name="matmul", version="cuda", makespan=elapsed,
        metric=gflops(size, elapsed), metric_unit="GFLOP/s",
        output=({"c": c} if (verify and functional) else None),
    )
