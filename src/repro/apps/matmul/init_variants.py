"""Parallel initialization variants for the cluster Matmul (Fig. 9).

These tasks are not part of the Matmul application proper — they are the
experimental knob of Fig. 9: initializing the matrices sequentially on the
master (``seq``), with SMP tasks spread across the cluster's CPUs (``smp``),
or with CUDA tasks on the GPUs (``gpu``), which determines where the data
lives when the multiplication starts.
"""

from __future__ import annotations

from ...api import target, task

__all__ = ["init_tile_smp", "init_tile_gpu"]


def _fill_cost_smp(cpu_spec, bound):
    # Memory-bandwidth-bound fill of one bs*bs float32 tile on one core.
    return 4 * bound["te"] / (cpu_spec.mem_bandwidth / cpu_spec.cores)


def _fill_cost_gpu(gpu_spec, bound):
    return 4 * bound["te"] / gpu_spec.effective_mem_bandwidth


@task(outputs=("t",), cost=_fill_cost_smp, label="init_tile_smp")
def init_tile_smp(t, value, te):
    t[:] = value


@target(device="cuda", copy_deps=True)
@task(outputs=("t",), cost=_fill_cost_gpu, label="init_tile_gpu")
def init_tile_gpu(t, value, te):
    t[:] = value
