"""Shared pieces of the sparse/irregular segment-reduction application.

The workload the dense paper apps never produce: an *irregular fan-in*
graph.  A deterministic sparsity plan (seeded Mersenne Twister, part of
the frozen size) assigns each output segment a ragged subset of input
blocks with per-edge weights; gathering a segment is a chain of inout
accumulations (one task per incident block), and a final fold reduces
the segments into one accumulator — a long sequential inout spine fed by
ragged parallel chains.  Segment gather chains are totally ordered by
their inout dependences and the fold spine by its own, so every
scheduler must produce the bit-identical float32 result the serial
reference computes.

This is the third installment of ROADMAP item 3 and the anchor for the
dagfuzz ``irregular`` profile.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

import numpy as np

__all__ = ["SpreduceSize", "build_input", "build_plan", "serial_reduce",
           "gbps", "PAPER_SPREDUCE", "TEST_SPREDUCE"]


@dataclass(frozen=True)
class SpreduceSize:
    """Problem size: nb input blocks of bs floats, reduced into
    ``segments`` accumulators of seg_len floats each."""

    nb: int          #: input blocks
    bs: int          #: elements per input block
    segments: int    #: output segments
    seg_len: int     #: elements per segment accumulator
    max_degree: int = 6   #: most blocks feeding one segment
    seed: int = 7    #: sparsity-plan seed (part of the problem identity)

    def __post_init__(self):
        if self.nb < 1 or self.segments < 1:
            raise ValueError("need at least one block and one segment")
        if self.bs < self.seg_len:
            raise ValueError("block size must be >= segment length")
        if not 1 <= self.max_degree:
            raise ValueError("max_degree must be >= 1")

    @property
    def input_elements(self) -> int:
        return self.nb * self.bs

    @property
    def acc_elements(self) -> int:
        return self.segments * self.seg_len

    def plan_bytes(self) -> int:
        """Bytes of input the gather phase touches (the metric basis)."""
        return sum(len(blocks) for blocks in build_plan(self)) * self.bs * 4


#: Benchmark size: a ragged graph wide enough for 4 GPUs / 8 nodes.
PAPER_SPREDUCE = SpreduceSize(nb=256, bs=65536, segments=64, seg_len=4096,
                              max_degree=12)
#: Small functional-mode size for correctness tests.
TEST_SPREDUCE = SpreduceSize(nb=12, bs=64, segments=8, seg_len=8,
                             max_degree=5)


def build_plan(size: SpreduceSize) -> "list[list[tuple[int, int]]]":
    """The sparsity pattern: per segment, ``(block, weight)`` edges.

    Weights are small integers so weighted sums stay exact in float32.
    Deterministic in ``size`` alone — the plan *is* the problem.
    """
    rng = random.Random(size.seed)
    plan = []
    for _ in range(size.segments):
        degree = rng.randint(1, min(size.max_degree, size.nb))
        blocks = sorted(rng.sample(range(size.nb), degree))
        plan.append([(b, rng.randint(1, 5)) for b in blocks])
    return plan


def build_input(size: SpreduceSize) -> np.ndarray:
    """Deterministic input: small exact integers (weighted sums of these
    stay exactly representable, so bit-identity never hides in rounding)."""
    return ((np.arange(size.input_elements) * 7) % 23).astype(np.float32)


def serial_reduce(size: SpreduceSize, x: np.ndarray
                  ) -> "tuple[np.ndarray, np.ndarray]":
    """Reference reduction — the *same* edge order as the OmpSs version
    (per segment, edges in plan order; fold in segment order)."""
    plan = build_plan(size)
    acc = np.zeros(size.acc_elements, dtype=np.float32)
    total = np.zeros(size.seg_len, dtype=np.float32)
    for s, edges in enumerate(plan):
        seg = acc[s * size.seg_len:(s + 1) * size.seg_len]
        for b, w in edges:
            blk = x[b * size.bs:(b + 1) * size.bs]
            seg[:] = seg + blk[:size.seg_len] * np.float32(w)
        total[:] = total + seg * np.float32(s % 3 + 1)
    return acc, total


def gbps(size: SpreduceSize, seconds: float) -> float:
    """Headline metric: gather-phase input bandwidth, GB/s."""
    return size.plan_bytes() / seconds / 1e9
