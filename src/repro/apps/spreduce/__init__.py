"""Sparse/irregular segment reduction (Serial / OmpSs)."""

from .common import (
    PAPER_SPREDUCE,
    TEST_SPREDUCE,
    SpreduceSize,
    build_input,
    build_plan,
    gbps,
    serial_reduce,
)
from .ompss import run_ompss
from .serial import run_serial

__all__ = [
    "SpreduceSize",
    "PAPER_SPREDUCE",
    "TEST_SPREDUCE",
    "build_input",
    "build_plan",
    "serial_reduce",
    "gbps",
    "run_ompss",
    "run_serial",
]
