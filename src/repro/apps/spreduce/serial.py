"""Serial sparse reduction (the annotation starting point)."""

from __future__ import annotations

from ..base import AppResult
from .common import SpreduceSize, build_input, serial_reduce

__all__ = ["run_serial"]


def run_serial(size: SpreduceSize) -> AppResult:
    acc, total = serial_reduce(size, build_input(size))
    return AppResult(
        name="spreduce", version="serial", makespan=0.0, metric=0.0,
        metric_unit="GB/s",
        output={"acc": acc, "total": total},
    )
