"""OmpSs sparse/irregular segment reduction.

One ``gather`` task per (segment, block) edge of the sparsity plan —
input the block, inout the segment accumulator — and one ``fold`` task
per segment closing the chain into the global accumulator.  Edges are
submitted in plan order, so each segment's gather chain and the fold
spine are totally ordered by their inout dependences: the ragged graph
stresses placement and stealing, never numerics.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ...api import Program, target, task
from ...cuda.kernels import streaming_cost
from ...hardware.cluster import Machine
from ...runtime.config import RuntimeConfig
from ..base import AppResult
from .common import SpreduceSize, build_input, build_plan, gbps

__all__ = ["run_ompss"]


def _gather_cost(spec, bound):
    # Reads one input block, updates one resident segment.
    return streaming_cost(spec, 4 * (bound["bs"] + 2 * bound["seg_len"]))


def _fold_cost(spec, bound):
    return streaming_cost(spec, 4 * 3 * bound["seg_len"])


@target(device="cuda", copy_deps=True)
@task(inputs=("blk",), inouts=("seg",), cost=_gather_cost, label="gather")
def gather(blk, seg, w, bs, seg_len):
    seg[:] = seg + blk[:seg_len] * np.float32(w)


@target(device="cuda", copy_deps=True)
@task(inputs=("seg",), inouts=("total",), cost=_fold_cost, label="fold")
def fold(seg, total, w, seg_len):
    total[:] = total + seg * np.float32(w)


def run_ompss(machine: Machine, size: SpreduceSize,
              config: Optional[RuntimeConfig] = None,
              verify: bool = False) -> AppResult:
    """Run the OmpSs sparse reduction; times gather + fold only."""
    config = config or RuntimeConfig()
    prog = Program(machine, config)
    plan = build_plan(size)

    init = build_input(size) if config.functional else None
    x = prog.array("X", size.input_elements, init=init)
    acc = prog.array("ACC", size.acc_elements)
    total = prog.array("TOTAL", size.seg_len)

    def block(b):
        return x[b * size.bs:(b + 1) * size.bs]

    def segment(s):
        return acc[s * size.seg_len:(s + 1) * size.seg_len]

    timings = {}

    def main():
        timings["t0"] = prog.env.now
        for s, edges in enumerate(plan):
            for b, w in edges:
                gather(block(b), segment(s), w, size.bs, size.seg_len)
            fold(segment(s), total[0:size.seg_len], s % 3 + 1,
                 size.seg_len)
        yield from prog.taskwait(noflush=True)
        timings["t1"] = prog.env.now
        if verify:
            yield from prog.taskwait()          # flush results to the host

    prog.run(main())
    elapsed = timings["t1"] - timings["t0"]
    output = None
    if verify and config.functional:
        output = {"acc": np.array(acc.np), "total": np.array(total.np)}
    return AppResult(
        name="spreduce", version="ompss", makespan=elapsed,
        metric=gbps(size, elapsed), metric_unit="GB/s",
        stats=prog.stats, metrics=prog.metrics.snapshot(), output=output,
    )
