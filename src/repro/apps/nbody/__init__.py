"""N-Body simulation in Serial / CUDA / MPI+CUDA / OmpSs versions."""

from .common import (
    DT,
    FLOPS_PER_INTERACTION,
    NBodySize,
    PAPER_NBODY,
    SOFTENING,
    TEST_NBODY,
    gflops,
    initial_state,
    nbody_step_reference,
    nbody_update_block,
)
from .cuda_single import run_cuda
from .mpi_cuda import run_mpi_cuda
from .ompss import run_ompss
from .serial import run_serial

__all__ = [
    "NBodySize",
    "TEST_NBODY",
    "PAPER_NBODY",
    "DT",
    "SOFTENING",
    "FLOPS_PER_INTERACTION",
    "initial_state",
    "nbody_step_reference",
    "nbody_update_block",
    "gflops",
    "run_serial",
    "run_cuda",
    "run_mpi_cuda",
    "run_ompss",
]
