"""Serial N-Body reference."""

from __future__ import annotations

from ..base import AppResult
from .common import DT, NBodySize, initial_state, nbody_step_reference

__all__ = ["run_serial"]


def run_serial(size: NBodySize) -> AppResult:
    pos, vel = initial_state(size)
    for _ in range(size.iters):
        pos = nbody_step_reference(pos, vel, DT)
    return AppResult(
        name="nbody", version="serial", makespan=0.0, metric=0.0,
        metric_unit="GFLOP/s", output={"pos": pos, "vel": vel},
    )
