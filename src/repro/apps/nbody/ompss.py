"""OmpSs N-Body: block update tasks over ping-pong position buffers.

Each task reads *every* block of the current position buffer (the list-of-
views clause), updates its velocity block in place, and writes its block of
the next position buffer — yielding the all-to-all redistribution after
every iteration that the paper describes.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ...api import Program, target, task
from ...cuda.kernels import nbody_cost
from ...hardware.cluster import Machine
from ...runtime.config import RuntimeConfig
from ..base import AppResult
from .common import (
    DT,
    NBodySize,
    gflops,
    initial_state,
    nbody_update_block,
)

__all__ = ["run_ompss"]


def _update_cost(spec, bound):
    return nbody_cost(spec, n_total=bound["n_total"],
                      n_block=bound["count"])


@target(device="cuda", copy_deps=True)
@task(inputs=("pos_blocks",), inouts=("vel",), outputs=("out",),
      cost=_update_cost, label="nbody_update")
def nbody_update(pos_blocks, vel, out, start, count, n_total, dt):
    nbody_update_block(pos_blocks, start, count, vel, out, dt)


def run_ompss(machine: Machine, size: NBodySize,
              config: Optional[RuntimeConfig] = None,
              fresh_buffers: bool = False,
              verify: bool = False) -> AppResult:
    """Run the OmpSs N-Body.

    ``fresh_buffers`` allocates a new position buffer per iteration instead
    of ping-ponging two — the memory-hungry structure of the paper's version
    ("the N-Body uses a lot of GPU memory"), which fills the device caches
    with dead generations and triggers the replacement mechanism (Fig. 8).
    """
    config = config or RuntimeConfig()
    prog = Program(machine, config)
    pos0_init = vel_init = None
    if config.functional:
        pos0_init, vel_init = initial_state(size)
    if fresh_buffers:
        pos = [prog.array(f"pos{i}", size.elements,
                          init=pos0_init if i == 0 else None)
               for i in range(size.iters + 1)]
    else:
        # Ping-pong position buffers + velocities.
        pos = [prog.array("pos0", size.elements, init=pos0_init),
               prog.array("pos1", size.elements)]
    vel = prog.array("vel", size.elements, init=vel_init)
    be = size.block_elements

    def block(handle, b):
        return handle[b * be:(b + 1) * be]

    timings = {}

    def main():
        timings["t0"] = prog.env.now
        for it in range(size.iters):
            if fresh_buffers:
                src, dst = pos[it], pos[it + 1]
            else:
                src, dst = pos[it % 2], pos[(it + 1) % 2]
            all_blocks = [block(src, b) for b in range(size.blocks)]
            for b in range(size.blocks):
                nbody_update(all_blocks, block(vel, b), block(dst, b),
                             b * size.block_bodies, size.block_bodies,
                             size.n, DT)
        yield from prog.taskwait(noflush=True)
        timings["t1"] = prog.env.now
        if verify:
            yield from prog.taskwait()

    prog.run(main())
    elapsed = timings["t1"] - timings["t0"]
    output = None
    if verify and config.functional:
        final = pos[size.iters] if fresh_buffers else pos[size.iters % 2]
        output = {"pos": np.array(final.np), "vel": np.array(vel.np)}
    return AppResult(
        name="nbody", version="ompss", makespan=elapsed,
        metric=gflops(size, elapsed), metric_unit="GFLOP/s",
        stats=prog.stats, metrics=prog.metrics.snapshot(), output=output,
    )
