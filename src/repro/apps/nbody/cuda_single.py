"""Single-GPU CUDA N-Body (the NVIDIA demo structure, one device)."""

from __future__ import annotations

import numpy as np

from ...cuda import KernelSpec, nbody_cost
from ...hardware.cluster import Machine
from ..base import AppResult, make_contexts
from .common import DT, NBodySize, gflops, initial_state, nbody_step_reference

__all__ = ["run_cuda"]


def run_cuda(machine: Machine, size: NBodySize,
             functional: bool = True, verify: bool = False) -> AppResult:
    env = machine.env
    ctx = make_contexts(machine)[0]
    state_bytes = 4 * size.elements

    pos = vel = None
    if functional:
        pos, vel = initial_state(size)

    holder = {"pos": pos}

    def body():
        holder["pos"] = nbody_step_reference(holder["pos"], vel, DT)

    kernel = KernelSpec(
        name="nbody_step",
        cost=lambda spec, n: nbody_cost(spec, n_total=n, n_block=n),
    )

    # pos in/out (ping-pong) + velocities resident on the device.
    ctx.malloc(3 * state_bytes)
    timings = {}

    def main():
        yield ctx.memcpy(state_bytes, "h2d")   # positions
        yield ctx.memcpy(state_bytes, "h2d")   # velocities
        timings["t0"] = env.now
        for _ in range(size.iters):
            yield ctx.launch(kernel, n=size.n)
            if functional:
                body()
        yield ctx.synchronize()
        timings["t1"] = env.now
        yield ctx.memcpy(state_bytes, "d2h")

    proc = env.process(main())
    env.run(until=proc)
    elapsed = timings["t1"] - timings["t0"]
    output = None
    if verify and functional:
        output = {"pos": holder["pos"], "vel": vel}
    return AppResult(
        name="nbody", version="cuda", makespan=elapsed,
        metric=gflops(size, elapsed), metric_unit="GFLOP/s",
        output=output,
    )
