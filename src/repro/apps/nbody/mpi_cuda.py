"""MPI+CUDA N-Body: Allgather of positions every iteration.

Each rank owns n/p bodies.  Per iteration: allgather all current positions
(the unavoidable all-to-all), upload them, run the update kernel for the
local block, download the new local positions.  No overlap of the gather
with compute — matching the paper's baseline and its observation that this
pattern "leaves almost no space to overlap communication and computation".
"""

from __future__ import annotations

import numpy as np

from ...cuda import KernelSpec, nbody_cost
from ...hardware.cluster import Machine
from ...mpi import MPIWorld
from ..base import AppResult, make_contexts
from .common import (
    DT,
    NBodySize,
    STRIDE,
    gflops,
    initial_state,
    nbody_update_block,
)

__all__ = ["run_mpi_cuda"]


def run_mpi_cuda(machine: Machine, size: NBodySize,
                 functional: bool = True, verify: bool = False) -> AppResult:
    env = machine.env
    world = MPIWorld(env, machine.network) if machine.is_cluster else None
    contexts = make_contexts(machine)
    p = machine.num_nodes
    if size.n % p != 0:
        raise ValueError(f"{size.n} bodies not divisible over {p} ranks")
    chunk_bodies = size.n // p
    chunk_elems = chunk_bodies * STRIDE
    chunk_bytes = 4 * chunk_elems
    all_bytes = 4 * size.elements

    pos = vel = None
    if functional:
        pos, vel = initial_state(size)
    results: dict[int, np.ndarray] = {}
    starts: dict[int, float] = {}
    ends: dict[int, float] = {}

    kernel = KernelSpec(
        name="nbody_update_mpi",
        cost=lambda spec, n_total, n_block: nbody_cost(
            spec, n_total=n_total, n_block=n_block),
    )

    def rank_proc(rank: int):
        ctx = contexts[rank]
        start_body = rank * chunk_bodies
        my_pos = (pos[start_body * STRIDE:
                      (start_body + chunk_bodies) * STRIDE].copy()
                  if functional else None)
        my_vel = (vel[start_body * STRIDE:
                      (start_body + chunk_bodies) * STRIDE].copy()
                  if functional else None)
        # Device: full gathered positions + local out + local velocities.
        ctx.malloc(all_bytes + 2 * chunk_bytes)
        yield ctx.memcpy(chunk_bytes, "h2d")     # local positions
        yield ctx.memcpy(chunk_bytes, "h2d")     # local velocities
        if world is not None:
            yield from world.comm(rank).Barrier()
        starts[rank] = env.now
        for _ in range(size.iters):
            if world is not None:
                # "After each iteration of the system the data from the
                # previous round must be distributed to all GPUs": one
                # broadcast per owner, the direct translation the baseline
                # uses (no overlap techniques).
                gathered = []
                for owner in range(p):
                    payload = my_pos if owner == rank else None
                    payload = yield from world.comm(rank).Bcast(
                        payload, chunk_bytes, root=owner)
                    gathered.append(payload)
            else:
                gathered = [my_pos]
            yield ctx.memcpy(all_bytes, "h2d")   # gathered positions
            yield ctx.launch(kernel, n_total=size.n, n_block=chunk_bodies)
            if functional:
                out = np.empty(chunk_elems, dtype=np.float32)
                nbody_update_block([g for g in gathered], start_body,
                                   chunk_bodies, my_vel, out, DT)
                my_pos = out
            yield ctx.memcpy(chunk_bytes, "d2h")  # new local positions
        if world is not None:
            yield from world.comm(rank).Barrier()
        ends[rank] = env.now
        if functional:
            results[rank] = my_pos

    procs = [env.process(rank_proc(r)) for r in range(p)]
    env.run(until=env.all_of(procs))
    elapsed = max(ends.values()) - min(starts.values())
    output = None
    if verify and functional:
        final = np.concatenate([results[r] for r in range(p)])
        output = {"pos": final}
    return AppResult(
        name="nbody", version="mpi_cuda", makespan=elapsed,
        metric=gflops(size, elapsed), metric_unit="GFLOP/s",
        output=output,
    )
