"""Shared pieces of the N-Body simulation.

The paper simulates 10 iterations of a 20000-body system with the NVIDIA
demo kernel; "after each iteration of the system the data from the previous
round must be distributed to all GPUs" — the all-to-all pattern that shapes
Figs. 8 and 13.

State per body: position+mass (4 float32) and velocity (4 float32).  Each
iteration every block's update task reads *all* position blocks and writes
its own block of the next position buffer (ping-pong), plus its velocity
block in place.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["NBodySize", "initial_state", "nbody_step_reference",
           "nbody_update_block", "gflops", "FLOPS_PER_INTERACTION",
           "TEST_NBODY", "PAPER_NBODY", "SOFTENING", "DT"]

FLOPS_PER_INTERACTION = 20.0
SOFTENING = 1e-2
DT = 1e-3

#: floats per body in each of the two state arrays (x, y, z, m / vx, vy,
#: vz, pad).
STRIDE = 4


@dataclass(frozen=True)
class NBodySize:
    """n bodies split into ``blocks`` update tasks, ``iters`` time steps."""

    n: int
    blocks: int
    iters: int = 10

    def __post_init__(self):
        if self.n % self.blocks != 0:
            raise ValueError(f"{self.n} bodies not divisible into "
                             f"{self.blocks} blocks")

    @property
    def block_bodies(self) -> int:
        return self.n // self.blocks

    @property
    def block_elements(self) -> int:
        return self.block_bodies * STRIDE

    @property
    def elements(self) -> int:
        return self.n * STRIDE

    @property
    def flops(self) -> float:
        return FLOPS_PER_INTERACTION * self.n * self.n * self.iters


TEST_NBODY = NBodySize(n=128, blocks=4, iters=3)
#: The paper's system (Section IV.A.2): 10 iterations of 20000 bodies.
PAPER_NBODY = NBodySize(n=20000, blocks=4, iters=10)


def initial_state(size: NBodySize) -> tuple[np.ndarray, np.ndarray]:
    """Deterministic positions (+mass) and velocities, flattened."""
    rng = np.random.default_rng(42)
    pos = rng.uniform(-1.0, 1.0, (size.n, STRIDE)).astype(np.float32)
    pos[:, 3] = rng.uniform(0.5, 1.5, size.n)  # masses
    vel = np.zeros((size.n, STRIDE), dtype=np.float32)
    return pos.reshape(-1), vel.reshape(-1)


def _accelerations(pos: np.ndarray, my: np.ndarray) -> np.ndarray:
    """Gravitational acceleration on the ``my`` bodies from all of ``pos``."""
    r = pos[None, :, :3] - my[:, None, :3]            # (m, n, 3)
    dist2 = np.sum(r * r, axis=2) + SOFTENING ** 2    # (m, n)
    inv_d3 = dist2 ** -1.5
    w = pos[None, :, 3] * inv_d3                      # m_j / d^3
    return np.sum(r * w[:, :, None], axis=1)          # (m, 3)


def nbody_update_block(pos_blocks: list[np.ndarray], start: int,
                       count: int, vel_block: np.ndarray,
                       out_block: np.ndarray, dt: float = DT) -> None:
    """One task body: update bodies [start, start+count) against everyone."""
    pos = np.concatenate([b.reshape(-1, STRIDE) for b in pos_blocks])
    my = pos[start:start + count]
    vel = vel_block.reshape(-1, STRIDE)
    acc = _accelerations(pos, my)
    vel[:, :3] += acc * dt
    out = out_block.reshape(-1, STRIDE)
    out[:, :3] = my[:, :3] + vel[:, :3] * dt
    out[:, 3] = my[:, 3]


def nbody_step_reference(pos: np.ndarray, vel: np.ndarray,
                         dt: float = DT) -> np.ndarray:
    """One whole-system step; returns the next positions (flat)."""
    p = pos.reshape(-1, STRIDE)
    v = vel.reshape(-1, STRIDE)
    acc = _accelerations(p, p)
    v[:, :3] += acc * dt
    out = p.copy()
    out[:, :3] += v[:, :3] * dt
    return out.reshape(-1)


def gflops(size: NBodySize, seconds: float) -> float:
    return size.flops / seconds / 1e9
