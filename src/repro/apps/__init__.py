"""The four evaluation applications (paper Section IV.A.2).

Each comes in Serial / CUDA / MPI+CUDA / OmpSs versions — the same set the
paper compares for performance (Figs. 5-13) and productivity (Table I).
"""

from . import matmul, nbody, perlin, stream
from .base import AppResult

__all__ = ["matmul", "stream", "perlin", "nbody", "AppResult"]
