"""The four evaluation applications (paper Section IV.A.2), plus the
irregular task-graph benchmarks.

Each paper app comes in Serial / CUDA / MPI+CUDA / OmpSs versions — the
same set the paper compares for performance (Figs. 5-13) and productivity
(Table I).  Three apps go beyond the paper (ROADMAP item 3, Serial /
OmpSs only): tiled Cholesky (triangular fan-in), Jacobi with halo
exchange (nearest-neighbour chains), and the sparse segment reduction
(ragged fan-in).  They exist to stress the schedulers and the coherence
layer on graph shapes the dense paper apps never produce, and they stay
out of the Table I productivity counts.
"""

from . import cholesky, jacobi, matmul, nbody, perlin, spreduce, stream
from .base import AppResult

__all__ = ["matmul", "stream", "perlin", "nbody", "cholesky", "jacobi",
           "spreduce", "AppResult"]
