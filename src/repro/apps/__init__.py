"""The four evaluation applications (paper Section IV.A.2), plus the
tiled Cholesky task-graph benchmark.

Each paper app comes in Serial / CUDA / MPI+CUDA / OmpSs versions — the
same set the paper compares for performance (Figs. 5-13) and productivity
(Table I).  Cholesky (Serial / OmpSs) is an addition beyond the paper: an
irregular fan-in DAG used to evaluate the scheduling policies
(docs/SCHEDULERS.md); it stays out of the Table I productivity counts.
"""

from . import cholesky, matmul, nbody, perlin, stream
from .base import AppResult

__all__ = ["matmul", "stream", "perlin", "nbody", "cholesky", "AppResult"]
