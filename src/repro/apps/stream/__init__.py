"""STREAM benchmark in Serial / CUDA / MPI+CUDA / OmpSs versions."""

from .common import (
    SCALAR,
    StreamSize,
    TEST_STREAM,
    bandwidth_gbs,
    paper_stream_size,
    serial_stream,
    stream_bytes,
)
from .cuda_single import run_cuda
from .mpi_cuda import run_mpi_cuda
from .ompss import run_ompss
from .serial import run_serial

__all__ = [
    "StreamSize",
    "TEST_STREAM",
    "SCALAR",
    "bandwidth_gbs",
    "stream_bytes",
    "paper_stream_size",
    "serial_stream",
    "run_serial",
    "run_cuda",
    "run_mpi_cuda",
    "run_ompss",
]
