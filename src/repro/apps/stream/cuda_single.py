"""Single-GPU CUDA STREAM: explicit allocation, transfers and kernels.

Vectors live on the device for the whole run (as the original CUDA STREAM
does); the host only uploads the initial data and downloads the results.
"""

from __future__ import annotations

import numpy as np

from ...cuda import KernelSpec, streaming_cost
from ...hardware.cluster import Machine
from ..base import AppResult, make_contexts
from .common import SCALAR, StreamSize, bandwidth_gbs, serial_stream

__all__ = ["run_cuda"]


def _kernels():
    def k(name, accesses, body):
        return KernelSpec(
            name=f"stream_{name}",
            cost=lambda spec, n: streaming_cost(spec, accesses * 8 * n),
            func=body,
        )

    return (
        k("copy", 2, lambda a, c: c.__setitem__(slice(None), a)),
        k("scale", 2, lambda b, c: b.__setitem__(slice(None), SCALAR * c)),
        k("add", 3, lambda a, b, c: c.__setitem__(slice(None), a + b)),
        k("triad", 3, lambda a, b, c: a.__setitem__(slice(None),
                                                    b + SCALAR * c)),
    )


def run_cuda(machine: Machine, size: StreamSize,
             functional: bool = True, verify: bool = False) -> AppResult:
    env = machine.env
    ctx = make_contexts(machine)[0]
    n = size.n
    copy_k, scale_k, add_k, triad_k = _kernels()

    a = np.arange(n, dtype=np.float64) if functional else None
    b = np.zeros(n, dtype=np.float64) if functional else None
    c = np.zeros(n, dtype=np.float64) if functional else None

    ctx.malloc(3 * size.vector_bytes)
    timings = {}

    def main():
        for _ in range(3):
            yield ctx.memcpy(size.vector_bytes, "h2d")
        timings["t0"] = env.now
        for _ in range(size.ntimes):
            yield ctx.launch(copy_k, func_args=(a, c) if functional else (),
                             n=n)
            yield ctx.launch(scale_k, func_args=(b, c) if functional else (),
                             n=n)
            yield ctx.launch(add_k, func_args=(a, b, c) if functional else (),
                             n=n)
            yield ctx.launch(triad_k,
                             func_args=(a, b, c) if functional else (), n=n)
        yield ctx.synchronize()
        timings["t1"] = env.now
        for _ in range(3):
            yield ctx.memcpy(size.vector_bytes, "d2h")

    proc = env.process(main())
    env.run(until=proc)
    elapsed = timings["t1"] - timings["t0"]
    output = None
    if verify and functional:
        output = {"a": a, "b": b, "c": c}
    return AppResult(
        name="stream", version="cuda", makespan=elapsed,
        metric=bandwidth_gbs(size, elapsed), metric_unit="GB/s",
        output=output,
    )
