"""MPI+CUDA STREAM: each rank owns a contiguous chunk, no communication.

Like the paper's version (original MPI STREAM plus handmade CUDA kernels):
ranks never exchange vector data, so the benchmark scales trivially — the
point of Fig. 11 is that OmpSs matches this embarrassingly parallel bound.
"""

from __future__ import annotations

import numpy as np

from ...cuda import KernelSpec, streaming_cost
from ...hardware.cluster import Machine
from ...mpi import MPIWorld
from ..base import AppResult, make_contexts
from .common import SCALAR, StreamSize, bandwidth_gbs

__all__ = ["run_mpi_cuda"]


def run_mpi_cuda(machine: Machine, size: StreamSize,
                 functional: bool = True, verify: bool = False) -> AppResult:
    env = machine.env
    world = MPIWorld(env, machine.network) if machine.is_cluster else None
    contexts = make_contexts(machine)
    p = machine.num_nodes
    if size.n % p != 0:
        raise ValueError(f"vector size {size.n} not divisible by {p} ranks")
    chunk = size.n // p
    chunk_bytes = 8 * chunk

    def k(name, accesses, body):
        return KernelSpec(
            name=f"stream_{name}",
            cost=lambda spec, n: streaming_cost(spec, accesses * 8 * n),
            func=body,
        )

    copy_k = k("copy", 2, lambda a, c: c.__setitem__(slice(None), a))
    scale_k = k("scale", 2, lambda b, c: b.__setitem__(slice(None),
                                                       SCALAR * c))
    add_k = k("add", 3, lambda a, b, c: c.__setitem__(slice(None), a + b))
    triad_k = k("triad", 3, lambda a, b, c: a.__setitem__(slice(None),
                                                          b + SCALAR * c))

    full = {"a": np.arange(size.n, dtype=np.float64),
            "b": np.zeros(size.n, dtype=np.float64),
            "c": np.zeros(size.n, dtype=np.float64)} if functional else None
    ends: dict[int, float] = {}
    starts: dict[int, float] = {}

    def rank_proc(rank: int):
        ctx = contexts[rank]
        sl = slice(rank * chunk, (rank + 1) * chunk)
        a = full["a"][sl] if functional else None
        b = full["b"][sl] if functional else None
        c = full["c"][sl] if functional else None
        ctx.malloc(3 * chunk_bytes)
        for _ in range(3):
            yield ctx.memcpy(chunk_bytes, "h2d")
        if world is not None:
            yield from world.comm(rank).Barrier()
        starts[rank] = env.now
        for _ in range(size.ntimes):
            yield ctx.launch(copy_k, func_args=(a, c) if functional else (),
                             n=chunk)
            yield ctx.launch(scale_k, func_args=(b, c) if functional else (),
                             n=chunk)
            yield ctx.launch(add_k,
                             func_args=(a, b, c) if functional else (),
                             n=chunk)
            yield ctx.launch(triad_k,
                             func_args=(a, b, c) if functional else (),
                             n=chunk)
        yield ctx.synchronize()
        if world is not None:
            yield from world.comm(rank).Barrier()
        ends[rank] = env.now
        for _ in range(3):
            yield ctx.memcpy(chunk_bytes, "d2h")

    procs = [env.process(rank_proc(r)) for r in range(p)]
    env.run(until=env.all_of(procs))
    elapsed = max(ends.values()) - min(starts.values())
    output = full if (verify and functional) else None
    return AppResult(
        name="stream", version="mpi_cuda", makespan=elapsed,
        metric=bandwidth_gbs(size, elapsed), metric_unit="GB/s",
        output=output,
    )
