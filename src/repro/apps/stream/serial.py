"""Serial STREAM reference."""

from __future__ import annotations

import numpy as np

from ..base import AppResult
from .common import StreamSize, serial_stream

__all__ = ["run_serial"]


def run_serial(size: StreamSize) -> AppResult:
    a = np.arange(size.n, dtype=np.float64)
    b = np.zeros(size.n, dtype=np.float64)
    c = np.zeros(size.n, dtype=np.float64)
    serial_stream(size, a, b, c)
    return AppResult(
        name="stream", version="serial", makespan=0.0, metric=0.0,
        metric_unit="GB/s", output={"a": a, "b": b, "c": c},
    )
