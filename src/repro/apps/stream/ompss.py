"""OmpSs STREAM — a direct rendering of the paper's Figure 2."""

from __future__ import annotations

from typing import Optional

import numpy as np

from ...api import Program, target, task
from ...cuda.kernels import streaming_cost
from ...hardware.cluster import Machine
from ...runtime.config import RuntimeConfig
from ..base import AppResult
from .common import SCALAR, StreamSize, bandwidth_gbs

__all__ = ["run_ompss"]


def _cost(accesses):
    """Bandwidth-bound kernel cost: ``accesses`` float64 touches/element."""
    return lambda spec, bound: streaming_cost(spec, accesses * 8 * bound["n"])


@target(device="cuda", copy_deps=True)
@task(outputs=("a", "b", "c"), cost=_cost(3), label="stream_init")
def init_block(a, b, c, start, n):
    # STREAM's parallel first touch: one loop initializes all three vectors
    # of a block, so they are created together (and stay together).
    a[:] = np.arange(start, start + n, dtype=np.float64)
    b[:] = 0.0
    c[:] = 0.0


@target(device="cuda", copy_deps=True)
@task(inputs=("a",), outputs=("c",), cost=_cost(2), label="copy")
def copy(a, c, n):
    c[:] = a


@target(device="cuda", copy_deps=True)
@task(inputs=("c",), outputs=("b",), cost=_cost(2), label="scale")
def scale(b, c, scalar, n):
    b[:] = scalar * c


@target(device="cuda", copy_deps=True)
@task(inputs=("a", "b"), outputs=("c",), cost=_cost(3), label="add")
def add(a, b, c, n):
    c[:] = a + b


@target(device="cuda", copy_deps=True)
@task(inputs=("b", "c"), outputs=("a",), cost=_cost(3), label="triad")
def triad(a, b, c, scalar, n):
    a[:] = b + scalar * c


def run_ompss(machine: Machine, size: StreamSize,
              config: Optional[RuntimeConfig] = None,
              verify: bool = False) -> AppResult:
    config = config or RuntimeConfig()
    prog = Program(machine, config)
    n, bs = size.n, size.bsize
    a, b, c = (prog.array(name, n, dtype=np.float64) for name in "abc")
    timings = {}

    def main():
        # Parallel first touch (untimed, as in the original benchmark):
        # blocks are created where they will be used.
        for j in range(0, n, bs):
            init_block(a[j:j + bs], b[j:j + bs], c[j:j + bs], j, bs)
        yield from prog.taskwait(noflush=True)
        timings["t0"] = prog.env.now
        for _ in range(size.ntimes):
            for j in range(0, n, bs):
                copy(a[j:j + bs], c[j:j + bs], bs)
            for j in range(0, n, bs):
                scale(b[j:j + bs], c[j:j + bs], SCALAR, bs)
            for j in range(0, n, bs):
                add(a[j:j + bs], b[j:j + bs], c[j:j + bs], bs)
            for j in range(0, n, bs):
                triad(a[j:j + bs], b[j:j + bs], c[j:j + bs], SCALAR, bs)
        yield from prog.taskwait(noflush=True)
        timings["t1"] = prog.env.now
        if verify:
            yield from prog.taskwait()

    prog.run(main())
    elapsed = timings["t1"] - timings["t0"]
    output = None
    if verify and config.functional:
        output = {"a": np.array(a.np), "b": np.array(b.np),
                  "c": np.array(c.np)}
    return AppResult(
        name="stream", version="ompss", makespan=elapsed,
        metric=bandwidth_gbs(size, elapsed), metric_unit="GB/s",
        stats=prog.stats, metrics=prog.metrics.snapshot(), output=output,
    )
