"""Shared pieces of the STREAM benchmark (paper Figure 2).

Three double-precision vectors and four kernels per iteration — copy
(c = a), scale (b = s*c), add (c = a + b), triad (a = b + s*c) — blocked so
each task covers BSIZE elements.  The paper allocates 768 MB per GPU; the
headline metric is aggregate memory bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["StreamSize", "SCALAR", "serial_stream", "bandwidth_gbs",
           "stream_bytes", "TEST_STREAM", "paper_stream_size"]

#: STREAM's scale factor (from the original source).
SCALAR = 3.0

#: Bytes moved per element per iteration: copy 2, scale 2, add 3, triad 3
#: accesses of 8 bytes each.
_ACCESSES_PER_ELEMENT = 10


@dataclass(frozen=True)
class StreamSize:
    """Problem size: vectors of n float64 elements, blocks of bsize."""

    n: int
    bsize: int
    ntimes: int = 4

    def __post_init__(self):
        if self.n % self.bsize != 0:
            raise ValueError(f"vector size {self.n} not a multiple of "
                             f"block size {self.bsize}")

    @property
    def blocks(self) -> int:
        return self.n // self.bsize

    @property
    def vector_bytes(self) -> int:
        return 8 * self.n


TEST_STREAM = StreamSize(n=64, bsize=16, ntimes=2)


def paper_stream_size(num_gpus: int, ntimes: int = 4) -> StreamSize:
    """768 MB per GPU across the three vectors (Section IV.A.2)."""
    per_gpu_bytes = 768 * 1024 * 1024
    n = num_gpus * per_gpu_bytes // (3 * 8)
    blocks_per_gpu = 8
    bsize = n // (num_gpus * blocks_per_gpu)
    n = bsize * num_gpus * blocks_per_gpu
    return StreamSize(n=n, bsize=bsize, ntimes=ntimes)


def serial_stream(size: StreamSize, a: np.ndarray, b: np.ndarray,
                  c: np.ndarray) -> None:
    """Reference semantics of ``ntimes`` STREAM iterations (in place)."""
    for _ in range(size.ntimes):
        c[:] = a
        b[:] = SCALAR * c
        c[:] = a + b
        a[:] = b + SCALAR * c


def stream_bytes(size: StreamSize) -> int:
    """Total bytes moved by the whole run (for the bandwidth metric)."""
    return _ACCESSES_PER_ELEMENT * 8 * size.n * size.ntimes


def bandwidth_gbs(size: StreamSize, seconds: float) -> float:
    return stream_bytes(size) / seconds / 1e9
