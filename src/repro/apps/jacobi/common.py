"""Shared pieces of the Jacobi stencil application (halo exchange).

The five-point Jacobi relaxation is the canonical halo-exchange workload
the paper's dense apps never approximate: each row block only needs its
neighbours' *boundary rows*, so the dependency graph is a nearest-
neighbour chain per iteration — wide, shallow, and communication-bound
at the block seams.  It is the second installment of the "more apps"
roadmap item (ROADMAP item 3) and one of the anchor shapes for the
dagfuzz profiles.

Storage is a flat row-major float32 grid of ``n x n`` points.  The grid
is decomposed into ``nb`` row blocks; each block is *three* regions —
``[first row][interior rows][last row]`` — so a neighbour's halo read
names the exact boundary-row region the producer wrote (the memory model
only supports equal-or-disjoint region overlap; carving the boundary
rows out as their own regions is what makes halo exchange expressible).
Boundary conditions are Dirichlet: the outer ring of the grid is copied,
never updated.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["JacobiSize", "build_grid", "jacobi_reference", "mcells",
           "block_rows", "PAPER_JACOBI", "TEST_JACOBI"]


@dataclass(frozen=True)
class JacobiSize:
    """Problem size: n x n grid, nb row blocks, iters sweeps."""

    n: int
    nb: int
    iters: int

    def __post_init__(self):
        if self.nb < 2:
            raise ValueError("need at least 2 row blocks (halo exchange)")
        if self.n % self.nb != 0:
            raise ValueError(f"grid size {self.n} not a multiple of "
                             f"block count {self.nb}")
        if self.n // self.nb < 3:
            raise ValueError("blocks need >= 3 rows (top/interior/bottom "
                             "regions)")
        if self.iters < 1:
            raise ValueError("need at least one iteration")

    @property
    def rows(self) -> int:
        """Rows per block."""
        return self.n // self.nb

    @property
    def elements(self) -> int:
        return self.n * self.n

    @property
    def points(self) -> float:
        """Stencil point-updates over the whole run."""
        return float(self.n * self.n * self.iters)


#: Cluster-scale benchmark size (row blocks sized for 8-node runs).
PAPER_JACOBI = JacobiSize(n=8192, nb=16, iters=8)
#: Small functional-mode size for correctness tests.
TEST_JACOBI = JacobiSize(n=32, nb=4, iters=3)


def block_rows(size: JacobiSize, b: int) -> "tuple[int, int]":
    """[lo, hi) global row range of block ``b``."""
    return b * size.rows, (b + 1) * size.rows


def build_grid(size: JacobiSize) -> np.ndarray:
    """Deterministic initial grid (flat): a ragged interference pattern
    with a hot west edge, so every sweep moves real information."""
    n = size.n
    idx = np.arange(n, dtype=np.float32)
    g = ((np.add.outer(idx * 13.0, idx * 7.0) % 41.0)
         / np.float32(41.0)).astype(np.float32)
    g[:, 0] = np.float32(1.0)
    return g.ravel()


def jacobi_step(g: np.ndarray) -> np.ndarray:
    """One sweep on a 2-D grid — THE stencil expression.

    The OmpSs block kernels compute the identical float32 expression per
    element, so blocked and whole-grid sweeps agree bit for bit.
    """
    new = g.copy()
    up, dn = g[:-2, 1:-1], g[2:, 1:-1]
    lf, rt = g[1:-1, :-2], g[1:-1, 2:]
    new[1:-1, 1:-1] = ((up + dn) + (lf + rt)) * np.float32(0.25)
    return new


def jacobi_reference(size: JacobiSize, flat: np.ndarray) -> np.ndarray:
    """``iters`` whole-grid sweeps over a flat grid (returns flat)."""
    g = flat.reshape(size.n, size.n).copy()
    for _ in range(size.iters):
        g = jacobi_step(g)
    return g.ravel()


def mcells(size: JacobiSize, seconds: float) -> float:
    """Headline metric: stencil point-updates per second, in millions."""
    return size.points / seconds / 1e6
