"""Serial Jacobi sweeps (the annotation starting point)."""

from __future__ import annotations

from ..base import AppResult
from .common import JacobiSize, build_grid, jacobi_reference

__all__ = ["run_serial"]


def run_serial(size: JacobiSize) -> AppResult:
    grid = jacobi_reference(size, build_grid(size))
    return AppResult(
        name="jacobi", version="serial", makespan=0.0, metric=0.0,
        metric_unit="Mcell/s",
        output={"grid": grid},
    )
