"""OmpSs Jacobi stencil with halo exchange.

One task per row block per sweep, ping-ponging between two grids.  A
block reads its own three regions of the source grid plus the *boundary-
row* regions of its neighbours (the halo — exact-match regions, since
each block's first and last rows are carved out as standalone regions)
and writes its own three regions of the destination grid.  The
dependency graph per sweep is a nearest-neighbour chain: maximal width
with communication only at the seams, the classic stencil shape the
schedulers and the datamove layer are measured against.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ...api import Program, target, task
from ...cuda.kernels import streaming_cost
from ...hardware.cluster import Machine
from ...runtime.config import RuntimeConfig
from ..base import AppResult
from .common import JacobiSize, build_grid, mcells

__all__ = ["run_ompss"]


def _cost(halo_rows):
    """Bandwidth-bound kernel: the sweep reads ~5 and writes 1 float per
    point over the block's rows plus its halo rows."""
    return lambda spec, bound: streaming_cost(
        spec, 6 * 4 * (bound["rows"] + halo_rows) * bound["n"])


def _sweep(src: np.ndarray, n: int) -> np.ndarray:
    """The stencil expression over ``src`` rows (bit-identical to
    ``common.jacobi_step`` — same float32 expression per element)."""
    new = src[1:-1].copy()
    up, dn = src[:-2, 1:-1], src[2:, 1:-1]
    lf, rt = src[1:-1, :-2], src[1:-1, 2:]
    new[:, 1:-1] = ((up + dn) + (lf + rt)) * np.float32(0.25)
    return new


@target(device="cuda", copy_deps=True)
@task(inputs=("a_top", "a_int", "a_bot", "halo_dn"),
      outputs=("b_top", "b_int", "b_bot"),
      cost=_cost(1), label="jacobi_top")
def jacobi_top(a_top, a_int, a_bot, halo_dn, b_top, b_int, b_bot, n, rows):
    """Topmost block: global row 0 is Dirichlet (copied, not updated)."""
    src = np.concatenate([a_top, a_int, a_bot, halo_dn]).reshape(-1, n)
    new = src[:-1].copy()
    up, dn = src[:-2, 1:-1], src[2:, 1:-1]
    lf, rt = src[1:-1, :-2], src[1:-1, 2:]
    new[1:, 1:-1] = ((up + dn) + (lf + rt)) * np.float32(0.25)
    b_top[:] = new[0]
    b_int[:] = new[1:-1].ravel()
    b_bot[:] = new[-1]


@target(device="cuda", copy_deps=True)
@task(inputs=("halo_up", "a_top", "a_int", "a_bot", "halo_dn"),
      outputs=("b_top", "b_int", "b_bot"),
      cost=_cost(2), label="jacobi_mid")
def jacobi_mid(halo_up, a_top, a_int, a_bot, halo_dn,
               b_top, b_int, b_bot, n, rows):
    """Interior block: halo rows on both sides."""
    src = np.concatenate([halo_up, a_top, a_int, a_bot,
                          halo_dn]).reshape(-1, n)
    new = _sweep(src, n)
    b_top[:] = new[0]
    b_int[:] = new[1:-1].ravel()
    b_bot[:] = new[-1]


@target(device="cuda", copy_deps=True)
@task(inputs=("halo_up", "a_top", "a_int", "a_bot"),
      outputs=("b_top", "b_int", "b_bot"),
      cost=_cost(1), label="jacobi_bot")
def jacobi_bot(halo_up, a_top, a_int, a_bot, b_top, b_int, b_bot, n, rows):
    """Bottom block: global row n-1 is Dirichlet (copied, not updated)."""
    src = np.concatenate([halo_up, a_top, a_int, a_bot]).reshape(-1, n)
    new = src[1:].copy()
    up, dn = src[:-2, 1:-1], src[2:, 1:-1]
    lf, rt = src[1:-1, :-2], src[1:-1, 2:]
    new[:-1, 1:-1] = ((up + dn) + (lf + rt)) * np.float32(0.25)
    b_top[:] = new[0]
    b_int[:] = new[1:-1].ravel()
    b_bot[:] = new[-1]


def run_ompss(machine: Machine, size: JacobiSize,
              config: Optional[RuntimeConfig] = None,
              verify: bool = False) -> AppResult:
    """Run the OmpSs Jacobi; times the sweeps only."""
    config = config or RuntimeConfig()
    prog = Program(machine, config)
    n, nb, rows = size.n, size.nb, size.rows

    init = build_grid(size) if config.functional else None
    a = prog.array("A", size.elements, init=init)
    b = prog.array("B", size.elements)

    def regions(handle, blk):
        """(top_row, interior, bottom_row) views of one row block."""
        lo = blk * rows * n
        return (handle[lo:lo + n],
                handle[lo + n:lo + (rows - 1) * n],
                handle[lo + (rows - 1) * n:lo + rows * n])

    timings = {}

    def main():
        timings["t0"] = prog.env.now
        src, dst = a, b
        for _ in range(size.iters):
            for blk in range(nb):
                s_top, s_int, s_bot = regions(src, blk)
                d_top, d_int, d_bot = regions(dst, blk)
                if blk == 0:
                    halo_dn = regions(src, 1)[0]
                    jacobi_top(s_top, s_int, s_bot, halo_dn,
                               d_top, d_int, d_bot, n, rows)
                elif blk == nb - 1:
                    halo_up = regions(src, blk - 1)[2]
                    jacobi_bot(halo_up, s_top, s_int, s_bot,
                               d_top, d_int, d_bot, n, rows)
                else:
                    halo_up = regions(src, blk - 1)[2]
                    halo_dn = regions(src, blk + 1)[0]
                    jacobi_mid(halo_up, s_top, s_int, s_bot, halo_dn,
                               d_top, d_int, d_bot, n, rows)
            src, dst = dst, src
        yield from prog.taskwait(noflush=True)
        timings["t1"] = prog.env.now
        if verify:
            yield from prog.taskwait()          # flush results to the host

    prog.run(main())
    elapsed = timings["t1"] - timings["t0"]
    output = None
    if verify and config.functional:
        final = a if size.iters % 2 == 0 else b
        output = {"grid": np.array(final.np)}
    return AppResult(
        name="jacobi", version="ompss", makespan=elapsed,
        metric=mcells(size, elapsed), metric_unit="Mcell/s",
        stats=prog.stats, metrics=prog.metrics.snapshot(), output=output,
    )
