"""Jacobi stencil with halo exchange (Serial / OmpSs)."""

from .common import (
    PAPER_JACOBI,
    TEST_JACOBI,
    JacobiSize,
    build_grid,
    jacobi_reference,
    mcells,
)
from .ompss import run_ompss
from .serial import run_serial

__all__ = [
    "JacobiSize",
    "PAPER_JACOBI",
    "TEST_JACOBI",
    "build_grid",
    "jacobi_reference",
    "mcells",
    "run_ompss",
    "run_serial",
]
