"""Shared infrastructure for the four evaluation applications.

Every application comes in four versions, mirroring the paper's productivity
and performance comparison:

* ``serial``   — plain NumPy reference (the starting point programmers have);
* ``cuda``     — single-GPU with explicit allocation/memcpy/launch;
* ``mpi_cuda`` — one MPI rank per cluster node driving its GPU explicitly;
* ``ompss``    — the annotated task version; the same code runs on the
  multi-GPU node and on the cluster.

Each version's entry point returns an :class:`AppResult` with the simulated
makespan and the app's headline metric (GFLOP/s, GB/s or Mpixels/s).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..cuda.api import CudaContext
from ..hardware.cluster import Machine
from ..sim import Environment

__all__ = ["AppResult", "make_contexts"]


@dataclass
class AppResult:
    """Outcome of one application run."""

    name: str
    version: str
    makespan: float            # simulated seconds
    metric: float              # app-specific headline number
    metric_unit: str
    stats: dict = field(default_factory=dict)
    #: full counter-registry snapshot of the run (OmpSs versions only;
    #: see docs/OBSERVABILITY.md) — the substrate for per-run metrics
    #: tables in benchmark output.
    metrics: dict = field(default_factory=dict)
    #: functional-mode output(s) for correctness checks (None in perf mode).
    output: Optional[dict] = None

    def __repr__(self) -> str:
        return (f"<AppResult {self.name}/{self.version} "
                f"{self.metric:.2f} {self.metric_unit} "
                f"({self.makespan * 1e3:.2f} ms)>")


def make_contexts(machine: Machine, jitter: float = 0.03
                  ) -> list[CudaContext]:
    """One CUDA context per GPU of the machine (baseline versions).

    For the multi-GPU node this is N contexts on one node; for the cluster it
    is one context per node (each cluster node has a single GTX 480).
    """
    contexts = []
    for node in machine.nodes:
        for gpu in node.gpus:
            contexts.append(CudaContext(machine.env, gpu, node,
                                        jitter=jitter))
    return contexts
