"""Tiled Cholesky factorization in Serial / OmpSs versions.

The triangular fan-in task graph that separates the scheduling policies
(docs/SCHEDULERS.md) — first installment of the extra-apps roadmap item.
"""

from .common import (
    CholeskySize,
    PAPER_CHOLESKY,
    TEST_CHOLESKY,
    build_spd_dense,
    dense_to_tiled,
    gflops,
    serial_cholesky_tiled,
    tile_start,
    tiled_to_dense,
)
from .ompss import run_ompss
from .serial import run_serial

__all__ = [
    "CholeskySize",
    "PAPER_CHOLESKY",
    "TEST_CHOLESKY",
    "build_spd_dense",
    "dense_to_tiled",
    "tiled_to_dense",
    "serial_cholesky_tiled",
    "tile_start",
    "gflops",
    "run_serial",
    "run_ompss",
]
