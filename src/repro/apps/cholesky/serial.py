"""Serial tiled Cholesky (the annotation starting point)."""

from __future__ import annotations

from .common import (
    CholeskySize,
    build_spd_dense,
    dense_to_tiled,
    serial_cholesky_tiled,
)
from ..base import AppResult

__all__ = ["run_serial"]


def run_serial(size: CholeskySize) -> AppResult:
    a = dense_to_tiled(size, build_spd_dense(size))
    serial_cholesky_tiled(size, a)
    return AppResult(
        name="cholesky", version="serial", makespan=0.0, metric=0.0,
        metric_unit="GFLOP/s",
        output={"a": a},
    )
