"""Shared pieces of the tiled Cholesky factorization application.

Cholesky is the classic task-graph benchmark the paper's regular apps
(matmul, stream) never approximate: the right-looking blocked algorithm
produces a triangular fan-in DAG whose critical path (the potrf chain down
the diagonal) is a vanishing fraction of the total work, so *what order
the ready tasks run in* dominates the makespan.  This app exists to
separate the scheduling policies (docs/SCHEDULERS.md); it is the first
installment of the "more apps" roadmap item.

Storage matches the other apps: tile-major flat float32, tile (i, j) at
``(i * nt + j) * bs * bs``.  Only the lower triangle (j <= i) is ever
read or written.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["CholeskySize", "tile_start", "build_spd_dense",
           "dense_to_tiled", "tiled_to_dense", "serial_cholesky_tiled",
           "gflops", "PAPER_CHOLESKY", "TEST_CHOLESKY"]


@dataclass(frozen=True)
class CholeskySize:
    """Problem size: n x n SPD matrix in bs x bs tiles."""

    n: int
    bs: int

    def __post_init__(self):
        if self.n % self.bs != 0:
            raise ValueError(f"matrix size {self.n} not a multiple of tile "
                             f"size {self.bs}")

    @property
    def nt(self) -> int:
        return self.n // self.bs

    @property
    def elements(self) -> int:
        return self.n * self.n

    @property
    def tile_elements(self) -> int:
        return self.bs * self.bs

    @property
    def flops(self) -> float:
        return self.n ** 3 / 3.0


#: Benchmark size matching the paper-era tile choice (16x16 tiles).
PAPER_CHOLESKY = CholeskySize(n=16384, bs=1024)
#: Small functional-mode size for correctness tests (8x8 tiles).
TEST_CHOLESKY = CholeskySize(n=128, bs=16)


def tile_start(size: CholeskySize, i: int, j: int) -> int:
    """Flat offset of tile (i, j) in the tile-major layout."""
    return (i * size.nt + j) * size.tile_elements


def build_spd_dense(size: CholeskySize) -> np.ndarray:
    """A deterministic, well-conditioned SPD matrix: M M^T scaled down
    plus a diagonal shift (every version factorizes the same input)."""
    n = size.n
    idx = np.arange(n, dtype=np.float32)
    m = (np.add.outer(idx * 31.0, idx * 17.0) % 61.0) / np.float32(61.0)
    d = (m @ m.T) / np.float32(n)
    d[np.diag_indices(n)] += np.float32(2.0)
    return d.astype(np.float32)


def dense_to_tiled(size: CholeskySize, dense: np.ndarray) -> np.ndarray:
    flat = np.zeros(size.elements, dtype=np.float32)
    bs, te = size.bs, size.tile_elements
    for i in range(size.nt):
        for j in range(size.nt):
            s = tile_start(size, i, j)
            flat[s:s + te] = dense[i * bs:(i + 1) * bs,
                                   j * bs:(j + 1) * bs].ravel()
    return flat


def tiled_to_dense(size: CholeskySize, flat: np.ndarray) -> np.ndarray:
    dense = np.empty((size.n, size.n), dtype=np.float32)
    bs, te = size.bs, size.tile_elements
    for i in range(size.nt):
        for j in range(size.nt):
            s = tile_start(size, i, j)
            dense[i * bs:(i + 1) * bs,
                  j * bs:(j + 1) * bs] = flat[s:s + te].reshape(bs, bs)
    return dense


def serial_cholesky_tiled(size: CholeskySize, a: np.ndarray) -> None:
    """Reference right-looking blocked factorization on tile-major flat
    storage — the *same* tile operations in the same program order as the
    OmpSs version, so functional outputs match bit for bit (per-tile
    update chains are totally ordered by the inout dependences)."""
    bs, nt, te = size.bs, size.nt, size.tile_elements

    def tile(i, j):
        s = tile_start(size, i, j)
        return a[s:s + te].reshape(bs, bs)

    for k in range(nt):
        akk = tile(k, k)
        akk[:] = np.linalg.cholesky(akk)
        for i in range(k + 1, nt):
            aik = tile(i, k)
            aik[:] = np.linalg.solve(akk, aik.T).T
        for i in range(k + 1, nt):
            aik = tile(i, k)
            for j in range(k + 1, i):
                tile(i, j)[:] = tile(i, j) - aik @ tile(j, k).T
            tile(i, i)[:] = tile(i, i) - aik @ aik.T


def gflops(size: CholeskySize, seconds: float) -> float:
    return size.flops / seconds / 1e9
