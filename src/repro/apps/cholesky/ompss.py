"""OmpSs tiled Cholesky factorization (right-looking variant).

Four annotated kernels — potrf / trsm / syrk / gemm — one task per tile
operation, the same main for the multi-GPU node and the cluster.  The
panel factorization (potrf) models the classic low-occupancy kernel: it
runs at a small fraction of peak, which is exactly what puts it on the
critical path and separates priority-aware schedulers from FIFO ones.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ...api import Program, target, task
from ...hardware.cluster import Machine
from ...runtime.config import RuntimeConfig
from ..base import AppResult
from .common import (
    CholeskySize,
    build_spd_dense,
    dense_to_tiled,
    gflops,
    tile_start,
)

__all__ = ["run_ompss"]

#: fraction of peak the panel factorization sustains (small triangular
#: kernel, little parallelism — the 2012-era magma potrf class).
POTRF_EFFICIENCY = 0.08
#: triangular solve sustains about half the sgemm rate.
TRSM_EFFICIENCY = 0.5


def _potrf_cost(spec, bound):
    b = bound["n"]
    return (b ** 3 / 3.0) / (spec.peak_sp_gflops * 1e9 * POTRF_EFFICIENCY)


def _trsm_cost(spec, bound):
    b = bound["n"]
    return b ** 3 / (spec.sgemm_gflops * 1e9 * TRSM_EFFICIENCY)


def _syrk_cost(spec, bound):
    b = bound["n"]
    return b ** 3 / (spec.sgemm_gflops * 1e9)


def _gemm_cost(spec, bound):
    b = bound["n"]
    return 2.0 * b ** 3 / (spec.sgemm_gflops * 1e9)


@target(device="cuda", copy_deps=True)
@task(inouts=("a",), cost=_potrf_cost, label="potrf")
def potrf_tile(a, n):
    m = a.reshape(n, n)
    m[:] = np.linalg.cholesky(m)


@target(device="cuda", copy_deps=True)
@task(inputs=("l",), inouts=("a",), cost=_trsm_cost, label="trsm")
def trsm_tile(l, a, n):
    lm = l.reshape(n, n)
    am = a.reshape(n, n)
    # Solve X L^T = A, i.e. X = A L^-T (the trailing panel update).
    am[:] = np.linalg.solve(lm, am.T).T


@target(device="cuda", copy_deps=True)
@task(inputs=("a",), inouts=("c",), cost=_syrk_cost, label="syrk")
def syrk_tile(a, c, n):
    am = a.reshape(n, n)
    cm = c.reshape(n, n)
    cm -= am @ am.T


@target(device="cuda", copy_deps=True)
@task(inputs=("a", "b"), inouts=("c",), cost=_gemm_cost, label="gemm")
def gemm_tile(a, b, c, n):
    am = a.reshape(n, n)
    bm = b.reshape(n, n)
    cm = c.reshape(n, n)
    cm -= am @ bm.T


def run_ompss(machine: Machine, size: CholeskySize,
              config: Optional[RuntimeConfig] = None,
              verify: bool = False) -> AppResult:
    """Run the OmpSs tiled Cholesky; times the factorization only."""
    config = config or RuntimeConfig()
    prog = Program(machine, config)
    te, bs, nt = size.tile_elements, size.bs, size.nt

    init = (dense_to_tiled(size, build_spd_dense(size))
            if config.functional else None)
    a = prog.array("A", size.elements, init=init)

    def tile(i, j):
        s = tile_start(size, i, j)
        return a[s:s + te]

    timings = {}

    def main():
        timings["t0"] = prog.env.now
        for k in range(nt):
            potrf_tile(tile(k, k), bs)
            for i in range(k + 1, nt):
                trsm_tile(tile(k, k), tile(i, k), bs)
            for i in range(k + 1, nt):
                for j in range(k + 1, i):
                    gemm_tile(tile(i, k), tile(j, k), tile(i, j), bs)
                syrk_tile(tile(i, k), tile(i, i), bs)
        yield from prog.taskwait(noflush=True)
        timings["t1"] = prog.env.now
        if verify:
            yield from prog.taskwait()  # flush results to the host

    prog.run(main())
    elapsed = timings["t1"] - timings["t0"]
    output = None
    if verify and config.functional:
        output = {"a": np.array(a.np)}
    return AppResult(
        name="cholesky", version="ompss", makespan=elapsed,
        metric=gflops(size, elapsed), metric_unit="GFLOP/s",
        stats=prog.stats, metrics=prog.metrics.snapshot(), output=output,
    )
