"""Buffer instrumentation: record what a task body *actually* does.

``resolve_args`` hands task bodies views into the executing address
space's storage.  With a sanitizer installed each view is wrapped in a
:class:`WatchedBuffer` — an ``ndarray`` subclass sharing the same memory
(in-place writes still land in the space, so functional results are
unchanged) that counts reads and writes into a per-(task, region)
:class:`BufferWatch`.

Interception points:

* ``__getitem__`` / ``__array__`` — reads (slicing, ``np.asarray``);
* ``__setitem__`` — a write, plus a read of the assigned value when it
  is itself watched (``c[:] = a`` reads ``a``);
* ``__array_ufunc__`` — ufunc inputs are reads, ``out=`` targets are
  writes (``b[:] = scalar * c``, ``cm += am @ bm``);
* ``__array_function__`` — the non-ufunc API (``np.concatenate``,
  ``np.dot``): positional watched arrays are reads, ``out=`` is a write.

All protocols convert watched operands to base ``ndarray`` views before
dispatching, so results are plain arrays — temporaries never carry a
watch and never record phantom accesses.  The watch also remembers the
*first* operation: a body whose first touch of an ``output`` region is a
read consumed stale bytes even though it later wrote the region.
"""

from __future__ import annotations

import numpy as np

__all__ = ["BufferWatch", "WatchedBuffer", "wrap"]


class BufferWatch:
    """Access counts for one region buffer within one task execution."""

    __slots__ = ("region", "declared", "reads", "writes", "first")

    def __init__(self, region, declared):
        #: the Region this buffer resolves (its key identifies the clause).
        self.region = region
        #: declared Direction, or None for a copy-only (no dependence) clause.
        self.declared = declared
        self.reads = 0
        self.writes = 0
        #: "read" or "write" — the first observed operation, None if untouched.
        self.first: str | None = None

    def note_read(self) -> None:
        self.reads += 1
        if self.first is None:
            self.first = "read"

    def note_write(self) -> None:
        self.writes += 1
        if self.first is None:
            self.first = "write"

    @property
    def touched(self) -> bool:
        return self.first is not None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<BufferWatch {self.region!r} r={self.reads} "
                f"w={self.writes} first={self.first}>")


def _unwatch(value):
    """Strip watches from a value tree before dispatching to numpy."""
    if isinstance(value, WatchedBuffer):
        return value.view(np.ndarray)
    if isinstance(value, (list, tuple)):
        stripped = [_unwatch(v) for v in value]
        return type(value)(stripped) if isinstance(value, tuple) else stripped
    if isinstance(value, dict):
        return {k: _unwatch(v) for k, v in value.items()}
    return value


def _note_reads(value) -> None:
    if isinstance(value, WatchedBuffer):
        w = value._repro_watch
        if w is not None:
            w.note_read()
    elif isinstance(value, (list, tuple)):
        for v in value:
            _note_reads(v)
    elif isinstance(value, dict):
        for v in value.values():
            _note_reads(v)


class WatchedBuffer(np.ndarray):
    """An ndarray view that records accesses into its BufferWatch.

    Views derived from a watched buffer (``reshape``, basic slicing)
    inherit the watch via ``__array_finalize__``, so a body that reshapes
    its argument and writes the reshaped view is still observed.
    """

    _repro_watch: BufferWatch | None = None

    def __array_finalize__(self, obj):
        self._repro_watch = getattr(obj, "_repro_watch", None)

    # -- element access ----------------------------------------------------
    def __getitem__(self, index):
        w = self._repro_watch
        if w is not None:
            w.note_read()
        return super().__getitem__(index)

    def __setitem__(self, index, value):
        w = self._repro_watch
        if w is not None:
            w.note_write()
        _note_reads(value)
        super().__setitem__(index, _unwatch(value))

    # -- numpy protocols ---------------------------------------------------
    def __array__(self, dtype=None, copy=None):
        w = self._repro_watch
        if w is not None:
            w.note_read()
        base = self.view(np.ndarray)
        if dtype is not None and base.dtype != np.dtype(dtype):
            return base.astype(dtype)
        if copy:
            return base.copy()
        return base

    def __array_ufunc__(self, ufunc, method, *inputs, **kwargs):
        out = kwargs.get("out", ())
        if not isinstance(out, tuple):
            out = (out,)
        # Inputs are genuinely read first (so `c += a` on an output-declared
        # c records the stale read), then out targets are written.
        for value in inputs:
            _note_reads(value)
        if method == "at":
            # ufunc.at(a, idx, b): operates on inputs[0] in place.
            if inputs and isinstance(inputs[0], WatchedBuffer):
                w = inputs[0]._repro_watch
                if w is not None:
                    w.note_write()
        for target in out:
            if isinstance(target, WatchedBuffer):
                w = target._repro_watch
                if w is not None:
                    w.note_write()
        stripped_inputs = tuple(_unwatch(v) for v in inputs)
        if "out" in kwargs:
            kwargs["out"] = tuple(_unwatch(t) for t in out)
        return getattr(ufunc, method)(*stripped_inputs, **kwargs)

    def __array_function__(self, func, types, args, kwargs):
        out = kwargs.get("out")
        for target in (out if isinstance(out, tuple) else (out,)):
            if isinstance(target, WatchedBuffer):
                w = target._repro_watch
                if w is not None:
                    w.note_write()
        _note_reads(args)
        _note_reads({k: v for k, v in kwargs.items() if k != "out"})
        return func(*_unwatch(args), **_unwatch(kwargs))


def wrap(buffer: np.ndarray, watch: BufferWatch) -> WatchedBuffer:
    """A watched view over ``buffer`` (shares memory; writes land in it)."""
    view = buffer.view(WatchedBuffer)
    view._repro_watch = watch
    return view
