"""``python -m repro.sanitizer`` — check apps (or the seeded fixtures).

Runs each named app functionally at test size under an installed
sanitizer and prints one report per app.  Exit status is 0 when every
checked app is clean, 1 otherwise — which is what the CI sanitizer-smoke
job keys on.  ``--fixtures`` instead runs the intentionally misannotated
fixture apps and exits 0 only when each produced *exactly* its expected
findings (the checker catching the seeded bugs is the passing outcome).
"""

from __future__ import annotations

import argparse
import json
import sys

from ..hardware.cluster import build_gpu_cluster, build_multi_gpu_node
from ..runtime.config import RuntimeConfig
from ..sim import Environment
from .core import Sanitizer, install
from .report import render_report

__all__ = ["main"]

APPS = ("matmul", "stream", "perlin", "nbody")


def _machine(nodes: int, gpus: int):
    if nodes > 1:
        return build_gpu_cluster(Environment(), num_nodes=nodes)
    return build_multi_gpu_node(Environment(), num_gpus=gpus)


def _check_app(name: str, nodes: int, gpus: int) -> Sanitizer:
    config = RuntimeConfig()  # functional: bodies must actually run
    machine = _machine(nodes, gpus)
    with install() as san:
        if name == "matmul":
            from ..apps.matmul import TEST_MATMUL, run_ompss
            run_ompss(machine, TEST_MATMUL, config=config)
        elif name == "stream":
            from ..apps.stream import TEST_STREAM, run_ompss
            run_ompss(machine, TEST_STREAM, config=config)
        elif name == "perlin":
            from ..apps.perlin import TEST_PERLIN, run_ompss
            run_ompss(machine, TEST_PERLIN, config=config)
        elif name == "nbody":
            from ..apps.nbody import TEST_NBODY, run_ompss
            run_ompss(machine, TEST_NBODY, config=config)
        else:
            raise SystemExit(f"unknown app {name!r} (choose from "
                             f"{', '.join(APPS)})")
    return san


def _as_json(per_target: dict[str, Sanitizer]) -> str:
    doc = {
        target: [
            {"kind": f.kind, "task": f.task, "obj": f.obj,
             "detail": f.detail, "where": f.where, "count": f.count,
             "regions": list(f.regions), "cost": f.cost}
            for f in san.findings()
        ]
        for target, san in per_target.items()
    }
    return json.dumps(doc, indent=1)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sanitizer",
        description="Dynamic annotation checker: run apps under the "
                    "sanitizer and report clause/race findings.")
    parser.add_argument("apps", nargs="*", metavar="app",
                        help=f"apps to check (default: all of "
                             f"{' '.join(APPS)})")
    parser.add_argument("--nodes", type=int, default=1,
                        help="run on an N-node GPU cluster instead of one "
                             "multi-GPU node")
    parser.add_argument("--gpus", type=int, default=2,
                        help="GPUs per node for the single-node machine")
    parser.add_argument("--fixtures", action="store_true",
                        help="check the seeded misannotated fixtures "
                             "instead of apps (exit 0 iff each yields "
                             "exactly its expected findings)")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="machine-readable findings on stdout")
    args = parser.parse_args(argv)

    per_target: dict[str, Sanitizer] = {}
    failed = False
    if args.fixtures:
        from .fixtures import EXPECTED, FIXTURES, run_fixture
        for name in FIXTURES:
            san = run_fixture(name, _machine(args.nodes, args.gpus))
            per_target[name] = san
            got = {(f.kind, f.task, f.obj) for f in san.findings()}
            ok = got == EXPECTED[name]
            failed = failed or not ok
            if not args.as_json:
                print(render_report(san.findings(), title=f"fixture {name}"))
                print(f"   expected findings {'matched' if ok else 'MISSED'}")
    else:
        for name in (args.apps or APPS):
            san = _check_app(name, args.nodes, args.gpus)
            per_target[name] = san
            failed = failed or bool(san.findings())
            if not args.as_json:
                print(render_report(san.findings(), title=name))
    if args.as_json:
        print(_as_json(per_target))
    return 1 if failed else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
