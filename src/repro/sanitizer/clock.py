"""Vector clocks over the *guaranteed* ordering of an execution.

Each task is one clock context (its ``tid``); the main program is context
0.  A component value counts synchronization epochs: for a task, how many
times its body has (re-)executed — normally 1, more after fault-mode
re-execution — and for the main context, a monotone counter bumped at
every submission, host read and taskwait.

Only orderings the *program* asked for advance clocks: dependence arcs,
submission order (parent → child), and taskwait joins.  The interleaving
the simulator happened to sample contributes nothing, which is exactly
why a race is reported even when this run produced the right answer.
"""

from __future__ import annotations

__all__ = ["VectorClock"]


class VectorClock:
    """A sparse vector clock: missing components are zero."""

    __slots__ = ("_c",)

    def __init__(self, components: dict[int, int] | None = None):
        self._c: dict[int, int] = dict(components) if components else {}

    # -- reads -------------------------------------------------------------
    def get(self, ctx: int) -> int:
        return self._c.get(ctx, 0)

    def covers(self, ctx: int, tick: int) -> bool:
        """True when this clock has observed ``ctx``'s ``tick``-th epoch."""
        return self._c.get(ctx, 0) >= tick

    def __le__(self, other: "VectorClock") -> bool:
        """Pointwise ≤: every epoch known here is known to ``other``."""
        return all(other.get(ctx) >= tick for ctx, tick in self._c.items())

    def concurrent_with(self, other: "VectorClock") -> bool:
        return not (self <= other) and not (other <= self)

    # -- updates -----------------------------------------------------------
    def copy(self) -> "VectorClock":
        return VectorClock(self._c)

    def set(self, ctx: int, tick: int) -> None:
        self._c[ctx] = tick

    def tick(self, ctx: int) -> int:
        """Advance our own component; returns the new value."""
        value = self._c.get(ctx, 0) + 1
        self._c[ctx] = value
        return value

    def join(self, other: "VectorClock") -> "VectorClock":
        """In-place pointwise max (the synchronization join); returns self."""
        mine = self._c
        for ctx, tick in other._c.items():
            if mine.get(ctx, 0) < tick:
                mine[ctx] = tick
        return self

    # -- misc --------------------------------------------------------------
    def as_dict(self) -> dict[int, int]:
        return dict(self._c)

    def __eq__(self, other) -> bool:
        if not isinstance(other, VectorClock):
            return NotImplemented
        return {k: v for k, v in self._c.items() if v} == \
               {k: v for k, v in other._c.items() if v}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        inner = ", ".join(f"{k}:{v}" for k, v in sorted(self._c.items()))
        return f"<VC {{{inner}}}>"
