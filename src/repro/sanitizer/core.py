"""The sanitizer engine: hooks, happens-before, and clause validation.

A :class:`Sanitizer` attaches to one :class:`~repro.runtime.Runtime`
(either passed explicitly or picked up from :func:`install`'s active
stack) and receives hook calls from the runtime layers:

* ``note_submit`` — runtime/submit and Image.run_children: snapshots the
  submitter's vector clock (main context or parent task);
* ``note_arc`` — the dependency graph's arc observer: provenance of every
  arc attempt ``(pred, succ, region, kind)``, including deduplicated ones;
* ``begin_task`` / ``watch`` — worker/gpu_manager resolve_args: wraps
  region buffers for one execution attempt (re-execution resets watches);
* ``note_task_finish`` — Image.finish_task;
* ``note_commit`` / ``note_stage_in`` — the coherence engine;
* ``note_taskwait`` / ``note_taskwait_on`` — the synchronization joins;
* ``note_host_read`` — api data handles (``handle.np`` / ``view.np``).

None of the hooks yields, sleeps, or touches the simulated clock: the
sanitizer is pure host-side bookkeeping, so enabling it cannot move a
single simulated timestamp (pinned by tests/sanitizer/test_no_overhead.py).

Validation (:meth:`Sanitizer.findings`) runs after the program and cross
checks three ways:

1. observed accesses vs declared clauses per task (under-declared
   reads/writes, unused clauses with an estimated makespan cost from the
   arc provenance, inout downgrades);
2. a vector-clock race check across tasks per region — only *guaranteed*
   orderings count, so a lucky interleaving does not hide a race;
3. host reads vs task writes (missing taskwait) and vs the directory
   (stale reads after a ``noflush`` taskwait).
"""

from __future__ import annotations

import inspect
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path

from .clock import VectorClock

__all__ = [
    "MAIN_CTX",
    "KINDS",
    "Finding",
    "Sanitizer",
    "install",
    "current_sanitizer",
]

#: The main program's clock context (tasks use their tid, which starts at 1).
MAIN_CTX = 0

#: Finding kinds, in severity order (races first).
KINDS = (
    "under-declared-write",
    "under-declared-read",
    "race",
    "missing-taskwait",
    "stale-host-read",
    "unused-clause",
    "over-declared-inout",
)


@dataclass
class Finding:
    """One validated annotation problem (aggregated across repeats)."""

    kind: str           # one of KINDS
    task: str           # task label, "A ~ B" for races, "<main>" for host
    obj: str            # data object name
    detail: str         # human explanation
    where: str          # source attribution, e.g. "ompss.py:41 (scale)"
    regions: tuple[str, ...] = ()   # example regions (up to 3)
    count: int = 1      # occurrences folded into this finding
    cost: float | None = None       # est. serialization cost (false deps)
    time: float | None = None       # earliest relevant simulated time

    def describe(self) -> str:
        head = f"[{self.kind}] {self.task} / {self.obj}: {self.detail}"
        bits = [f"at {self.where}"]
        if self.regions:
            bits.append("regions " + ", ".join(self.regions))
        if self.count > 1:
            bits.append(f"x{self.count}")
        if self.cost is not None:
            bits.append(f"est. cost {self.cost:.6f}s")
        return head + " (" + "; ".join(bits) + ")"


class _TaskRecord:
    """Everything the sanitizer knows about one submitted task."""

    __slots__ = (
        "task", "tid", "name", "declared", "copy_only", "submit_vc",
        "submit_time", "parent_tid", "preds", "children", "watches",
        "epoch", "start_vc", "final_vc", "start_time", "finish_time",
        "committed", "staged", "executed",
    )

    def __init__(self, task, submit_vc: VectorClock, submit_time: float,
                 parent_tid: int | None):
        self.task = task
        self.tid = task.tid
        self.name = task.name
        #: region key -> Access for dependence clauses.
        self.declared = {a.region.key: a for a in task.accesses}
        #: copy clauses with no matching dependence clause.
        self.copy_only = {c.region.key: c for c in task.copies
                          if c.region.key not in self.declared}
        self.submit_vc = submit_vc
        self.submit_time = submit_time
        self.parent_tid = parent_tid
        self.preds: set[int] = set()
        self.children: list[int] = []
        #: region key -> BufferWatch for the *latest* execution attempt.
        self.watches: dict = {}
        #: execution attempts so far (the task's clock component).
        self.epoch = 0
        self.start_vc: VectorClock | None = None
        self.final_vc: VectorClock | None = None
        self.start_time: float | None = None
        self.finish_time: float | None = None
        #: region key -> commit time (directory writes published).
        self.committed: dict = {}
        #: region keys whose input bytes were staged to the executing space.
        self.staged: set = set()
        self.executed = False

    @property
    def effective_epoch(self) -> int:
        """Epoch usable in HB queries even for never-executed tasks."""
        return max(self.epoch, 1)


@dataclass
class _HostRead:
    obj: object
    start: int
    end: int
    tick: int                    # main-context counter at the read
    snapshot: VectorClock        # main clock at the read
    time: float
    stale: list = field(default_factory=list)   # regions not host-current


def _task_source(task) -> str:
    """``file.py:line (func)`` attribution for a task's body."""
    fn = task.func
    if fn is None and task.kernel is not None:
        fn = getattr(task.kernel, "func", None)
    if fn is None:
        return "<no functional body>"
    try:
        filename = inspect.getsourcefile(fn)
        _, line = inspect.getsourcelines(fn)
        name = getattr(fn, "__name__", "?")
        return f"{Path(filename).name}:{line} ({name})"
    except (OSError, TypeError):
        return getattr(fn, "__qualname__", "<unknown>")


class Sanitizer:
    """One checking session: attach, run the program, read findings."""

    def __init__(self):
        self.rt = None
        self._records: dict[int, _TaskRecord] = {}
        self._host_reads: list[_HostRead] = []
        #: (pred tid, succ tid) -> set of (region key, arc kind) provenance.
        self._arc_prov: dict[tuple[int, int], set] = {}
        #: region key -> Region (for overlap queries and reporting).
        self._region_objs: dict = {}
        self._main_vc = VectorClock()
        self._main_counter = 0
        self._finished_unjoined: list[int] = []
        self._findings: list[Finding] | None = None

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach(self, runtime) -> None:
        if self.rt is not None and self.rt is not runtime:
            raise RuntimeError(
                "a Sanitizer checks one Runtime; build a new one per run")
        self.rt = runtime

    def _now(self) -> float:
        return self.rt.env.now if self.rt is not None else 0.0

    def _inc(self, name: str, value: int = 1) -> None:
        if self.rt is not None:
            self.rt.metrics.inc(f"sanitizer.{name}", value)

    def _remember_regions(self, task) -> None:
        for acc in (*task.accesses, *task.copies):
            self._region_objs.setdefault(acc.region.key, acc.region)

    # ------------------------------------------------------------------
    # Hooks (called by the runtime; none advances simulated time)
    # ------------------------------------------------------------------
    def note_submit(self, task, parent=None) -> None:
        """A task entered a dependency graph (master or child scope)."""
        if parent is None:
            self._main_counter += 1
            self._main_vc.set(MAIN_CTX, self._main_counter)
            vc = self._main_vc.copy()
            parent_tid = None
        else:
            prec = self._records.get(parent.tid)
            base = None
            if prec is not None:
                base = prec.start_vc or prec.submit_vc
            vc = base.copy() if base is not None else VectorClock()
            parent_tid = parent.tid
        rec = _TaskRecord(task, vc, self._now(), parent_tid)
        self._records[task.tid] = rec
        if parent_tid is not None and parent_tid in self._records:
            self._records[parent_tid].children.append(task.tid)
        self._remember_regions(task)
        self._inc("tasks_tracked")

    def note_arc(self, pred, succ, region, kind: str, created: bool) -> None:
        """Arc observer: every attempt, deduplicated arcs included, so a
        multi-region arc's provenance names every contributing clause."""
        self._arc_prov.setdefault((pred.tid, succ.tid), set()).add(
            (region.key, kind))
        srec = self._records.get(succ.tid)
        if srec is not None and pred.tid in self._records:
            srec.preds.add(pred.tid)
        if created:
            self._inc("arcs_observed")

    def begin_task(self, task) -> _TaskRecord:
        """One execution attempt starts: reset watches, bump the epoch."""
        rec = self._records.get(task.tid)
        if rec is None:
            # Defensive: a task executed without passing through submit
            # hooks (hand-built graphs in tests) still gets a record.
            rec = _TaskRecord(task, self._main_vc.copy(), self._now(), None)
            self._records[task.tid] = rec
            self._remember_regions(task)
        rec.epoch += 1
        rec.watches = {}
        rec.executed = True
        rec.start_time = self._now()
        vc = rec.submit_vc.copy()
        for ptid in rec.preds:
            prec = self._records.get(ptid)
            if prec is not None:
                vc.join(self._final(prec))
        vc.set(rec.tid, rec.epoch)
        rec.start_vc = vc
        rec.final_vc = None
        self._inc("tasks_instrumented")
        return rec

    def watch_buffer(self, rec: _TaskRecord, region, buffer):
        """Wrap one resolved region buffer for ``rec``'s current attempt."""
        from .recorder import BufferWatch, wrap

        w = rec.watches.get(region.key)
        if w is None:
            acc = rec.declared.get(region.key)
            w = BufferWatch(region, acc.direction if acc else None)
            rec.watches[region.key] = w
            self._inc("buffers_watched")
        self._region_objs.setdefault(region.key, region)
        return wrap(buffer, w)

    def note_task_finish(self, task) -> None:
        rec = self._records.get(task.tid)
        if rec is None or rec.finish_time is not None:
            return
        rec.finish_time = self._now()
        self._finished_unjoined.append(rec.tid)

    def note_commit(self, task, region, time: float) -> None:
        rec = self._records.get(task.tid)
        if rec is not None:
            rec.committed[region.key] = time
        self._region_objs.setdefault(region.key, region)
        self._inc("commits_recorded")

    def note_stage_in(self, task, region) -> None:
        rec = self._records.get(task.tid)
        if rec is not None:
            rec.staged.add(region.key)

    def note_taskwait(self) -> None:
        """A full taskwait: join every finished task into the main clock."""
        for tid in self._finished_unjoined:
            rec = self._records.get(tid)
            if rec is not None:
                self._main_vc.join(self._final(rec))
        self._finished_unjoined = []
        self._main_counter += 1
        self._main_vc.set(MAIN_CTX, self._main_counter)
        self._inc("taskwaits")

    def note_taskwait_on(self, regions) -> None:
        """``taskwait on(...)``: join the (transitive) producers of the
        named regions — every finished task that wrote an overlapping
        region is guaranteed complete by the construct's contract."""
        targets = [(r.obj.oid, r.start, r.end) for r in regions]
        for rec in self._records.values():
            if rec.finish_time is None:
                continue
            if self._writes_overlapping(rec, targets):
                self._main_vc.join(self._final(rec))
        self._main_counter += 1
        self._main_vc.set(MAIN_CTX, self._main_counter)
        self._inc("taskwaits_on")

    def note_host_read(self, obj, start: int, end: int) -> None:
        """The program read canonical host data (``handle.np``)."""
        self._main_counter += 1
        self._main_vc.set(MAIN_CTX, self._main_counter)
        stale = []
        if self.rt is not None:
            directory = self.rt.directory
            home = self.rt.master_host
            for key, region in self._region_objs.items():
                if (key[0] == obj.oid and region.start < end
                        and region.end > start):
                    # Peek without creating an entry: lazily materializing
                    # directory state from a read-only check would perturb
                    # the run being observed.
                    ent = directory._entries.get(key)
                    if ent is not None and home not in ent.holders:
                        stale.append(region)
        self._host_reads.append(_HostRead(
            obj, start, end, tick=self._main_counter,
            snapshot=self._main_vc.copy(), time=self._now(), stale=stale))
        self._inc("host_reads")

    # ------------------------------------------------------------------
    # Happens-before machinery
    # ------------------------------------------------------------------
    def _final(self, rec: _TaskRecord) -> VectorClock:
        """``rec``'s completion clock: submit ⊔ preds' finals ⊔ children's
        finals, with its own component at its epoch (memoized)."""
        if rec.final_vc is not None:
            return rec.final_vc
        todo: dict[int, _TaskRecord] = {}
        stack = [rec]
        while stack:
            r = stack.pop()
            if r.final_vc is not None or r.tid in todo:
                continue
            todo[r.tid] = r
            for tid in (*r.preds, *r.children):
                dep = self._records.get(tid)
                if dep is not None and dep.final_vc is None:
                    stack.append(dep)
        # Resolve in dependency order (the graph is a DAG; the fixpoint
        # loop needs at most longest-chain passes over the pending set).
        while todo:
            progressed = False
            for tid in list(todo):
                r = todo[tid]
                deps = [self._records[t] for t in (*r.preds, *r.children)
                        if t in self._records and t != tid]
                if any(d.final_vc is None for d in deps):
                    continue
                vc = r.submit_vc.copy()
                for d in deps:
                    vc.join(d.final_vc)
                vc.set(r.tid, r.effective_epoch)
                if r.start_vc is None:
                    r.start_vc = vc.copy()
                r.final_vc = vc
                del todo[tid]
                progressed = True
            if not progressed:  # pragma: no cover - DAG invariant broken
                for r in todo.values():
                    vc = r.submit_vc.copy()
                    vc.set(r.tid, r.effective_epoch)
                    r.final_vc = vc
                    if r.start_vc is None:
                        r.start_vc = vc.copy()
                break
        return rec.final_vc

    def _start(self, rec: _TaskRecord) -> VectorClock:
        if rec.start_vc is None:
            self._final(rec)
        return rec.start_vc

    def _ordered(self, a: _TaskRecord, b: _TaskRecord) -> bool:
        """True when a happens-before edge orders ``a`` and ``b``.

        Uses each side's *start* clock against the other's epoch — a
        task's accesses happen between start and finish, so ``a`` precedes
        ``b`` iff ``b`` started having observed ``a``'s completion."""
        return (self._start(b).covers(a.tid, a.effective_epoch)
                or self._start(a).covers(b.tid, b.effective_epoch))

    @staticmethod
    def _overlaps(region, targets) -> bool:
        return any(region.obj.oid == oid and region.start < end
                   and region.end > start
                   for oid, start, end in targets)

    def _writes_overlapping(self, rec: _TaskRecord, targets) -> bool:
        for key, acc in rec.declared.items():
            if acc.direction.writes and self._overlaps(acc.region, targets):
                return True
        for key in rec.committed:
            region = self._region_objs.get(key)
            if region is not None and self._overlaps(region, targets):
                return True
        for key, w in rec.watches.items():
            if w.writes and self._overlaps(w.region, targets):
                return True
        return False

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def findings(self) -> list[Finding]:
        """Validate and return the aggregated findings (memoized)."""
        if self._findings is None:
            self._findings = self._validate()
            self._publish(self._findings)
        return self._findings

    def _publish(self, findings: list[Finding]) -> None:
        """Mirror findings into the metrics registry and the trace."""
        if self.rt is None:
            return
        total = 0
        for f in findings:
            self.rt.metrics.inc(f"sanitizer.findings.{f.kind}", f.count)
            total += f.count
        self.rt.metrics.set_gauge("sanitizer.findings", total)
        tracer = self.rt.tracer
        if tracer is not None:
            for f in findings:
                at = f.time if f.time is not None else self.rt.env.now
                tracer.record("sanitizer", f"{f.kind}:{f.task}/{f.obj}",
                              "sanitizer", at, at)

    def _validate(self) -> list[Finding]:
        sink: dict[tuple, Finding] = {}

        def add(kind, task_label, obj_name, detail, where,
                region=None, cost=None, time=None):
            key = (kind, task_label, obj_name, detail)
            f = sink.get(key)
            if f is None:
                sink[key] = Finding(
                    kind=kind, task=task_label, obj=obj_name, detail=detail,
                    where=where,
                    regions=(repr(region),) if region is not None else (),
                    cost=cost, time=time)
                return
            f.count += 1
            if region is not None and len(f.regions) < 3:
                rr = repr(region)
                if rr not in f.regions:
                    f.regions = f.regions + (rr,)
            if cost is not None:
                f.cost = (f.cost or 0.0) + cost
            if time is not None and (f.time is None or time < f.time):
                f.time = time

        self._check_clause_usage(add)
        self._check_races(add)
        self._check_host_reads(add)

        order = {k: i for i, k in enumerate(KINDS)}
        return sorted(sink.values(),
                      key=lambda f: (order.get(f.kind, 99), f.task, f.obj))

    # -- pass 1: observed accesses vs declared clauses ---------------------
    def _check_clause_usage(self, add) -> None:
        for rec in self._records.values():
            if not rec.executed:
                continue
            where = _task_source(rec.task)
            for key, acc in rec.declared.items():
                w = rec.watches.get(key)
                if w is None:
                    continue  # buffer never resolved (no functional body)
                d = acc.direction
                obj = acc.region.obj.name
                if d.reads and d.writes:           # inout
                    if not w.touched:
                        cost = self._false_dep_cost(rec, key)
                        add("unused-clause", rec.name, obj,
                            "inout region never touched by the body — "
                            "the dependence only serializes", where,
                            region=acc.region, cost=cost,
                            time=rec.start_time)
                    elif not w.writes:
                        add("over-declared-inout", rec.name, obj,
                            "inout region only read — declare input to "
                            "unlock WAR/WAW parallelism", where,
                            region=acc.region, time=rec.start_time)
                    elif not w.reads:
                        add("over-declared-inout", rec.name, obj,
                            "inout region only written — declare output "
                            "to drop the stale-input fetch", where,
                            region=acc.region, time=rec.start_time)
                elif d.writes:                     # output
                    if w.first == "read":
                        add("under-declared-read", rec.name, obj,
                            "output region read before first write — the "
                            "body consumes bytes no dependence protects",
                            where, region=acc.region, time=rec.start_time)
                    if not w.writes:
                        cost = self._false_dep_cost(rec, key)
                        add("unused-clause", rec.name, obj,
                            "output region never written — successors "
                            "consume whatever was there before", where,
                            region=acc.region, cost=cost,
                            time=rec.start_time)
                else:                              # input
                    if w.writes:
                        add("under-declared-write", rec.name, obj,
                            "body writes an input-declared region — a "
                            "data race with any concurrent reader", where,
                            region=acc.region, time=rec.start_time)
                    elif not w.reads:
                        cost = self._false_dep_cost(rec, key)
                        detail = ("input region never read — the RAW "
                                  "dependence only serializes")
                        if key in rec.staged:
                            detail += (" (and its transfer to the "
                                       "executing space was wasted)")
                        add("unused-clause", rec.name, obj, detail, where,
                            region=acc.region, cost=cost,
                            time=rec.start_time)
            for key, acc in rec.copy_only.items():
                w = rec.watches.get(key)
                if w is None or not w.touched:
                    continue
                kind = ("under-declared-write" if w.writes
                        else "under-declared-read")
                add(kind, rec.name, acc.region.obj.name,
                    "copy-clause region accessed with no dependence "
                    "clause — nothing orders this against other tasks",
                    where, region=acc.region, time=rec.start_time)

    def _false_dep_cost(self, rec: _TaskRecord, key) -> float:
        """Estimated serialization cost of the arcs owed solely to
        ``rec``'s clause on region ``key`` (a lower-bound estimate: how
        long each successor sat waiting past its other obligations)."""
        total = 0.0
        for (ptid, stid), prov in self._arc_prov.items():
            if rec.tid not in (ptid, stid):
                continue
            if any(k != key for (k, _kind) in prov):
                continue  # the arc has another, legitimate reason
            pred = self._records.get(ptid)
            succ = self._records.get(stid)
            if pred is None or succ is None or pred.finish_time is None:
                continue
            floor = succ.submit_time
            for other in succ.preds:
                if other == ptid:
                    continue
                orec = self._records.get(other)
                if orec is not None and orec.finish_time is not None:
                    floor = max(floor, orec.finish_time)
            total += max(0.0, pred.finish_time - floor)
        return total

    # -- pass 2: vector-clock races across tasks ---------------------------
    def _check_races(self, add) -> None:
        by_region: dict[tuple, list] = {}
        for rec in self._records.values():
            keys = set(rec.watches) | set(rec.committed)
            for key in keys:
                w = rec.watches.get(key)
                read = w is not None and w.reads > 0
                wrote = ((w is not None and w.writes > 0)
                         or key in rec.committed)
                if read or wrote:
                    by_region.setdefault(key, []).append((rec, wrote))
        for key, events in by_region.items():
            if len(events) < 2:
                continue
            region = self._region_objs.get(key)
            obj_name = region.obj.name if region is not None else str(key)
            for i in range(len(events)):
                a, a_wrote = events[i]
                for j in range(i + 1, len(events)):
                    b, b_wrote = events[j]
                    if not (a_wrote or b_wrote) or a.tid == b.tid:
                        continue
                    if self._ordered(a, b):
                        continue
                    first, second = sorted((a, b), key=lambda r: r.tid)
                    times = [t for t in (a.start_time, b.start_time)
                             if t is not None]
                    add("race", f"{first.name} ~ {second.name}", obj_name,
                        "unordered accesses, at least one a write — no "
                        "dependence or taskwait separates these tasks",
                        _task_source(first.task), region=region,
                        time=min(times) if times else None)

    # -- pass 3: host reads vs task writes and the directory ---------------
    def _check_host_reads(self, add) -> None:
        for hr in self._host_reads:
            targets = [(hr.obj.oid, hr.start, hr.end)]
            hazard = False
            for rec in self._records.values():
                if not self._writes_overlapping(rec, targets):
                    continue
                after = hr.snapshot.covers(rec.tid, rec.effective_epoch)
                before = rec.submit_vc.get(MAIN_CTX) >= hr.tick
                if not after and not before:
                    hazard = True
                    add("missing-taskwait", rec.name, hr.obj.name,
                        "host code reads data a submitted task writes, "
                        "with no taskwait between — add taskwait (or "
                        "taskwait on the region)", _task_source(rec.task),
                        time=hr.time)
            if hazard:
                continue  # the ordering bug subsumes the staleness
            for region in hr.stale:
                add("stale-host-read", "<main>", hr.obj.name,
                    "host read after a noflush taskwait while the "
                    "canonical copy lives on a device — flush first",
                    "<main program>", region=region, time=hr.time)


# ----------------------------------------------------------------------
# Installation (how Program/Runtime find the active sanitizer)
# ----------------------------------------------------------------------
_ACTIVE: list[Sanitizer] = []


def current_sanitizer() -> Sanitizer | None:
    """The innermost installed sanitizer, or None."""
    return _ACTIVE[-1] if _ACTIVE else None


@contextmanager
def install(sanitizer: Sanitizer | None = None):
    """Context manager: runtimes built inside pick up the sanitizer.

    ::

        with install() as san:
            prog = Program(machine, config)
            prog.run(main(prog))
        report(san.findings())
    """
    san = sanitizer if sanitizer is not None else Sanitizer()
    _ACTIVE.append(san)
    try:
        yield san
    finally:
        _ACTIVE.remove(san)
