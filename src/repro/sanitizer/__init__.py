"""Annotation sanitizer: dynamic race & false-dependency detection.

The runtime trusts ``input``/``output``/``inout`` clauses blindly — an
under-declared access is a silent data race and an over-declared one is
silent serialization.  This package observes what task bodies *actually*
do to their region buffers (functional mode), builds a happens-before
relation from the guarantees the program asked for (dependence arcs,
submission order, taskwait joins — *not* the sampled interleaving), and
cross-checks both against the declared clauses.

Usage (see docs/SANITIZER.md for the full guide)::

    from repro.sanitizer import install

    with install() as san:
        prog = Program(machine, config)     # picks up the sanitizer
        prog.run(main(prog))
    for finding in san.findings():
        print(finding.describe())

Or from the command line::

    python -m repro.sanitizer matmul stream perlin nbody

Every runtime hook is gated on ``Runtime.sanitizer is None`` and no hook
ever advances the simulated clock, so disabled runs execute the exact
instruction stream they always did and enabled runs keep makespans
bit-identical (tests/sanitizer/test_no_overhead.py pins both).
"""

from .clock import VectorClock
from .core import (
    KINDS,
    MAIN_CTX,
    Finding,
    Sanitizer,
    current_sanitizer,
    install,
)
from .recorder import BufferWatch, WatchedBuffer, wrap
from .report import render_report

__all__ = [
    "VectorClock",
    "BufferWatch",
    "WatchedBuffer",
    "wrap",
    "Finding",
    "Sanitizer",
    "KINDS",
    "MAIN_CTX",
    "install",
    "current_sanitizer",
    "render_report",
]
