"""Intentionally misannotated mini-apps: the sanitizer's regression prey.

Each fixture seeds exactly one class of annotation bug from the issue's
taxonomy and runs a tiny program under :func:`~repro.sanitizer.install`;
``EXPECTED`` records the exact ``(kind, task, obj)`` triples each fixture
must produce (and nothing else), which both the unit tests and the CI
sanitizer-smoke job assert against.

These are *fixtures*, not examples — the annotation style here is wrong
on purpose.  docs/SANITIZER.md shows the corrected versions.
"""

from __future__ import annotations

import numpy as np

from ..api import Program, task
from ..hardware.cluster import Machine, build_multi_gpu_node
from ..runtime.config import RuntimeConfig
from ..sim import Environment
from .core import Sanitizer, install

__all__ = ["FIXTURES", "EXPECTED", "run_fixture"]


# ----------------------------------------------------------------------
# Fixture 1: under-declared write (and the race it creates)
# ----------------------------------------------------------------------
@task(inputs=("src",), outputs=("dst",), cost=1e-3, label="leaky_scale")
def leaky_scale(src, dst, n):
    dst[:] = 2.0 * src
    src[:] = 0.0          # BUG: writes a region declared input


@task(inputs=("src",), cost=1e-3, label="reader")
def reader(src, n):
    float(src.sum())      # a pure read of the same region


def _fixture_under_declared_write(machine: Machine) -> Sanitizer:
    """``leaky_scale`` scribbles over its input while ``reader`` runs
    concurrently: an under-declared write *and* the race it implies."""
    with install() as san:
        prog = Program(machine, RuntimeConfig())
        a = prog.array("a", 64)
        b = prog.array("b", 64)

        def main():
            leaky_scale(a[0:64], b[0:64], 64)
            reader(a[0:64], 64)
            yield from prog.taskwait()

        prog.run(main())
    return san


# ----------------------------------------------------------------------
# Fixture 2: unused inout clause (a false dependency with a price)
# ----------------------------------------------------------------------
@task(outputs=("data",), cost=1e-3, label="produce")
def produce(data, n):
    data[:] = np.arange(n, dtype=np.float32)


@task(inputs=("data",), inouts=("extra",), cost=1e-3, label="consume")
def consume(data, extra, n):
    float(data.sum())     # BUG: `extra` is declared inout but never touched


@task(outputs=("extra",), cost=1e-3, label="write_extra")
def write_extra(extra, n):
    extra[:] = 1.0


def _fixture_unused_inout(machine: Machine) -> Sanitizer:
    """``consume`` declares ``inout(extra)`` it never touches, so
    ``write_extra`` serializes behind it for no reason — the finding
    carries the estimated makespan cost of that false WAW arc."""
    with install() as san:
        prog = Program(machine, RuntimeConfig())
        data = prog.array("data", 64)
        extra = prog.array("extra", 64)

        def main():
            produce(data[0:64], 64)
            consume(data[0:64], extra[0:64], 64)
            write_extra(extra[0:64], 64)
            yield from prog.taskwait()

        prog.run(main())
    return san


# ----------------------------------------------------------------------
# Fixture 3: missing taskwait before a host read
# ----------------------------------------------------------------------
@task(outputs=("out",), cost=1e-3, label="writer")
def writer(out, n):
    out[:] = 7.0


def _fixture_missing_taskwait(machine: Machine) -> Sanitizer:
    """The host reads ``c.np`` right after submitting ``writer`` — the
    sampled schedule may even produce the right bytes, but no taskwait
    orders the read after the write."""
    with install() as san:
        prog = Program(machine, RuntimeConfig())
        c = prog.array("c", 64)

        def main():
            writer(c[0:64], 64)
            float(c.np.sum())         # BUG: no taskwait before this read
            yield from prog.taskwait()
            float(c.np.sum())         # fine: synchronized and flushed

        prog.run(main())
    return san


#: fixture name -> runner(machine) -> Sanitizer
FIXTURES = {
    "under-declared-write": _fixture_under_declared_write,
    "unused-inout": _fixture_unused_inout,
    "missing-taskwait": _fixture_missing_taskwait,
}

#: fixture name -> the exact (kind, task, obj) triples it must yield.
EXPECTED = {
    "under-declared-write": {
        ("under-declared-write", "leaky_scale", "a"),
        ("race", "leaky_scale ~ reader", "a"),
    },
    "unused-inout": {
        ("unused-clause", "consume", "extra"),
    },
    "missing-taskwait": {
        ("missing-taskwait", "writer", "c"),
    },
}


def run_fixture(name: str, machine: Machine | None = None) -> Sanitizer:
    """Run one fixture; returns its (validated) sanitizer."""
    if machine is None:
        machine = build_multi_gpu_node(Environment(), num_gpus=1)
    return FIXTURES[name](machine)
