"""Entry point: ``python -m repro.sanitizer [apps...]``."""

import sys

from .cli import main

sys.exit(main())
