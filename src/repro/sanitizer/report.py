"""Plain-text rendering of sanitizer findings (the CLI's output)."""

from __future__ import annotations

from .core import Finding

__all__ = ["render_report"]


def render_report(findings: list[Finding], title: str = "sanitizer") -> str:
    """A human-readable report; one block per finding, races first."""
    lines = [f"== {title}: "
             + (f"{sum(f.count for f in findings)} finding(s) "
                f"in {len(findings)} group(s) =="
                if findings else "clean (no findings) ==")]
    for f in findings:
        lines.append(f"  {f.describe()}")
    return "\n".join(lines)
