"""Seeded DAG fuzzing + differential testing of the whole runtime.

The scenario-diversity layer (ROADMAP item 3): a seed-deterministic
random task-graph generator with named profiles, a sequential
differential oracle demanding bit-identical buffers under every
scheduler / cache policy / datamove configuration, mutation modes that
re-introduce known bug classes to prove the oracle catches them, and a
greedy shrinker that turns a failing seed into a minimal reproducer.

See docs/DAGFUZZ.md for the guide and ``python -m repro.dagfuzz`` for
the driver.
"""

from .generator import generate
from .mutations import MISANNOTATIONS, MUTATIONS, misannotate
from .profiles import PROFILES, FuzzProfile
from .runner import (
    MACHINES,
    CheckResult,
    check_workload,
    expected_arrays,
    run_workload,
    sequential_reference,
)
from .shrink import shrink, shrink_trace
from .spec import MODULUS, OpSpec, WorkloadSpec, task_count

__all__ = [
    "generate",
    "FuzzProfile",
    "PROFILES",
    "OpSpec",
    "WorkloadSpec",
    "task_count",
    "MODULUS",
    "MACHINES",
    "CheckResult",
    "check_workload",
    "run_workload",
    "sequential_reference",
    "expected_arrays",
    "MUTATIONS",
    "MISANNOTATIONS",
    "misannotate",
    "shrink",
    "shrink_trace",
]
