"""``python -m repro.dagfuzz`` — the differential fuzzing driver.

Runs seed ranges through the full runtime stack across schedulers x
cache policies x datamove flag sets, checks every run against the
sequential oracle, and on failure prints a one-line replay command,
then greedily shrinks the workload to a minimal reproducer.

Matrix shape: ``--schedulers`` multiplies (every named policy runs for
every seed); the cache policy, machine and datamove dimensions *rotate*
per seed by default (seed i covers one point of each), so a seed range
sweeps the whole space without a combinatorial blowup.  Naming them
explicitly (``--cache-policies wt,wb``) switches that dimension to a
full cross product.

Typical invocations::

    python -m repro.dagfuzz --seeds 0:50 --schedulers all       # smoke
    python -m repro.dagfuzz --seeds 0:500 --profile all \\
        --schedulers all --cache-policies nocache,wt,wb \\
        --machines gpu1,gpu2,gpu4,cluster2 --datamove both      # long run
    python -m repro.dagfuzz --replay 1234 --profile deep \\
        --schedulers cp --cache-policies wb --machines gpu2     # one seed
    python -m repro.dagfuzz --seeds 0:30 --mutate drop_arc      # self-test
"""

from __future__ import annotations

import argparse
import sys

from ..runtime.config import SCHEDULERS, RuntimeConfig
from .generator import generate
from .mutations import MUTATIONS
from .profiles import PROFILES
from .runner import MACHINES, check_workload
from .shrink import shrink_trace
from .spec import task_count

__all__ = ["main", "replay_command"]

_CACHES = ("wb", "wt", "nocache")
#: datamove flag sets: off = layer absent, on = every mechanism armed.
_DATAMOVE = {
    "off": {},
    "on": dict(wb_elision=True, coalescing=True, cost_aware_eviction=True,
               presend_depth=1),
}


def _csv(value: str, universe, what: str):
    if value == "all":
        return tuple(universe)
    names = tuple(v.strip() for v in value.split(",") if v.strip())
    for name in names:
        if name not in universe:
            raise SystemExit(f"unknown {what} {name!r}; "
                             f"expected one of {', '.join(universe)}")
    return names


def replay_command(seed: int, profile: str, scheduler: str, cache: str,
                   machine: str, datamove: str, mutate=None) -> str:
    cmd = (f"python -m repro.dagfuzz --replay {seed} --profile {profile} "
           f"--schedulers {scheduler} --cache-policies {cache} "
           f"--machines {machine} --datamove {datamove}")
    if mutate:
        cmd += f" --mutate {mutate}"
    return cmd


def _configs(args):
    """The (scheduler, cache, machine, datamove) matrix per seed index."""
    schedulers = _csv(args.schedulers, SCHEDULERS, "scheduler")
    caches = (_csv(args.cache_policies, _CACHES, "cache policy")
              if args.cache_policies else None)
    machines = (_csv(args.machines, MACHINES, "machine")
                if args.machines else None)
    dm_modes = {"off": ("off",), "on": ("on",),
                "both": ("off", "on")}[args.datamove]

    def for_seed(i: int):
        cs = caches if caches else (_CACHES[i % len(_CACHES)],)
        ms = machines if machines else (("gpu1", "gpu2", "gpu4",
                                         "cluster2")[i % 4],)
        ds = dm_modes if args.datamove == "both" or caches or machines \
            else (dm_modes[i % len(dm_modes)],)
        for sched in schedulers:
            for cache in cs:
                for m in ms:
                    for dm in ds:
                        yield sched, cache, m, dm
    return for_seed


def _check(spec, sched, cache, machine, dm, mutate):
    cfg = RuntimeConfig(functional=True, scheduler=sched,
                        cache_policy=cache, **_DATAMOVE[dm])
    return check_workload(spec, machine=machine, config=cfg, mutate=mutate)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.dagfuzz",
        description="Differential fuzzing of the OmpSs runtime "
                    "reproduction (see docs/DAGFUZZ.md).")
    parser.add_argument("--seeds", default="0:20", metavar="A:B",
                        help="half-open seed range (default 0:20)")
    parser.add_argument("--replay", type=int, metavar="SEED",
                        help="run exactly one seed (overrides --seeds)")
    parser.add_argument("--profile", default="default",
                        help="profile name or 'all' "
                             f"({', '.join(PROFILES)})")
    parser.add_argument("--schedulers", default="all",
                        help="comma list or 'all' "
                             f"({', '.join(SCHEDULERS)})")
    parser.add_argument("--cache-policies", default=None,
                        help="comma list or 'all' (default: rotate per "
                             "seed)")
    parser.add_argument("--machines", default=None,
                        help="comma list or 'all' (default: rotate per "
                             "seed)")
    parser.add_argument("--datamove", default="off",
                        choices=("off", "on", "both"),
                        help="datamove optimisation flags (default off)")
    parser.add_argument("--mutate", default=None, choices=sorted(MUTATIONS),
                        help="inject a known bug class (self-test: runs "
                             "are expected to FAIL)")
    parser.add_argument("--no-shrink", action="store_true",
                        help="report failures without minimizing them")
    parser.add_argument("--list-profiles", action="store_true")
    args = parser.parse_args(argv)

    if args.list_profiles:
        for name, prof in PROFILES.items():
            print(f"{name:10s} ops={prof.ops} objects={prof.objects} "
                  f"nested={prof.p_nested:g} cuda={prof.p_cuda:g} "
                  f"inout={prof.p_inout:g} waits={prof.p_wait_on:g}")
        return 0

    if args.replay is not None:
        seeds = [args.replay]
    else:
        try:
            lo, hi = (int(p) for p in args.seeds.split(":"))
        except ValueError:
            raise SystemExit(f"bad --seeds {args.seeds!r}; expected A:B")
        seeds = list(range(lo, hi))
    profiles = (list(PROFILES) if args.profile == "all"
                else list(_csv(args.profile, PROFILES, "profile")))
    for_seed = _configs(args)

    runs = failures = 0
    first_failure = None
    for seed in seeds:
        for profile in profiles:
            spec = generate(seed, profile)
            for sched, cache, machine, dm in for_seed(seed):
                res = _check(spec, sched, cache, machine, dm, args.mutate)
                runs += 1
                if res.ok:
                    continue
                failures += 1
                print(f"FAIL seed={seed} profile={profile} "
                      f"scheduler={sched} cache={cache} machine={machine} "
                      f"datamove={dm}"
                      + (f" mutate={args.mutate}" if args.mutate else ""))
                print(f"  {res.describe()}")
                print("  replay: " + replay_command(
                    seed, profile, sched, cache, machine, dm, args.mutate))
                if first_failure is None:
                    first_failure = (spec, sched, cache, machine, dm)

    if failures and not args.no_shrink:
        spec, sched, cache, machine, dm = first_failure
        small, (before, after) = shrink_trace(
            spec, lambda s: not _check(s, sched, cache, machine, dm,
                                       args.mutate).ok)
        print(f"shrunk first failure: {before} -> {after} task(s)")
        for i, op in enumerate(small.ops):
            print(f"  op{i}: {op}")

    word = "mutated run(s)" if args.mutate else "run(s)"
    print(f"dagfuzz: {runs} {word}, {failures} failure(s), "
          f"{len(seeds)} seed(s), profiles={','.join(profiles)}")
    return 1 if failures else 0


if __name__ == "__main__":                        # pragma: no cover
    sys.exit(main())
