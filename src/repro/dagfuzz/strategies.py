"""Hypothesis strategies over fuzzed workloads and runtime configs.

The property suites draw whole :class:`WorkloadSpec` objects (via the
seed-deterministic generator, so Hypothesis shrinks the *seed* and the
dagfuzz shrinker handles structure) plus configurations spanning every
scheduler, cache policy and the datamove flag set.
"""

from __future__ import annotations

from hypothesis import strategies as st

from ..runtime.config import SCHEDULERS
from .generator import generate
from .profiles import PROFILES
from .runner import MACHINES

__all__ = ["workload_specs", "runtime_config_kwargs", "machine_names"]

#: profiles the property tests cycle through (all but the sanitizer
#: baseline — "clean" only restricts the mix).
PROPERTY_PROFILES = tuple(n for n in PROFILES if n != "clean")


def workload_specs(profiles: "tuple[str, ...]" = PROPERTY_PROFILES,
                   max_seed: int = 10_000):
    """Strategy yielding generated WorkloadSpecs (seed + profile draws)."""
    return st.builds(
        lambda seed, profile: generate(seed, profile),
        st.integers(min_value=0, max_value=max_seed),
        st.sampled_from(profiles),
    )


def runtime_config_kwargs():
    """Strategy over RuntimeConfig kwargs: schedulers x caches x datamove."""
    return st.fixed_dictionaries({
        "scheduler": st.sampled_from(SCHEDULERS),
        "cache_policy": st.sampled_from(["nocache", "wt", "wb"]),
        "overlap": st.booleans(),
        "prefetch": st.booleans(),
        "wb_elision": st.booleans(),
        "coalescing": st.booleans(),
        "cost_aware_eviction": st.booleans(),
    })


def machine_names():
    return st.sampled_from(MACHINES)
