"""Greedy spec minimization: from a failing seed to a minimal reproducer.

Classic delta debugging over the op list (ddmin: try dropping halves,
then quarters, ... then single ops) followed by per-op structural
simplifications (drop children, drop inputs, drop unused clauses, clear
waits, cuda -> smp), iterated to a fixpoint.  The predicate — "does this
candidate still fail?" — is re-evaluated from scratch on every candidate,
so the result is guaranteed to still reproduce the failure; nothing about
*why* the original failed is assumed.

Every interpreter of a spec tolerates unreferenced regions and objects,
so dropping ops never invalidates the region table.
"""

from __future__ import annotations

from typing import Callable

from .spec import OpSpec, WorkloadSpec, task_count

__all__ = ["shrink", "shrink_trace"]


def _with_ops(spec: WorkloadSpec, ops) -> WorkloadSpec:
    return spec.replaced(ops=tuple(ops))


def _ddmin_ops(spec: WorkloadSpec, failing) -> WorkloadSpec:
    """Minimize the top-level op list (standard ddmin over sublists)."""
    ops = list(spec.ops)
    granularity = 2
    while len(ops) >= 2:
        chunk = max(1, len(ops) // granularity)
        shrunk = False
        start = 0
        while start < len(ops):
            candidate = ops[:start] + ops[start + chunk:]
            if candidate and failing(_with_ops(spec, candidate)):
                ops = candidate
                shrunk = True          # stay at this granularity
            else:
                start += chunk
        if shrunk:
            granularity = max(granularity - 1, 2)
        elif chunk == 1:
            break
        else:
            granularity = min(granularity * 2, len(ops))
    return _with_ops(spec, ops)


def _op_simplifications(op: OpSpec):
    """Strictly-simpler variants of one op, most aggressive first."""
    if op.children:
        yield _replace(op, children=())
    if op.unused:
        yield _replace(op, unused=())
    for i in range(len(op.ins)):
        yield _replace(op, ins=op.ins[:i] + op.ins[i + 1:])
    if op.wait_after is not None:
        yield _replace(op, wait_after=None)
    if op.inout:
        yield _replace(op, inout=False)
    if op.device == "cuda":
        yield _replace(op, device="smp")
    for i, child in enumerate(op.children):
        yield _replace(op, children=op.children[:i] + op.children[i + 1:])


def _replace(op: OpSpec, **changes) -> OpSpec:
    from dataclasses import replace
    return replace(op, **changes)


def _simplify_ops(spec: WorkloadSpec, failing) -> WorkloadSpec:
    """One pass of per-op simplification; returns the improved spec."""
    ops = list(spec.ops)
    for i in range(len(ops)):
        improved = True
        while improved:
            improved = False
            for variant in _op_simplifications(ops[i]):
                candidate = _with_ops(spec, ops[:i] + [variant]
                                      + ops[i + 1:])
                if failing(candidate):
                    ops[i] = variant
                    spec = candidate
                    improved = True
                    break
    return spec


def shrink(spec: WorkloadSpec,
           failing: "Callable[[WorkloadSpec], bool]",
           max_rounds: int = 8) -> WorkloadSpec:
    """Smallest spec (by task count) that still satisfies ``failing``.

    ``failing(spec)`` must be True for the input spec — shrinking a
    passing spec is a caller bug and raises immediately.
    """
    if not failing(spec):
        raise ValueError("shrink() needs a failing spec to start from")
    for _ in range(max_rounds):
        before = task_count(spec)
        spec = _ddmin_ops(spec, failing)
        spec = _simplify_ops(spec, failing)
        if task_count(spec) >= before:
            break
    return spec


def shrink_trace(spec: WorkloadSpec, failing, **kwargs):
    """shrink() plus a (before, after) task-count pair for reporting."""
    before = task_count(spec)
    small = shrink(spec, failing, **kwargs)
    return small, (before, task_count(small))
