"""Known-bug-class injectors: the fuzzer's self-test.

A fuzzer that has never caught a bug proves nothing.  Each mutation here
re-introduces one classic runtime bug for the duration of a ``with``
block, by patching the one chokepoint that implements the corresponding
guarantee:

``drop_arc``
    The dependency graph silently drops the first read-after-write arc it
    would otherwise create — the classic lost-dependence bug.  The reader
    can now run before (or concurrently with) its producer.
``stale_cache_read``
    ``Directory.record_write`` stops invalidating other replicas: a write
    bumps the version but every old holder still looks current, so later
    reads (and the final flush) may be sourced from a stale copy — the
    classic missing-invalidation coherence bug.
``skip_writeback``
    Transfers into *canonical* host memory are silently dropped
    (``HostSpace.write`` no-ops) while the directory still records them
    as done — the classic skipped / lost write-back.  Device-resident
    results never reach the master's memory.

All three are deterministic (no randomness, no wall clock), so a seed
that exposes a mutation exposes it on every run — which is what lets the
shrinker re-evaluate candidates reliably.
"""

from __future__ import annotations

import random
from contextlib import contextmanager

from ..memory.directory import Directory
from ..memory.space import HostSpace
from ..runtime.dependences import DependencyGraph
from ..runtime.task import TaskState
from .spec import OpSpec, WorkloadSpec

__all__ = ["MUTATIONS", "MISANNOTATIONS", "null_mutation", "drop_arc",
           "stale_cache_read", "skip_writeback", "misannotate"]


@contextmanager
def null_mutation():
    yield


@contextmanager
def drop_arc():
    """Drop the first RAW arc each dependency graph would create."""
    orig = DependencyGraph._add_arc

    def patched(self, pred, succ, region, kind):
        if (kind == "raw" and not getattr(self, "_dagfuzz_dropped", False)
                and pred.state is not TaskState.FINISHED and pred is not succ
                and succ.tid not in pred.successor_ids):
            # Would have created a real arc; lose it instead.  One drop
            # per graph instance keeps the failure minimal and focused.
            self._dagfuzz_dropped = True
            return False
        return orig(self, pred, succ, region, kind)

    DependencyGraph._add_arc = patched
    try:
        yield
    finally:
        DependencyGraph._add_arc = orig


@contextmanager
def stale_cache_read():
    """Writes stop invalidating the other holders' replicas."""
    orig = Directory.record_write

    def patched(self, region, space, producer=None):
        ent = self.entry(region)
        ent.version += 1
        ent.producer = producer
        ent.discarded = False
        ent.holders.add(space)        # BUG: stale holders stay "current"
        self._count("writes_recorded")

    Directory.record_write = patched
    try:
        yield
    finally:
        Directory.record_write = orig


@contextmanager
def skip_writeback():
    """Write-backs (and flushes) into canonical host memory vanish."""
    orig = HostSpace.write

    def patched(self, region, data):
        if self.canonical:            # BUG: the payload is dropped
            return
        orig(self, region, data)

    HostSpace.write = patched
    try:
        yield
    finally:
        HostSpace.write = orig


#: name -> context-manager factory (the CLI's ``--mutate`` choices).
MUTATIONS = {
    "drop_arc": drop_arc,
    "stale_cache_read": stale_cache_read,
    "skip_writeback": skip_writeback,
}


# ----------------------------------------------------------------------
# Spec-level mis-annotations (sanitizer targets, not runtime bugs)
# ----------------------------------------------------------------------

#: mode -> the sanitizer finding kind it must produce.
MISANNOTATIONS = {
    "out_as_in": "under-declared-write",
    "unused_in": "unused-clause",
}


def misannotate(spec: WorkloadSpec, mode: str) -> WorkloadSpec:
    """Append one deliberately mis-annotated op to ``spec``.

    The planted op gets a *fresh private object* (one region nobody else
    touches), so the expected sanitizer findings are exactly the planted
    ones — no incidental races with the generated workload.  The runner
    applies ``mode`` to the last top-level op via ``spec.mis``.
    """
    if mode not in MISANNOTATIONS:
        raise ValueError(f"unknown misannotation {mode!r}; "
                         f"expected one of {sorted(MISANNOTATIONS)}")
    fresh = spec.num_regions                     # id of the new region
    rng = random.Random(spec.seed or 0)
    if mode == "out_as_in":
        # Body writes its output, clause says input: under-declared-write.
        op = OpSpec(out=fresh, ins=(), seed=rng.randrange(1000),
                    device="smp", cost=1e-6)
    else:                                        # unused_in
        # Clause declares a second fresh input the body never reads.
        op = OpSpec(out=fresh, ins=(), unused=(fresh + 1,),
                    seed=rng.randrange(1000), device="smp", cost=1e-6)
    extra_regions = 2 if mode == "unused_in" else 1
    return spec.replaced(
        num_objects=spec.num_objects + 1,
        regions_per_object=spec.regions_per_object + (extra_regions,),
        region_lens=spec.region_lens + (8,),
        ops=spec.ops + (op,),
        mis=mode if mode == "out_as_in" else None,
    )
