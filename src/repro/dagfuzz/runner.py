"""Spec interpreters: the full runtime stack vs the sequential oracle.

The differential-testing contract (paper Section III: the runtime must be
equivalent to the serial program the annotations came from): running a
:class:`~repro.dagfuzz.spec.WorkloadSpec` through the whole stack —
dependency graph, any scheduler, coherence, caches, transfers, faults —
must leave every region *bit-identical* to interpreting the same ops
serially in submission order (parents before their children, children
depth-first in declaration order).

The value model keeps each region constant-valued at a small exact
integer (see :mod:`repro.dagfuzz.spec`), so the oracle is a dict of ints
and comparison is ``np.array_equal`` — no tolerances, no washout.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..cuda import KernelSpec
from ..hardware import build_gpu_cluster, build_multi_gpu_node
from ..runtime import Access, Direction, Runtime, RuntimeConfig, Task
from ..sim import Environment
from .spec import MODULUS, OpSpec, WorkloadSpec

__all__ = ["MACHINES", "CheckResult", "build_machine", "make_body",
           "sequential_reference", "expected_arrays", "run_workload",
           "check_workload"]

#: machine names the fuzzer knows how to build.
MACHINES = ("gpu1", "gpu2", "gpu4", "cluster2", "cluster3")


def build_machine(env: Environment, name: str):
    if name.startswith("cluster"):
        return build_gpu_cluster(env, num_nodes=int(name[7:]))
    if name.startswith("gpu"):
        return build_multi_gpu_node(env, num_gpus=int(name[3:]))
    raise ValueError(f"unknown machine {name!r}; expected one of {MACHINES}")


# ----------------------------------------------------------------------
# The op body and its serial interpretation — one formula, two readers
# ----------------------------------------------------------------------

def _combine(seed: int, in_sums: "list[int]", out_sum: Optional[int]) -> int:
    """The op's value function over exact integer buffer sums."""
    total = 7 + 31 * seed
    for k, s in enumerate(in_sums):
        total += (k + 1) * s
    if out_sum is not None:                       # inout: old value feeds in
        total += (len(in_sums) + 1) * out_sum
    return total % MODULUS


def make_body(op: OpSpec):
    """The task body: ``args = [*ins, *unused, out]`` resolved buffers."""
    n_in, n_unused, inout = len(op.ins), len(op.unused), op.inout
    seed = op.seed

    def body(*buffers):
        ins = buffers[:n_in]                      # unused buffers ignored
        out = buffers[n_in + n_unused]
        in_sums = [int(b.sum(dtype=np.float64)) for b in ins]
        out_sum = int(out.sum(dtype=np.float64)) if inout else None
        out[:] = np.float32(_combine(seed, in_sums, out_sum))

    return body


def sequential_reference(spec: WorkloadSpec) -> "dict[int, int]":
    """Serial interpretation: region id -> final integer value."""
    table = spec.regions()
    value = {r.rid: r.obj_index + 1 for r in table}

    def apply(op: OpSpec):
        in_sums = [value[r] * table[r].length for r in op.ins]
        out_sum = (value[op.out] * table[op.out].length
                   if op.inout else None)
        value[op.out] = _combine(op.seed, in_sums, out_sum)
        for child in op.children:
            apply(child)

    for op in spec.ops:
        apply(op)
    return value


def expected_arrays(spec: WorkloadSpec) -> "dict[int, np.ndarray]":
    """The oracle as concrete float32 buffers (region id -> array)."""
    value = sequential_reference(spec)
    return {info.rid: np.full(info.length, np.float32(value[info.rid]),
                              dtype=np.float32)
            for info in spec.regions()}


# ----------------------------------------------------------------------
# The full-stack interpreter
# ----------------------------------------------------------------------

def _build_task(op: OpSpec, name: str, region_of, mis: Optional[str] = None
                ) -> Task:
    """One runtime Task (and its nested children factory) for ``op``."""
    arg_rids = list(op.ins) + list(op.unused) + [op.out]
    args = tuple(region_of(r) for r in arg_rids)
    if op.children:
        # A decomposing parent orders its whole unit through the sibling
        # graph it lives in: inout over every tile it or any descendant
        # touches (children get only a sibling-local graph of their own).
        scope = sorted(op.footprint())
        accesses = tuple(Access(region_of(r), Direction.INOUT)
                         for r in scope)
    else:
        out_dir = Direction.INOUT if op.inout else Direction.OUT
        if mis == "out_as_in":
            out_dir = Direction.IN               # the planted lie
        accesses = (tuple(Access(region_of(r), Direction.IN)
                          for r in op.ins)
                    + tuple(Access(region_of(r), Direction.IN)
                            for r in op.unused)
                    + (Access(region_of(op.out), out_dir),))
    body = make_body(op)

    subtasks = None
    if op.children:
        children = op.children

        def subtasks(children=children, name=name):
            # fresh Task objects per call: re-decomposition after a fault
            # re-execution must not reuse consumed task state.
            return [_build_task(child, f"{name}.{i}", region_of)
                    for i, child in enumerate(children)]

    if op.device == "cuda":
        return Task(name=name, device="cuda",
                    kernel=KernelSpec(name=f"k_{name}",
                                      cost=lambda spec, c=op.cost: c,
                                      func=body),
                    accesses=accesses, args=args, subtasks=subtasks)
    return Task(name=name, device="smp", smp_cost=op.cost, func=body,
                accesses=accesses, args=args, subtasks=subtasks)


def run_workload(spec: WorkloadSpec, machine: str = "gpu2",
                 config: Optional[RuntimeConfig] = None, sanitizer=None
                 ) -> "tuple[dict[int, np.ndarray], float]":
    """Run ``spec`` through the full stack; returns (outputs, makespan).

    ``outputs`` maps region id -> the master host's final bytes.
    """
    config = config or RuntimeConfig(functional=True)
    if not config.functional:
        raise ValueError("dagfuzz workloads need functional mode")
    env = Environment()
    rt = Runtime(build_machine(env, machine), config, sanitizer=sanitizer)

    objects = [rt.register_array(
        f"o{i}", spec.object_elements(i),
        initial=np.full(spec.object_elements(i), np.float32(i + 1),
                        dtype=np.float32))
        for i in range(spec.num_objects)]
    table = spec.regions()

    def region_of(rid: int):
        info = table[rid]
        return objects[info.obj_index].region(info.start, info.length)

    mis_index = len(spec.ops) - 1 if spec.mis else -1
    tasks = [_build_task(op, f"t{i}", region_of,
                         mis=spec.mis if i == mis_index else None)
             for i, op in enumerate(spec.ops)]

    def main():
        for op, task in zip(spec.ops, tasks):
            rt.submit(task)
            if op.wait_after == "on":
                yield from rt.taskwait_on([region_of(op.out)])
            elif op.wait_after == "on_noflush":
                yield from rt.taskwait_on([region_of(op.out)],
                                          noflush=True)
            elif op.wait_after == "all":
                yield from rt.taskwait()
            elif op.wait_after == "all_noflush":
                yield from rt.taskwait(noflush=True)
        yield from rt.taskwait()

    makespan = rt.run_main(main())
    outputs = {info.rid: np.array(rt.master_host.read(region_of(info.rid)))
               for info in table}
    return outputs, makespan


# ----------------------------------------------------------------------
# The differential check
# ----------------------------------------------------------------------

@dataclass
class CheckResult:
    """Outcome of one spec x configuration differential run."""

    ok: bool
    mismatches: "list[str]" = field(default_factory=list)
    error: Optional[str] = None
    makespan: float = 0.0

    def describe(self) -> str:
        if self.ok:
            return "ok"
        if self.error is not None:
            return f"crashed: {self.error}"
        return "diverged: " + "; ".join(self.mismatches[:4])


def check_workload(spec: WorkloadSpec, machine: str = "gpu2",
                   config: Optional[RuntimeConfig] = None,
                   mutate: Optional[str] = None) -> CheckResult:
    """Run the full stack and compare against the sequential oracle.

    ``mutate`` names a bug class from :data:`repro.dagfuzz.mutations.
    MUTATIONS` to inject for the duration of the run (fuzzer self-test);
    a crash under mutation counts as a caught divergence.
    """
    from .mutations import MUTATIONS, null_mutation
    ctx = MUTATIONS[mutate]() if mutate else null_mutation()
    try:
        with ctx:
            outputs, makespan = run_workload(spec, machine=machine,
                                             config=config)
    except Exception as exc:                      # caught bug, not a pass
        return CheckResult(ok=False, error=f"{type(exc).__name__}: {exc}")
    value = sequential_reference(spec)
    table = spec.regions()
    mismatches = []
    for info in table:
        expected = np.full(info.length, np.float32(value[info.rid]),
                           dtype=np.float32)
        got = outputs[info.rid]
        if not np.array_equal(got, expected):
            mismatches.append(
                f"region {info.rid} (o{info.obj_index}"
                f"[{info.start}:{info.start + info.length}]) expected "
                f"{expected[0]!r} got {np.unique(got)!r}")
    return CheckResult(ok=not mismatches, mismatches=mismatches,
                       makespan=makespan)
