"""Named generation profiles: the knobs of the random-DAG distribution.

A profile bounds every structural dimension the generator draws from —
graph width and depth, fan-in, region tiling and footprint sizes, clause
mixes (inout / unused / nested / taskwait), the smp-vs-cuda split and the
kernel-cost spread.  Profiles are frozen pure data so a (seed, profile)
pair pins a workload forever.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["FuzzProfile", "PROFILES"]


@dataclass(frozen=True)
class FuzzProfile:
    """Distribution bounds for :func:`repro.dagfuzz.generator.generate`."""

    name: str = "default"
    #: top-level op count range (inclusive).
    ops: tuple = (4, 16)
    #: object count range.
    objects: tuple = (2, 4)
    #: per-object tile count range.
    regions_per_object: tuple = (1, 3)
    #: per-object region length range (elements).
    region_len: tuple = (4, 16)
    #: max declared inputs per op (fan-in; actual draw is 0..max).
    max_inputs: int = 3
    #: chance an op re-reads a recently written region (locality / depth
    #: bias: high values chain ops into deep dependency paths).
    p_reuse: float = 0.6
    #: chance an op runs on a cuda device.
    p_cuda: float = 0.5
    #: chance the output clause is inout rather than out.
    p_inout: float = 0.3
    #: chance of one extra declared-but-unread input clause.
    p_unused: float = 0.15
    #: chance an op decomposes into children.
    p_nested: float = 0.0
    #: children per nested op (range) and max nesting depth.
    children: tuple = (2, 3)
    max_depth: int = 1
    #: chance of a taskwait_on after a top-level op (half of them noflush),
    #: and of a full taskwait.
    p_wait_on: float = 0.1
    p_wait_all: float = 0.05
    #: kernel cost range (simulated seconds, log-uniform).
    cost: tuple = (5e-7, 5e-5)

    def __post_init__(self):
        for lo, hi in (self.ops, self.objects, self.regions_per_object,
                       self.region_len, self.children):
            if lo < 1 or hi < lo:
                raise ValueError(f"bad range ({lo}, {hi}) in profile "
                                 f"{self.name!r}")
        if self.cost[0] <= 0 or self.cost[1] < self.cost[0]:
            raise ValueError("bad cost range")


#: the registry the CLI / strategies select from.
PROFILES = {p.name: p for p in (
    # Balanced mix of everything except nesting.
    FuzzProfile(name="default"),
    # Many independent ops over many tiles: scheduler-width pressure.
    FuzzProfile(name="wide", ops=(12, 28), objects=(3, 5),
                regions_per_object=(2, 4), p_reuse=0.25, p_wait_on=0.05,
                p_wait_all=0.0),
    # Long read-after-write chains: depth / critical-path pressure.
    FuzzProfile(name="deep", ops=(10, 24), objects=(1, 2),
                regions_per_object=(1, 2), max_inputs=2, p_reuse=0.95,
                p_inout=0.5),
    # Decomposing parents with sibling scopes (paper Section III.D.1).
    FuzzProfile(name="nested", ops=(3, 8), p_nested=0.5,
                children=(2, 4), max_depth=2, p_cuda=0.35),
    # Ragged tilings and footprints, heavy clause mix: coherence pressure.
    FuzzProfile(name="irregular", ops=(6, 20), objects=(2, 5),
                regions_per_object=(1, 4), region_len=(2, 24),
                max_inputs=4, p_inout=0.45, p_unused=0.3, p_wait_on=0.2),
    # Sanitizer baseline: every clause exactly matches the body's accesses
    # (no unused inputs, no scope-over-declaring nested parents).
    FuzzProfile(name="clean", p_unused=0.0, p_nested=0.0),
)}
