"""Workload specs: the pure-data description of a fuzzed task graph.

A :class:`WorkloadSpec` is everything needed to rebuild one random
workload — object tilings plus an ordered tuple of :class:`OpSpec`
records — with no live runtime objects inside, so specs are hashable,
picklable, comparable and printable.  The same spec drives three
interpreters that must agree:

* :func:`repro.dagfuzz.runner.run_workload` — the full runtime stack;
* :func:`repro.dagfuzz.runner.sequential_reference` — the serial oracle;
* :func:`repro.dagfuzz.shrink.shrink` — structural minimization.

Region identity is a flat integer: object ``o`` is tiled into
``regions_per_object[o]`` disjoint regions of ``region_lens[o]`` elements
each, and region ids number all tiles object-major.  Tilings are fixed
per spec (never per op) because the memory model only supports
equal-or-disjoint region overlap — every op touching tile ``r`` names the
exact same ``(start, length)`` window.

Value model: object ``o`` starts as ``float32(o + 1)`` everywhere, and
every op writes a single constant to its whole output region, computed
from small exact integers (mod :data:`MODULUS`), so a region is *always*
constant-valued, sums are exact in float64, and the differential oracle
can demand bit-identical buffers — divergences never wash out in float
rounding.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

__all__ = ["OpSpec", "WorkloadSpec", "RegionInfo", "MODULUS",
           "WAIT_KINDS", "task_count"]

#: modulus keeping every buffer value a small exact integer.
MODULUS = 1021

#: recognised ``wait_after`` markers (``None`` = no wait after the op).
WAIT_KINDS = ("on", "on_noflush", "all", "all_noflush")


@dataclass(frozen=True)
class OpSpec:
    """One task: write ``out`` from ``ins`` (optionally its own old value).

    ``children`` makes this a decomposing parent task: the children run
    on the parent's image in their own sibling dependency scope, after
    the parent's body.  ``unused`` regions are declared as inputs but
    never read — legal, pure false-dependency pressure (and the
    sanitizer's ``unused-clause`` target).
    """

    out: int                          #: output region id
    ins: tuple = ()                   #: input region ids (ordered, unique)
    seed: int = 0                     #: per-op value seed
    device: str = "smp"               #: ``smp`` | ``cuda``
    cost: float = 1e-6                #: simulated kernel seconds
    inout: bool = False               #: out is inout (old value feeds in)
    unused: tuple = ()                #: declared-but-never-read inputs
    children: tuple = ()              #: nested OpSpecs (decomposition)
    wait_after: Optional[str] = None  #: one of WAIT_KINDS (top level only)

    def __post_init__(self):
        if self.device not in ("smp", "cuda"):
            raise ValueError(f"bad device {self.device!r}")
        if self.wait_after is not None and self.wait_after not in WAIT_KINDS:
            raise ValueError(f"bad wait_after {self.wait_after!r}")
        if self.out in self.ins or self.out in self.unused:
            raise ValueError("out region may not also be an input")
        if set(self.ins) & set(self.unused):
            raise ValueError("ins and unused overlap")
        if len(set(self.ins)) != len(self.ins):
            raise ValueError("duplicate input region")

    def footprint(self) -> frozenset:
        """Every region id this op or any descendant touches."""
        regions = {self.out, *self.ins, *self.unused}
        for child in self.children:
            regions |= child.footprint()
        return frozenset(regions)


@dataclass(frozen=True)
class RegionInfo:
    """Resolved placement of one region id inside its object."""

    rid: int
    obj_index: int
    start: int
    length: int


@dataclass(frozen=True)
class WorkloadSpec:
    """A complete fuzzed workload (pure data, picklable)."""

    num_objects: int
    regions_per_object: tuple
    region_lens: tuple
    ops: tuple = ()
    #: provenance, for replay messages (not semantics).
    seed: Optional[int] = None
    profile: Optional[str] = None
    #: deliberate mis-annotation mode (see mutations.misannotate).
    mis: Optional[str] = None

    def __post_init__(self):
        if len(self.regions_per_object) != self.num_objects:
            raise ValueError("regions_per_object length mismatch")
        if len(self.region_lens) != self.num_objects:
            raise ValueError("region_lens length mismatch")
        nr = self.num_regions
        for op in self._walk():
            for rid in op.footprint():
                if not 0 <= rid < nr:
                    raise ValueError(f"region id {rid} out of range 0..{nr-1}")

    # -- region table ------------------------------------------------------
    @property
    def num_regions(self) -> int:
        return sum(self.regions_per_object)

    def regions(self) -> "list[RegionInfo]":
        """The object-major region table, index == region id."""
        table = []
        for o in range(self.num_objects):
            ln = self.region_lens[o]
            for k in range(self.regions_per_object[o]):
                table.append(RegionInfo(rid=len(table), obj_index=o,
                                        start=k * ln, length=ln))
        return table

    def object_elements(self, o: int) -> int:
        return self.regions_per_object[o] * self.region_lens[o]

    # -- traversal ---------------------------------------------------------
    def _walk(self):
        def rec(ops):
            for op in ops:
                yield op
                yield from rec(op.children)
        yield from rec(self.ops)

    def replaced(self, **changes) -> "WorkloadSpec":
        return replace(self, **changes)


def task_count(spec_or_ops) -> int:
    """Total task count, nested children included."""
    ops = (spec_or_ops.ops if isinstance(spec_or_ops, WorkloadSpec)
           else spec_or_ops)
    return sum(1 + task_count(op.children) for op in ops)
