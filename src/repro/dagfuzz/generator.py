"""Seed-deterministic workload generation.

``generate(seed, profile)`` maps a ``(seed, profile)`` pair to one
:class:`~repro.dagfuzz.spec.WorkloadSpec` using nothing but
``random.Random(seed)`` (the Mersenne Twister is specified, so the same
pair yields the same workload on every platform and Python version).

Structural invariants the generator maintains (the runtime's contract):

* every op's input/unused/output regions are distinct region ids drawn
  from the spec's fixed disjoint tiling — equal-or-disjoint by design;
* a decomposing parent's clause set covers the whole footprint of its
  (recursive) children with inout accesses, so the top-level dependency
  graph orders the parent+children unit against every sibling that
  touches the same tiles (children only get a sibling-local graph);
* children never carry ``wait_after`` (taskwaits are a main-generator
  construct) and never nest deeper than ``profile.max_depth``.
"""

from __future__ import annotations

import math
import random

from .profiles import PROFILES, FuzzProfile
from .spec import OpSpec, WorkloadSpec

__all__ = ["generate"]


def _draw_cost(rng: random.Random, lo: float, hi: float) -> float:
    return math.exp(rng.uniform(math.log(lo), math.log(hi)))


def _draw_regions(rng: random.Random, num_regions: int, recent: list,
                  prof: FuzzProfile, nested: bool):
    """Pick (out, ins, unused) distinct region ids for one op."""
    out = rng.randrange(num_regions)
    pool = [r for r in range(num_regions) if r != out]
    n_in = rng.randint(0, min(prof.max_inputs, len(pool)))
    ins: list = []
    for _ in range(n_in):
        recents = [r for r in recent if r in pool and r not in ins]
        if recents and rng.random() < prof.p_reuse:
            pick = rng.choice(recents)
        else:
            candidates = [r for r in pool if r not in ins]
            pick = rng.choice(candidates)
        ins.append(pick)
    unused: tuple = ()
    # Nested parents already over-declare their scope; an extra unused
    # clause there would be indistinguishable, so keep them separate.
    if not nested and rng.random() < prof.p_unused:
        candidates = [r for r in pool if r not in ins]
        if candidates:
            unused = (rng.choice(candidates),)
    return out, tuple(ins), unused


def _make_op(rng: random.Random, num_regions: int, recent: list,
             prof: FuzzProfile, depth: int, top_level: bool) -> OpSpec:
    nested = (depth < prof.max_depth and prof.p_nested > 0
              and rng.random() < prof.p_nested)
    out, ins, unused = _draw_regions(rng, num_regions, recent, prof, nested)
    children: tuple = ()
    if nested:
        n_children = rng.randint(*prof.children)
        children = tuple(
            _make_op(rng, num_regions, recent, prof, depth + 1,
                     top_level=False)
            for _ in range(n_children))
    wait_after = None
    if top_level:
        roll = rng.random()
        if roll < prof.p_wait_on:
            wait_after = "on" if rng.random() < 0.5 else "on_noflush"
        elif roll < prof.p_wait_on + prof.p_wait_all:
            wait_after = ("all" if rng.random() < 0.5 else "all_noflush")
    # Children always run smp: decomposition children execute on their
    # parent's image with local workers (paper Section III.D.1 — "these
    # local tasks will be executed by any thread that becomes available
    # in the node"); a cuda child could need the very device its parent
    # still occupies and deadlock a one-GPU node.
    device = ("smp" if not top_level
              else "cuda" if rng.random() < prof.p_cuda else "smp")
    op = OpSpec(
        out=out, ins=ins, seed=rng.randrange(1000),
        device=device,
        cost=_draw_cost(rng, *prof.cost),
        inout=rng.random() < prof.p_inout,
        unused=unused, children=children, wait_after=wait_after,
    )
    recent.append(out)
    for child in children:
        recent.append(child.out)
    del recent[:-6]          # keep a short reuse window
    return op


def generate(seed: int, profile: "FuzzProfile | str" = "default"
             ) -> WorkloadSpec:
    """The workload for ``(seed, profile)`` — pure, deterministic."""
    prof = PROFILES[profile] if isinstance(profile, str) else profile
    rng = random.Random(seed)
    num_objects = rng.randint(*prof.objects)
    regions_per_object = tuple(rng.randint(*prof.regions_per_object)
                               for _ in range(num_objects))
    region_lens = tuple(rng.randint(*prof.region_len)
                        for _ in range(num_objects))
    num_regions = sum(regions_per_object)
    recent: list = []
    ops = tuple(_make_op(rng, num_regions, recent, prof, depth=0,
                         top_level=True)
                for _ in range(rng.randint(*prof.ops)))
    return WorkloadSpec(num_objects=num_objects,
                        regions_per_object=regions_per_object,
                        region_lens=region_lens, ops=ops,
                        seed=seed, profile=prof.name)
