"""Exception taxonomy for fault injection and recovery.

Recovery is best-effort but never silent: when the runtime cannot restore a
consistent state it raises one of these instead of computing wrong answers
or hanging (the chaos suite's "completes or fails loudly" property).
"""

from __future__ import annotations

__all__ = [
    "FaultInjectionError",
    "AMTimeoutError",
    "TaskRetryExceeded",
    "FaultRecoveryError",
    "RegionLostError",
]


class FaultInjectionError(Exception):
    """Base class for fault-injection and recovery failures."""


class AMTimeoutError(FaultInjectionError):
    """An active message exhausted its retry budget without an ack."""


class TaskRetryExceeded(FaultInjectionError):
    """A task failed more times than the plan's re-execution budget."""


class FaultRecoveryError(FaultInjectionError):
    """The runtime cannot restore a consistent state after a fault
    (e.g. the sole copy of a region was lost and its producer cannot be
    replayed side-effect-free)."""


class RegionLostError(RuntimeError):
    """A fetch found no holder for a region (its copies were lost).

    The coherence layer converts this into a wait when a producer replay
    is pending, and re-raises it otherwise.
    """
