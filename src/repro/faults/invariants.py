"""Coherence invariants the chaos suite checks after every recovery.

These are pure inspections (no simulated time): they read the directory
and the software caches and return a list of human-readable violations
(empty = consistent).  The fault engine calls :func:`check_coherence`
after each recovery action when the plan is ``paranoid``; the tests also
call :func:`check_quiescent` once a run has drained.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, FrozenSet

if TYPE_CHECKING:  # pragma: no cover
    from ..runtime.runtime import Runtime

__all__ = ["check_coherence", "check_quiescent"]


def check_coherence(rt: "Runtime", pending: FrozenSet = frozenset()
                    ) -> list[str]:
    """Structural invariants that must hold at any instant.

    ``pending`` is the set of region keys whose restoration (producer
    replay) is in flight — those are allowed to have no holder yet.
    """
    problems: list[str] = []
    for ent in rt.directory._entries.values():
        if not ent.holders and ent.region.key not in pending \
                and not ent.discarded:
            # ``discarded`` marks a write-back-elided dead version: the
            # datamove layer proved nobody reads it before the pending
            # overwrite re-establishes holders, so the hole is legal.
            problems.append(f"{ent.region!r} has no holder")
        for space in ent.holders:
            if getattr(space, "failed", False):
                problems.append(
                    f"{ent.region!r} held by failed space {space.name}")
    dirty_spaces: dict = {}
    for cache in rt.all_caches():
        if getattr(cache.space, "failed", False):
            if len(cache) or cache.bytes_used:
                problems.append(
                    f"cache of failed {cache.space.name} not invalidated")
            continue
        used = sum(e.nbytes for e in cache._entries.values())
        if used != cache.bytes_used:
            problems.append(
                f"cache {cache.space.name} accounting drift: "
                f"{used} != {cache.bytes_used}")
        for ent in cache.dirty_entries():
            # A dirty copy must be the current version (single writer).
            if not rt.directory.is_current(ent.region, cache.space):
                problems.append(
                    f"stale dirty copy of {ent.region!r} in "
                    f"{cache.space.name}")
            holders = dirty_spaces.setdefault(ent.region.key, [])
            holders.append(cache.space.name)
            if len(holders) > 1:
                problems.append(
                    f"multiple dirty copies of {ent.region!r}: {holders}")
    return problems


def check_quiescent(rt: "Runtime") -> list[str]:
    """Extra invariants once a run has fully drained: nothing pinned,
    nothing mid-restoration, and the master host current for everything
    (after a flushing taskwait)."""
    problems = check_coherence(rt)
    faults = rt.faults
    if faults is not None and faults._restores:
        problems.append(
            f"{len(faults._restores)} region restorations never completed")
    for cache in rt.all_caches():
        if getattr(cache.space, "failed", False):
            continue
        for ent in cache._entries.values():
            if ent.pin_count:
                problems.append(
                    f"{ent.region!r} still pinned ({ent.pin_count}) in "
                    f"{cache.space.name}")
    return problems
