"""The fault engine: interprets a :class:`~repro.faults.plan.FaultPlan`.

One engine instance is attached to a :class:`~repro.runtime.Runtime` when
its config carries a non-empty plan.  It plays two roles:

* **injection** — timed events (GPU loss, PCIe degradation windows) are
  scheduled on the simulation clock; triggered events (kernel aborts, AM
  drops) are decided synchronously when the hardware/AM layers ask, using
  a private seeded RNG whose draws happen in deterministic simulation
  order (so one ``seed`` ⇒ one timeline, independent of
  ``PYTHONHASHSEED``);
* **recovery orchestration** — on a device loss it invalidates the dead
  cache and directory replicas, blacklists the device's manager in its
  scheduler, re-routes stranded work (back to the master when the node
  has no live GPU left), and replays producer tasks for regions whose
  only copy died with the device.

Everything the engine does is observable: each fault and recovery action
lands in :attr:`FaultEngine.timeline`, in ``faults.*`` counters of the
metrics registry, and (when a tracer is attached) as zero-length
``fault`` spans on the Chrome timeline.
"""

from __future__ import annotations

import hashlib
import math
import random
from typing import TYPE_CHECKING, Optional

from ..sim import Event
from .errors import FaultRecoveryError
from .plan import FaultPlan

if TYPE_CHECKING:  # pragma: no cover
    from ..memory.region import Region
    from ..runtime.runtime import Image, Runtime

__all__ = ["FaultEngine"]


class FaultEngine:
    """Deterministic interpreter for one plan over one runtime."""

    def __init__(self, runtime: "Runtime", plan: FaultPlan):
        self.rt = runtime
        self.env = runtime.env
        self.plan = plan
        self.metrics = runtime.metrics
        self.rng = random.Random(plan.seed)
        #: ``(time, kind, detail)`` records of every fault and recovery
        #: action, in order — the determinism tests hash this.
        self.timeline: list[tuple[float, str, str]] = []
        self._started = False
        #: per-device kernel launch counters (for ``nth`` selectors).
        self._kernel_seq: dict[tuple[int, int], int] = {}
        #: global AM attempt counter (for ``nth`` selectors).
        self._am_seq = 0
        #: region key -> event fired when a replayed producer restores it.
        self._restores: dict = {}
        # Event-kind views of the plan (tuples preserve plan order).
        self._degrades = plan.by_kind("link_degrade")
        self._partitions = plan.by_kind("link_partition")
        self._pcie = plan.by_kind("pcie_degrade")
        self._kernel_aborts = plan.by_kind("kernel_abort")
        self._am_events = {
            "drop": plan.by_kind("am_drop"),
            "corrupt": plan.by_kind("am_corrupt"),
            "ack_drop": plan.by_kind("am_ack_drop"),
        }
        # Attach to the fabric so hardware/AM layers can consult us.
        if runtime.am is not None:
            runtime.am.faults = self
        network = getattr(runtime.machine, "network", None)
        if network is not None:
            network.faults = self

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Schedule the plan's timed events (idempotent)."""
        if self._started:
            return
        self._started = True
        env = self.env
        for ev in self.plan.by_kind("gpu_loss"):
            env.at(ev.at, lambda ev=ev: self.fail_gpu(ev.node, ev.gpu))
        for ev in self._pcie:
            env.at(ev.at, lambda ev=ev: self._pcie_boundary(ev, "on"))
            if math.isfinite(ev.duration):
                env.at(ev.at + ev.duration,
                       lambda ev=ev: self._pcie_boundary(ev, "off"))
        for ev in self._degrades + self._partitions:
            env.at(ev.at, lambda ev=ev: self.note(
                f"{ev.kind}_on", f"{ev.src}->{ev.dst} x{ev.factor:g}"
                if ev.kind == "link_degrade" else f"{ev.src}->{ev.dst}"))

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def note(self, kind: str, detail: str = "") -> None:
        now = self.env.now
        self.timeline.append((now, kind, detail))
        self.metrics.inc(f"faults.{kind}")
        tracer = self.rt.tracer
        if tracer is not None:
            tracer.record("fault", f"{kind}:{detail}" if detail else kind,
                          "faults", now, now)

    def timeline_digest(self) -> str:
        """Stable hash of the fault/recovery timeline (determinism tests)."""
        blob = "\n".join(f"{t!r}|{k}|{d}" for t, k, d in self.timeline)
        return hashlib.sha256(blob.encode()).hexdigest()

    # ------------------------------------------------------------------
    # Injection queries (called by hardware / AM layers)
    # ------------------------------------------------------------------
    def link_slowdown(self, src: int, dst: int) -> float:
        """Current inter-node wire-time multiplier for ``src -> dst``."""
        factor = 1.0
        now = self.env.now
        for ev in self._degrades:
            if ev.active(now) and ev.matches_link(src, dst):
                factor *= ev.factor
        return factor

    def link_blocked(self, src: int, dst: int) -> bool:
        now = self.env.now
        return any(ev.active(now) and ev.matches_link(src, dst)
                   for ev in self._partitions)

    def am_outcome(self, src: int, dst: int) -> str:
        """Fate of one AM attempt: ``ok`` / ``blackhole`` / ``drop`` /
        ``corrupt`` / ``ack_drop`` (decided at send time, one RNG draw per
        probabilistic event, in plan order)."""
        self._am_seq += 1
        seq = self._am_seq
        if self.link_blocked(src, dst):
            self.note("am_blackholed", f"{src}->{dst}#{seq}")
            return "blackhole"
        for outcome in ("drop", "corrupt", "ack_drop"):
            for ev in self._am_events[outcome]:
                if not ev.matches_link(src, dst):
                    continue
                if ev.nth is not None:
                    hit = ev.nth == seq
                else:
                    hit = self.rng.random() < ev.probability
                if hit:
                    self.note(f"am_{outcome}ped" if outcome != "corrupt"
                              else "am_corrupted", f"{src}->{dst}#{seq}")
                    return outcome
        return "ok"

    def kernel_should_abort(self, manager, task) -> bool:
        """ECC-style abort decision for one kernel launch."""
        key = (manager.node_index, manager.gpu.index)
        seq = self._kernel_seq.get(key, 0) + 1
        self._kernel_seq[key] = seq
        for ev in self._kernel_aborts:
            if not ev.matches_device(*key):
                continue
            if ev.nth is not None:
                hit = ev.nth == seq
            else:
                hit = self.rng.random() < ev.probability
            if hit:
                self.note("kernel_abort",
                          f"{task.name}@{manager.place_name}#{seq}")
                return True
        return False

    def _pcie_boundary(self, ev, edge: str) -> None:
        """Recompute the affected links' degradation from the set of
        currently-active windows (absolute, so stacking/unstacking windows
        restores exact factors)."""
        gpu = self.rt.machine.nodes[ev.node].gpus[ev.gpu]
        now = self.env.now
        factor = 1.0
        for other in self._pcie:
            if (other.node == ev.node and other.gpu == ev.gpu
                    and other.active(now)):
                factor *= other.factor
        gpu.h2d.degradation = factor
        gpu.d2h.degradation = factor
        self.note(f"pcie_degrade_{edge}",
                  f"gpu:{ev.node}:{ev.gpu} x{factor:g}")

    # ------------------------------------------------------------------
    # Device loss + recovery
    # ------------------------------------------------------------------
    def fail_gpu(self, node_index: int, gpu_index: int) -> None:
        """Kill one GPU: invalidate its state, blacklist it, re-route its
        work, restore any data stranded on it."""
        rt = self.rt
        image = rt.images[node_index]
        manager = None
        for m in image.gpu_managers:
            if m.gpu.index == gpu_index:
                manager = m
                break
        if manager is None or not manager.alive:
            return
        manager.alive = False
        manager.gpu.failed = True
        manager.space.failed = True
        self.note("gpu_lost", manager.place_name)
        dropped = manager.cache.invalidate_all()
        if dropped:
            self.metrics.inc("faults.cache_entries_invalidated", dropped)
        orphans = rt.directory.invalidate_space(manager.space)
        if orphans:
            self._replay_producers(orphans)
        stranded = image.scheduler.blacklist(manager)
        stranded.extend(image.scheduler.drain_unrunnable())
        running = manager.current_task
        for task in sorted(stranded, key=lambda t: t.tid):
            if task is running:
                continue  # the manager loop abandons (and requeues) it
            self.metrics.inc("faults.tasks_rebalanced")
            self.resubmit(image, task)
        # The master must stop treating this node as a cuda target when no
        # live GPU remains there, and reclaim cuda work queued for it.
        if node_index != 0 and not any(m.alive for m in image.gpu_managers):
            master = rt.master_image
            proxy = None
            for p in master.proxies:
                if p.node_index == node_index:
                    proxy = p
                    break
            if proxy is not None:
                for task in master.scheduler.rebalance(proxy):
                    self.metrics.inc("faults.tasks_rebalanced")
                    self.resubmit(master, task)
        if self.plan.paranoid:
            self.check_now()
        rt.notify_work()

    def resubmit(self, image: "Image", task) -> None:
        """Put a recovered task back where something can actually run it."""
        if any(w.accepts(task) for w in image.scheduler.workers):
            image.submit_local(task)
            return
        if image.is_master:
            raise FaultRecoveryError(
                f"no execution place left that can run {task!r}")
        self.return_to_master(task, image.node.index)

    def return_to_master(self, task, from_node: int) -> None:
        """Pull a dispatched task back from a node that can no longer run
        it; the master re-places it (and reclaims the dispatch credit)."""
        from ..runtime.task import TaskState

        rt = self.rt
        master = rt.master_image
        if master.comm_thread is not None:
            master.comm_thread.forget_dispatch(task, from_node)
        task.state = TaskState.READY
        task.assigned_to = None
        task.node_index = None
        self.metrics.inc("faults.tasks_rerouted")
        self.note("task_rerouted", f"{task.name}<-node{from_node}")
        master.submit_local(task)

    # ------------------------------------------------------------------
    # Data restoration
    # ------------------------------------------------------------------
    def _replay_producers(self, orphans: list) -> None:
        """Regions whose only copy died: resubmit a clone of each region's
        recorded producer.  Only side-effect-free producers (no inout
        clause) can be replayed — an inout producer consumed the very
        version it would need as input.  With ``protect_outputs`` (the
        default) committed outputs are checkpointed to host memory and
        this path only ever sees never-protected data."""
        rt = self.rt
        by_producer: dict = {}
        for region in orphans:
            ent = rt.directory.entry(region)
            producer = ent.producer
            if producer is None:
                raise FaultRecoveryError(
                    f"the only copy of {region!r} was lost with the device "
                    "and no producer task is recorded to replay it")
            for acc in producer.accesses:
                if acc.direction.reads and acc.direction.writes:
                    raise FaultRecoveryError(
                        f"cannot replay {producer!r} to restore {region!r}: "
                        "an inout producer is not side-effect-free "
                        "(enable protect_outputs)")
            by_producer.setdefault(producer.tid, (producer, []))[1].append(
                region)
            if region.key not in self._restores:
                self._restores[region.key] = Event(self.env)
        for tid in sorted(by_producer):
            producer, regions = by_producer[tid]
            clone = self._clone(producer)
            self.metrics.inc("faults.producers_replayed")
            self.note("producer_replayed",
                      f"{producer.name}->" + ",".join(
                          r.obj.name for r in regions))
            rt.submit(clone)

    def _clone(self, task):
        """A fresh submission-ready copy of ``task`` (new tid, clean
        runtime state)."""
        from ..runtime.task import Task

        return Task(
            name=f"{task.name}~replay",
            accesses=task.accesses,
            device=task.device,
            kernel=task.kernel,
            cost_kwargs=task.cost_kwargs,
            smp_cost=task.smp_cost,
            func=task.func,
            args=task.args,
            copy_deps=task.copy_deps,
            copies=task.copies,
            subtasks=task.subtasks,
        )

    def wait_restored(self, region: "Region") -> Optional[Event]:
        """The event a stalled fetch should wait on, if a replay is
        pending for ``region`` (else None: the loss is unrecoverable)."""
        return self._restores.get(region.key)

    def notify_write(self, region: "Region") -> None:
        """A new version of ``region`` was committed: release any fetch
        stalled on its restoration."""
        ev = self._restores.pop(region.key, None)
        if ev is not None:
            ev.succeed()
            self.note("region_restored", region.obj.name)

    # ------------------------------------------------------------------
    # Invariants (paranoid mode)
    # ------------------------------------------------------------------
    def check_now(self) -> None:
        from .invariants import check_coherence

        problems = check_coherence(self.rt,
                                   pending=frozenset(self._restores))
        if problems:
            raise FaultRecoveryError(
                "coherence invariants violated after recovery: "
                + "; ".join(problems))
