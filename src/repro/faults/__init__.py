"""Deterministic fault injection and recovery (``repro.faults``).

Describe what goes wrong in a :class:`FaultPlan`, hand it to
``RuntimeConfig(fault_plan=...)``, and the :class:`FaultEngine` injects
the failures at exactly the planned (or seeded-random) points while the
runtime's recovery machinery — AM retry/backoff with idempotency tokens,
task re-execution, device blacklisting, replica invalidation and
producer replay — keeps the computation correct.  See ``docs/FAULTS.md``.
"""

from .errors import (
    AMTimeoutError,
    FaultInjectionError,
    FaultRecoveryError,
    RegionLostError,
    TaskRetryExceeded,
)
from .plan import KINDS, FaultEvent, FaultPlan
from .engine import FaultEngine
from .invariants import check_coherence, check_quiescent

__all__ = [
    "FaultEvent",
    "FaultPlan",
    "FaultEngine",
    "KINDS",
    "FaultInjectionError",
    "AMTimeoutError",
    "TaskRetryExceeded",
    "FaultRecoveryError",
    "RegionLostError",
    "check_coherence",
    "check_quiescent",
]
