"""Declarative, seeded fault plans.

A :class:`FaultPlan` is an immutable description of *what goes wrong and
when* during a simulated run: a tuple of :class:`FaultEvent` records plus
the knobs of the recovery machinery (AM retry budget, task re-execution
budget, output checkpointing).  Plans are pure data — the interpretation
lives in :mod:`repro.faults.engine` — so the same plan object can be run
against different machines and produce per-seed deterministic outcomes.

Event kinds
-----------

``gpu_loss``
    The GPU ``gpu`` of node ``node`` dies at time ``at`` and never comes
    back.  Its cache and directory replicas are invalidated, its queued
    and running tasks are re-executed elsewhere.
``kernel_abort``
    An ECC-style abort: a kernel launch on the matching device fails
    after running for its full duration (the task is re-executed).
    Select victims with ``nth`` (the n-th kernel on that device, 1-based)
    or ``probability`` (per launch).
``link_degrade``
    Inter-node wire time is multiplied by ``factor`` during the window
    ``[at, at + duration)`` for traffic matching ``src``/``dst``.
``link_partition``
    Active messages matching ``src``/``dst`` vanish during the window
    ``[at, at + duration)`` (they are retried until the partition heals
    or the retry budget runs out).
``pcie_degrade``
    The H2D/D2H links of GPU ``gpu`` on node ``node`` are slowed by
    ``factor`` during ``[at, at + duration)``.
``am_drop`` / ``am_corrupt`` / ``am_ack_drop``
    One active-message attempt is lost in flight, delivered corrupted
    (discarded by the receiver), or delivered but its acknowledgement is
    lost (the sender retries; the receiver deduplicates by idempotency
    token).  Select with ``nth`` (the n-th AM attempt overall, 1-based)
    or ``probability`` (per attempt).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

__all__ = ["FaultEvent", "FaultPlan", "KINDS"]

#: Recognised event kinds.
KINDS = (
    "gpu_loss",
    "kernel_abort",
    "link_degrade",
    "link_partition",
    "pcie_degrade",
    "am_drop",
    "am_corrupt",
    "am_ack_drop",
)

_TIMED = {"gpu_loss", "link_degrade", "link_partition", "pcie_degrade"}
_WINDOWED = {"link_degrade", "link_partition", "pcie_degrade"}
_TRIGGERED = {"kernel_abort", "am_drop", "am_corrupt", "am_ack_drop"}


@dataclass(frozen=True)
class FaultEvent:
    """One fault. Unused fields for a kind are ignored (but validated)."""

    kind: str
    #: Virtual time of the event (or start of its window), seconds.
    at: float = 0.0
    #: Window length for windowed kinds; ``inf`` = until the end of the run.
    duration: float = math.inf
    #: Node / GPU selectors (``None`` = any).
    node: Optional[int] = None
    gpu: Optional[int] = None
    #: Endpoint selectors for link/AM kinds (node indices, ``None`` = any).
    src: Optional[int] = None
    dst: Optional[int] = None
    #: Slowdown multiplier for degrade kinds.
    factor: float = 1.0
    #: Per-attempt probability for triggered kinds.
    probability: float = 0.0
    #: Deterministic selector for triggered kinds: hit exactly the n-th
    #: matching attempt (1-based). Takes precedence over ``probability``.
    nth: Optional[int] = None

    def __post_init__(self):
        if self.kind not in KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.at < 0:
            raise ValueError("fault time must be non-negative")
        if self.kind in _WINDOWED and self.duration <= 0:
            raise ValueError(f"{self.kind} needs a positive duration")
        if self.kind in ("link_degrade", "pcie_degrade") and self.factor < 1.0:
            raise ValueError("degradation factor must be >= 1.0")
        if self.kind == "gpu_loss" and (self.node is None or self.gpu is None):
            raise ValueError("gpu_loss needs explicit node and gpu")
        if self.kind == "pcie_degrade" and (self.node is None or self.gpu is None):
            raise ValueError("pcie_degrade needs explicit node and gpu")
        if self.kind in _TRIGGERED:
            if self.nth is None and not (0.0 < self.probability <= 1.0):
                raise ValueError(
                    f"{self.kind} needs nth or a probability in (0, 1]")
            if self.nth is not None and self.nth < 1:
                raise ValueError("nth is 1-based")

    def matches_link(self, src: int, dst: int) -> bool:
        return ((self.src is None or self.src == src)
                and (self.dst is None or self.dst == dst))

    def matches_device(self, node: int, gpu: int) -> bool:
        return ((self.node is None or self.node == node)
                and (self.gpu is None or self.gpu == gpu))

    def active(self, now: float) -> bool:
        return self.at <= now < self.at + self.duration


@dataclass(frozen=True)
class FaultPlan:
    """A seeded schedule of faults plus recovery knobs.

    The empty plan (``FaultPlan()``) is the documented no-op: the runtime
    treats it exactly like no plan at all, so the fault machinery adds
    zero scheduled events and golden makespans stay bit-identical.
    """

    events: tuple = ()
    #: Seed of the engine's private RNG (probabilistic events draw from it
    #: in deterministic simulation order).
    seed: int = 0
    #: AM watchdog: how long the sender waits for completion per attempt.
    am_timeout: float = 10e-3
    #: First retry backoff; multiplied by ``am_backoff_factor`` each retry.
    am_backoff: float = 1e-3
    am_backoff_factor: float = 2.0
    #: Attempts per logical AM before the send fails loudly.
    am_max_retries: int = 10
    #: Re-executions per task before the run fails loudly.
    max_task_retries: int = 8
    #: Checkpoint-on-commit: write every task output back to its node's
    #: host memory so a later device loss never strands the sole copy.
    protect_outputs: bool = True
    #: Run coherence invariant checks after every recovery action (used by
    #: the chaos suite; costs wall time, not virtual time).
    paranoid: bool = False

    def __post_init__(self):
        object.__setattr__(self, "events", tuple(self.events))
        for ev in self.events:
            if not isinstance(ev, FaultEvent):
                raise TypeError(f"not a FaultEvent: {ev!r}")
        if self.am_timeout <= 0 or self.am_backoff <= 0:
            raise ValueError("am_timeout and am_backoff must be positive")
        if self.am_backoff_factor < 1.0:
            raise ValueError("am_backoff_factor must be >= 1.0")
        if self.am_max_retries < 1 or self.max_task_retries < 0:
            raise ValueError("retry budgets out of range")

    @property
    def is_empty(self) -> bool:
        return not self.events

    def by_kind(self, *kinds: str) -> tuple:
        return tuple(ev for ev in self.events if ev.kind in kinds)

    def describe(self) -> str:
        if self.is_empty:
            return f"FaultPlan(empty, seed={self.seed})"
        parts = ", ".join(
            f"{ev.kind}@{ev.at:g}" if ev.kind in _TIMED else ev.kind
            for ev in self.events)
        return f"FaultPlan(seed={self.seed}: {parts})"
