"""Per-device software caches (paper Section III.C.3).

Each device with a separate address space has a software *cache* that tracks
which regions are resident, so redundant transfers are skipped.  Caches work
in three modes, matching the evaluation's sweep:

* ``nocache`` — data is moved in before and out after every task; nothing is
  kept resident;
* ``wt`` (write-through) — reads are cached, but every write is immediately
  propagated to host memory;
* ``wb`` (write-back, the default) — writes stay on the device marked dirty
  and are written back as late as possible (on eviction or on a flush).

The cache is a state machine only: it decides hits, misses, and LRU victims.
The coherence layer performs the actual (simulated-time) transfers.
"""

from __future__ import annotations

import itertools
from collections import OrderedDict
from dataclasses import dataclass, field
from enum import Enum

from .region import Region, RegionKey
from .space import AddressSpace

__all__ = ["CachePolicy", "CacheEntry", "SoftwareCache", "CacheCapacityError"]


class CachePolicy(str, Enum):
    NO_CACHE = "nocache"
    WRITE_THROUGH = "wt"
    WRITE_BACK = "wb"

    @classmethod
    def parse(cls, value: "str | CachePolicy") -> "CachePolicy":
        if isinstance(value, cls):
            return value
        try:
            return cls(value)
        except ValueError:
            names = ", ".join(p.value for p in cls)
            raise ValueError(
                f"unknown cache policy {value!r}; expected one of {names}"
            ) from None


class CacheCapacityError(Exception):
    """A task's working set does not fit in the device memory."""


_use_clock = itertools.count()


@dataclass
class CacheEntry:
    region: Region
    dirty: bool = False
    pin_count: int = 0
    last_use: int = field(default_factory=lambda: next(_use_clock))

    @property
    def nbytes(self) -> int:
        return self.region.nbytes

    @property
    def evictable(self) -> bool:
        return self.pin_count == 0


class SoftwareCache:
    """Residency tracking + LRU replacement for one device address space.

    Entries live in an :class:`~collections.OrderedDict` kept in
    least-recently-used order (every hit/insert is an O(1) ``move_to_end``),
    so victim selection walks exactly the candidates it returns instead of
    re-sorting the whole cache per eviction.  The dirty set is maintained
    incrementally alongside, making :meth:`dirty_entries` O(dirty) rather
    than O(resident).
    """

    def __init__(self, space: AddressSpace, capacity: int,
                 policy: "CachePolicy | str" = CachePolicy.WRITE_BACK,
                 metrics=None):
        if capacity <= 0:
            raise ValueError("cache capacity must be positive")
        self.space = space
        self.capacity = capacity
        self.policy = CachePolicy.parse(policy)
        #: least-recently-used first (touch == move_to_end).
        self._entries: OrderedDict[RegionKey, CacheEntry] = OrderedDict()
        #: keys of dirty entries, ordered by when they were first dirtied.
        self._dirty: dict[RegionKey, None] = {}
        self.bytes_used = 0
        # statistics (mirrored into the registry when one is attached)
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.writebacks = 0
        self.writebacks_elided = 0
        #: optional re-fetch cost estimator ``CacheEntry -> float`` (set by
        #: the datamove layer when cost-aware eviction is enabled).  When
        #: None, :meth:`choose_victims` runs the historical pure-LRU path.
        self.victim_cost_fn = None
        #: optional :class:`~repro.metrics.CounterRegistry`; counters are
        #: namespaced ``cache.<space name>.*``.
        self.metrics = metrics
        self._mprefix = f"cache.{space.name}"
        # Hit/miss counting sits on every access; bind the counter objects
        # once instead of a name lookup per lookup().
        if metrics is not None:
            self._c_hits = metrics.counter(f"{self._mprefix}.hits")
            self._c_misses = metrics.counter(f"{self._mprefix}.misses")
        else:
            self._c_hits = self._c_misses = None

    def _count(self, what: str) -> None:
        if self.metrics is not None:
            self.metrics.inc(f"{self._mprefix}.{what}")

    def _track_usage(self) -> None:
        if self.metrics is not None:
            self.metrics.set_gauge(f"{self._mprefix}.bytes_used",
                                   self.bytes_used)

    # -- queries ---------------------------------------------------------
    def has(self, region: Region) -> bool:
        return region.key in self._entries

    def get(self, region: Region) -> CacheEntry:
        return self._entries[region.key]

    def entry_or_none(self, region: Region) -> "CacheEntry | None":
        return self._entries.get(region.key)

    def dirty_entries(self) -> list[CacheEntry]:
        return [self._entries[k] for k in self._dirty]

    def resident_regions(self) -> list[Region]:
        return [e.region for e in self._entries.values()]

    @property
    def bytes_free(self) -> int:
        return self.capacity - self.bytes_used

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups that hit (0.0 when nothing was accessed)."""
        accesses = self.hits + self.misses
        return self.hits / accesses if accesses else 0.0

    def __len__(self) -> int:
        return len(self._entries)

    # -- access path ------------------------------------------------------
    def lookup(self, region: Region) -> bool:
        """Record an access; True on hit (entry refreshed), False on miss."""
        ent = self._entries.get(region.key)
        if ent is None:
            self.misses += 1
            if self._c_misses is not None:
                self._c_misses.value += 1
            return False
        ent.last_use = next(_use_clock)
        self._entries.move_to_end(region.key)
        self.hits += 1
        if self._c_hits is not None:
            self._c_hits.value += 1
        return True

    def choose_victims(self, nbytes_needed: int) -> list[CacheEntry]:
        """LRU-order unpinned entries to evict so ``nbytes_needed`` fits.

        Raises :class:`CacheCapacityError` when even evicting everything
        evictable cannot make room (working set exceeds device memory).
        """
        if nbytes_needed <= self.bytes_free:
            return []
        victims: list[CacheEntry] = []
        freed = 0
        need = nbytes_needed - self.bytes_free
        if self.victim_cost_fn is not None:
            return self._choose_victims_by_cost(nbytes_needed, need)
        for ent in self._entries.values():   # LRU order by construction
            if not ent.evictable:
                continue
            victims.append(ent)
            freed += ent.nbytes
            if freed >= need:
                return victims
        raise CacheCapacityError(
            f"cannot fit {nbytes_needed} bytes in {self.space.name}: "
            f"{self.bytes_free} free, {freed} evictable"
        )

    def _choose_victims_by_cost(self, nbytes_needed: int,
                                need: int) -> list[CacheEntry]:
        """Cost-aware victim selection: collect the LRU candidate prefix
        that covers the need, widen it to twice as many entries, then evict
        cheapest-to-refetch first.  The sort is stable, so entries with
        equal cost keep their LRU order — pure LRU is the tie-break, not
        the other way round."""
        candidates = [e for e in self._entries.values() if e.evictable]
        freed = 0
        prefix = 0
        for ent in candidates:
            prefix += 1
            freed += ent.nbytes
            if freed >= need:
                break
        if freed < need:
            raise CacheCapacityError(
                f"cannot fit {nbytes_needed} bytes in {self.space.name}: "
                f"{self.bytes_free} free, {freed} evictable"
            )
        pool = candidates[:min(len(candidates), 2 * prefix)]
        pool.sort(key=self.victim_cost_fn)
        victims: list[CacheEntry] = []
        freed = 0
        for ent in pool:
            victims.append(ent)
            freed += ent.nbytes
            if freed >= need:
                break
        self._count("cost_aware_selections")
        return victims

    def insert(self, region: Region, dirty: bool = False) -> CacheEntry:
        """Add a resident entry.  Space must already have been made."""
        ent = self._entries.get(region.key)
        if ent is not None:
            ent.last_use = next(_use_clock)
            self._entries.move_to_end(region.key)
            if dirty and not ent.dirty:
                ent.dirty = True
                self._dirty[region.key] = None
            return ent
        if region.nbytes > self.bytes_free:
            raise CacheCapacityError(
                f"insert of {region!r} ({region.nbytes}B) exceeds free space "
                f"({self.bytes_free}B) in {self.space.name}; evict first"
            )
        ent = CacheEntry(region=region, dirty=dirty)
        self._entries[region.key] = ent
        if dirty:
            self._dirty[region.key] = None
        self.bytes_used += region.nbytes
        self._count("inserts")
        self._track_usage()
        return ent

    def remove(self, region: Region) -> None:
        ent = self._entries.get(region.key)
        if ent is not None:
            if ent.pin_count:
                raise RuntimeError(f"cannot remove pinned entry {region!r}")
            del self._entries[region.key]
            self._dirty.pop(region.key, None)
            self.bytes_used -= ent.nbytes
            self.evictions += 1
            self._count("evictions")
            self._track_usage()

    def invalidate_all(self) -> int:
        """Drop every entry unconditionally — pinned, dirty, everything.

        This models a device loss: the data is gone, so there is nothing
        to write back and pins are meaningless.  Returns the number of
        entries discarded."""
        count = len(self._entries)
        self._entries.clear()
        self._dirty.clear()
        self.bytes_used = 0
        if count:
            self._count("fault_invalidations")
        self._track_usage()
        return count

    # -- pinning (entries in use by a running task) -----------------------
    def pin(self, region: Region) -> None:
        self._entries[region.key].pin_count += 1

    def unpin(self, region: Region) -> None:
        ent = self._entries[region.key]
        if ent.pin_count <= 0:
            raise RuntimeError(f"unpin without pin on {region!r}")
        ent.pin_count -= 1

    # -- dirty tracking ----------------------------------------------------
    def mark_dirty(self, region: Region) -> None:
        ent = self._entries[region.key]
        if not ent.dirty:
            ent.dirty = True
            self._dirty[region.key] = None

    def mark_clean(self, region: Region) -> None:
        ent = self._entries.get(region.key)
        if ent is not None and ent.dirty:
            ent.dirty = False
            del self._dirty[region.key]
            self.writebacks += 1
            self._count("writebacks")

    def clear_dirty(self, region: Region) -> None:
        """Drop the dirty bit *without* counting a write-back: the datamove
        layer proved the version dead, so no bytes moved anywhere."""
        ent = self._entries.get(region.key)
        if ent is not None and ent.dirty:
            ent.dirty = False
            del self._dirty[region.key]
            self.writebacks_elided += 1
            self._count("writebacks_elided")
