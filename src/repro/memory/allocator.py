"""Memory pools: device allocations and the pinned staging pool.

The paper (Section III.D.2) pre-allocates both GPU memory and page-locked
host memory at startup and manages them inside the runtime, "to avoid
unnecessary calls to the CUDA runtime" and to enable transfer/compute
overlap.  :class:`BytePool` models such a pre-allocated pool: acquisitions
block (in simulated time) until enough bytes are free.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim import Environment, Event

__all__ = ["BytePool", "PoolLease"]


@dataclass
class PoolLease:
    """An outstanding allocation from a :class:`BytePool`."""

    pool: "BytePool"
    nbytes: int
    released: bool = False

    def release(self) -> None:
        if not self.released:
            self.released = True
            self.pool._release(self.nbytes)


class BytePool:
    """A counting pool of bytes with FIFO blocking acquisition."""

    def __init__(self, env: Environment, capacity: int, name: str = ""):
        if capacity <= 0:
            raise ValueError("pool capacity must be positive")
        self.env = env
        self.capacity = capacity
        self.name = name
        self.bytes_used = 0
        self._waiters: list[tuple[int, Event]] = []
        self.peak_usage = 0

    @property
    def bytes_free(self) -> int:
        return self.capacity - self.bytes_used

    def acquire(self, nbytes: int) -> Event:
        """Event that fires with a :class:`PoolLease` once bytes are free."""
        if nbytes <= 0:
            raise ValueError(f"acquire needs a positive size, got {nbytes}")
        if nbytes > self.capacity:
            raise ValueError(
                f"request of {nbytes}B exceeds pool {self.name!r} capacity "
                f"{self.capacity}B"
            )
        ev = Event(self.env)
        self._waiters.append((nbytes, ev))
        self._grant()
        return ev

    def try_acquire(self, nbytes: int) -> "PoolLease | None":
        """Non-blocking acquire; None if it would wait."""
        if self._waiters or nbytes > self.bytes_free:
            return None
        self.bytes_used += nbytes
        self.peak_usage = max(self.peak_usage, self.bytes_used)
        return PoolLease(self, nbytes)

    def _release(self, nbytes: int) -> None:
        self.bytes_used -= nbytes
        assert self.bytes_used >= 0, "pool accounting went negative"
        self._grant()

    def _grant(self) -> None:
        # FIFO: head-of-line blocking is intentional (a big request is not
        # starved by a stream of small ones).
        while self._waiters:
            nbytes, ev = self._waiters[0]
            if ev.triggered:
                self._waiters.pop(0)
                continue
            if nbytes > self.bytes_free:
                return
            self._waiters.pop(0)
            self.bytes_used += nbytes
            self.peak_usage = max(self.peak_usage, self.bytes_used)
            ev.succeed(PoolLease(self, nbytes))
