"""The directory: who holds the current version of each region.

The paper (Section III.C.3) keeps "a hierarchical directory [that] keeps
track of the physical location of data and of the most current version".
Here the directory stores, per region, a monotonically increasing version
and the set of address spaces holding that version.  Node-level queries
(``nodes_with``) provide the hierarchical cluster view: from the master's
perspective a whole remote node is a single device.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field

from .region import (
    PartialOverlapError,
    Region,
    RegionKey,
)
from .space import AddressSpace

__all__ = ["Directory", "DirectoryEntry"]

#: interned ``directory.*`` counter names (shared across instances).
_COUNT_KEYS: dict[str, str] = {}


@dataclass
class DirectoryEntry:
    region: Region
    version: int = 0
    holders: set[AddressSpace] = field(default_factory=set)
    #: the task that produced the current version (fault-recovery lineage;
    #: None for registered-but-never-written data, whose home copy is the
    #: canonical source anyway).
    producer: object = None
    #: the current version was deliberately discarded without a write-back
    #: (datamove write-back elision proved it dead: no live reader, and a
    #: live task will overwrite it).  A discarded entry may legally have no
    #: holder; the next :meth:`Directory.record_write` clears the flag.
    discarded: bool = False


class Directory:
    """Location/version tracking for every region touched by any task."""

    def __init__(self, home: AddressSpace, metrics=None):
        #: Where data lives when nothing else holds it (master host memory).
        self.home = home
        self._entries: dict[RegionKey, DirectoryEntry] = {}
        #: Per object id, the distinct region shapes seen (for overlap
        #: checks), kept sorted by start for bisect lookups.
        self._shapes: dict[int, list[Region]] = {}
        #: optional :class:`~repro.metrics.CounterRegistry`; counters are
        #: namespaced ``directory.*``.
        self.metrics = metrics
        #: bound counter for the hottest count (every affinity score and
        #: coherence check funnels through entry()): incrementing the live
        #: Counter object skips the registry's name lookup per call.
        self._c_lookups = (metrics.counter("directory.lookups")
                           if metrics is not None else None)

    def _count(self, what: str) -> None:
        if self.metrics is not None:
            key = _COUNT_KEYS.get(what)
            if key is None:
                key = _COUNT_KEYS[what] = "directory." + what
            self.metrics.inc(key)

    # -- bookkeeping -----------------------------------------------------
    def entry(self, region: Region) -> DirectoryEntry:
        # entry() is the single hottest directory call (every affinity
        # score and coherence check funnels through it): the metrics count
        # and the found-path lookup are inlined.
        c = self._c_lookups
        if c is not None:
            c.value += 1
        ent = self._entries.get(region.key)
        if ent is None:
            self._check_shape(region)
            ent = DirectoryEntry(region=region, version=0,
                                 holders={self.home})
            self._entries[region.key] = ent
            self._count("entries_created")
            if self.metrics is not None:
                self.metrics.set_gauge("directory.entries",
                                       len(self._entries))
        return ent

    def _check_shape(self, region: Region) -> None:
        # The stored shapes are pairwise disjoint (entry() only calls this
        # for unseen keys), so after bisecting by start only the immediate
        # neighbours of the insertion point can overlap the new region.
        seen = self._shapes.setdefault(region.obj.oid, [])
        i = bisect_left(seen, (region.start, region.end),
                        key=lambda r: (r.start, r.end))
        if i < len(seen) and seen[i].key == region.key:
            return
        other = None
        if i > 0 and seen[i - 1].end > region.start:
            other = seen[i - 1]
        elif i < len(seen) and region.end > seen[i].start:
            other = seen[i]
        if other is not None:
            raise PartialOverlapError(
                f"region {region!r} partially overlaps previously used "
                f"{other!r}; unsupported (paper Section II.A.3)"
            )
        seen.insert(i, region)

    # -- queries -----------------------------------------------------------
    def version(self, region: Region) -> int:
        return self.entry(region).version

    def holders(self, region: Region) -> frozenset[AddressSpace]:
        return frozenset(self.entry(region).holders)

    def is_current(self, region: Region, space: AddressSpace) -> bool:
        return space in self.entry(region).holders

    def nodes_with(self, region: Region) -> frozenset[int]:
        """Node-level (hierarchical) view: nodes holding the latest version."""
        return frozenset(s.node_index for s in self.entry(region).holders)

    def host_is_current(self, region: Region) -> bool:
        return any(s.kind == "host" and s.node_index == self.home.node_index
                   for s in self.entry(region).holders)

    # -- transitions ---------------------------------------------------------
    def record_copy(self, region: Region, space: AddressSpace) -> None:
        """``space`` received the current version of ``region``."""
        self._count("copies_recorded")
        self.entry(region).holders.add(space)

    def record_write(self, region: Region, space: AddressSpace,
                     producer=None) -> None:
        """``space`` produced a new version; all other copies are stale.

        ``producer`` (a task) records who computed this version, so the
        fault engine can replay it if every copy is later lost."""
        ent = self.entry(region)
        ent.version += 1
        ent.producer = producer
        ent.discarded = False
        self._count("writes_recorded")
        if self.metrics is not None and len(ent.holders) > 1:
            # Every other holder's copy just became stale.
            self.metrics.inc("directory.invalidations",
                             len(ent.holders) - (space in ent.holders))
        ent.holders = {space}

    def record_drop(self, region: Region, space: AddressSpace) -> None:
        """``space`` discarded its copy (eviction or invalidation).

        Dropping the last holder is illegal — the coherence layer must write
        data back before evicting the only current copy.
        """
        ent = self.entry(region)
        if space in ent.holders:
            if len(ent.holders) == 1:
                raise RuntimeError(
                    f"dropping the only current copy of {region!r} from "
                    f"{space!r} would lose data"
                )
            ent.holders.remove(space)
            self._count("drops_recorded")

    def record_discard(self, region: Region, space: AddressSpace) -> None:
        """``space`` discarded a *dead* version without writing it back.

        Unlike :meth:`record_drop` this may strand the region with no
        holder: the datamove layer's liveness proof guarantees no live task
        will ever read this version again (a live task will overwrite it,
        and the overwrite's :meth:`record_write` re-establishes holders
        before any flush can look).  The entry is marked ``discarded`` so
        coherence invariant checks know the hole is intentional."""
        ent = self.entry(region)
        if space in ent.holders:
            ent.holders.remove(space)
            if not ent.holders:
                ent.discarded = True
            self._count("discards_recorded")

    def invalidate_space(self, space: AddressSpace) -> list[Region]:
        """Discard every replica held by ``space`` (device loss).

        Unlike :meth:`record_drop` this may legitimately strand a region
        with no holder — the copy is genuinely gone.  Stranded regions are
        returned so the fault engine can restore them (promote nothing:
        there is nothing left to promote; it replays the producer)."""
        orphaned: list[Region] = []
        dropped = 0
        for ent in self._entries.values():
            if space in ent.holders:
                ent.holders.discard(space)
                dropped += 1
                if not ent.holders:
                    orphaned.append(ent.region)
        if dropped and self.metrics is not None:
            self.metrics.inc("directory.fault_invalidations", dropped)
        return orphaned

    def peek(self, region: Region) -> "DirectoryEntry | None":
        """The entry for ``region`` if one exists — no side effects (entry()
        would create one, which read-only consumers must not)."""
        return self._entries.get(region.key)

    def all_regions(self) -> list[Region]:
        return [e.region for e in self._entries.values()]

    def regions_held_by(self, space: AddressSpace) -> list[Region]:
        return [e.region for e in self._entries.values()
                if space in e.holders]

    def __len__(self) -> int:
        return len(self._entries)
