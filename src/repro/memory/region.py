"""Data objects and regions — the units of dependences and coherence.

A :class:`DataObject` is one user allocation (a matrix, a vector) registered
with the runtime.  A :class:`Region` is a contiguous element range of one
object; dependence clauses and copy clauses name regions.

Following the paper (Section II.A.3), regions referenced by different tasks
must either *match exactly* or be *disjoint*: the implementation "currently
does not support" partial overlap, and neither do we — we detect it and raise
:class:`PartialOverlapError` instead of computing wrong dependences silently.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

__all__ = [
    "DataObject",
    "Region",
    "RegionKey",
    "PartialOverlapError",
    "relation",
    "check_supported_overlap",
]

_object_ids = itertools.count()


class PartialOverlapError(Exception):
    """Two regions overlap without matching — unsupported by the model."""


@dataclass(frozen=True)
class DataObject:
    """One registered allocation, identified by a stable object id."""

    name: str
    num_elements: int
    dtype: np.dtype = field(default_factory=lambda: np.dtype(np.float32))
    oid: int = field(default_factory=lambda: next(_object_ids))

    def __post_init__(self):
        if self.num_elements <= 0:
            raise ValueError(f"object {self.name!r} needs a positive size")
        object.__setattr__(self, "dtype", np.dtype(self.dtype))
        # Region intern table: every (start, length) range is materialized
        # once and shared.  Regions are immutable value objects keyed by
        # (oid, start, length), so sharing is safe, and the hot layers
        # (graph, directory, caches) then hash/compare one object identity
        # per access instead of re-deriving key/hash/nbytes per call site.
        object.__setattr__(self, "_regions", {})

    @property
    def nbytes(self) -> int:
        return self.num_elements * self.dtype.itemsize

    @property
    def whole(self) -> "Region":
        return self.region(0, self.num_elements)

    def region(self, start: int, length: int) -> "Region":
        r = self._regions.get((start, length))
        if r is None:
            r = self._regions[(start, length)] = Region(self, start, length)
        return r

    def __repr__(self) -> str:
        return f"<DataObject #{self.oid} {self.name!r} {self.num_elements}x{self.dtype}>"


#: Hashable identity of a region: (object id, start element, length).
RegionKey = tuple[int, int, int]


@dataclass(frozen=True, eq=False)
class Region:
    """A contiguous element range ``[start, start+length)`` of one object.

    Regions are the keys of every hot lookup in the runtime (dependency
    graph, directory, caches), so the identity tuple ``key``, its hash, and
    the derived sizes are computed once at construction instead of on every
    access.  Equality follows ``key``: object ids are globally unique, so
    two regions are interchangeable iff their keys match.
    """

    obj: DataObject
    start: int
    length: int

    # Precomputed in __post_init__ (plain attributes, not dataclass fields).
    key: RegionKey = field(init=False, repr=False, compare=False)
    end: int = field(init=False, repr=False, compare=False)
    nbytes: int = field(init=False, repr=False, compare=False)

    def __post_init__(self):
        if self.length <= 0:
            raise ValueError("region length must be positive")
        if self.start < 0 or self.start + self.length > self.obj.num_elements:
            raise ValueError(
                f"region [{self.start}, {self.start + self.length}) out of "
                f"bounds for {self.obj!r}"
            )
        key = (self.obj.oid, self.start, self.length)
        object.__setattr__(self, "key", key)
        object.__setattr__(self, "end", self.start + self.length)
        object.__setattr__(self, "nbytes",
                           self.length * self.obj.dtype.itemsize)
        object.__setattr__(self, "_hash", hash(key))

    def __eq__(self, other) -> bool:
        if not isinstance(other, Region):
            return NotImplemented
        return self.key == other.key

    def __hash__(self) -> int:
        return self._hash

    def same_object(self, other: "Region") -> bool:
        return self.obj.oid == other.obj.oid

    def __repr__(self) -> str:
        return (f"<Region {self.obj.name}[{self.start}:{self.end}] "
                f"{self.nbytes}B>")


def relation(a: Region, b: Region) -> str:
    """Classify two regions: ``"equal"``, ``"disjoint"`` or ``"partial"``."""
    if not a.same_object(b):
        return "disjoint"
    if a.start == b.start and a.length == b.length:
        return "equal"
    if a.end <= b.start or b.end <= a.start:
        return "disjoint"
    return "partial"


def check_supported_overlap(a: Region, b: Region,
                            context: Optional[str] = None) -> str:
    """Like :func:`relation` but raises on unsupported partial overlap."""
    rel = relation(a, b)
    if rel == "partial":
        where = f" ({context})" if context else ""
        raise PartialOverlapError(
            f"regions {a!r} and {b!r} partially overlap{where}; the OmpSs "
            "implementation reproduced here requires exact match or "
            "disjointness (paper Section II.A.3)"
        )
    return rel
