"""Memory subsystem: regions, address spaces, directory, caches, pools.

Implements the coherence substrate of Nanos++ (paper Section III.C.3): a
directory tracking the physical location and version of every region, plus a
software cache per separate address space with no-cache / write-through /
write-back policies.
"""

from .allocator import BytePool, PoolLease
from .cache import CacheCapacityError, CacheEntry, CachePolicy, SoftwareCache
from .directory import Directory, DirectoryEntry
from .region import (
    DataObject,
    PartialOverlapError,
    Region,
    RegionKey,
    check_supported_overlap,
    relation,
)
from .space import AddressSpace, DeviceSpace, HostSpace

__all__ = [
    "DataObject",
    "Region",
    "RegionKey",
    "relation",
    "check_supported_overlap",
    "PartialOverlapError",
    "AddressSpace",
    "HostSpace",
    "DeviceSpace",
    "Directory",
    "DirectoryEntry",
    "CachePolicy",
    "CacheEntry",
    "SoftwareCache",
    "CacheCapacityError",
    "BytePool",
    "PoolLease",
]
