"""Address spaces: the physical memories data can live in.

In *functional mode* every space holds real NumPy buffers, so the coherence
protocol is checked end-to-end: if the runtime fetches from a stale location
or forgets a writeback, application results come out numerically wrong and
tests catch it.  In *performance mode* buffers are not materialized — only
the directory/cache state machines and transfer timings run, which lets the
benchmark harness use paper-scale problem sizes.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .region import DataObject, Region, RegionKey

__all__ = ["AddressSpace", "HostSpace", "DeviceSpace"]


class AddressSpace:
    """Base: one physical memory with an identity used by the directory."""

    kind = "abstract"
    #: set by the fault engine when the backing device is lost.  The
    #: functional buffers are deliberately kept (fault-model assumption:
    #: transfers already in flight at the instant of the loss complete),
    #: but the directory never lists a failed space as a holder again.
    failed = False

    def __init__(self, name: str, node_index: int, functional: bool):
        self.name = name
        self.node_index = node_index
        self.functional = functional

    # -- functional-mode data plane ------------------------------------
    def read(self, region: Region) -> np.ndarray:
        raise NotImplementedError

    def write(self, region: Region, data: np.ndarray) -> None:
        raise NotImplementedError

    def drop(self, region: Region) -> None:
        """Forget any local copy of ``region`` (eviction/invalidation)."""

    def holds_buffer(self, region: Region) -> bool:
        return False

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name}>"


class HostSpace(AddressSpace):
    """Host memory of one node.

    The master node's host space is *canonical*: user objects are registered
    there and stored as full arrays (the serial program's memory).  Slave
    hosts hold per-region copies like devices do.
    """

    kind = "host"

    def __init__(self, name: str, node_index: int, functional: bool,
                 canonical: bool = False):
        super().__init__(name, node_index, functional)
        self.canonical = canonical
        self._objects: dict[int, np.ndarray] = {}
        self._copies: dict[RegionKey, np.ndarray] = {}

    def register_object(self, obj: DataObject,
                        initial: Optional[np.ndarray] = None) -> None:
        """Attach storage for a user object (canonical spaces only)."""
        if not self.canonical:
            raise RuntimeError(f"{self!r} is not a canonical space")
        if not self.functional:
            return
        if initial is not None:
            arr = np.ascontiguousarray(initial, dtype=obj.dtype).reshape(-1)
            if arr.size != obj.num_elements:
                raise ValueError(
                    f"initial data has {arr.size} elements, object "
                    f"{obj.name!r} expects {obj.num_elements}"
                )
        else:
            arr = np.zeros(obj.num_elements, dtype=obj.dtype)
        self._objects[obj.oid] = arr

    def object_array(self, obj: DataObject) -> np.ndarray:
        """The canonical full array of a registered object."""
        return self._objects[obj.oid]

    def read(self, region: Region) -> np.ndarray:
        if not self.functional:
            raise RuntimeError("read() is only valid in functional mode")
        if self.canonical:
            arr = self._objects[region.obj.oid]
            return arr[region.start:region.end]
        return self._copies[region.key]

    def write(self, region: Region, data: np.ndarray) -> None:
        if not self.functional:
            return
        if self.canonical:
            arr = self._objects[region.obj.oid]
            arr[region.start:region.end] = data.reshape(-1)
        else:
            self._copies[region.key] = np.array(data, dtype=region.obj.dtype
                                                ).reshape(-1).copy()

    def writable(self, region: Region) -> np.ndarray:
        """A buffer a task can write in place (allocated on demand)."""
        if not self.functional:
            raise RuntimeError("writable() is only valid in functional mode")
        if self.canonical:
            return self.read(region)
        if region.key not in self._copies:
            self._copies[region.key] = np.zeros(region.length,
                                                dtype=region.obj.dtype)
        return self._copies[region.key]

    def drop(self, region: Region) -> None:
        if self.canonical:
            return  # canonical storage is never dropped
        self._copies.pop(region.key, None)

    def holds_buffer(self, region: Region) -> bool:
        if self.canonical:
            return region.obj.oid in self._objects
        return region.key in self._copies


class DeviceSpace(AddressSpace):
    """A separate device memory (one GPU): per-region buffer copies."""

    kind = "gpu"

    def __init__(self, name: str, node_index: int, device_index: int,
                 functional: bool):
        super().__init__(name, node_index, functional)
        self.device_index = device_index
        self._copies: dict[RegionKey, np.ndarray] = {}

    def read(self, region: Region) -> np.ndarray:
        if not self.functional:
            raise RuntimeError("read() is only valid in functional mode")
        return self._copies[region.key]

    def write(self, region: Region, data: np.ndarray) -> None:
        if not self.functional:
            return
        self._copies[region.key] = np.array(data, dtype=region.obj.dtype
                                            ).reshape(-1).copy()

    def writable(self, region: Region) -> np.ndarray:
        if not self.functional:
            raise RuntimeError("writable() is only valid in functional mode")
        if region.key not in self._copies:
            self._copies[region.key] = np.zeros(region.length,
                                                dtype=region.obj.dtype)
        return self._copies[region.key]

    def drop(self, region: Region) -> None:
        self._copies.pop(region.key, None)

    def holds_buffer(self, region: Region) -> bool:
        return region.key in self._copies
