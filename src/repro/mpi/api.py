"""Simulated MPI for the paper's MPI+CUDA baselines.

Ranks are simulated processes, one per cluster node.  The subset implemented
is what SUMMA matmul, STREAM, Perlin and N-Body need: blocking Send/Recv,
Bcast, Allgather, Barrier, plus non-blocking Isend/Irecv.  All transfers run
over the same :class:`~repro.hardware.network.Network` as the OmpSs runtime,
so the comparison is apples-to-apples.

The API follows mpi4py conventions (capitalized = buffer-style with explicit
byte counts); communication carries both simulated wire time and, in
functional mode, the actual NumPy payload.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

import numpy as np

from ..hardware.network import Network
from ..sim import Environment, Event, Store

__all__ = ["Communicator", "MPIWorld"]


@dataclass
class _Message:
    """An in-flight message buffered at the receiver (eager protocol)."""

    src: int
    tag: int
    payload: Any
    nbytes: int


class Communicator:
    """One rank's view of the world (like an ``MPI_COMM_WORLD`` handle)."""

    def __init__(self, world: "MPIWorld", rank: int):
        self.world = world
        self.rank = rank

    # -- mpi4py-style accessors ------------------------------------------
    def Get_rank(self) -> int:
        return self.rank

    def Get_size(self) -> int:
        return self.world.size

    @property
    def env(self) -> Environment:
        return self.world.env

    # -- point to point -----------------------------------------------------
    def Send(self, payload: Any, nbytes: int, dest: int, tag: int = 0):
        """Process generator: blocking send.

        Eager protocol: completes once the wire transfer finishes and the
        message is buffered at the receiver (no rendezvous with the Recv).
        """
        yield self.world._send(self.rank, dest, tag, payload, nbytes)

    def Isend(self, payload: Any, nbytes: int, dest: int, tag: int = 0) -> Event:
        """Non-blocking send; returns a request event (wait for completion)."""
        return self.world._send(self.rank, dest, tag, payload, nbytes)

    def Recv(self, source: int, tag: int = 0):
        """Process generator: blocking receive; returns the payload."""
        msg = yield self.world._recv(self.rank, source, tag)
        return msg.payload

    def Irecv(self, source: int, tag: int = 0) -> Event:
        """Non-blocking receive; the event's value is the payload."""
        ev = Event(self.env)

        def waiter():
            msg = yield self.world._recv(self.rank, source, tag)
            ev.succeed(msg.payload)

        self.env.process(waiter())
        return ev

    # -- collectives -----------------------------------------------------------
    def Barrier(self):
        """Process generator: synchronize all ranks (tree-free rendezvous)."""
        yield self.world._barrier_arrive(self.rank)

    def Bcast(self, payload: Any, nbytes: int, root: int = 0):
        """Process generator: broadcast from root; returns the payload."""
        if self.rank == root:
            for dst in range(self.world.size):
                if dst != root:
                    yield self.world._send(root, dst, _BCAST_TAG, payload,
                                           nbytes)
            return payload
        msg = yield self.world._recv(self.rank, root, _BCAST_TAG)
        return msg.payload

    def Allgather(self, payload: Any, nbytes: int) -> "Any":
        """Process generator: every rank contributes; returns list of all
        contributions indexed by rank (ring algorithm wire pattern)."""
        size = self.world.size
        result: list[Any] = [None] * size
        result[self.rank] = payload
        if size == 1:
            return result
        # Ring: size-1 steps; each step send to right, receive from left.
        right = (self.rank + 1) % size
        left = (self.rank - 1) % size
        current = payload
        current_owner = self.rank
        for _step in range(size - 1):
            send_req = self.Isend(current, nbytes, right, tag=_GATHER_TAG)
            msg = yield self.world._recv(self.rank, left, _GATHER_TAG)
            yield send_req
            current = msg.payload
            current_owner = (current_owner - 1) % size
            result[current_owner] = current
        return result


_BCAST_TAG = -2
_GATHER_TAG = -3


class MPIWorld:
    """The communicator factory plus the matching/wire machinery."""

    def __init__(self, env: Environment, network: Network):
        self.env = env
        self.network = network
        self.size = len(network.nodes)
        self._mailboxes: dict[tuple[int, int, int], Store] = {}
        self._barrier_waiters: list[Event] = []
        self.messages_sent = 0
        self.bytes_sent = 0

    def comm(self, rank: int) -> Communicator:
        if not 0 <= rank < self.size:
            raise ValueError(f"rank {rank} out of range for size {self.size}")
        return Communicator(self, rank)

    # -- internals ---------------------------------------------------------
    def _mailbox(self, dst: int, src: int, tag: int) -> Store:
        key = (dst, src, tag)
        box = self._mailboxes.get(key)
        if box is None:
            box = Store(self.env, name=f"mpi{key}")
            self._mailboxes[key] = box
        return box

    def _send(self, src: int, dst: int, tag: int, payload: Any,
              nbytes: int) -> Event:
        if not 0 <= dst < self.size:
            raise ValueError(f"bad destination rank {dst}")
        self.messages_sent += 1
        self.bytes_sent += nbytes
        msg = _Message(src=src, tag=tag, payload=payload, nbytes=nbytes)

        def wire():
            yield self.env.process(self.network.transfer(
                self.network.nodes[src], self.network.nodes[dst], nbytes))
            self._mailbox(dst, src, tag).put(msg)

        return self.env.process(wire())

    def _recv(self, dst: int, src: int, tag: int) -> Event:
        ev = Event(self.env)

        def take():
            msg = yield self._mailbox(dst, src, tag).get()
            ev.succeed(msg)

        self.env.process(take())
        return ev

    def _barrier_arrive(self, rank: int) -> Event:
        ev = Event(self.env)
        self._barrier_waiters.append(ev)
        if len(self._barrier_waiters) == self.size:
            waiters, self._barrier_waiters = self._barrier_waiters, []
            # Charge one fabric latency for the release wave.
            def release():
                yield self.env.timeout(self.network.nic.latency)
                for w in waiters:
                    w.succeed()
            self.env.process(release())
        return ev
