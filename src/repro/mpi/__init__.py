"""Simulated MPI library for the MPI+CUDA baseline applications."""

from .api import Communicator, MPIWorld

__all__ = ["Communicator", "MPIWorld"]
