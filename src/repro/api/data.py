"""Data handles: the application's view of runtime-managed memory.

A :class:`DataHandle` wraps one registered :class:`~repro.memory.DataObject`.
Slicing a handle (``a[j:j+bs]``) yields a :class:`DataView` over the
corresponding region — the analogue of passing ``&a[j]`` with an ``[BS]``
dependence annotation in the paper's C examples.  Views are what dependence
clauses resolve against.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

import numpy as np

from ..memory.region import DataObject, Region

if TYPE_CHECKING:  # pragma: no cover
    from .program import Program

__all__ = ["DataHandle", "DataView"]


class DataView:
    """A contiguous slice of a handle: one dependence/copy region."""

    def __init__(self, handle: "DataHandle", region: Region):
        self.handle = handle
        self.region = region

    @property
    def nbytes(self) -> int:
        return self.region.nbytes

    def __len__(self) -> int:
        return self.region.length

    @property
    def np(self) -> np.ndarray:
        """Current canonical contents (functional mode, after a flush)."""
        rt = self.handle.program.rt
        if rt.sanitizer is not None:
            # Only this view's range is read — noting the whole object
            # would charge the program with reads it never made.
            rt.sanitizer.note_host_read(self.handle.obj, self.region.start,
                                        self.region.end)
        array = rt.read_array(self.handle.obj)
        return array[self.region.start:self.region.end]

    def __repr__(self) -> str:
        return f"<DataView {self.region!r}>"


class DataHandle:
    """One runtime-managed array, sliceable into task regions."""

    def __init__(self, program: "Program", obj: DataObject):
        self.program = program
        self.obj = obj

    @property
    def name(self) -> str:
        return self.obj.name

    @property
    def num_elements(self) -> int:
        return self.obj.num_elements

    @property
    def nbytes(self) -> int:
        return self.obj.nbytes

    @property
    def whole(self) -> DataView:
        return DataView(self, self.obj.whole)

    def view(self, start: int, length: int) -> DataView:
        return DataView(self, self.obj.region(start, length))

    def __getitem__(self, index) -> DataView:
        if isinstance(index, slice):
            if index.step not in (None, 1):
                raise ValueError("strided regions are not supported "
                                 "(paper future work: non-contiguous regions)")
            start = 0 if index.start is None else index.start
            stop = self.num_elements if index.stop is None else index.stop
            if start < 0 or stop < 0:
                raise ValueError("negative slice bounds are not supported")
            return self.view(start, stop - start)
        raise TypeError("index a handle with a slice, e.g. a[j:j+bs]")

    def __len__(self) -> int:
        return self.num_elements

    @property
    def np(self) -> np.ndarray:
        """The canonical master-host array (functional mode)."""
        rt = self.program.rt
        if rt.sanitizer is not None:
            rt.sanitizer.note_host_read(self.obj, 0, self.obj.num_elements)
        return rt.read_array(self.obj)

    def __repr__(self) -> str:
        return f"<DataHandle {self.obj!r}>"
