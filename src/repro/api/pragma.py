"""Parser for OmpSs ``#pragma omp`` directives (the Mercurium front-end role).

The compiler's job in the paper is to "recognize the constructs and transform
them into calls to the Nanos++ runtime library", turning data-flow clauses
into region expressions.  This module parses the paper's directive syntax —
exactly the forms appearing in Figures 1 and 2 — into structured clause
objects that :mod:`repro.api.translate` maps onto the decorator machinery::

    #pragma omp target device(cuda) copy_deps
    #pragma omp task input([N] a, [N] b) output([N] c)

Dependence expressions support the paper's array-section shorthand
``[len] ptr`` as well as plain scalars/pointers (``x``).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Optional

__all__ = ["PragmaError", "DepExpr", "TaskDirective", "TargetDirective",
           "TaskwaitDirective", "parse_pragma"]


class PragmaError(Exception):
    """Malformed directive text."""


@dataclass(frozen=True)
class DepExpr:
    """One dependence expression: a name with an optional section length.

    ``[N] a`` parses to ``DepExpr(name="a", length="N")``; a bare ``x`` to
    ``DepExpr(name="x", length=None)`` (a scalar / whole-object reference).
    The length is kept symbolic — it is evaluated against the task's actual
    arguments at submission time, like Mercurium's runtime-evaluated clause
    expressions.
    """

    name: str
    length: Optional[str] = None


_DEP = re.compile(r"^\s*((?:\[\s*[^\]]+?\s*\]\s*)*)([A-Za-z_]\w*)\s*$")
_SECTION = re.compile(r"\[\s*([^\]]+?)\s*\]")


def _parse_dep_list(text: str) -> tuple[DepExpr, ...]:
    deps = []
    for piece in text.split(","):
        m = _DEP.match(piece)
        if not m:
            raise PragmaError(f"bad dependence expression {piece.strip()!r}")
        sections, name = m.group(1), m.group(2)
        dims = _SECTION.findall(sections)
        # Multi-dimensional sections ([BS][BS] C) flatten to their element
        # product; the actual region is resolved from the DataView argument.
        length = "*".join(dims) if dims else None
        deps.append(DepExpr(name=name, length=length))
    return tuple(deps)


@dataclass(frozen=True)
class TaskDirective:
    """``#pragma omp task [input(...)] [output(...)] [inout(...)]``"""

    inputs: tuple[DepExpr, ...] = ()
    outputs: tuple[DepExpr, ...] = ()
    inouts: tuple[DepExpr, ...] = ()


@dataclass(frozen=True)
class TargetDirective:
    """``#pragma omp target [device(...)] [copy_deps] [copy_in/out(...)]``"""

    device: str = "smp"
    copy_deps: bool = False
    copy_in: tuple[DepExpr, ...] = ()
    copy_out: tuple[DepExpr, ...] = ()
    copy_inout: tuple[DepExpr, ...] = ()


@dataclass(frozen=True)
class TaskwaitDirective:
    """``#pragma omp taskwait [on(...)] [noflush]``"""

    on: tuple[DepExpr, ...] = ()
    noflush: bool = False


_PRAGMA = re.compile(r"^\s*#\s*pragma\s+omp\s+(\w+)\s*(.*)$")
_CLAUSE = re.compile(r"([A-Za-z_]\w*)\s*(?:\(((?:[^()]|\([^()]*\))*)\))?")

_DEVICES = {"smp", "cuda", "gpu", "cell", "opencl"}
#: devices accepted by the parser but mapped onto the two we implement.
_DEVICE_ALIASES = {"gpu": "cuda", "cell": "smp", "opencl": "cuda"}


def _clauses(text: str) -> list[tuple[str, Optional[str]]]:
    out = []
    pos = 0
    while pos < len(text):
        m = _CLAUSE.search(text, pos)
        if not m:
            break
        out.append((m.group(1), m.group(2)))
        pos = m.end()
    return out


def parse_pragma(line: str):
    """Parse one ``#pragma omp ...`` line into a directive object."""
    m = _PRAGMA.match(line)
    if not m:
        raise PragmaError(f"not an omp pragma: {line!r}")
    construct, rest = m.group(1), m.group(2)
    clauses = _clauses(rest)
    if construct == "task":
        kwargs = {"inputs": (), "outputs": (), "inouts": ()}
        mapping = {"input": "inputs", "output": "outputs", "inout": "inouts"}
        for name, arg in clauses:
            if name not in mapping:
                raise PragmaError(f"unknown task clause {name!r}")
            if arg is None:
                raise PragmaError(f"task clause {name!r} needs arguments")
            kwargs[mapping[name]] = _parse_dep_list(arg)
        return TaskDirective(**kwargs)
    if construct == "target":
        device = "smp"
        copy_deps = False
        copies = {"copy_in": (), "copy_out": (), "copy_inout": ()}
        for name, arg in clauses:
            if name == "device":
                if arg is None:
                    raise PragmaError("device clause needs an argument")
                dev = arg.strip()
                if dev not in _DEVICES:
                    raise PragmaError(f"unknown device {dev!r}")
                device = _DEVICE_ALIASES.get(dev, dev)
            elif name == "copy_deps":
                copy_deps = True
            elif name in copies:
                if arg is None:
                    raise PragmaError(f"{name} clause needs arguments")
                copies[name] = _parse_dep_list(arg)
            else:
                raise PragmaError(f"unknown target clause {name!r}")
        return TargetDirective(device=device, copy_deps=copy_deps, **copies)
    if construct == "taskwait":
        on: tuple[DepExpr, ...] = ()
        noflush = False
        for name, arg in clauses:
            if name == "on":
                if arg is None:
                    raise PragmaError("on clause needs arguments")
                on = _parse_dep_list(arg)
            elif name == "noflush":
                noflush = True
            else:
                raise PragmaError(f"unknown taskwait clause {name!r}")
        return TaskwaitDirective(on=on, noflush=noflush)
    raise PragmaError(f"unsupported construct {construct!r}")
