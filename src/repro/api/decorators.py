"""The ``task`` and ``target`` constructs as Python decorators.

The paper annotates C functions::

    #pragma omp target device(cuda) copy_deps
    #pragma omp task input([N] a) output([N] c)
    void copy(double *a, double *c, int N);

which here reads::

    @target(device="cuda", copy_deps=True)
    @task(inputs=("a",), outputs=("c",), cost=copy_cost)
    def copy(a, c, n): ...

Calling the decorated function does not execute it — it creates a task whose
data environment is captured from the arguments (function tasks, *a la*
Cilk).  Dependence clauses name parameters; the arguments bound to those
parameters must be :class:`~repro.api.data.DataView` slices, from which the
runtime builds the dependence regions.
"""

from __future__ import annotations

import inspect
from typing import Callable, Iterable, Optional, Sequence

from ..cuda.kernels import KernelSpec
from ..runtime.task import Access, Direction, Task
from .data import DataView

__all__ = ["task", "target", "TaskFunction"]


class TaskFunction:
    """A function annotated with the ``task`` construct."""

    def __init__(self, fn: Callable, inputs: Sequence[str],
                 outputs: Sequence[str], inouts: Sequence[str],
                 cost: "Callable | float" = 0.0,
                 label: Optional[str] = None):
        self.fn = fn
        self.label = label or fn.__name__
        self.signature = inspect.signature(fn)
        params = list(self.signature.parameters)
        # Binding happens on every task creation — the figure sweeps create
        # hundreds of thousands of tasks — so the signature is flattened
        # once into (names, defaults) and bound by hand in __call__ instead
        # of through inspect's BoundArguments machinery.
        self._param_names: tuple[str, ...] = tuple(params)
        self._defaults = {
            name: p.default
            for name, p in self.signature.parameters.items()
            if p.default is not inspect.Parameter.empty
        }
        for p in self.signature.parameters.values():
            if p.kind not in (p.POSITIONAL_OR_KEYWORD, p.KEYWORD_ONLY):
                raise ValueError(
                    f"task {self.label!r} parameter {p.name!r} uses "
                    f"unsupported kind {p.kind.description!r} (tasks bind "
                    "plain positional/keyword parameters only)"
                )
        self.clauses: dict[str, Direction] = {}
        for names, direction in ((inputs, Direction.IN),
                                 (outputs, Direction.OUT),
                                 (inouts, Direction.INOUT)):
            for name in names:
                if name not in params:
                    raise ValueError(
                        f"dependence clause names unknown parameter "
                        f"{name!r} of {self.label!r}"
                    )
                if name in self.clauses:
                    raise ValueError(
                        f"parameter {name!r} of {self.label!r} appears in "
                        "two dependence clauses"
                    )
                self.clauses[name] = direction
        if not self.clauses:
            raise ValueError(f"task {self.label!r} has no dependence clauses")
        self.cost = cost
        # target-construct attributes (defaults = SMP, copy semantics on).
        self.device = "smp"
        self.copy_deps = True
        self.copy_clauses: dict[str, Direction] = {}
        self._kernel: Optional[KernelSpec] = None
        self._kernel_wrapped = False
        #: lazily computed parameter-name set of an external KernelSpec's
        #: cost model (resolved once, not per task creation).
        self._cost_params: Optional[set] = None

    # -- target construct wiring ---------------------------------------------
    def set_target(self, device: str, copy_deps: bool,
                   copy_in: Sequence[str] = (),
                   copy_out: Sequence[str] = (),
                   copy_inout: Sequence[str] = ()) -> None:
        params = list(self.signature.parameters)
        self.copy_clauses: dict[str, Direction] = {}
        for names, direction in ((copy_in, Direction.IN),
                                 (copy_out, Direction.OUT),
                                 (copy_inout, Direction.INOUT)):
            for name in names:
                if name not in params:
                    raise ValueError(
                        f"copy clause names unknown parameter {name!r} of "
                        f"{self.label!r}"
                    )
                self.copy_clauses[name] = direction
        self.device = device
        self.copy_deps = copy_deps
        if device == "cuda":
            self._cost_params = None
            cost = self.cost
            if isinstance(cost, KernelSpec):
                # Library kernel (e.g. CUBLAS sgemm): its cost model takes
                # named scalars and its func is the functional body.
                self._kernel = cost
                self._kernel_wrapped = False
            elif callable(cost):
                self._kernel = KernelSpec(
                    name=self.label,
                    cost=lambda spec, *, bound: cost(spec, bound),
                    func=self.fn,
                )
                self._kernel_wrapped = True
            else:
                raise ValueError(
                    f"cuda task {self.label!r} needs a cost model "
                    "(a KernelSpec or a callable(gpu_spec, bound_args))"
                )

    # -- task creation ----------------------------------------------------------
    def _bind(self, args: tuple, kwargs: dict) -> dict:
        """Map call arguments to parameter names, in declaration order
        (hand-rolled ``signature.bind(...).apply_defaults()``)."""
        names = self._param_names
        npos = len(args)
        if npos > len(names):
            raise TypeError(
                f"task {self.label!r} takes {len(names)} arguments "
                f"({npos} given)")
        arguments: dict = {}
        for i, name in enumerate(names):
            if i < npos:
                if name in kwargs:
                    raise TypeError(
                        f"task {self.label!r} got multiple values for "
                        f"argument {name!r}")
                arguments[name] = args[i]
            elif name in kwargs:
                arguments[name] = kwargs[name]
            else:
                try:
                    arguments[name] = self._defaults[name]
                except KeyError:
                    raise TypeError(
                        f"task {self.label!r} missing required argument "
                        f"{name!r}") from None
        for name in kwargs:
            if name not in names:
                raise TypeError(
                    f"task {self.label!r} got an unexpected keyword "
                    f"argument {name!r}")
        return arguments

    def __call__(self, *args, **kwargs) -> Task:
        arguments = self._bind(args, kwargs)
        accesses = []
        program = None
        for name, direction in self.clauses.items():
            value = arguments[name]
            if isinstance(value, DataView):
                accesses.append(Access(value.region, direction))
                program = value.handle.program
            elif (isinstance(value, (list, tuple)) and value
                  and all(isinstance(v, DataView) for v in value)):
                # A clause over a set of regions (e.g. N-Body reading every
                # position block): one access per view, same direction.
                for v in value:
                    accesses.append(Access(v.region, direction))
                program = value[0].handle.program
            else:
                raise TypeError(
                    f"argument {name!r} of task {self.label!r} carries a "
                    f"dependence clause and must be a DataView (or a "
                    f"non-empty list of them), got {type(value).__name__}"
                )

        copies = []
        for name, direction in self.copy_clauses.items():
            value = arguments[name]
            if not isinstance(value, DataView):
                raise TypeError(
                    f"argument {name!r} of task {self.label!r} carries a "
                    f"copy clause and must be a DataView, got "
                    f"{type(value).__name__}"
                )
            copies.append(Access(value.region, direction))
            program = program or value.handle.program

        # Placeholder substitution and scalar extraction in one pass:
        # DataViews become their regions, lists of views become region
        # tuples, everything else rides through and feeds the cost model.
        task_args = []
        scalars = {}
        for name, value in arguments.items():
            if isinstance(value, DataView):
                task_args.append(value.region)
            elif (isinstance(value, (list, tuple)) and value
                  and all(isinstance(v, DataView) for v in value)):
                task_args.append(tuple(v.region for v in value))
            else:
                task_args.append(value)
                scalars[name] = value
        task_args = tuple(task_args)
        if self.device == "cuda":
            t = Task(
                name=self.label, device="cuda", kernel=self._kernel,
                cost_kwargs=({"bound": scalars} if self._kernel_wrapped
                             else self._cost_kwargs(scalars)),
                accesses=tuple(accesses), args=task_args,
                copy_deps=self.copy_deps, copies=tuple(copies),
            )
        else:
            smp_cost = self.cost
            if callable(smp_cost) and not isinstance(smp_cost, KernelSpec):
                bound_scalars = scalars
                cost_value = lambda cpu_spec: smp_cost(cpu_spec, bound_scalars)
            else:
                cost_value = float(smp_cost)
            t = Task(
                name=self.label, device="smp", smp_cost=cost_value,
                func=self.fn, accesses=tuple(accesses), args=task_args,
                copy_deps=self.copy_deps, copies=tuple(copies),
            )
        return program.submit(t)

    def _cost_kwargs(self, scalars: dict) -> dict:
        """Cost kwargs when an externally registered KernelSpec is used:
        pass the scalar arguments straight through."""
        cost_params = self._cost_params
        if cost_params is None:
            cost_params = self._cost_params = set(
                inspect.signature(self._kernel.cost).parameters) - {"spec"}
        return {k: v for k, v in scalars.items() if k in cost_params}

    def __repr__(self) -> str:
        return f"<TaskFunction {self.label!r} device={self.device}>"


def task(inputs: Iterable[str] = (), outputs: Iterable[str] = (),
         inouts: Iterable[str] = (), cost: "Callable | float" = 0.0,
         label: Optional[str] = None) -> Callable[[Callable], TaskFunction]:
    """The ``task`` construct: annotate a function as a task factory."""

    def decorate(fn: Callable) -> TaskFunction:
        return TaskFunction(fn, tuple(inputs), tuple(outputs),
                            tuple(inouts), cost=cost, label=label)

    return decorate


def target(device: str = "smp", copy_deps: bool = True,
           copy_in: Iterable[str] = (), copy_out: Iterable[str] = (),
           copy_inout: Iterable[str] = ()
           ) -> Callable[[TaskFunction], TaskFunction]:
    """The ``target`` construct: device plus explicit copy clauses."""
    if device not in ("smp", "cuda"):
        raise ValueError(f"unsupported target device {device!r}")

    def decorate(tf: TaskFunction) -> TaskFunction:
        if not isinstance(tf, TaskFunction):
            raise TypeError("apply @target above @task (it annotates the "
                            "task construct, paper Section II.A.3)")
        tf.set_target(device, copy_deps, tuple(copy_in), tuple(copy_out),
                      tuple(copy_inout))
        return tf

    return decorate
