"""Translate parsed pragma directives into task functions.

This closes the Mercurium loop: a function annotated with the paper's literal
pragma text becomes the same :class:`~repro.api.decorators.TaskFunction` the
decorators produce.  Example (the STREAM ``scale`` task from Figure 2)::

    @from_pragmas(
        "#pragma omp target device(cuda) copy_deps",
        "#pragma omp task input([N] c) output([N] b)",
        cost=scale_cost,
    )
    def scale(b, c, scalar, N): ...
"""

from __future__ import annotations

from typing import Callable, Optional

from .decorators import TaskFunction, target, task
from .pragma import (
    PragmaError,
    TargetDirective,
    TaskDirective,
    parse_pragma,
)

__all__ = ["from_pragmas"]


def from_pragmas(*lines: str, cost: "Callable | float" = 0.0,
                 label: Optional[str] = None):
    """Decorator: build a task function from pragma directive strings."""
    task_dir: Optional[TaskDirective] = None
    target_dir: Optional[TargetDirective] = None
    for line in lines:
        directive = parse_pragma(line)
        if isinstance(directive, TaskDirective):
            if task_dir is not None:
                raise PragmaError("more than one task directive")
            task_dir = directive
        elif isinstance(directive, TargetDirective):
            if target_dir is not None:
                raise PragmaError("more than one target directive")
            target_dir = directive
        else:
            raise PragmaError(
                f"cannot attach {type(directive).__name__} to a function"
            )
    if task_dir is None:
        raise PragmaError("a task directive is required")

    def decorate(fn: Callable) -> TaskFunction:
        tf = task(
            inputs=[d.name for d in task_dir.inputs],
            outputs=[d.name for d in task_dir.outputs],
            inouts=[d.name for d in task_dir.inouts],
            cost=cost,
            label=label,
        )(fn)
        if target_dir is not None:
            tf = target(
                device=target_dir.device,
                copy_deps=target_dir.copy_deps,
                copy_in=[d.name for d in target_dir.copy_in],
                copy_out=[d.name for d in target_dir.copy_out],
                copy_inout=[d.name for d in target_dir.copy_inout],
            )(tf)
        return tf

    return decorate
