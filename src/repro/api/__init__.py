"""The OmpSs programming interface (the Mercurium compiler's role).

``Program`` + ``@task`` / ``@target`` decorators + ``taskwait`` are the
Python rendering of the paper's directive-annotated serial C programs; the
``pragma`` submodule parses the paper's literal directive syntax.
"""

from .data import DataHandle, DataView
from .decorators import TaskFunction, target, task
from .pragma import (
    DepExpr,
    PragmaError,
    TargetDirective,
    TaskDirective,
    TaskwaitDirective,
    parse_pragma,
)
from .program import Program
from .translate import from_pragmas

__all__ = [
    "Program",
    "DataHandle",
    "DataView",
    "task",
    "target",
    "TaskFunction",
    "from_pragmas",
    "parse_pragma",
    "PragmaError",
    "DepExpr",
    "TaskDirective",
    "TargetDirective",
    "TaskwaitDirective",
]
