"""The OmpSs program context: machine + runtime + data + synchronization.

A :class:`Program` is what the paper's compiled binary plus runtime startup
amounts to: it owns the simulated machine and a configured runtime, hands out
data handles, and runs a *main* generator (the annotated serial program).
The same main runs unmodified on a multi-GPU node or a GPU cluster — the
paper's headline property — because device selection, data movement and
scheduling all live below this interface.
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

from ..cuda.kernels import KernelRegistry
from ..hardware.cluster import Machine, build_multi_gpu_node
from ..runtime.config import RuntimeConfig
from ..runtime.runtime import Runtime
from ..runtime.task import Task
from ..sim import Environment
from .data import DataHandle, DataView

__all__ = ["Program"]


class Program:
    """One OmpSs application execution."""

    def __init__(self, machine: Optional[Machine] = None,
                 config: Optional[RuntimeConfig] = None,
                 env: Optional[Environment] = None,
                 tracer=None, metrics=None, sanitizer=None):
        if machine is None:
            env = env or Environment()
            machine = build_multi_gpu_node(env, num_gpus=1)
        self.env = machine.env
        self.machine = machine
        self.config = config or RuntimeConfig()
        self.rt = Runtime(machine, self.config, tracer=tracer,
                          metrics=metrics, sanitizer=sanitizer)
        self._makespan: Optional[float] = None

    # -- data ----------------------------------------------------------------
    def array(self, name: str, num_elements: int, dtype=np.float32,
              init: Optional[np.ndarray] = None) -> DataHandle:
        """Register a shared array with the runtime (the memory model's
        'explicitly marked shared data')."""
        obj = self.rt.register_array(name, num_elements, dtype=dtype,
                                     initial=init)
        return DataHandle(self, obj)

    # -- task submission (used by the decorators) ------------------------------
    def submit(self, task: Task) -> Task:
        return self.rt.submit(task)

    # -- synchronization constructs ---------------------------------------------
    def taskwait(self, noflush: bool = False):
        """``#pragma omp taskwait [noflush]`` — a process generator."""
        yield from self.rt.taskwait(noflush=noflush)

    def taskwait_on(self, *views: DataView, noflush: bool = False):
        """``#pragma omp taskwait on(...)`` — wait for named producers."""
        regions = [v.region for v in views]
        yield from self.rt.taskwait_on(regions, noflush=noflush)

    # -- execution ------------------------------------------------------------
    def run(self, main) -> float:
        """Run a main generator to completion; returns the simulated
        makespan in seconds (also available as :attr:`makespan`)."""
        self._makespan = self.rt.run_main(main)
        return self._makespan

    @property
    def makespan(self) -> float:
        if self._makespan is None:
            raise RuntimeError("run() has not completed yet")
        return self._makespan

    # -- correctness tooling ---------------------------------------------------
    @property
    def sanitizer(self):
        """The active :class:`~repro.sanitizer.Sanitizer` (None unless one
        was passed in or installed via ``repro.sanitizer.install()``)."""
        return self.rt.sanitizer

    # -- metrics --------------------------------------------------------------
    @property
    def metrics(self):
        """The runtime's :class:`~repro.metrics.CounterRegistry` — every
        subsystem's counters (``metrics.snapshot()`` / ``metrics.to_json()``
        for export, see docs/OBSERVABILITY.md)."""
        return self.rt.metrics

    @property
    def stats(self) -> dict:
        """Execution counters for the benchmark reports."""
        rt = self.rt
        return {
            "tasks": rt.tasks_finished,
            "transfers": rt.coherence.transfers,
            "bytes_transferred": rt.coherence.bytes_transferred,
            "dedup_hits": rt.coherence.dedup_hits,
            "cache_hits": sum(c.hits for c in rt.all_caches()),
            "cache_misses": sum(c.misses for c in rt.all_caches()),
            "cache_evictions": sum(c.evictions for c in rt.all_caches()),
            "network_bytes": (rt.am.bytes_sent if rt.am is not None else 0),
        }
