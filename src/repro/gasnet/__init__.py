"""GASNet-like active message conduit over the simulated fabric."""

from .am import AMLayer, Endpoint, SHORT_SIZE

__all__ = ["AMLayer", "Endpoint", "SHORT_SIZE"]
