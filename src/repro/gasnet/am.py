"""GASNet-style active messages (paper Section III.D.1).

"All low level communications for control information and data transfers are
implemented using active messages" — a message names a *handler* registered
on the destination image; delivery runs the handler there.  Three sizes
mirror GASNet's API:

* **short** — control only (a few header bytes);
* **medium** — small bounded payload delivered to a scratch buffer;
* **long** — bulk payload delivered into a destination memory region.

Wire time comes from the shared :class:`~repro.hardware.network.Network`, so
AM traffic and bulk data contend for the same NIC ports.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from ..hardware.network import Network
from ..sim import Environment, Event

__all__ = ["AMLayer", "Endpoint", "SHORT_SIZE"]

#: Wire size charged for a short (control) active message.
SHORT_SIZE = 64


class Endpoint:
    """One node's attachment to the AM layer: its handler table."""

    def __init__(self, layer: "AMLayer", node_index: int):
        self.layer = layer
        self.node_index = node_index
        self._handlers: dict[str, Callable] = {}
        self.received = 0

    def register(self, name: str, handler: Callable) -> None:
        """Register ``handler(src, *args)``; may be a generator (process)."""
        if name in self._handlers:
            raise ValueError(f"handler {name!r} already registered on "
                             f"node {self.node_index}")
        self._handlers[name] = handler

    def handler(self, name: str) -> Callable:
        try:
            return self._handlers[name]
        except KeyError:
            raise KeyError(
                f"no handler {name!r} on node {self.node_index}"
            ) from None


class AMLayer:
    """The conduit: endpoints plus request delivery over the fabric."""

    def __init__(self, env: Environment, network: Network, metrics=None):
        self.env = env
        self.network = network
        self.endpoints = [Endpoint(self, node.index)
                          for node in network.nodes]
        self.short_sent = 0
        self.long_sent = 0
        self.bytes_sent = 0
        #: optional :class:`~repro.metrics.CounterRegistry`; counters are
        #: namespaced ``am.*`` with per-link ``am.link.<src>-><dst>.*``.
        self.metrics = metrics

    def endpoint(self, node_index: int) -> Endpoint:
        return self.endpoints[node_index]

    def request(self, src: int, dst: int, handler: str, *args: Any,
                payload_bytes: int = 0, priority: int = 0) -> Event:
        """Send an AM from node ``src`` to ``dst``; returns an event that
        fires when the remote handler has *completed* (request/reply style).

        ``payload_bytes`` > 0 makes it a long message carrying bulk data.
        """
        nbytes = payload_bytes if payload_bytes > 0 else SHORT_SIZE
        if payload_bytes > 0:
            self.long_sent += 1
        else:
            self.short_sent += 1
        self.bytes_sent += nbytes
        if self.metrics is not None:
            kind = "long" if payload_bytes > 0 else "short"
            self.metrics.inc(f"am.{kind}_sent")
            self.metrics.inc("am.bytes_sent", nbytes)
            link = f"am.link.{src}->{dst}"
            self.metrics.inc(f"{link}.messages")
            self.metrics.inc(f"{link}.bytes", nbytes)

        def deliver():
            yield self.env.process(self.network.transfer(
                self.network.nodes[src], self.network.nodes[dst], nbytes,
                priority=priority,
            ))
            # Handler dispatch overhead on the receiving image.
            yield self.env.timeout(self.network.nic.am_overhead)
            fn = self.endpoints[dst].handler(handler)
            self.endpoints[dst].received += 1
            result = fn(src, *args)
            if hasattr(result, "send"):  # generator handler: run as process
                result = yield self.env.process(result)
            return result

        return self.env.process(deliver())
