"""GASNet-style active messages (paper Section III.D.1).

"All low level communications for control information and data transfers are
implemented using active messages" — a message names a *handler* registered
on the destination image; delivery runs the handler there.  Three sizes
mirror GASNet's API:

* **short** — control only (a few header bytes);
* **medium** — small bounded payload delivered to a scratch buffer;
* **long** — bulk payload delivered into a destination memory region.

Wire time comes from the shared :class:`~repro.hardware.network.Network`, so
AM traffic and bulk data contend for the same NIC ports.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Optional

from ..faults.errors import AMTimeoutError
from ..hardware.network import Network
from ..sim import Environment, Event

__all__ = ["AMLayer", "Endpoint", "SHORT_SIZE"]

#: Wire size charged for a short (control) active message.
SHORT_SIZE = 64


class Endpoint:
    """One node's attachment to the AM layer: its handler table."""

    def __init__(self, layer: "AMLayer", node_index: int):
        self.layer = layer
        self.node_index = node_index
        self._handlers: dict[str, Callable] = {}
        self.received = 0
        #: idempotency-token dedup table (fault mode): token -> handler
        #: result, or an Event while the first delivery is still running.
        self.seen_tokens: dict[int, Any] = {}
        self.duplicates_suppressed = 0

    def register(self, name: str, handler: Callable) -> None:
        """Register ``handler(src, *args)``; may be a generator (process)."""
        if name in self._handlers:
            raise ValueError(f"handler {name!r} already registered on "
                             f"node {self.node_index}")
        self._handlers[name] = handler

    def handler(self, name: str) -> Callable:
        try:
            return self._handlers[name]
        except KeyError:
            raise KeyError(
                f"no handler {name!r} on node {self.node_index}"
            ) from None


class AMLayer:
    """The conduit: endpoints plus request delivery over the fabric."""

    def __init__(self, env: Environment, network: Network, metrics=None):
        self.env = env
        self.network = network
        self.endpoints = [Endpoint(self, node.index)
                          for node in network.nodes]
        self.short_sent = 0
        self.long_sent = 0
        self.bytes_sent = 0
        #: optional :class:`~repro.metrics.CounterRegistry`; counters are
        #: namespaced ``am.*`` with per-link ``am.link.<src>-><dst>.*``.
        self.metrics = metrics
        #: fault engine hook; when set, requests run the resilient path
        #: (watchdog + exponential-backoff retry + idempotency tokens).
        self.faults = None
        self._tokens = itertools.count(1)

    def endpoint(self, node_index: int) -> Endpoint:
        return self.endpoints[node_index]

    def request(self, src: int, dst: int, handler: str, *args: Any,
                payload_bytes: int = 0, priority: int = 0,
                fused: int = 1) -> Event:
        """Send an AM from node ``src`` to ``dst``; returns an event that
        fires when the remote handler has *completed* (request/reply style).

        ``payload_bytes`` > 0 makes it a long message carrying bulk data.
        ``fused`` > 1 marks a coalesced message standing in for that many
        logical transfers (datamove coalescing) — observability only, the
        wire cost is whatever ``payload_bytes`` says.
        """
        nbytes = payload_bytes if payload_bytes > 0 else SHORT_SIZE
        if payload_bytes > 0:
            self.long_sent += 1
        else:
            self.short_sent += 1
        self.bytes_sent += nbytes
        if self.metrics is not None:
            kind = "long" if payload_bytes > 0 else "short"
            self.metrics.inc(f"am.{kind}_sent")
            self.metrics.inc("am.bytes_sent", nbytes)
            link = f"am.link.{src}->{dst}"
            self.metrics.inc(f"{link}.messages")
            self.metrics.inc(f"{link}.bytes", nbytes)
            if fused > 1:
                self.metrics.inc("am.fused_messages")
                self.metrics.inc("am.fused_entries", fused)

        if self.faults is not None:
            token = next(self._tokens)
            return self.env.process(self._resilient_request(
                token, src, dst, handler, args, nbytes, priority))

        def deliver():
            yield self.env.process(self.network.transfer(
                self.network.nodes[src], self.network.nodes[dst], nbytes,
                priority=priority,
            ))
            # Handler dispatch overhead on the receiving image.
            yield self.env.timeout(self.network.nic.am_overhead)
            fn = self.endpoints[dst].handler(handler)
            self.endpoints[dst].received += 1
            result = fn(src, *args)
            if hasattr(result, "send"):  # generator handler: run as process
                result = yield self.env.process(result)
            return result

        return self.env.process(deliver())

    # ------------------------------------------------------------------
    # Fault-tolerant delivery (active only when a fault engine is attached)
    # ------------------------------------------------------------------
    def _resilient_request(self, token: int, src: int, dst: int,
                           handler: str, args: tuple, nbytes: int,
                           priority: int):
        """At-least-once delivery: each attempt races a watchdog; on
        timeout the sender backs off exponentially and resends with the
        same idempotency token, so the receiver runs the handler exactly
        once no matter how many copies arrive."""
        plan = self.faults.plan
        backoff = plan.am_backoff
        for attempt in range(1, plan.am_max_retries + 1):
            if attempt > 1 and self.metrics is not None:
                self.metrics.inc("am.retries")
            outcome = self.faults.am_outcome(src, dst)
            delivery = self.env.process(self._attempt(
                token, src, dst, handler, args, nbytes, priority, outcome))
            watchdog = self.env.timeout(plan.am_timeout)
            fired = yield delivery | watchdog
            if delivery in fired:
                return fired[delivery]
            # The attempt (or its acknowledgement) was lost: back off.
            if self.metrics is not None:
                self.metrics.inc("am.timeouts")
            yield self.env.timeout(backoff)
            backoff *= plan.am_backoff_factor
        raise AMTimeoutError(
            f"active message {handler!r} {src}->{dst} unacknowledged "
            f"after {plan.am_max_retries} attempts")

    def _attempt(self, token: int, src: int, dst: int, handler: str,
                 args: tuple, nbytes: int, priority: int, outcome: str):
        """One delivery attempt; never completes for lost outcomes (the
        sender's watchdog handles those)."""
        if outcome == "blackhole":
            # A partition: the message cannot even reach the wire.
            yield Event(self.env)
            return None  # pragma: no cover - unreachable
        yield self.env.process(self.network.transfer(
            self.network.nodes[src], self.network.nodes[dst], nbytes,
            priority=priority,
        ))
        if outcome in ("drop", "corrupt"):
            # Lost in flight / rejected by the receiver's checksum (the
            # wire was still occupied either way).
            yield Event(self.env)
            return None  # pragma: no cover - unreachable
        yield self.env.timeout(self.network.nic.am_overhead)
        endpoint = self.endpoints[dst]
        if token in endpoint.seen_tokens:
            # A resend of a request already delivered (its ack was lost):
            # do not run the handler again — that is the duplicate-delivery
            # hazard — return the first delivery's result instead.
            endpoint.duplicates_suppressed += 1
            if self.metrics is not None:
                self.metrics.inc("am.duplicates_suppressed")
            entry = endpoint.seen_tokens[token]
            if isinstance(entry, Event):
                result = yield entry   # first delivery still in progress
            else:
                result = entry
        else:
            marker = Event(self.env)
            endpoint.seen_tokens[token] = marker
            fn = endpoint.handler(handler)
            endpoint.received += 1
            result = fn(src, *args)
            if hasattr(result, "send"):
                result = yield self.env.process(result)
            endpoint.seen_tokens[token] = result
            marker.succeed(result)
        if outcome == "ack_drop":
            # Delivered and handled, but the acknowledgement vanishes:
            # the sender will resend and hit the dedup path above.
            yield Event(self.env)
            return None  # pragma: no cover - unreachable
        return result
