"""Parallel figure sweeps: fan independent figure points out across cores.

A figure (see :mod:`repro.bench.figures`) is a grid of *points* — one
(app, version, machine, configuration) simulation each, sharing nothing
with its neighbours.  The sweep runner exploits that: each point is a
picklable :class:`PointSpec`, executed by the module-level :func:`run_point`
either in-process (serial, the default) or on a process pool.

Isolation and determinism
-------------------------
The pool uses the ``fork`` start method, and each worker forks one more
time per point (via :func:`repro.service.isolation.call_isolated` — the
same fork/pipe/waitpid implementation behind the service's
:class:`~repro.service.backends.PoolBackend`): the point simulation runs
in a **fresh copy-on-write child forked before any point has executed**,
so module-level counters (stream ids, cache use clocks) are identical for
every point and one point can never observe another's state.  A
simulation is itself deterministic given its spec, so a sweep's output is
bit-identical whatever ``parallel`` is — ``tests/bench/test_sweep.py``
pins serial vs parallel equality.  (Fork also means workers never
re-import ``__main__``, unlike spawn/forkserver, so the runner is safe to
call from scripts, pytest, and the REPL alike.)

Crash surfacing
---------------
A point that raises propagates its exception, wrapped in
:class:`SweepPointError` naming the failing point.  A point process that
*dies* (segfault, ``os._exit``, OOM-kill) is detected by its worker via
pipe EOF + exit status and surfaces as the same :class:`SweepPointError`,
instead of hanging the sweep.

Usage::

    python -m repro.bench fig5 --parallel 4      # CLI
    results = run_points(points, parallel=4)     # library
"""

from __future__ import annotations

import concurrent.futures
import multiprocessing
import traceback
from dataclasses import dataclass, field
from typing import Optional

from ..runtime.config import RuntimeConfig
from ..service.isolation import ChildCrash, ChildError, call_isolated

__all__ = ["PointSpec", "SweepPointError", "run_point", "run_points"]


@dataclass(frozen=True)
class PointSpec:
    """One figure point: everything a worker needs to reproduce the run.

    Specs carry only picklable values (strings, numbers, frozen size
    dataclasses, a :class:`RuntimeConfig`) — never live machines, programs
    or environments, which is what keeps a point process-portable.
    """

    figure: str                       #: owning figure, e.g. ``"fig5"``
    series: str                       #: series label within the figure
    x: "int | float"                  #: x-axis value (GPUs or nodes)
    app: str                          #: matmul | stream | perlin | nbody
    version: str = "ompss"            #: ompss | mpi_cuda
    machine: str = "multi_gpu"        #: multi_gpu | cluster
    count: int = 1                    #: GPU count or node count
    size: object = None               #: the app's frozen Size dataclass
    config: Optional[RuntimeConfig] = None   #: OmpSs runtime configuration
    run_kwargs: dict = field(default_factory=dict)  #: init=, flush=, ...
    want_metrics: bool = False        #: return the full counter snapshot
    #: scheduling-policy override (``--scheduler`` CLI flag): replaces the
    #: config's scheduler for OmpSs runs, leaving the rest of the point's
    #: configuration untouched.  ``None`` means "as configured".
    scheduler: Optional[str] = None

    @property
    def label(self) -> str:
        return f"{self.figure}/{self.series}@{self.x}"


class SweepPointError(RuntimeError):
    """A sweep point failed; ``spec`` identifies which one."""

    def __init__(self, spec: PointSpec, detail: str):
        super().__init__(f"sweep point {spec.label} failed: {detail}")
        self.spec = spec
        self.detail = detail

    def __reduce__(self):
        # Two-argument constructor: the default exception reduce would
        # replay only ``self.args`` and break crossing a process boundary.
        return (SweepPointError, (self.spec, self.detail))


def _runner(app: str, version: str):
    # Imports live here (not module level) so a point process pays the
    # app-package import only for the app it actually runs.
    from ..apps import (cholesky, jacobi, matmul, nbody, perlin, spreduce,
                        stream)
    mod = {"matmul": matmul, "stream": stream,
           "perlin": perlin, "nbody": nbody, "cholesky": cholesky,
           "jacobi": jacobi, "spreduce": spreduce}[app]
    return getattr(mod, f"run_{version}")


def run_point(spec: PointSpec) -> dict:
    """Execute one figure point; returns a small, picklable result dict.

    Depends only on the spec (machines and programs are built fresh), so a
    forked child computes the same answer as an in-process call.
    """
    from .harness import fresh_cluster, fresh_multi_gpu
    machine = (fresh_multi_gpu(spec.count) if spec.machine == "multi_gpu"
               else fresh_cluster(spec.count))
    kwargs = dict(spec.run_kwargs)
    if spec.version == "ompss":
        config = spec.config
        if spec.scheduler is not None:
            config = (config or RuntimeConfig()).with_(
                scheduler=spec.scheduler)
        kwargs["config"] = config
    else:
        kwargs["functional"] = False
    res = _runner(spec.app, spec.version)(machine, spec.size, **kwargs)
    return {
        "metric": res.metric,
        "makespan": res.makespan,
        "metrics": res.metrics if spec.want_metrics else None,
    }


def _run_isolated(spec: PointSpec) -> dict:
    """Run one point in a freshly forked child; worker-side entry point.

    The child inherits the worker's pristine (pre-sweep) state, computes
    the point, pickles the outcome down a pipe and ``_exit``\\ s without
    touching the worker (the shared fork-isolation implementation in
    :mod:`repro.service.isolation`).  A child that raises or dies mid-run
    surfaces as :class:`SweepPointError` naming the point.  ``run_point``
    is resolved through the module at call time, so tests can monkeypatch
    it before the pool forks.
    """
    try:
        return call_isolated(run_point, spec)
    except ChildCrash as exc:
        raise SweepPointError(
            spec,
            f"point process died (wait status {exc.wait_status:#x})"
        ) from None
    except ChildError as exc:
        raise SweepPointError(spec, f"\n{exc.traceback}") from None


def run_points(specs: "list[PointSpec]", parallel: int = 0,
               _run_one=run_point) -> "list[dict]":
    """Run every spec; results come back in spec order.

    ``parallel <= 1`` runs in-process.  Otherwise a fork-context pool of
    ``parallel`` workers executes points concurrently, one fresh forked
    process per point (see the module docstring for why).
    """
    if parallel <= 1:
        out = []
        for spec in specs:
            try:
                out.append(_run_one(spec))
            except SweepPointError:
                raise
            except Exception:
                raise SweepPointError(spec, f"\n{traceback.format_exc()}")
        return out

    ctx = multiprocessing.get_context("fork")
    with concurrent.futures.ProcessPoolExecutor(
            max_workers=parallel, mp_context=ctx) as pool:
        futures = [(spec, pool.submit(_run_isolated, spec))
                   for spec in specs]
        out = []
        for spec, fut in futures:
            try:
                out.append(fut.result())
            except SweepPointError:
                raise
            except Exception as exc:
                # A worker (not point) process died, or the result failed
                # to unpickle: still name the point being computed.
                raise SweepPointError(spec, repr(exc)) from exc
        return out
