"""Regeneration of every figure in the paper's evaluation (Figs. 5-13).

Each ``figN()`` runs the corresponding sweep at the paper's problem sizes in
performance mode and returns a :class:`FigureResult` whose series mirror the
published chart's bars/lines.  Absolute values are simulated-hardware
numbers; the *shapes* are what EXPERIMENTS.md validates against the paper.

Every figure is declared as a grid of independent :class:`~.sweep.PointSpec`
points (``figN_points()``), which is what lets ``figN(parallel=K)`` — and
``python -m repro.bench --parallel K`` — fan a sweep out across processes
with bit-identical results (see :mod:`repro.bench.sweep`).
"""

from __future__ import annotations

import dataclasses

from ..apps import cholesky, matmul, nbody, perlin, stream
from ..runtime.config import RuntimeConfig
from .harness import CLUSTER_BEST, FigureResult
from .sweep import PointSpec, run_points

__all__ = ["fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11",
           "fig12", "fig13", "fig_datamove", "fig_sched", "fig_irr",
           "MULTI_GPU_COUNTS", "CLUSTER_NODE_COUNTS", "DATAMOVE_FLAGS",
           "DATAMOVE_POINTS", "SCHED_POLICIES", "SCHED_POINTS",
           "IRR_POINTS"]

MULTI_GPU_COUNTS = (1, 2, 4)
CLUSTER_NODE_COUNTS = (1, 2, 4, 8)

CACHE_POLICIES = ("nocache", "wt", "wb")
SCHEDULERS = ("bf", "default", "affinity")

#: The N-Body size used for the Fig. 8 sweep: the paper observes that
#: "the N-Body uses a lot of GPU memory which is also transferred between
#: all the devices" — at 20000 bodies alone the footprint is trivial in our
#: model, so the memory-pressure run scales the body count (and allocates a
#: fresh position buffer per iteration, like the memory-hungry original)
#: until per-GPU footprints stress the 2.62 GB Tesla memory (DESIGN.md
#: section 2, substitution).
NBODY_STRESS = nbody.NBodySize(n=20_000_000, blocks=16, iters=10)


def _assemble(result: FigureResult,
              points: "list[PointSpec]", parallel: int,
              scheduler: "str | None" = None) -> FigureResult:
    """Run a figure's points (serial or fanned out) and fill its series.

    Points arrive grouped by series, each series in x order, so appending
    metrics in spec order rebuilds exactly the lists the serial loops
    produced.  Points flagged ``want_metrics`` (the largest x of selected
    series) attach their counter snapshot, as before.

    ``scheduler`` (the ``--scheduler`` CLI flag) overrides the policy on
    every OmpSs point of the figure, leaving the rest of each point's
    configuration untouched.
    """
    if scheduler is not None:
        result.notes.append(f"scheduler override: {scheduler}")
        points = [dataclasses.replace(spec, scheduler=scheduler)
                  for spec in points]
    values = run_points(points, parallel=parallel)
    for spec, val in zip(points, values):
        result.series.setdefault(spec.series, []).append(val["metric"])
        if spec.want_metrics and val["metrics"]:
            result.attach_metrics(spec.series, val["metrics"])
    return result


# ---------------------------------------------------------------------------
# Multi-GPU environment (Figs. 5-8)
# ---------------------------------------------------------------------------

def _multi_gpu_points(figure: str, app: str, sizes: dict,
                      gpu_counts=MULTI_GPU_COUNTS) -> "list[PointSpec]":
    """The Fig. 5/6 grid: cache policy x scheduler x GPU count.

    Mechanism counters of the largest run explain each series' shape
    (cache hits per policy, bytes migrated per scheduler), so only that
    point requests its snapshot.
    """
    points = []
    for policy in CACHE_POLICIES:
        for sched in SCHEDULERS:
            label = f"{policy}-{sched}"
            for g in gpu_counts:
                points.append(PointSpec(
                    figure=figure, series=label, x=g, app=app,
                    machine="multi_gpu", count=g, size=sizes[g],
                    config=RuntimeConfig(functional=False,
                                         cache_policy=policy,
                                         scheduler=sched),
                    want_metrics=(g == gpu_counts[-1])))
    return points


def fig5_points() -> "list[PointSpec]":
    sizes = {g: matmul.PAPER_MATMUL for g in MULTI_GPU_COUNTS}
    return _multi_gpu_points("fig5", "matmul", sizes)


def fig5(parallel: int = 0,
         scheduler: "str | None" = None) -> FigureResult:
    """Matmul on the multi-GPU node: GFLOP/s per cache policy x scheduler."""
    result = FigureResult(figure="Figure 5",
                          title="Matrix multiply, multi-GPU node",
                          x_label="GPUs", xs=list(MULTI_GPU_COUNTS),
                          unit="GFLOP/s")
    return _assemble(result, fig5_points(), parallel,
                     scheduler=scheduler)


def fig6_points() -> "list[PointSpec]":
    sizes = {g: stream.paper_stream_size(g) for g in MULTI_GPU_COUNTS}
    return _multi_gpu_points("fig6", "stream", sizes)


def fig6(parallel: int = 0,
         scheduler: "str | None" = None) -> FigureResult:
    """STREAM on the multi-GPU node: aggregate GB/s per configuration."""
    result = FigureResult(figure="Figure 6", title="STREAM, multi-GPU node",
                          x_label="GPUs", xs=list(MULTI_GPU_COUNTS),
                          unit="GB/s")
    return _assemble(result, fig6_points(), parallel,
                     scheduler=scheduler)


def fig7_points() -> "list[PointSpec]":
    points = []
    for variant, flush in (("flush", True), ("noflush", False)):
        for policy in CACHE_POLICIES:
            for g in MULTI_GPU_COUNTS:
                points.append(PointSpec(
                    figure="fig7", series=f"{variant}-{policy}", x=g,
                    app="perlin", machine="multi_gpu", count=g,
                    size=perlin.PAPER_PERLIN,
                    config=RuntimeConfig(functional=False,
                                         cache_policy=policy),
                    run_kwargs={"flush": flush}))
    return points


def fig7(parallel: int = 0,
         scheduler: "str | None" = None) -> FigureResult:
    """Perlin noise on the multi-GPU node: Mpixels/s, Flush vs NoFlush."""
    result = FigureResult(figure="Figure 7",
                          title="Perlin noise, multi-GPU node",
                          x_label="GPUs", xs=list(MULTI_GPU_COUNTS),
                          unit="Mpixels/s")
    return _assemble(result, fig7_points(), parallel,
                     scheduler=scheduler)


def fig8_points() -> "list[PointSpec]":
    points = []
    for policy in CACHE_POLICIES:
        for g in (2, 4):
            points.append(PointSpec(
                figure="fig8", series=policy, x=g, app="nbody",
                machine="multi_gpu", count=g, size=NBODY_STRESS,
                config=RuntimeConfig(functional=False, cache_policy=policy),
                run_kwargs={"fresh_buffers": True}))
    return points


def fig8(parallel: int = 0,
         scheduler: "str | None" = None) -> FigureResult:
    """N-Body on the multi-GPU node: the no-cache policy wins under GPU
    memory pressure (delayed write-back + replacement cost)."""
    result = FigureResult(figure="Figure 8",
                          title="N-Body, multi-GPU node (memory stress)",
                          x_label="GPUs", xs=[2, 4], unit="GFLOP/s")
    result.notes.append(
        f"body count scaled to {NBODY_STRESS.n} to reach the paper's GPU "
        "memory pressure regime (see DESIGN.md)")
    return _assemble(result, fig8_points(), parallel,
                     scheduler=scheduler)


# ---------------------------------------------------------------------------
# GPU cluster environment (Figs. 9-13)
# ---------------------------------------------------------------------------

def fig9_points(presends=(0, 1, 4)) -> "list[PointSpec]":
    points = []
    for stos in (False, True):
        for init in ("seq", "smp", "gpu"):
            for ps in presends:
                label = f"{'StoS' if stos else 'MtoS'}-{init}-ps{ps}"
                for nodes in CLUSTER_NODE_COUNTS:
                    points.append(PointSpec(
                        figure="fig9", series=label, x=nodes, app="matmul",
                        machine="cluster", count=nodes,
                        size=matmul.PAPER_MATMUL,
                        config=RuntimeConfig(**CLUSTER_BEST,
                                             slave_to_slave=stos,
                                             presend=ps),
                        run_kwargs={"init": init},
                        want_metrics=(nodes == CLUSTER_NODE_COUNTS[-1])))
    return points


def fig9(presends=(0, 1, 4), parallel: int = 0,
         scheduler: "str | None" = None) -> FigureResult:
    """Cluster matmul: StoS/MtoS x init mode x presend window."""
    result = FigureResult(figure="Figure 9",
                          title="Matrix multiply, GPU cluster",
                          x_label="nodes", xs=list(CLUSTER_NODE_COUNTS),
                          unit="GFLOP/s")
    return _assemble(result, fig9_points(presends), parallel,
                     scheduler=scheduler)


def _best_cluster_config(presend: int = 4,
                         **overrides) -> RuntimeConfig:
    params = dict(CLUSTER_BEST, slave_to_slave=True, presend=presend)
    params.update(overrides)
    return RuntimeConfig(**params)


def fig10_points() -> "list[PointSpec]":
    size = matmul.PAPER_MATMUL
    points = [PointSpec(figure="fig10", series="ompss-best", x=nodes,
                        app="matmul", machine="cluster", count=nodes,
                        size=size, config=_best_cluster_config(),
                        run_kwargs={"init": "smp"})
              for nodes in CLUSTER_NODE_COUNTS]
    points += [PointSpec(figure="fig10", series="mpi+cuda", x=nodes,
                         app="matmul", version="mpi_cuda",
                         machine="cluster", count=nodes, size=size)
               for nodes in CLUSTER_NODE_COUNTS]
    return points


def fig10(parallel: int = 0,
          scheduler: "str | None" = None) -> FigureResult:
    """Cluster matmul: best OmpSs setup vs the MPI+CUDA SUMMA baseline."""
    result = FigureResult(figure="Figure 10",
                          title="Matmul: OmpSs vs MPI+CUDA",
                          x_label="nodes", xs=list(CLUSTER_NODE_COUNTS),
                          unit="GFLOP/s")
    return _assemble(result, fig10_points(), parallel,
                     scheduler=scheduler)


def fig11_points() -> "list[PointSpec]":
    points = [PointSpec(figure="fig11", series="ompss", x=nodes,
                        app="stream", machine="cluster", count=nodes,
                        size=stream.paper_stream_size(nodes),
                        config=_best_cluster_config())
              for nodes in CLUSTER_NODE_COUNTS]
    points += [PointSpec(figure="fig11", series="mpi+cuda", x=nodes,
                         app="stream", version="mpi_cuda",
                         machine="cluster", count=nodes,
                         size=stream.paper_stream_size(nodes))
               for nodes in CLUSTER_NODE_COUNTS]
    return points


def fig11(parallel: int = 0,
          scheduler: "str | None" = None) -> FigureResult:
    """Cluster STREAM: OmpSs vs MPI+CUDA (embarrassingly parallel)."""
    result = FigureResult(figure="Figure 11",
                          title="STREAM, GPU cluster",
                          x_label="nodes", xs=list(CLUSTER_NODE_COUNTS),
                          unit="GB/s")
    return _assemble(result, fig11_points(), parallel,
                     scheduler=scheduler)


def fig12_points() -> "list[PointSpec]":
    size = perlin.PAPER_PERLIN
    points = []
    for series, flush in (("ompss-flush", True), ("ompss-noflush", False)):
        points += [PointSpec(figure="fig12", series=series, x=nodes,
                             app="perlin", machine="cluster", count=nodes,
                             size=size, config=_best_cluster_config(),
                             run_kwargs={"flush": flush})
                   for nodes in CLUSTER_NODE_COUNTS]
    points += [PointSpec(figure="fig12", series="mpi+cuda", x=nodes,
                         app="perlin", version="mpi_cuda",
                         machine="cluster", count=nodes, size=size,
                         run_kwargs={"flush": True})
               for nodes in CLUSTER_NODE_COUNTS]
    return points


def fig12(parallel: int = 0,
          scheduler: "str | None" = None) -> FigureResult:
    """Cluster Perlin: OmpSs Flush/NoFlush vs MPI+CUDA."""
    result = FigureResult(figure="Figure 12",
                          title="Perlin noise, GPU cluster",
                          x_label="nodes", xs=list(CLUSTER_NODE_COUNTS),
                          unit="Mpixels/s")
    return _assemble(result, fig12_points(), parallel,
                     scheduler=scheduler)


def fig13_points(n_bodies: int = 20_000) -> "list[PointSpec]":
    def size_for(nodes: int) -> nbody.NBodySize:
        return nbody.NBodySize(n=n_bodies, blocks=max(nodes, 1), iters=10)

    points = [PointSpec(figure="fig13", series="ompss", x=nodes,
                        app="nbody", machine="cluster", count=nodes,
                        size=size_for(nodes), config=_best_cluster_config())
              for nodes in CLUSTER_NODE_COUNTS]
    points += [PointSpec(figure="fig13", series="mpi+cuda", x=nodes,
                         app="nbody", version="mpi_cuda",
                         machine="cluster", count=nodes,
                         size=size_for(nodes))
               for nodes in CLUSTER_NODE_COUNTS]
    return points


# ---------------------------------------------------------------------------
# Data-movement optimisation layer (baseline vs datamove)
# ---------------------------------------------------------------------------

#: the four datamove mechanisms, all on (presend_depth only acts on
#: cluster runs; it is a documented no-op on a single node).
DATAMOVE_FLAGS = dict(wb_elision=True, coalescing=True, presend_depth=4,
                      cost_aware_eviction=True)

#: the communication-bound evaluation points the layer targets:
#: * ``matmul-cluster`` — 4 nodes, master-routed transfers (MtoS), no
#:   presend credit: the master NIC is the bottleneck (Fig. 9's worst
#:   corner), which is where coalescing + prestaging buy their keep;
#: * ``stream-mgpu`` — 4 GPUs with the software cache squeezed to 20% of
#:   device memory: the eviction/write-back path dominates, which is what
#:   elision + cost-aware eviction attack.
DATAMOVE_POINTS = ("matmul-cluster", "stream-mgpu")


def _datamove_base(point: str) -> dict:
    if point == "matmul-cluster":
        return dict(app="matmul", machine="cluster", count=4,
                    size=matmul.PAPER_MATMUL,
                    run_kwargs={"init": "seq"},
                    cfg=dict(CLUSTER_BEST, slave_to_slave=False,
                             presend=0))
    return dict(app="stream", machine="multi_gpu", count=4,
                size=stream.paper_stream_size(4), run_kwargs={},
                cfg=dict(functional=False, cache_policy="wb",
                         scheduler="affinity", overlap=True, prefetch=True,
                         gpu_cache_fraction=0.2))


def fig_datamove_points() -> "list[PointSpec]":
    points = []
    for series, flags in (("baseline", {}), ("datamove", DATAMOVE_FLAGS)):
        for point in DATAMOVE_POINTS:
            base = _datamove_base(point)
            points.append(PointSpec(
                figure="fig-dm", series=series, x=point,
                app=base["app"], machine=base["machine"],
                count=base["count"], size=base["size"],
                config=RuntimeConfig(**base["cfg"], **flags),
                run_kwargs=base["run_kwargs"], want_metrics=True))
    return points


def fig_datamove(parallel: int = 0,
                 scheduler: "str | None" = None) -> FigureResult:
    """Baseline vs the datamove layer on the communication-bound points.

    Series are *makespans* (lower is better), unlike the paper figures'
    throughput units, because the two points measure different apps on
    different machines — only the baseline/datamove ratio is comparable.
    """
    result = FigureResult(figure="Figure DM",
                          title="Data-movement layer, comm-bound points",
                          x_label="point", xs=list(DATAMOVE_POINTS),
                          unit="s (makespan)")
    points = fig_datamove_points()
    if scheduler is not None:
        result.notes.append(f"scheduler override: {scheduler}")
        points = [dataclasses.replace(spec, scheduler=scheduler)
                  for spec in points]
    values = run_points(points, parallel=parallel)
    for spec, val in zip(points, values):
        result.series.setdefault(spec.series, []).append(val["makespan"])
        if spec.want_metrics and val["metrics"]:
            result.attach_metrics(f"{spec.series}/{spec.x}",
                                  val["metrics"])
    base, opt = result.series["baseline"], result.series["datamove"]
    for point, b, o in zip(DATAMOVE_POINTS, base, opt):
        result.notes.append(
            f"{point}: {b:.3f}s -> {o:.3f}s "
            f"({(b - o) / b:+.1%} makespan reduction)")
    return result


# ---------------------------------------------------------------------------
# Scheduling policies (paper tier vs adaptive tier)
# ---------------------------------------------------------------------------

#: every policy ``make_scheduler`` knows, paper tier first.
SCHED_POLICIES = ("bf", "default", "affinity", "ws", "cp", "adaptive")

#: the points the policy ablation runs on: the Cholesky DAG on both
#: machine shapes (where ordering dominates), plus a regular figure
#: workload (matmul) as the control where locality dominates.
SCHED_POINTS = ("cholesky-mgpu", "cholesky-cluster", "matmul-mgpu")


def _sched_base(point: str) -> dict:
    if point == "cholesky-mgpu":
        # Runs under write-through — the paper's conservative cache mode —
        # so the ablation also measures whether a policy can recover the
        # write-back performance without being told (the adaptive tier's
        # datamove loop switches the write mode from live signals; the
        # static policies execute the configuration as given).
        return dict(app="cholesky", machine="multi_gpu", count=4,
                    size=cholesky.PAPER_CHOLESKY, run_kwargs={},
                    cfg=dict(functional=False, overlap=True, prefetch=True,
                             cache_policy="wt"))
    if point == "cholesky-cluster":
        cfg = {k: v for k, v in CLUSTER_BEST.items() if k != "scheduler"}
        # 8 nodes: width-limited, so placement (not raw FIFO spreading)
        # decides the makespan — the regime the policy tier targets.
        return dict(app="cholesky", machine="cluster", count=8,
                    size=cholesky.PAPER_CHOLESKY, run_kwargs={},
                    cfg=dict(cfg, presend=2))
    return dict(app="matmul", machine="multi_gpu", count=4,
                size=matmul.PAPER_MATMUL, run_kwargs={},
                cfg=dict(functional=False, overlap=True, prefetch=True))


def fig_sched_points() -> "list[PointSpec]":
    points = []
    for policy in SCHED_POLICIES:
        for point in SCHED_POINTS:
            base = _sched_base(point)
            cfg = dict(base["cfg"], scheduler=policy)
            if policy == "adaptive":
                # The adaptive tier is the meta-scheduler with its whole
                # signal loop: policy switching *and* datamove switching.
                cfg["adaptive_datamove"] = True
            points.append(PointSpec(
                figure="fig-sched", series=policy, x=point,
                app=base["app"], machine=base["machine"],
                count=base["count"], size=base["size"],
                config=RuntimeConfig(**cfg),
                run_kwargs=base["run_kwargs"],
                want_metrics=(point == "cholesky-mgpu")))
    return points


def fig_sched(parallel: int = 0,
              scheduler: "str | None" = None) -> FigureResult:
    """Scheduling-policy ablation: paper tier vs the adaptive tier.

    Series are makespans (lower is better) per policy.  ``scheduler`` is
    accepted for CLI uniformity but ignored — this figure *is* the
    scheduler sweep.
    """
    result = FigureResult(figure="Figure SCHED",
                          title="Scheduling policies, task-graph points",
                          x_label="point", xs=list(SCHED_POINTS),
                          unit="s (makespan)")
    points = fig_sched_points()
    values = run_points(points, parallel=parallel)
    for spec, val in zip(points, values):
        result.series.setdefault(spec.series, []).append(val["makespan"])
        if spec.want_metrics and val["metrics"]:
            result.attach_metrics(f"{spec.series}/{spec.x}",
                                  val["metrics"])
    paper = SCHED_POLICIES[:3]
    for i, point in enumerate(SCHED_POINTS):
        best_paper = min(paper, key=lambda p: result.series[p][i])
        best_new = min(SCHED_POLICIES[3:],
                       key=lambda p: result.series[p][i])
        b, n = result.series[best_paper][i], result.series[best_new][i]
        result.notes.append(
            f"{point}: best paper {best_paper} {b:.3f}s, best new "
            f"{best_new} {n:.3f}s ({(b - n) / b:+.1%} makespan reduction)")
    return result


def fig13(n_bodies: int = 20_000, parallel: int = 0,
          scheduler: "str | None" = None) -> FigureResult:
    """Cluster N-Body: OmpSs vs MPI+CUDA under all-to-all exchange.

    The paper's own 20000-body system: per-node compute shrinks
    quadratically with the node count while the all-to-all grows, which is
    exactly the regime where the two versions' communication structure
    (synchronous Allgather vs runtime-managed transfers) separates them.
    """
    result = FigureResult(figure="Figure 13",
                          title="N-Body, GPU cluster",
                          x_label="nodes", xs=list(CLUSTER_NODE_COUNTS),
                          unit="GFLOP/s")
    return _assemble(result, fig13_points(n_bodies), parallel,
                     scheduler=scheduler)


# ---------------------------------------------------------------------------
# Figure IRR: the irregular apps (ROADMAP item 3) under every policy
# ---------------------------------------------------------------------------

IRR_POINTS = ("jacobi-mgpu", "jacobi-cluster",
              "spreduce-mgpu", "spreduce-cluster")


def _irr_base(point: str) -> dict:
    from ..apps import jacobi, spreduce
    app, machine = point.split("-")
    size = (jacobi.PAPER_JACOBI if app == "jacobi"
            else spreduce.PAPER_SPREDUCE)
    if machine == "cluster":
        cfg = {k: v for k, v in CLUSTER_BEST.items() if k != "scheduler"}
        return dict(app=app, machine="cluster", count=4, size=size,
                    cfg=dict(cfg, presend=2))
    return dict(app=app, machine="multi_gpu", count=4, size=size,
                cfg=dict(functional=False, overlap=True, prefetch=True))


def fig_irr_points() -> "list[PointSpec]":
    points = []
    for policy in SCHED_POLICIES:
        for point in IRR_POINTS:
            base = _irr_base(point)
            points.append(PointSpec(
                figure="fig-irr", series=policy, x=point,
                app=base["app"], machine=base["machine"],
                count=base["count"], size=base["size"],
                config=RuntimeConfig(**dict(base["cfg"],
                                            scheduler=policy)),
                want_metrics=(point == "spreduce-mgpu")))
    return points


def fig_irr(parallel: int = 0,
            scheduler: "str | None" = None) -> FigureResult:
    """Irregular workloads (Jacobi halo exchange, sparse reduction) under
    every scheduling policy.

    Series are makespans (lower is better).  ``scheduler`` is accepted
    for CLI uniformity but ignored — this figure sweeps every policy.
    """
    result = FigureResult(figure="Figure IRR",
                          title="Irregular apps, all scheduling policies",
                          x_label="point", xs=list(IRR_POINTS),
                          unit="s (makespan)")
    points = fig_irr_points()
    values = run_points(points, parallel=parallel)
    for spec, val in zip(points, values):
        result.series.setdefault(spec.series, []).append(val["makespan"])
        if spec.want_metrics and val["metrics"]:
            result.attach_metrics(f"{spec.series}/{spec.x}",
                                  val["metrics"])
    for i, point in enumerate(IRR_POINTS):
        best = min(SCHED_POLICIES, key=lambda p: result.series[p][i])
        result.notes.append(
            f"{point}: best policy {best} "
            f"{result.series[best][i]:.4f}s")
    return result
