"""Regeneration of every figure in the paper's evaluation (Figs. 5-13).

Each ``figN()`` runs the corresponding sweep at the paper's problem sizes in
performance mode and returns a :class:`FigureResult` whose series mirror the
published chart's bars/lines.  Absolute values are simulated-hardware
numbers; the *shapes* are what EXPERIMENTS.md validates against the paper.
"""

from __future__ import annotations

from ..apps import matmul, nbody, perlin, stream
from ..runtime.config import RuntimeConfig
from .harness import CLUSTER_BEST, FigureResult, fresh_cluster, fresh_multi_gpu

__all__ = ["fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11",
           "fig12", "fig13", "MULTI_GPU_COUNTS", "CLUSTER_NODE_COUNTS"]

MULTI_GPU_COUNTS = (1, 2, 4)
CLUSTER_NODE_COUNTS = (1, 2, 4, 8)

CACHE_POLICIES = ("nocache", "wt", "wb")
SCHEDULERS = ("bf", "default", "affinity")

#: The N-Body size used for the Fig. 8 sweep: the paper observes that
#: "the N-Body uses a lot of GPU memory which is also transferred between
#: all the devices" — at 20000 bodies alone the footprint is trivial in our
#: model, so the memory-pressure run scales the body count (and allocates a
#: fresh position buffer per iteration, like the memory-hungry original)
#: until per-GPU footprints stress the 2.62 GB Tesla memory (DESIGN.md
#: section 2, substitution).
NBODY_STRESS = nbody.NBodySize(n=20_000_000, blocks=16, iters=10)


# ---------------------------------------------------------------------------
# Multi-GPU environment (Figs. 5-8)
# ---------------------------------------------------------------------------

def _multi_gpu_sweep(run_one, title: str, unit: str,
                     gpu_counts=MULTI_GPU_COUNTS,
                     figure: str = "") -> FigureResult:
    result = FigureResult(figure=figure, title=title, x_label="GPUs",
                          xs=list(gpu_counts), unit=unit)
    for policy in CACHE_POLICIES:
        for sched in SCHEDULERS:
            label = f"{policy}-{sched}"
            values = []
            for g in gpu_counts:
                cfg = RuntimeConfig(functional=False, cache_policy=policy,
                                    scheduler=sched)
                app = run_one(fresh_multi_gpu(g), cfg)
                values.append(app.metric)
            # Mechanism counters of the largest run explain the series'
            # shape (cache hits per policy, bytes migrated per scheduler).
            result.attach_metrics(label, app.metrics)
            result.add(label, values)
    return result


def fig5() -> FigureResult:
    """Matmul on the multi-GPU node: GFLOP/s per cache policy x scheduler."""
    size = matmul.PAPER_MATMUL

    def run_one(machine, cfg):
        return matmul.run_ompss(machine, size, config=cfg)

    return _multi_gpu_sweep(run_one, "Matrix multiply, multi-GPU node",
                            "GFLOP/s", figure="Figure 5")


def fig6() -> FigureResult:
    """STREAM on the multi-GPU node: aggregate GB/s per configuration."""

    def run_one(machine, cfg):
        size = stream.paper_stream_size(machine.total_gpus)
        return stream.run_ompss(machine, size, config=cfg)

    return _multi_gpu_sweep(run_one, "STREAM, multi-GPU node", "GB/s",
                            figure="Figure 6")


def fig7() -> FigureResult:
    """Perlin noise on the multi-GPU node: Mpixels/s, Flush vs NoFlush."""
    size = perlin.PAPER_PERLIN
    result = FigureResult(figure="Figure 7",
                          title="Perlin noise, multi-GPU node",
                          x_label="GPUs", xs=list(MULTI_GPU_COUNTS),
                          unit="Mpixels/s")
    for variant, flush in (("flush", True), ("noflush", False)):
        for policy in CACHE_POLICIES:
            values = []
            for g in MULTI_GPU_COUNTS:
                cfg = RuntimeConfig(functional=False, cache_policy=policy)
                values.append(perlin.run_ompss(fresh_multi_gpu(g), size,
                                               config=cfg,
                                               flush=flush).metric)
            result.add(f"{variant}-{policy}", values)
    return result


def fig8() -> FigureResult:
    """N-Body on the multi-GPU node: the no-cache policy wins under GPU
    memory pressure (delayed write-back + replacement cost)."""
    result = FigureResult(figure="Figure 8",
                          title="N-Body, multi-GPU node (memory stress)",
                          x_label="GPUs", xs=[2, 4], unit="GFLOP/s")
    for policy in CACHE_POLICIES:
        values = []
        for g in (2, 4):
            cfg = RuntimeConfig(functional=False, cache_policy=policy)
            values.append(nbody.run_ompss(fresh_multi_gpu(g), NBODY_STRESS,
                                          config=cfg,
                                          fresh_buffers=True).metric)
        result.add(policy, values)
    result.notes.append(
        f"body count scaled to {NBODY_STRESS.n} to reach the paper's GPU "
        "memory pressure regime (see DESIGN.md)")
    return result


# ---------------------------------------------------------------------------
# GPU cluster environment (Figs. 9-13)
# ---------------------------------------------------------------------------

def fig9(presends=(0, 1, 4)) -> FigureResult:
    """Cluster matmul: StoS/MtoS x init mode x presend window."""
    size = matmul.PAPER_MATMUL
    result = FigureResult(figure="Figure 9",
                          title="Matrix multiply, GPU cluster",
                          x_label="nodes", xs=list(CLUSTER_NODE_COUNTS),
                          unit="GFLOP/s")
    for stos in (False, True):
        for init in ("seq", "smp", "gpu"):
            for ps in presends:
                label = (f"{'StoS' if stos else 'MtoS'}-{init}-ps{ps}")
                values = []
                for nodes in CLUSTER_NODE_COUNTS:
                    cfg = RuntimeConfig(**CLUSTER_BEST, slave_to_slave=stos,
                                        presend=ps)
                    app = matmul.run_ompss(fresh_cluster(nodes), size,
                                           config=cfg, init=init)
                    values.append(app.metric)
                result.attach_metrics(label, app.metrics)
                result.add(label, values)
    return result


def _best_cluster_config(presend: int = 4,
                         **overrides) -> RuntimeConfig:
    params = dict(CLUSTER_BEST, slave_to_slave=True, presend=presend)
    params.update(overrides)
    return RuntimeConfig(**params)


def fig10() -> FigureResult:
    """Cluster matmul: best OmpSs setup vs the MPI+CUDA SUMMA baseline."""
    size = matmul.PAPER_MATMUL
    result = FigureResult(figure="Figure 10",
                          title="Matmul: OmpSs vs MPI+CUDA",
                          x_label="nodes", xs=list(CLUSTER_NODE_COUNTS),
                          unit="GFLOP/s")
    ompss_vals, mpi_vals = [], []
    for nodes in CLUSTER_NODE_COUNTS:
        ompss_vals.append(matmul.run_ompss(
            fresh_cluster(nodes), size, config=_best_cluster_config(),
            init="smp").metric)
        mpi_vals.append(matmul.run_mpi_cuda(
            fresh_cluster(nodes), size, functional=False).metric)
    result.add("ompss-best", ompss_vals)
    result.add("mpi+cuda", mpi_vals)
    return result


def fig11() -> FigureResult:
    """Cluster STREAM: OmpSs vs MPI+CUDA (embarrassingly parallel)."""
    result = FigureResult(figure="Figure 11",
                          title="STREAM, GPU cluster",
                          x_label="nodes", xs=list(CLUSTER_NODE_COUNTS),
                          unit="GB/s")
    ompss_vals, mpi_vals = [], []
    for nodes in CLUSTER_NODE_COUNTS:
        size = stream.paper_stream_size(nodes)
        ompss_vals.append(stream.run_ompss(
            fresh_cluster(nodes), size,
            config=_best_cluster_config()).metric)
        mpi_vals.append(stream.run_mpi_cuda(
            fresh_cluster(nodes), size, functional=False).metric)
    result.add("ompss", ompss_vals)
    result.add("mpi+cuda", mpi_vals)
    return result


def fig12() -> FigureResult:
    """Cluster Perlin: OmpSs Flush/NoFlush vs MPI+CUDA."""
    size = perlin.PAPER_PERLIN
    result = FigureResult(figure="Figure 12",
                          title="Perlin noise, GPU cluster",
                          x_label="nodes", xs=list(CLUSTER_NODE_COUNTS),
                          unit="Mpixels/s")
    flush_vals, noflush_vals, mpi_vals = [], [], []
    for nodes in CLUSTER_NODE_COUNTS:
        flush_vals.append(perlin.run_ompss(
            fresh_cluster(nodes), size, config=_best_cluster_config(),
            flush=True).metric)
        noflush_vals.append(perlin.run_ompss(
            fresh_cluster(nodes), size, config=_best_cluster_config(),
            flush=False).metric)
        mpi_vals.append(perlin.run_mpi_cuda(
            fresh_cluster(nodes), size, flush=True,
            functional=False).metric)
    result.add("ompss-flush", flush_vals)
    result.add("ompss-noflush", noflush_vals)
    result.add("mpi+cuda", mpi_vals)
    return result


def fig13(n_bodies: int = 20_000) -> FigureResult:
    """Cluster N-Body: OmpSs vs MPI+CUDA under all-to-all exchange.

    The paper's own 20000-body system: per-node compute shrinks
    quadratically with the node count while the all-to-all grows, which is
    exactly the regime where the two versions' communication structure
    (synchronous Allgather vs runtime-managed transfers) separates them.
    """
    result = FigureResult(figure="Figure 13",
                          title="N-Body, GPU cluster",
                          x_label="nodes", xs=list(CLUSTER_NODE_COUNTS),
                          unit="GFLOP/s")
    ompss_vals, mpi_vals = [], []
    for nodes in CLUSTER_NODE_COUNTS:
        size = nbody.NBodySize(n=n_bodies, blocks=max(nodes, 1), iters=10)
        ompss_vals.append(nbody.run_ompss(
            fresh_cluster(nodes), size,
            config=_best_cluster_config()).metric)
        mpi_vals.append(nbody.run_mpi_cuda(
            fresh_cluster(nodes), size, functional=False).metric)
    result.add("ompss", ompss_vals)
    result.add("mpi+cuda", mpi_vals)
    return result
