"""Common machinery for the figure-regeneration benches."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from ..hardware.cluster import Machine, build_gpu_cluster, build_multi_gpu_node
from ..runtime.config import RuntimeConfig
from ..sim import Environment
from .report import render_series

__all__ = ["FigureResult", "fresh_multi_gpu", "fresh_cluster", "PERF",
           "CLUSTER_BEST"]

#: Performance-mode base configuration (benchmarks never move real data).
PERF = RuntimeConfig(functional=False)

#: "For the GPU cluster evaluation, we have used the best parameters for the
#: cache and GPUs" (Section IV.B.2): write-back + affinity + GPU-level
#: overlap and prefetch.
CLUSTER_BEST = dict(functional=False, cache_policy="wb",
                    scheduler="affinity", overlap=True, prefetch=True)


@dataclass
class FigureResult:
    """One regenerated figure: labelled series over an x axis."""

    figure: str
    title: str
    x_label: str
    xs: Sequence[Any]
    unit: str
    series: dict[str, list[float]] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)

    def add(self, name: str, values: list[float]) -> None:
        self.series[name] = values

    def render(self) -> str:
        text = render_series(f"{self.figure}: {self.title}", self.x_label,
                             self.xs, self.series, unit=self.unit)
        if self.notes:
            text += "\n" + "\n".join(f"note: {n}" for n in self.notes)
        return text

    def value(self, series: str, x: Any) -> float:
        return self.series[series][list(self.xs).index(x)]


def fresh_multi_gpu(num_gpus: int) -> Machine:
    return build_multi_gpu_node(Environment(), num_gpus=num_gpus)


def fresh_cluster(num_nodes: int) -> Machine:
    if num_nodes == 1:
        # A 1-node "cluster" run uses the cluster node hardware without the
        # fabric (matching the paper's single-node cluster data points).
        return build_gpu_cluster(Environment(), num_nodes=1)
    return build_gpu_cluster(Environment(), num_nodes=num_nodes)
