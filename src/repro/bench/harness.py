"""Common machinery for the figure-regeneration benches."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from ..hardware.cluster import Machine, build_gpu_cluster, build_multi_gpu_node
from ..runtime.config import RuntimeConfig
from ..sim import Environment
from .report import render_series, render_table

__all__ = ["FigureResult", "fresh_multi_gpu", "fresh_cluster", "PERF",
           "CLUSTER_BEST", "summarize_run"]


def summarize_run(snapshot: dict) -> dict:
    """Condense a :meth:`CounterRegistry.snapshot` into the headline
    mechanism counters the evaluation tables report per run (cache
    behaviour, data movement, cluster overlap)."""

    def total(prefix: str, suffix: str) -> float:
        return sum(v for k, v in snapshot.items()
                   if k.startswith(prefix) and k.endswith(suffix)
                   and isinstance(v, (int, float)))

    hits = total("cache.", ".hits")
    misses = total("cache.", ".misses")
    return {
        "sched": snapshot.get("scheduler.policy", "-"),
        "tasks": snapshot.get("runtime.tasks_finished", 0),
        "hits": hits,
        "misses": misses,
        "hit%": round(100.0 * hits / (hits + misses), 1)
                if hits + misses else 0.0,
        "evict": total("cache.", ".evictions"),
        "wback": total("cache.", ".writebacks"),
        "elided": snapshot.get("datamove.writebacks_elided", 0),
        "fused": snapshot.get("datamove.fused_transfers", 0),
        "xfers": snapshot.get("coherence.transfers", 0),
        "moved MB": snapshot.get("coherence.bytes_transferred", 0) / 1e6,
        "net MB": snapshot.get("am.bytes_sent", 0) / 1e6,
        "presend": total("cluster.", ".presends"),
        "prestage": total("cluster.", ".prestages"),
        "steals": snapshot.get("scheduler.steals", 0),
    }

#: Performance-mode base configuration (benchmarks never move real data).
PERF = RuntimeConfig(functional=False)

#: "For the GPU cluster evaluation, we have used the best parameters for the
#: cache and GPUs" (Section IV.B.2): write-back + affinity + GPU-level
#: overlap and prefetch.
CLUSTER_BEST = dict(functional=False, cache_policy="wb",
                    scheduler="affinity", overlap=True, prefetch=True)


@dataclass
class FigureResult:
    """One regenerated figure: labelled series over an x axis."""

    figure: str
    title: str
    x_label: str
    xs: Sequence[Any]
    unit: str
    series: dict[str, list[float]] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)
    #: per-config condensed metrics (label -> summarize_run dict), rendered
    #: as an extra table after the figure series.
    run_metrics: dict[str, dict] = field(default_factory=dict)

    def add(self, name: str, values: list[float]) -> None:
        self.series[name] = values

    def attach_metrics(self, name: str, snapshot: dict) -> None:
        """Record a run's counter snapshot (condensed) under ``name``."""
        if snapshot:
            self.run_metrics[name] = summarize_run(snapshot)

    def render(self) -> str:
        text = render_series(f"{self.figure}: {self.title}", self.x_label,
                             self.xs, self.series, unit=self.unit)
        if self.run_metrics:
            first = next(iter(self.run_metrics.values()))
            columns = ["config"] + list(first)
            rows = [[label] + list(summary.values())
                    for label, summary in self.run_metrics.items()]
            text += "\n" + render_table(
                f"{self.figure}: per-run metrics (at {self.x_label}="
                f"{self.xs[-1]})", columns, rows)
        if self.notes:
            text += "\n" + "\n".join(f"note: {n}" for n in self.notes)
        return text

    def value(self, series: str, x: Any) -> float:
        return self.series[series][list(self.xs).index(x)]


def fresh_multi_gpu(num_gpus: int) -> Machine:
    return build_multi_gpu_node(Environment(), num_gpus=num_gpus)


def fresh_cluster(num_nodes: int) -> Machine:
    if num_nodes == 1:
        # A 1-node "cluster" run uses the cluster node hardware without the
        # fabric (matching the paper's single-node cluster data points).
        return build_gpu_cluster(Environment(), num_nodes=1)
    return build_gpu_cluster(Environment(), num_nodes=num_nodes)
