"""ASCII rendering of benchmark tables, series, and metrics snapshots."""

from __future__ import annotations

from typing import Any, Mapping, Optional, Sequence

__all__ = ["render_table", "render_series", "render_metrics"]


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


def render_table(title: str, columns: Sequence[str],
                 rows: Sequence[Sequence[Any]],
                 note: Optional[str] = None) -> str:
    """Render rows as a fixed-width table with a title banner.

    Tolerates empty ``rows`` (header-only table) and short rows (missing
    trailing cells render blank) instead of crashing on ``max()`` of an
    empty sequence / indexing past a ragged row.
    """
    cells = [[_fmt(v) for v in row] for row in rows]
    widths = []
    for i, col in enumerate(columns):
        in_col = [len(r[i]) for r in cells if i < len(r)]
        widths.append(max(len(str(col)), *in_col) if in_col
                      else len(str(col)))
    sep = "-+-".join("-" * w for w in widths)
    lines = [f"== {title} ==",
             " | ".join(str(c).ljust(w) for c, w in zip(columns, widths)),
             sep]
    for row in cells:
        padded = row + [""] * (len(widths) - len(row))
        lines.append(" | ".join(v.rjust(w) for v, w in zip(padded, widths)))
    if note:
        lines.append(f"note: {note}")
    return "\n".join(lines)


def render_metrics(snapshot: Mapping[str, Any],
                   title: str = "metrics",
                   prefix: str = "",
                   note: Optional[str] = None) -> str:
    """Render a :meth:`CounterRegistry.snapshot` as a two-column table.

    Scalar instruments (counters, gauges) render as single rows; histogram
    summaries render as ``name{count,mean,...}`` rows.  ``prefix`` filters
    to one subsystem (e.g. ``"cache."``).
    """
    rows: list[list[Any]] = []
    for name in sorted(snapshot):
        if prefix and not name.startswith(prefix):
            continue
        value = snapshot[name]
        if isinstance(value, Mapping):
            for stat in ("count", "total", "min", "max", "mean"):
                if stat in value:
                    rows.append([f"{name}.{stat}", value[stat]])
        else:
            rows.append([name, value])
    return render_table(title, ["metric", "value"], rows, note=note)


def render_series(title: str, x_label: str, xs: Sequence[Any],
                  series: dict[str, Sequence[float]],
                  unit: str = "") -> str:
    """Render one line per series, columns per x value (figure-style)."""
    columns = [x_label] + [str(x) for x in xs]
    rows = [[name] + list(values) for name, values in series.items()]
    note = f"values in {unit}" if unit else None
    return render_table(title, columns, rows, note=note)
