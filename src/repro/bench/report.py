"""ASCII rendering of benchmark tables and series."""

from __future__ import annotations

from typing import Any, Optional, Sequence

__all__ = ["render_table", "render_series"]


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


def render_table(title: str, columns: Sequence[str],
                 rows: Sequence[Sequence[Any]],
                 note: Optional[str] = None) -> str:
    """Render rows as a fixed-width table with a title banner."""
    cells = [[_fmt(v) for v in row] for row in rows]
    widths = [max(len(str(col)), *(len(r[i]) for r in cells) if cells else (0,))
              for i, col in enumerate(columns)]
    sep = "-+-".join("-" * w for w in widths)
    lines = [f"== {title} ==",
             " | ".join(str(c).ljust(w) for c, w in zip(columns, widths)),
             sep]
    for row in cells:
        lines.append(" | ".join(v.rjust(w) for v, w in zip(row, widths)))
    if note:
        lines.append(f"note: {note}")
    return "\n".join(lines)


def render_series(title: str, x_label: str, xs: Sequence[Any],
                  series: dict[str, Sequence[float]],
                  unit: str = "") -> str:
    """Render one line per series, columns per x value (figure-style)."""
    columns = [x_label] + [str(x) for x in xs]
    rows = [[name] + list(values) for name, values in series.items()]
    note = f"values in {unit}" if unit else None
    return render_table(title, columns, rows, note=note)
