"""Command-line figure regeneration: ``python -m repro.bench [targets...]``.

Targets: ``fig5`` ... ``fig13``, ``table1``, or ``all``.  Each prints the
same series/table the benchmark suite asserts against (EXPERIMENTS.md).

``--parallel N`` fans each figure's points out over ``N`` worker processes
(one fresh process per point; see :mod:`repro.bench.sweep`).  Output is
bit-identical to a serial run — only the wall clock changes.
"""

from __future__ import annotations

import argparse
import sys
import time

from ..runtime.config import SCHEDULERS
from . import figures
from .loc import table1_rows
from .report import render_table

FIGURES = {f"fig{i}": getattr(figures, f"fig{i}") for i in range(5, 14)}
FIGURES["fig-dm"] = figures.fig_datamove
FIGURES["fig-sched"] = figures.fig_sched
FIGURES["fig-irr"] = figures.fig_irr


def print_table1() -> None:
    rows = []
    for row in table1_rows():
        rows.append([
            row["app"], row["serial"],
            f"{row['cuda']} ({row['cuda_pct']:+.0f}%)",
            f"{row['mpi_cuda']} ({row['mpi_cuda_pct']:+.0f}%)",
            f"{row['ompss']} ({row['ompss_pct']:+.0f}%)",
        ])
    print(render_table(
        "Table I: useful lines of code",
        ["app", "serial", "cuda", "mpi+cuda", "ompss"], rows,
        note="increments relative to the serial version",
    ))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's evaluation figures/tables.",
    )
    parser.add_argument(
        "targets", nargs="*", default=["all"],
        help=f"any of: {', '.join(FIGURES)}, table1, all",
    )
    parser.add_argument(
        "--parallel", type=int, default=0, metavar="N",
        help="run each figure's points on N worker processes "
             "(default: serial in-process)",
    )
    parser.add_argument(
        "--scheduler", choices=SCHEDULERS, default=None, metavar="NAME",
        help="override the scheduling policy on every OmpSs point "
             f"(one of: {', '.join(SCHEDULERS)}; see docs/SCHEDULERS.md)",
    )
    args = parser.parse_args(argv)
    if args.parallel < 0:
        parser.error("--parallel must be >= 0")

    targets = args.targets or ["all"]
    if "all" in targets:
        targets = list(FIGURES) + ["table1"]

    for name in targets:
        if name == "table1":
            print_table1()
            print()
            continue
        fn = FIGURES.get(name)
        if fn is None:
            parser.error(f"unknown target {name!r}")
        start = time.time()
        result = fn(parallel=args.parallel, scheduler=args.scheduler)
        print(result.render())
        print(f"[regenerated in {time.time() - start:.1f}s wall]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
