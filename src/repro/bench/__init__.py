"""Benchmark harness: regenerates every table and figure of the evaluation."""

from .figures import (
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    fig10,
    fig11,
    fig12,
    fig13,
)
from .harness import CLUSTER_BEST, FigureResult, fresh_cluster, fresh_multi_gpu
from .loc import APP_VERSION_FILES, count_useful_lines, table1_rows
from .report import render_series, render_table
from .sweep import PointSpec, SweepPointError, run_point, run_points

__all__ = [
    "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12",
    "fig13",
    "PointSpec",
    "SweepPointError",
    "run_point",
    "run_points",
    "FigureResult",
    "fresh_cluster",
    "fresh_multi_gpu",
    "CLUSTER_BEST",
    "count_useful_lines",
    "table1_rows",
    "APP_VERSION_FILES",
    "render_table",
    "render_series",
]
