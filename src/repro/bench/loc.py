"""Useful-lines-of-code counting for the productivity study (Table I).

The paper counts "useful lines of code" per benchmark version (Serial, CUDA,
MPI+CUDA, OmpSs+CUDA) and reports the increment over the serial version.
Here each version is one Python module; *useful* lines exclude blanks,
comments and docstrings (counted with the tokenizer, not regexes).
"""

from __future__ import annotations

import ast
import io
import tokenize
from pathlib import Path

from .. import apps

__all__ = ["count_useful_lines", "table1_rows", "APP_VERSION_FILES"]

_APPS_DIR = Path(apps.__file__).parent

#: app -> version -> module file implementing it.
APP_VERSION_FILES: dict[str, dict[str, Path]] = {
    app: {
        "serial": _APPS_DIR / app / "serial.py",
        "cuda": _APPS_DIR / app / "cuda_single.py",
        "mpi_cuda": _APPS_DIR / app / "mpi_cuda.py",
        "ompss": _APPS_DIR / app / "ompss.py",
    }
    for app in ("matmul", "stream", "perlin", "nbody")
}

_SKIP_TOKENS = {tokenize.COMMENT, tokenize.NL, tokenize.NEWLINE,
                tokenize.INDENT, tokenize.DEDENT, tokenize.ENCODING,
                tokenize.ENDMARKER}


def _docstring_lines(source: str) -> set[int]:
    """Line numbers occupied by module/class/function docstrings."""
    lines: set[int] = set()
    tree = ast.parse(source)
    for node in ast.walk(tree):
        if not isinstance(node, (ast.Module, ast.ClassDef, ast.FunctionDef,
                                 ast.AsyncFunctionDef)):
            continue
        body = node.body
        if body and isinstance(body[0], ast.Expr) \
                and isinstance(body[0].value, ast.Constant) \
                and isinstance(body[0].value.value, str):
            expr = body[0]
            lines.update(range(expr.lineno, expr.end_lineno + 1))
    return lines


def count_useful_lines(path: Path) -> int:
    """Non-blank, non-comment, non-docstring source lines of a module."""
    source = Path(path).read_text()
    doc_lines = _docstring_lines(source)
    code_lines: set[int] = set()
    for tok in tokenize.generate_tokens(io.StringIO(source).readline):
        if tok.type in _SKIP_TOKENS:
            continue
        for line in range(tok.start[0], tok.end[0] + 1):
            if line not in doc_lines:
                code_lines.add(line)
    return len(code_lines)


def table1_rows() -> list[dict]:
    """Rows of Table I: per app, lines per version + increment vs serial."""
    rows = []
    for app, versions in APP_VERSION_FILES.items():
        counts = {v: count_useful_lines(p) for v, p in versions.items()}
        serial = counts["serial"]
        row = {"app": app, "serial": serial}
        for version in ("cuda", "mpi_cuda", "ompss"):
            lines = counts[version]
            row[version] = lines
            row[f"{version}_pct"] = 100.0 * (lines - serial) / serial
        rows.append(row)
    return rows
