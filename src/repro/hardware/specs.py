"""Hardware specifications for the paper's two evaluation machines.

The paper (Section IV.A) evaluates on:

* a **multi-GPU node**: 2x Intel Xeon E5440 (4 cores each) with 4 Tesla
  S2050 GPUs (2.62 GB each), 15.66 GB host memory, 148 GB/s peak memory
  bandwidth;
* a **GPU cluster**: nodes with 2x Intel Xeon E5620 (4 cores each), one
  GTX 480 (1.5 GB, 1.35 TFLOPS SP peak, 177.4 GB/s), 25 GB host memory,
  QDR InfiniBand with a quoted peak of 8 Gbit/s, GASNet ibv conduit.

Sustained-throughput factors (sgemm efficiency, effective PCIe bandwidth,
effective IB bandwidth) are calibration constants for the cost models, chosen
from contemporary measurements of the same hardware generation.  Absolute
numbers need not match the paper; shapes must (see EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = [
    "GPUSpec",
    "CPUSpec",
    "NICSpec",
    "NodeSpec",
    "ClusterSpec",
    "TESLA_S2050",
    "GTX_480",
    "XEON_E5440",
    "XEON_E5620",
    "QDR_INFINIBAND",
    "MULTI_GPU_NODE",
    "CLUSTER_NODE",
    "gpu_cluster_spec",
    "GB",
    "MB",
    "KB",
]

KB = 1024
MB = 1024 * KB
GB = 1024 * MB


@dataclass(frozen=True)
class GPUSpec:
    """Performance envelope of one GPU device."""

    name: str
    peak_sp_gflops: float          # peak single-precision throughput
    sgemm_efficiency: float        # sustained CUBLAS sgemm fraction of peak
    mem_capacity: int              # device memory, bytes
    mem_bandwidth: float           # device memory bandwidth, bytes/s
    mem_efficiency: float          # sustained fraction of peak mem bandwidth
    pcie_pinned_bw: float          # host<->device bandwidth, pinned, bytes/s
    pcie_pageable_bw: float        # host<->device bandwidth, pageable, bytes/s
    pcie_latency: float            # per-transfer setup latency, seconds
    copy_engines: int              # concurrent DMA engines (Fermi Tesla: 2)
    kernel_launch_overhead: float  # seconds per kernel launch

    @property
    def sgemm_gflops(self) -> float:
        return self.peak_sp_gflops * self.sgemm_efficiency

    @property
    def effective_mem_bandwidth(self) -> float:
        return self.mem_bandwidth * self.mem_efficiency


@dataclass(frozen=True)
class CPUSpec:
    """One multicore host CPU complex (all sockets of a node together)."""

    name: str
    cores: int
    core_gflops: float             # per-core sustained SP throughput
    mem_bandwidth: float           # host memory bandwidth, bytes/s


@dataclass(frozen=True)
class NICSpec:
    """Network interface / fabric characteristics."""

    name: str
    bandwidth: float               # effective point-to-point, bytes/s
    latency: float                 # one-way message latency, seconds
    am_overhead: float             # active-message handler dispatch cost, s


@dataclass(frozen=True)
class NodeSpec:
    """One machine: CPUs, host memory and attached GPUs."""

    name: str
    cpu: CPUSpec
    gpus: tuple[GPUSpec, ...]
    host_mem_capacity: int
    pinned_pool_capacity: int      # pre-allocated page-locked staging pool
    #: GPUs sharing one PCIe host link (the Tesla S2050 enclosure attaches
    #: two GPUs per host interface card).
    gpus_per_pcie_link: int = 1

    def with_gpus(self, count: int) -> "NodeSpec":
        """Same node with the first ``count`` GPUs only."""
        if not 1 <= count <= len(self.gpus):
            raise ValueError(f"node has {len(self.gpus)} GPUs, asked for {count}")
        return replace(self, gpus=self.gpus[:count])


@dataclass(frozen=True)
class ClusterSpec:
    """A homogeneous cluster of nodes over one fabric."""

    name: str
    node: NodeSpec
    num_nodes: int
    nic: NICSpec

    def __post_init__(self):
        if self.num_nodes < 1:
            raise ValueError("cluster needs at least one node")


# ---------------------------------------------------------------------------
# Catalog (calibrated for the paper's testbeds)
# ---------------------------------------------------------------------------

TESLA_S2050 = GPUSpec(
    name="Tesla S2050",
    peak_sp_gflops=1030.0,
    sgemm_efficiency=0.60,          # CUBLAS 3.2 on Fermi Tesla: ~600 GFLOP/s
    mem_capacity=int(2.62 * GB),
    mem_bandwidth=144e9,
    mem_efficiency=0.75,
    pcie_pinned_bw=5.7e9,           # PCIe 2.0 x16, pinned
    pcie_pageable_bw=3.3e9,         # pageable staging path
    pcie_latency=12e-6,
    copy_engines=2,
    kernel_launch_overhead=8e-6,
)

GTX_480 = GPUSpec(
    name="GTX 480",
    peak_sp_gflops=1345.0,
    sgemm_efficiency=0.58,          # CUBLAS 3.2 sgemm on GF100: ~780 GFLOP/s
    mem_capacity=int(1.5 * GB),
    mem_bandwidth=177.4e9,
    mem_efficiency=0.75,
    pcie_pinned_bw=5.7e9,
    pcie_pageable_bw=3.3e9,
    pcie_latency=12e-6,
    copy_engines=1,                 # GeForce Fermi has a single copy engine
    kernel_launch_overhead=8e-6,
)

XEON_E5440 = CPUSpec(
    name="2x Xeon E5440",
    cores=8,
    core_gflops=9.0,
    mem_bandwidth=12e9,
)

XEON_E5620 = CPUSpec(
    name="2x Xeon E5620",
    cores=8,
    core_gflops=10.0,
    mem_bandwidth=18e9,
)

QDR_INFINIBAND = NICSpec(
    name="QDR InfiniBand (GASNet ibv conduit)",
    bandwidth=1.0e9,                # paper quotes an 8 Gbit/s peak
    latency=4e-6,
    am_overhead=2e-6,
)

MULTI_GPU_NODE = NodeSpec(
    name="multi-GPU node (4x Tesla S2050)",
    cpu=XEON_E5440,
    gpus=(TESLA_S2050,) * 4,
    host_mem_capacity=int(15.66 * GB),
    pinned_pool_capacity=2 * GB,
    gpus_per_pcie_link=2,
)

CLUSTER_NODE = NodeSpec(
    name="cluster node (1x GTX 480)",
    cpu=XEON_E5620,
    gpus=(GTX_480,),
    host_mem_capacity=25 * GB,
    pinned_pool_capacity=2 * GB,
)


def gpu_cluster_spec(num_nodes: int) -> ClusterSpec:
    """The paper's DAS-4-style GPU cluster with ``num_nodes`` nodes."""
    return ClusterSpec(
        name=f"GPU cluster ({num_nodes} nodes)",
        node=CLUSTER_NODE,
        num_nodes=num_nodes,
        nic=QDR_INFINIBAND,
    )
