"""Machine builders for the paper's two evaluation environments."""

from __future__ import annotations

from typing import Optional

from ..sim import Environment
from .network import Network
from .node import Node
from .specs import (
    CLUSTER_NODE,
    MULTI_GPU_NODE,
    QDR_INFINIBAND,
    ClusterSpec,
    NodeSpec,
    gpu_cluster_spec,
)

__all__ = ["Machine", "build_multi_gpu_node", "build_gpu_cluster"]


class Machine:
    """A set of nodes plus (for clusters) the fabric connecting them."""

    def __init__(self, env: Environment, nodes: list[Node],
                 network: Optional[Network] = None, name: str = ""):
        if not nodes:
            raise ValueError("a machine needs at least one node")
        self.env = env
        self.nodes = nodes
        self.network = network
        self.name = name

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    @property
    def master(self) -> Node:
        return self.nodes[0]

    @property
    def is_cluster(self) -> bool:
        return len(self.nodes) > 1

    @property
    def total_gpus(self) -> int:
        return sum(node.num_gpus for node in self.nodes)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Machine {self.name!r} nodes={self.num_nodes} gpus={self.total_gpus}>"


def build_multi_gpu_node(env: Environment, num_gpus: int = 4,
                         spec: NodeSpec = MULTI_GPU_NODE) -> Machine:
    """The paper's 4x Tesla S2050 single-node machine (Figs. 5-8)."""
    node = Node(env, spec.with_gpus(num_gpus), index=0)
    return Machine(env, [node], name=f"multi-gpu x{num_gpus}")


def build_gpu_cluster(env: Environment, num_nodes: int,
                      spec: Optional[ClusterSpec] = None) -> Machine:
    """The paper's GTX 480 + QDR InfiniBand cluster (Figs. 9-13)."""
    cspec = spec or gpu_cluster_spec(num_nodes)
    nodes = [Node(env, cspec.node, index=i, nic=cspec.nic)
             for i in range(cspec.num_nodes)]
    network = Network(env, nodes, cspec.nic)
    return Machine(env, nodes, network, name=cspec.name)
