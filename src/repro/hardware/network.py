"""The interconnect fabric between cluster nodes.

A transfer from node A to node B holds A's NIC transmit port and B's NIC
receive port for the wire time.  Because every node has one tx and one rx
port, funnelling all traffic through the master node serializes on the
master's ports — exactly the contention the paper's MtoS-vs-StoS experiment
(Fig. 9) exercises.
"""

from __future__ import annotations

from ..sim import Environment
from .node import Node
from .specs import NICSpec

__all__ = ["Network"]


class Network:
    """Full-crossbar fabric: any pair of nodes can communicate directly."""

    def __init__(self, env: Environment, nodes: list[Node], nic: NICSpec):
        self.env = env
        self.nodes = nodes
        self.nic = nic
        self.bytes_moved = 0
        self.message_count = 0
        #: fault engine hook; when set, wire times honor its degradation
        #: windows (partitions are handled at the AM layer).
        self.faults = None

    def wire_time(self, nbytes: int) -> float:
        return self.nic.latency + nbytes / self.nic.bandwidth

    def transfer(self, src: Node, dst: Node, nbytes: int, priority: int = 0):
        """Process generator: move ``nbytes`` from ``src`` to ``dst``."""
        if src is dst:
            # Loopback: charged as a host-memory copy on the node.
            yield self.env.process(src.host_copy(nbytes))
            return
        if src.nic_tx is None or dst.nic_rx is None:
            raise RuntimeError("node has no NIC (not a cluster node)")
        # Hold both endpoints for the duration of the wire transfer.  The
        # sender's tx port is the primary serialization point.
        wire = self.wire_time(nbytes)
        if self.faults is not None:
            wire *= self.faults.link_slowdown(src.index, dst.index)
        with src.nic_tx._lanes.request(priority=priority) as tx_req:
            yield tx_req
            with dst.nic_rx._lanes.request(priority=priority) as rx_req:
                yield rx_req
                yield self.env.timeout(wire)
        # Full hold time (latency included) so latency-bound message
        # streams report truthful NIC busy fractions.
        src.nic_tx.account(nbytes, wire)
        dst.nic_rx.account(nbytes, wire)
        self.bytes_moved += nbytes
        self.message_count += 1
