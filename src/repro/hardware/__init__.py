"""Simulated hardware substrate: GPUs, nodes, links, interconnect.

Substitutes the paper's physical testbeds (4x Tesla S2050 node; GTX 480 +
QDR InfiniBand cluster) with calibrated discrete-event models.  See DESIGN.md
section 2 for the substitution rationale.
"""

from .cluster import Machine, build_gpu_cluster, build_multi_gpu_node
from .gpu import GPUDevice
from .link import Link
from .network import Network
from .node import Node
from .specs import (
    CLUSTER_NODE,
    GB,
    GTX_480,
    KB,
    MB,
    MULTI_GPU_NODE,
    QDR_INFINIBAND,
    TESLA_S2050,
    XEON_E5440,
    XEON_E5620,
    ClusterSpec,
    CPUSpec,
    GPUSpec,
    NICSpec,
    NodeSpec,
    gpu_cluster_spec,
)

__all__ = [
    "Machine",
    "build_gpu_cluster",
    "build_multi_gpu_node",
    "GPUDevice",
    "Link",
    "Network",
    "Node",
    "GPUSpec",
    "CPUSpec",
    "NICSpec",
    "NodeSpec",
    "ClusterSpec",
    "TESLA_S2050",
    "GTX_480",
    "XEON_E5440",
    "XEON_E5620",
    "QDR_INFINIBAND",
    "MULTI_GPU_NODE",
    "CLUSTER_NODE",
    "gpu_cluster_spec",
    "GB",
    "MB",
    "KB",
]
