"""Point-to-point transfer media (PCIe lanes, NIC ports, memory buses).

A :class:`Link` serializes transfers in one direction: each transfer holds the
link for ``latency + bytes / bandwidth`` seconds.  Contention (e.g. every
slave pulling data through the master's NIC) emerges from queuing on the
underlying :class:`~repro.sim.Resource`.
"""

from __future__ import annotations

from ..sim import Environment, Resource

__all__ = ["Link"]


class Link:
    """A unidirectional channel with bandwidth, latency and optional
    multi-engine concurrency (``lanes > 1``)."""

    def __init__(self, env: Environment, bandwidth: float, latency: float,
                 name: str = "", lanes: int = 1):
        if bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth}")
        if latency < 0:
            raise ValueError(f"latency must be non-negative, got {latency}")
        self.env = env
        self.bandwidth = bandwidth
        self.latency = latency
        self.name = name
        self._lanes = Resource(env, capacity=lanes, name=name)
        self.bytes_moved = 0
        self.transfer_count = 0
        #: hold-time multiplier, driven by fault-injection degradation
        #: windows (1.0 = healthy; multiplying by 1.0 is IEEE-exact, so
        #: the healthy path is bit-identical to an undegraded link).
        self.degradation = 1.0

    def occupancy(self, nbytes: int) -> float:
        """Time the link is held for an ``nbytes`` transfer."""
        if nbytes < 0:
            raise ValueError(f"negative transfer size {nbytes}")
        return (self.latency + nbytes / self.bandwidth) * self.degradation

    def transfer(self, nbytes: int, priority: int = 0):
        """Process generator: move ``nbytes`` across the link."""
        with self._lanes.request(priority=priority) as req:
            yield req
            yield self.env.timeout(self.occupancy(nbytes))
        self.bytes_moved += nbytes
        self.transfer_count += 1

    @property
    def busy(self) -> bool:
        return self._lanes.count > 0

    @property
    def queue_len(self) -> int:
        return self._lanes.queue_len
