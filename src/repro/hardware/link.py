"""Point-to-point transfer media (PCIe lanes, NIC ports, memory buses).

A :class:`Link` serializes transfers in one direction: each transfer holds the
link for ``latency + bytes / bandwidth`` seconds.  Contention (e.g. every
slave pulling data through the master's NIC) emerges from queuing on the
underlying :class:`~repro.sim.Resource`.

Busy-time accounting charges the *full* hold time — the latency term
included — so a stream of tiny transfers (each dominated by latency) reports
the link as busy for exactly as long as it really was held.  Counting only
``bytes / bandwidth`` would make a latency-bound link look almost idle.
"""

from __future__ import annotations

from ..sim import Environment, Resource

__all__ = ["Link"]


class Link:
    """A unidirectional channel with bandwidth, latency and optional
    multi-engine concurrency (``lanes > 1``)."""

    def __init__(self, env: Environment, bandwidth: float, latency: float,
                 name: str = "", lanes: int = 1):
        if bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth}")
        if latency < 0:
            raise ValueError(f"latency must be non-negative, got {latency}")
        self.env = env
        self.bandwidth = bandwidth
        self.latency = latency
        self.name = name
        self._lanes = Resource(env, capacity=lanes, name=name)
        self.bytes_moved = 0
        self.transfer_count = 0
        #: transfers that rode in a fused (coalesced) batch rather than
        #: paying their own latency charge.
        self.transfers_fused = 0
        #: cumulative seconds the link was held, latency term included.
        self.busy_seconds = 0.0
        #: hold-time multiplier, driven by fault-injection degradation
        #: windows (1.0 = healthy; multiplying by 1.0 is IEEE-exact, so
        #: the healthy path is bit-identical to an undegraded link).
        self.degradation = 1.0
        # bound ``hardware.link.<name>.*`` instruments (see attach_metrics)
        self._m_bytes = None
        self._m_transfers = None
        self._m_fused = None
        self._m_busy = None

    def attach_metrics(self, registry) -> None:
        """Mirror this link's statistics into ``hardware.link.<name>.*``
        counters of ``registry`` (a CounterRegistry).  Recording never
        touches simulated time, so attaching is timing-neutral."""
        prefix = f"hardware.link.{self.name}"
        self._m_bytes = registry.counter(f"{prefix}.bytes_moved")
        self._m_transfers = registry.counter(f"{prefix}.transfers")
        self._m_fused = registry.counter(f"{prefix}.transfers_fused")
        self._m_busy = registry.gauge(f"{prefix}.busy_seconds")

    def occupancy(self, nbytes: int) -> float:
        """Time the link is held for an ``nbytes`` transfer."""
        if nbytes < 0:
            raise ValueError(f"negative transfer size {nbytes}")
        return (self.latency + nbytes / self.bandwidth) * self.degradation

    def account(self, nbytes: int, seconds: float) -> None:
        """Record a completed hold of ``seconds`` moving ``nbytes``.
        ``seconds`` must be the full hold time (latency included)."""
        self.bytes_moved += nbytes
        self.transfer_count += 1
        self.busy_seconds += seconds
        if self._m_bytes is not None:
            self._m_bytes.value += nbytes
            self._m_transfers.value += 1
            self._m_busy.set(self.busy_seconds)

    def count_fused(self, n: int) -> None:
        """``n`` transfers on this link were carried by a fused batch."""
        self.transfers_fused += n
        if self._m_fused is not None:
            self._m_fused.value += n

    def transfer(self, nbytes: int, priority: int = 0):
        """Process generator: move ``nbytes`` across the link."""
        with self._lanes.request(priority=priority) as req:
            yield req
            # Occupancy is evaluated once the lane is granted, so a
            # degradation window opening while queued still applies.
            hold = self.occupancy(nbytes)
            yield self.env.timeout(hold)
        self.account(nbytes, hold)

    @property
    def busy(self) -> bool:
        return self._lanes.count > 0

    @property
    def queue_len(self) -> int:
        return self._lanes.queue_len
