"""Simulated GPU device: compute engine, DMA copy engines, device memory.

The device exposes *engines* (exclusive resources) plus PCIe links; the
simulated CUDA layer (:mod:`repro.cuda`) sequences work onto them according to
stream semantics.  Memory accounting lives here; the allocator that manages it
is :class:`repro.memory.allocator.DeviceAllocator`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..sim import Environment, Resource
from .link import Link
from .specs import GPUSpec

if TYPE_CHECKING:  # pragma: no cover
    from .node import Node

__all__ = ["GPUDevice", "DeviceLostError"]


class DeviceLostError(RuntimeError):
    """Work was issued to a GPU that has been lost (fault injection)."""


class GPUDevice:
    """One GPU: a compute engine, ``copy_engines`` DMA engines, and memory."""

    def __init__(self, env: Environment, spec: GPUSpec, index: int,
                 node: "Node | None" = None,
                 h2d: "Link | None" = None, d2h: "Link | None" = None):
        self.env = env
        self.spec = spec
        self.index = index
        self.node = node
        self.compute = Resource(env, capacity=1, name=f"gpu{index}.compute")
        # One PCIe link per direction — possibly shared with sibling GPUs
        # (the S2050 enclosure attaches two GPUs per host interface card).
        # The number of concurrent DMA engines limits how many directions
        # can move at once on GeForce vs Tesla.
        self.h2d = h2d or Link(env, spec.pcie_pinned_bw, spec.pcie_latency,
                               name=f"gpu{index}.h2d")
        self.d2h = d2h or Link(env, spec.pcie_pinned_bw, spec.pcie_latency,
                               name=f"gpu{index}.d2h")
        self.dma = Resource(env, capacity=spec.copy_engines,
                            name=f"gpu{index}.dma")
        self.kernels_launched = 0
        self.busy_time = 0.0
        #: set by the fault engine on a ``gpu_loss`` event; the device
        #: refuses new kernels afterwards (its manager stops first).
        self.failed = False

    @property
    def mem_capacity(self) -> int:
        return self.spec.mem_capacity

    def run_kernel(self, duration: float):
        """Process generator: occupy the compute engine for ``duration``."""
        if duration < 0:
            raise ValueError(f"negative kernel duration {duration}")
        if self.failed:
            raise DeviceLostError(f"gpu {self.index} has been lost")
        with self.compute.request() as req:
            yield req
            start = self.env.now
            yield self.env.timeout(self.spec.kernel_launch_overhead + duration)
            self.busy_time += self.env.now - start
        self.kernels_launched += 1

    def dma_transfer(self, nbytes: int, direction: str, pinned: bool = True):
        """Process generator: move ``nbytes`` host<->device via a DMA engine.

        ``direction`` is ``"h2d"`` or ``"d2h"``.  Pageable transfers run at
        the lower pageable bandwidth (modelled as a slowdown factor on the
        same link, since the staging copy shares the bus).
        """
        if direction == "h2d":
            link = self.h2d
        elif direction == "d2h":
            link = self.d2h
        else:
            raise ValueError(f"bad DMA direction {direction!r}")
        factor = 1.0 if pinned else (self.spec.pcie_pinned_bw /
                                     self.spec.pcie_pageable_bw)
        with self.dma.request() as req:
            yield req
            yield from link.transfer(int(nbytes * factor))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<GPUDevice {self.index} {self.spec.name}>"
