"""A cluster node: host CPU cores, host memory, GPUs and a NIC."""

from __future__ import annotations

from typing import Optional

from ..sim import Environment, Resource
from .gpu import GPUDevice
from .link import Link
from .specs import NICSpec, NodeSpec

__all__ = ["Node"]


class Node:
    """One machine image: cores, host memory bus, GPUs, NIC tx/rx ports."""

    def __init__(self, env: Environment, spec: NodeSpec, index: int,
                 nic: Optional[NICSpec] = None):
        self.env = env
        self.spec = spec
        self.index = index
        self.cores = Resource(env, capacity=spec.cpu.cores,
                              name=f"node{index}.cores")
        # Host memory bus: used for pinned-staging copies and SMP kernels.
        self.membus = Link(env, spec.cpu.mem_bandwidth, latency=0.0,
                           name=f"node{index}.membus", lanes=spec.cpu.cores)
        self.gpus = []
        share = max(1, spec.gpus_per_pcie_link)
        shared_links: dict[int, tuple[Link, Link]] = {}
        for i, gspec in enumerate(spec.gpus):
            group = i // share
            if share > 1:
                if group not in shared_links:
                    shared_links[group] = (
                        Link(env, gspec.pcie_pinned_bw, gspec.pcie_latency,
                             name=f"node{index}.pcie{group}.h2d"),
                        Link(env, gspec.pcie_pinned_bw, gspec.pcie_latency,
                             name=f"node{index}.pcie{group}.d2h"),
                    )
                h2d, d2h = shared_links[group]
            else:
                h2d = d2h = None
            self.gpus.append(GPUDevice(env, gspec, i, node=self,
                                       h2d=h2d, d2h=d2h))
        self.nic_spec = nic
        if nic is not None:
            self.nic_tx = Link(env, nic.bandwidth, nic.latency,
                               name=f"node{index}.nic_tx")
            self.nic_rx = Link(env, nic.bandwidth, nic.latency,
                               name=f"node{index}.nic_rx")
        else:
            self.nic_tx = self.nic_rx = None

    @property
    def num_gpus(self) -> int:
        return len(self.gpus)

    def host_copy(self, nbytes: int):
        """Process generator: a host-memory copy (e.g. pinned staging)."""
        yield self.env.process(self.membus.transfer(nbytes))

    def run_cpu_work(self, duration: float):
        """Process generator: occupy one core for ``duration`` seconds."""
        if duration < 0:
            raise ValueError(f"negative CPU work duration {duration}")
        with self.cores.request() as req:
            yield req
            yield self.env.timeout(duration)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Node {self.index} gpus={self.num_gpus}>"
