"""Runtime observability: the counter registry the runtime reports into.

See :mod:`repro.metrics.registry` for the instrument kinds and
``docs/OBSERVABILITY.md`` for the tour of what the runtime records where.
"""

from .registry import Counter, CounterRegistry, Gauge, Histogram

__all__ = ["Counter", "CounterRegistry", "Gauge", "Histogram"]
