"""The counter registry: the runtime's quantitative self-description.

The paper's evaluation (Section V) explains performance by *mechanism* —
cache-policy ablations hinge on how many transfers each write causes,
presend sweeps on how much data movement overlaps computation.  Spans (see
:mod:`repro.runtime.trace`) show *when* things happened; the registry counts
*how often* and *how much*: cache hits per device, bytes per physical link,
kernel launches, presend dispatches, steals.

Four instrument kinds cover the runtime's needs:

* :class:`Counter` — a monotonically increasing count (hits, bytes, sends);
* :class:`Gauge` — a level that moves both ways, with a high-water mark
  (bytes resident in a cache, outstanding presends);
* :class:`Histogram` — a distribution summary (count/total/min/max/mean)
  for observed values such as task durations;
* scoped timers — context managers feeding a histogram from a clock
  (the simulation clock when the registry belongs to a runtime).

Instruments are created lazily by name, so call sites never need
registration boilerplate::

    metrics = CounterRegistry()
    metrics.inc("cache.gpu:0:0.hits")
    metrics.observe("tasks.cuda.duration", 1.5e-3)
    with metrics.timer("startup"):
        ...
    print(metrics.to_json())

Names are dotted paths (``subsystem.instance.what``); ``snapshot()``
flattens everything into one JSON-friendly dict keyed by those names.
"""

from __future__ import annotations

import json
import time
from typing import Callable, Iterator, Optional

__all__ = ["Counter", "Gauge", "Histogram", "CounterRegistry"]


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: "int | float" = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Counter {self.name}={self.value}>"


class Gauge:
    """A level that can move both ways; remembers its high-water mark."""

    __slots__ = ("name", "value", "high_water")

    def __init__(self, name: str):
        self.name = name
        self.value = 0
        self.high_water = 0

    def set(self, value: "int | float") -> None:
        self.value = value
        if value > self.high_water:
            self.high_water = value

    def add(self, amount: "int | float") -> None:
        self.set(self.value + amount)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Gauge {self.name}={self.value} hwm={self.high_water}>"


class Histogram:
    """Streaming distribution summary: count, total, min, max, mean."""

    __slots__ = ("name", "count", "total", "vmin", "vmax")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.vmin = float("inf")
        self.vmax = float("-inf")

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.vmin:
            self.vmin = value
        if value > self.vmax:
            self.vmax = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def summary(self) -> dict:
        if self.count == 0:
            return {"count": 0, "total": 0.0, "min": 0.0, "max": 0.0,
                    "mean": 0.0}
        return {"count": self.count, "total": self.total, "min": self.vmin,
                "max": self.vmax, "mean": self.mean}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Histogram {self.name} n={self.count} mean={self.mean:g}>"


class _ScopedTimer:
    """Context manager observing its enter->exit duration into a histogram."""

    __slots__ = ("_hist", "_clock", "_start")

    def __init__(self, hist: Histogram, clock: Callable[[], float]):
        self._hist = hist
        self._clock = clock
        self._start = 0.0

    def __enter__(self) -> "_ScopedTimer":
        self._start = self._clock()
        return self

    def __exit__(self, *exc) -> None:
        self._hist.observe(self._clock() - self._start)


class CounterRegistry:
    """Lazily-created named instruments plus snapshot/export.

    ``clock`` supplies the time source for :meth:`timer`; a runtime passes
    its simulation clock (``lambda: env.now``) so scoped timers measure
    simulated seconds.  Without one, wall-clock ``time.perf_counter`` is
    used.
    """

    def __init__(self, clock: Optional[Callable[[], float]] = None):
        self._clock = clock or time.perf_counter
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        #: string-valued "info" instruments (e.g. the scheduler policy
        #: currently active under the adaptive meta-scheduler): last write
        #: wins, exported verbatim in snapshots.
        self._infos: dict[str, str] = {}

    # -- instrument access (creates on first use) -------------------------
    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            self._check_fresh(name)
            c = self._counters[name] = Counter(name)
        return c

    def gauge(self, name: str) -> Gauge:
        g = self._gauges.get(name)
        if g is None:
            self._check_fresh(name)
            g = self._gauges[name] = Gauge(name)
        return g

    def histogram(self, name: str) -> Histogram:
        h = self._histograms.get(name)
        if h is None:
            self._check_fresh(name)
            h = self._histograms[name] = Histogram(name)
        return h

    def _check_fresh(self, name: str) -> None:
        if (name in self._counters or name in self._gauges
                or name in self._histograms or name in self._infos):
            raise ValueError(
                f"metric {name!r} already exists with a different kind")

    # -- info instruments ---------------------------------------------------
    def set_info(self, name: str, value: str) -> None:
        """Record a string-valued fact (last write wins)."""
        if name not in self._infos:
            self._check_fresh(name)
        self._infos[name] = str(value)

    def info(self, name: str, default: Optional[str] = None) -> Optional[str]:
        return self._infos.get(name, default)

    # -- recording shortcuts ----------------------------------------------
    def inc(self, name: str, amount: "int | float" = 1) -> None:
        # Hand-inlined Counter.inc: this is the hottest call in the whole
        # metrics layer (every transfer leg increments four counters).
        c = self._counters.get(name)
        if c is None:
            c = self.counter(name)
        if amount < 0:
            raise ValueError(f"counter {name!r} cannot decrease")
        c.value += amount

    def set_gauge(self, name: str, value: "int | float") -> None:
        self.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        self.histogram(name).observe(value)

    def timer(self, name: str) -> _ScopedTimer:
        """Scoped timer: ``with metrics.timer("phase"): ...`` observes the
        block's duration into histogram ``name``."""
        return _ScopedTimer(self.histogram(name), self._clock)

    # -- queries ------------------------------------------------------------
    def value(self, name: str, default: "int | float" = 0) -> "int | float":
        """Current value of a counter or gauge (``default`` if absent)."""
        c = self._counters.get(name)
        if c is not None:
            return c.value
        g = self._gauges.get(name)
        if g is not None:
            return g.value
        return default

    def names(self) -> list[str]:
        return sorted([*self._counters, *self._gauges, *self._histograms,
                       *self._infos])

    def with_prefix(self, prefix: str) -> "dict[str, int | float | dict]":
        """Snapshot restricted to names starting with ``prefix``."""
        return {k: v for k, v in self.snapshot().items()
                if k.startswith(prefix)}

    def __len__(self) -> int:
        return (len(self._counters) + len(self._gauges)
                + len(self._histograms) + len(self._infos))

    def __bool__(self) -> bool:
        # An empty registry is still a registry — never let `metrics or
        # default` silently replace one that was passed in.
        return True

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    # -- export ------------------------------------------------------------
    def snapshot(self) -> "dict[str, int | float | dict]":
        """One flat, JSON-serializable dict.  Counters and gauges map to
        their value (gauges additionally export ``<name>.high_water``);
        histograms map to their five-number summary dict."""
        snap: dict[str, int | float | dict] = {}
        for name in sorted(self._counters):
            snap[name] = self._counters[name].value
        for name in sorted(self._gauges):
            g = self._gauges[name]
            snap[name] = g.value
            snap[f"{name}.high_water"] = g.high_water
        for name in sorted(self._histograms):
            snap[name] = self._histograms[name].summary()
        for name in sorted(self._infos):
            snap[name] = self._infos[name]
        return snap

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def reset(self) -> None:
        """Forget every instrument (fresh-run helper for sweeps)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
        self._infos.clear()
