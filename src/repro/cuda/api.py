"""Simulated CUDA driver API for one GPU.

This is the substrate the Nanos++ GPU layer (and the CUDA/MPI+CUDA baseline
applications) drive: synchronous and asynchronous memcpys, kernel launches on
streams, pinned host allocation (``cudaMallocHost``) from the node's
pre-registered pool, and device/stream synchronization.

Fidelity notes (paper Section III.D.2):

* async copies overlap with compute only when the host side is page-locked;
  pageable copies run at lower bandwidth and serialize on the null stream;
* pinned staging requires an extra host-memory copy into the intermediate
  buffer — the paper's reason why overlap "may not be worth enabling".
"""

from __future__ import annotations

from typing import Callable, Optional

from ..hardware.gpu import GPUDevice
from ..hardware.node import Node
from ..memory.allocator import BytePool, PoolLease
from ..sim import Environment, Event
from .kernels import KernelRegistry, KernelSpec
from .stream import Stream

__all__ = ["CudaContext", "CudaError"]


class CudaError(Exception):
    """Illegal use of the simulated CUDA API."""


class CudaContext:
    """Driver context bound to one GPU of one node."""

    def __init__(self, env: Environment, gpu: GPUDevice, node: Node,
                 registry: Optional[KernelRegistry] = None,
                 jitter: float = 0.0, metrics=None):
        self.env = env
        self.gpu = gpu
        self.node = node
        self.registry = registry or KernelRegistry()
        #: optional :class:`~repro.metrics.CounterRegistry` shared with the
        #: streams this context creates.
        self.metrics = metrics
        #: relative kernel-duration variability (real launches are not
        #: perfectly repeatable; a zero-variance simulation produces
        #: artificial lock-step schedules).  Deterministic per launch index.
        self.jitter = jitter
        self._lcg = (gpu.index * 2654435761 + node.index * 40503 + 12345) \
            & 0xFFFFFFFF
        self.null_stream = Stream(
            env, name=f"n{node.index}.gpu{gpu.index}.null", metrics=metrics)
        self._streams: list[Stream] = [self.null_stream]
        self.pinned_pool = BytePool(
            env, node.spec.pinned_pool_capacity,
            name=f"node{node.index}.pinned",
        )
        self.mem_allocated = 0

    def _jitter_factor(self) -> float:
        """Deterministic multiplicative noise in [1-j, 1+j]."""
        if self.jitter <= 0:
            return 1.0
        self._lcg = (self._lcg * 1664525 + 1013904223) & 0xFFFFFFFF
        u = self._lcg / 0xFFFFFFFF  # [0, 1]
        return 1.0 + self.jitter * (2.0 * u - 1.0)

    # -- streams ----------------------------------------------------------
    def create_stream(self) -> Stream:
        s = Stream(
            self.env,
            name=f"n{self.node.index}.gpu{self.gpu.index}"
                 f".s{len(self._streams)}",
            metrics=self.metrics)
        self._streams.append(s)
        return s

    def synchronize(self) -> Event:
        """cudaDeviceSynchronize: completion of all streams' pending work."""
        return self.env.all_of([s.synchronize() for s in self._streams])

    # -- memory ------------------------------------------------------------
    def malloc(self, nbytes: int) -> None:
        """Account a device allocation (capacity checked)."""
        if self.mem_allocated + nbytes > self.gpu.mem_capacity:
            raise CudaError(
                f"out of device memory on gpu{self.gpu.index}: "
                f"{self.mem_allocated + nbytes} > {self.gpu.mem_capacity}"
            )
        self.mem_allocated += nbytes

    def free(self, nbytes: int) -> None:
        self.mem_allocated -= nbytes
        if self.mem_allocated < 0:
            raise CudaError("device memory accounting went negative")

    def malloc_host(self, nbytes: int) -> Event:
        """cudaMallocHost: lease page-locked memory from the startup pool."""
        return self.pinned_pool.acquire(nbytes)

    # -- transfers -----------------------------------------------------------
    def memcpy(self, nbytes: int, direction: str, pinned: bool = False,
               stream: Optional[Stream] = None,
               on_complete: Optional[Callable[[], None]] = None) -> Event:
        """Enqueue a host<->device copy; returns its completion event.

        Without an explicit ``stream`` the copy goes to the null stream
        (serializing with kernels, as synchronous ``cudaMemcpy`` does).
        """
        target = stream or self.null_stream

        def op():
            yield from self.gpu.dma_transfer(nbytes, direction, pinned=pinned)
            if on_complete is not None:
                on_complete()

        return target.enqueue(op)

    def staging_copy(self, nbytes: int) -> Event:
        """The host-side copy into/out of a pinned intermediate buffer."""
        return self.env.process(self.node.host_copy(nbytes))

    # -- kernels ----------------------------------------------------------------
    def launch(self, kernel: "KernelSpec | str",
               stream: Optional[Stream] = None,
               func_args: tuple = (),
               on_complete: Optional[Callable[[], None]] = None,
               **cost_kwargs) -> Event:
        """Enqueue a kernel launch; returns its completion event.

        ``cost_kwargs`` feed the kernel's cost model; ``func_args`` are passed
        to the functional body (if any) when the kernel "executes".
        """
        spec = (kernel if isinstance(kernel, KernelSpec)
                else self.registry.get(kernel))
        duration = spec.duration(self.gpu.spec, **cost_kwargs) \
            * self._jitter_factor()
        target = stream or self.null_stream

        def op():
            yield from self.gpu.run_kernel(duration)
            if spec.func is not None and func_args:
                spec.func(*func_args)
            if on_complete is not None:
                on_complete()

        return target.enqueue(op)
