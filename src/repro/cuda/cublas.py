"""CUBLAS stand-in: the sgemm kernel used by the Matmul application.

The paper's Matmul calls ``cublasSgemm`` per tile pair (Figure 1).  Here
``SGEMM`` is a registered kernel whose cost model is the canonical
2*m*n*k flops over the device's sustained sgemm throughput, and whose
functional body performs the same multiply-accumulate with NumPy.
"""

from __future__ import annotations

import numpy as np

from .kernels import KernelSpec, gemm_cost

__all__ = ["SGEMM", "sgemm_func"]


def sgemm_func(a: np.ndarray, b: np.ndarray, c: np.ndarray,
               m: int, n: int, k: int) -> None:
    """C += A @ B on flat tile buffers stored row-major."""
    am = a.reshape(m, k)
    bm = b.reshape(k, n)
    cm = c.reshape(m, n)
    cm += am @ bm


SGEMM = KernelSpec(
    name="cublas_sgemm",
    cost=lambda spec, m, n, k: gemm_cost(spec, m, n, k),
    func=sgemm_func,
)
