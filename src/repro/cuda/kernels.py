"""Kernel registry and cost models.

The paper keeps kernel *code* out of scope ("the generation of the kernels
themselves ... must be provided by the user"); what the runtime needs is when
a kernel occupies a GPU and for how long.  Each :class:`KernelSpec` carries

* a **cost model** — seconds of GPU occupancy as a function of the device
  spec and the launch arguments, calibrated per kernel class (compute-bound
  sgemm, bandwidth-bound STREAM ops, arithmetic-heavy Perlin, O(N^2) N-Body);
* an optional **functional body** — a NumPy implementation run in functional
  mode so results can be checked against serial references.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..hardware.specs import GPUSpec

__all__ = [
    "KernelSpec",
    "KernelRegistry",
    "gemm_cost",
    "streaming_cost",
    "arithmetic_cost",
    "nbody_cost",
]


def gemm_cost(spec: GPUSpec, m: int, n: int, k: int) -> float:
    """Seconds for a single-precision matrix-multiply-accumulate tile."""
    flops = 2.0 * m * n * k
    return flops / (spec.sgemm_gflops * 1e9)


def streaming_cost(spec: GPUSpec, bytes_touched: int) -> float:
    """Seconds for a memory-bandwidth-bound kernel (STREAM copy/scale/...)."""
    return bytes_touched / spec.effective_mem_bandwidth


def arithmetic_cost(spec: GPUSpec, ops: float, efficiency: float = 0.25) -> float:
    """Seconds for a compute kernel with scalar-ish arithmetic (Perlin)."""
    return ops / (spec.peak_sp_gflops * 1e9 * efficiency)


def nbody_cost(spec: GPUSpec, n_total: int, n_block: int,
               flops_per_interaction: float = 20.0,
               efficiency: float = 0.45) -> float:
    """Seconds to update ``n_block`` bodies against all ``n_total`` bodies.

    The NVIDIA demo kernel the paper uses achieves a large fraction of peak;
    20 flops/interaction is the conventional accounting for it.
    """
    flops = flops_per_interaction * n_total * n_block
    return flops / (spec.peak_sp_gflops * 1e9 * efficiency)


@dataclass(frozen=True)
class KernelSpec:
    """A named GPU kernel: cost model plus optional functional body."""

    name: str
    #: (gpu_spec, launch kwargs) -> seconds of compute-engine occupancy.
    cost: Callable[..., float]
    #: Functional body: called with the task's buffer views + scalar args.
    func: Optional[Callable[..., None]] = None

    def duration(self, spec: GPUSpec, **kwargs) -> float:
        d = self.cost(spec, **kwargs)
        if d < 0:
            raise ValueError(f"kernel {self.name!r} computed negative cost")
        return d


class KernelRegistry:
    """Name -> KernelSpec mapping (one per application kernel)."""

    def __init__(self):
        self._kernels: dict[str, KernelSpec] = {}

    def register(self, kernel: KernelSpec) -> KernelSpec:
        if kernel.name in self._kernels:
            raise ValueError(f"kernel {kernel.name!r} already registered")
        self._kernels[kernel.name] = kernel
        return kernel

    def get(self, name: str) -> KernelSpec:
        try:
            return self._kernels[name]
        except KeyError:
            known = ", ".join(sorted(self._kernels)) or "<none>"
            raise KeyError(f"unknown kernel {name!r}; known: {known}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._kernels
