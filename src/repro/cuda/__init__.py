"""Simulated CUDA layer: contexts, streams, kernels, CUBLAS.

Substitutes NVIDIA CUDA 3.2 + CUBLAS (see DESIGN.md section 2): timing comes
from calibrated cost models over the simulated GPU engines; functional-mode
kernels execute real NumPy math for correctness testing.
"""

from .api import CudaContext, CudaError
from .cublas import SGEMM, sgemm_func
from .event import CudaEvent
from .kernels import (
    KernelRegistry,
    KernelSpec,
    arithmetic_cost,
    gemm_cost,
    nbody_cost,
    streaming_cost,
)
from .stream import Stream

__all__ = [
    "CudaContext",
    "CudaError",
    "CudaEvent",
    "Stream",
    "KernelRegistry",
    "KernelSpec",
    "gemm_cost",
    "streaming_cost",
    "arithmetic_cost",
    "nbody_cost",
    "SGEMM",
    "sgemm_func",
]
