"""CUDA events: stream markers for synchronization and timing.

``record`` enqueues the event on a stream (it fires when all prior work on
that stream completes); ``synchronize`` waits for it; ``elapsed`` gives the
simulated time between two completed events — the idiom CUDA code uses to
time kernels, and what the GPU manager's "synchronizing their execution"
amounts to at the driver level.
"""

from __future__ import annotations

from typing import Optional

from ..sim import Environment, Event
from .stream import Stream

__all__ = ["CudaEvent"]


class CudaEvent:
    """A recordable marker in a stream's work queue."""

    def __init__(self, env: Environment, name: str = ""):
        self.env = env
        self.name = name
        self._completion: Optional[Event] = None
        self.completed_at: Optional[float] = None

    @property
    def recorded(self) -> bool:
        return self._completion is not None

    @property
    def complete(self) -> bool:
        return self.completed_at is not None

    def record(self, stream: Stream) -> "CudaEvent":
        """Enqueue this event on ``stream`` (cudaEventRecord)."""

        def marker():
            self.completed_at = self.env.now
            return self
            yield  # pragma: no cover - generator marker

        self._completion = stream.enqueue(marker)
        return self

    def synchronize(self) -> Event:
        """Event firing once this marker has completed (cudaEventSynchronize)."""
        if self._completion is None:
            raise RuntimeError(f"event {self.name!r} was never recorded")
        return self._completion

    def elapsed(self, since: "CudaEvent") -> float:
        """Seconds between two completed events (cudaEventElapsedTime)."""
        if not self.complete or not since.complete:
            raise RuntimeError("both events must have completed")
        return self.completed_at - since.completed_at
