"""CUDA stream semantics over simulated GPU engines.

Operations enqueued on one stream execute strictly in order; operations on
different streams may overlap if they use different engines (compute vs DMA).
The *null stream* serializes with everything — modelled by routing all work
through a single stream when overlap is disabled, which reproduces the
paper's observation that without streams "CUDA tends to serialize [transfers]
after the kernel execution".

Implementation note: a stream is a single persistent *pump* process draining
a FIFO of operations, not one wrapper process per operation.  Enqueueing
returns a plain completion :class:`Event`; the pump runs each operation via
``yield from`` and fires its event.  On figure workloads (hundreds of
serialized kernel + DMA ops per GPU) this removes two simulated events and
one generator per operation from the hot path.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Optional

from ..sim import Environment, Event
from ..sim.core import PRIORITY_URGENT

__all__ = ["Stream"]


class Stream:
    """An in-order queue of GPU operations."""

    _next_id = 0

    def __init__(self, env: Environment, name: str = "", metrics=None):
        self.env = env
        Stream._next_id += 1
        self.sid = Stream._next_id
        self.name = name or f"stream{self.sid}"
        self._tail: Optional[Event] = None
        self.ops_enqueued = 0
        #: optional :class:`~repro.metrics.CounterRegistry`; enqueues are
        #: counted under ``cuda.stream.<name>.ops``.
        self.metrics = metrics
        self._c_ops = (metrics.counter(f"cuda.stream.{self.name}.ops")
                       if metrics is not None else None)
        #: queue-depth gauge (high-water = pipelining depth actually
        #: reached, e.g. by the datamove fused-DMA double buffering).
        self._g_depth = (metrics.gauge(f"cuda.stream.{self.name}.depth")
                         if metrics is not None else None)
        self._pending: deque = deque()
        self._pump_proc = None
        self._wakeup: Optional[Event] = None
        #: first operation failure; later enqueued operations fail with the
        #: same exception without running (the old chained-process semantics:
        #: a failed tail poisoned every successor).
        self._poison: Optional[BaseException] = None

    def enqueue(self, operation: Callable[[], "object"]) -> Event:
        """Append ``operation`` (a generator factory) to the stream.

        Returns the completion event of the enqueued operation.  The
        operation starts only after every previously enqueued operation on
        this stream has completed (in-order execution).
        """
        self.ops_enqueued += 1
        if self._c_ops is not None:
            self._c_ops.value += 1
        done = Event(self.env)
        self._pending.append((operation, done))
        if self._g_depth is not None:
            self._g_depth.set(len(self._pending))
        if self._pump_proc is None:
            self._pump_proc = self.env.process(self._pump())
        elif self._wakeup is not None:
            # Idle pump: wake it at the current instant, ahead of normal
            # events (the same slot a fresh process bootstrap would take).
            wake, self._wakeup = self._wakeup, None
            wake.succeed(priority=PRIORITY_URGENT)
        self._tail = done
        return done

    def _pump(self):
        """The stream's drain loop (one simulated process per stream)."""
        pending = self._pending
        while True:
            while pending:
                op, done = pending.popleft()
                if self._poison is not None:
                    done.fail(self._poison)
                    continue
                try:
                    result = yield from op()
                except GeneratorExit:
                    # Interpreter shutdown / GC of a parked simulation:
                    # close quietly, never re-yield.
                    raise
                except BaseException as exc:  # noqa: BLE001 - propagated
                    self._poison = exc
                    done.fail(exc)
                    continue
                done.succeed(result)
            self._wakeup = Event(self.env)
            yield self._wakeup

    def synchronize(self) -> Event:
        """Event that fires when all currently enqueued work has finished."""
        done = Event(self.env)
        if self._tail is None or self._tail.processed:
            done.succeed()
        else:
            self._tail.callbacks.append(lambda _ev: done.succeed())
        return done

    @property
    def idle(self) -> bool:
        return self._tail is None or self._tail.processed
