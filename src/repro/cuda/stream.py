"""CUDA stream semantics over simulated GPU engines.

Operations enqueued on one stream execute strictly in order; operations on
different streams may overlap if they use different engines (compute vs DMA).
The *null stream* serializes with everything — modelled by routing all work
through a single stream when overlap is disabled, which reproduces the
paper's observation that without streams "CUDA tends to serialize [transfers]
after the kernel execution".
"""

from __future__ import annotations

from typing import Callable, Optional

from ..sim import Environment, Event

__all__ = ["Stream"]


class Stream:
    """An in-order queue of GPU operations."""

    _next_id = 0

    def __init__(self, env: Environment, name: str = "", metrics=None):
        self.env = env
        Stream._next_id += 1
        self.sid = Stream._next_id
        self.name = name or f"stream{self.sid}"
        self._tail: Optional[Event] = None
        self.ops_enqueued = 0
        #: optional :class:`~repro.metrics.CounterRegistry`; enqueues are
        #: counted under ``cuda.stream.<name>.ops``.
        self.metrics = metrics

    def enqueue(self, operation: Callable[[], "object"]) -> Event:
        """Append ``operation`` (a generator factory) to the stream.

        Returns the completion event of the enqueued operation.  The
        operation starts only after every previously enqueued operation on
        this stream has completed (in-order execution).
        """
        prev_tail = self._tail
        self.ops_enqueued += 1
        if self.metrics is not None:
            self.metrics.inc(f"cuda.stream.{self.name}.ops")

        def runner():
            if prev_tail is not None and not prev_tail.processed:
                yield prev_tail
            result = yield self.env.process(operation())
            return result

        proc = self.env.process(runner())
        self._tail = proc
        return proc

    def synchronize(self) -> Event:
        """Event that fires when all currently enqueued work has finished."""
        done = Event(self.env)
        if self._tail is None or self._tail.processed:
            done.succeed()
        else:
            self._tail.callbacks.append(lambda _ev: done.succeed())
        return done

    @property
    def idle(self) -> bool:
        return self._tail is None or self._tail.processed
