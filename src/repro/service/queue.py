"""Priorities + per-tenant weighted fair queueing.

The "millions of users" half of the service: when more jobs arrive than
backends can run, dispatch order must be *predictable* (strict priority
classes) and *fair* (no tenant starves another inside a class).

Semantics
---------

* **Priority is strict**: a queued job always dispatches before any job
  of lower priority, whatever the tenants.
* **Within a priority class, weighted fair queueing**: every tenant
  carries a virtual time that advances by ``cost / weight`` per job
  dispatched; the tenant with the smallest virtual time goes next (ties
  break by tenant name, so dispatch order is fully deterministic).  A
  tenant with weight 2 therefore drains twice as many equal-cost jobs as
  a weight-1 tenant over any contended window.
* **Within one tenant and priority, FIFO.**
* A tenant that was idle re-enters at the queue's current virtual clock
  (the classic WFQ rule): sitting out does not bank credit to later
  monopolize the backends.

The queue is synchronous and deterministic — the service pumps it; there
are no threads and no wall-clock dependence, which is what lets the
fairness tests assert exact dispatch orders.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from ..metrics import CounterRegistry
from .job import JobRequest

__all__ = ["JobQueue"]


class JobQueue:
    """Strict-priority, tenant-weighted fair FIFO queue."""

    def __init__(self, weights: "dict[str, float] | None" = None,
                 default_weight: float = 1.0,
                 metrics: Optional[CounterRegistry] = None):
        if default_weight <= 0:
            raise ValueError("default_weight must be positive")
        self._weights = dict(weights or {})
        for tenant, w in self._weights.items():
            if w <= 0:
                raise ValueError(f"weight for {tenant!r} must be positive")
        self._default_weight = default_weight
        #: (priority, tenant) -> FIFO of (job_id, request)
        self._queues: "dict[tuple[int, str], deque]" = {}
        self._vtime: "dict[str, float]" = {}
        self._vclock = 0.0
        self._len = 0
        #: registry the ``service.*`` queue counters report into.  ``None``
        #: means "not bound yet": a :class:`~repro.service.api.Service`
        #: adopting this queue binds its own registry, so queue and
        #: service counters land in one snapshot.
        self.metrics = metrics

    # -- configuration ----------------------------------------------------
    def weight(self, tenant: str) -> float:
        return self._weights.get(tenant, self._default_weight)

    def set_weight(self, tenant: str, weight: float) -> None:
        if weight <= 0:
            raise ValueError("weight must be positive")
        self._weights[tenant] = weight

    # -- queue operations -------------------------------------------------
    def push(self, job_id: str, request: JobRequest) -> None:
        tenant = request.tenant
        if not self._tenant_active(tenant):
            # Idle tenant re-enters at the current virtual clock: no
            # banked credit from sitting out.
            self._vtime[tenant] = max(self._vtime.get(tenant, 0.0),
                                      self._vclock)
        key = (request.priority, tenant)
        self._queues.setdefault(key, deque()).append((job_id, request))
        self._len += 1
        if self.metrics is not None:
            self.metrics.inc(f"service.tenant.{tenant}.queued")
            self.metrics.set_gauge("service.queue.depth", self._len)

    def _tenant_active(self, tenant: str) -> bool:
        return any(q for (_, t), q in self._queues.items() if t == tenant)

    def _select(self) -> "Optional[tuple[int, str]]":
        """The (priority, tenant) slot :meth:`pop` will serve next."""
        live = [(p, t) for (p, t), q in self._queues.items() if q]
        if not live:
            return None
        top = max(p for p, _ in live)
        return min(((p, t) for p, t in live if p == top),
                   key=lambda pt: (self._vtime[pt[1]], pt[1]))

    def peek(self) -> "Optional[tuple[str, JobRequest]]":
        """The job :meth:`pop` would return, without dispatching it."""
        slot = self._select()
        return self._queues[slot][0] if slot is not None else None

    def pop(self) -> "Optional[tuple[str, JobRequest]]":
        slot = self._select()
        if slot is None:
            return None
        _, tenant = slot
        job_id, request = self._queues[slot].popleft()
        self._len -= 1
        # WFQ accounting: the virtual clock is the served tenant's start
        # tag; its own clock advances by the job's weighted cost.
        self._vclock = self._vtime[tenant]
        self._vtime[tenant] += request.cost / self.weight(tenant)
        if self.metrics is not None:
            self.metrics.inc(f"service.tenant.{tenant}.dispatched")
            self.metrics.inc("service.jobs_dispatched")
            self.metrics.set_gauge("service.queue.depth", self._len)
        return job_id, request

    # -- introspection ----------------------------------------------------
    def pending_by_tenant(self) -> "dict[str, int]":
        out: dict[str, int] = {}
        for (_, tenant), q in self._queues.items():
            if q:
                out[tenant] = out.get(tenant, 0) + len(q)
        return out

    def __len__(self) -> int:
        return self._len

    def __bool__(self) -> bool:
        return self._len > 0
