"""Simulation-as-a-service: async job API over pluggable backends.

One blocking :class:`~repro.api.Program` invocation serves one caller;
this package serves many.  A caller describes a run declaratively as a
:class:`JobRequest` (app + problem size, hardware shape, runtime
configuration, optional fault plan and sanitizer), submits it to a
:class:`Service` and gets a job id back immediately.  The service queues
requests with priorities and per-tenant weighted fair scheduling
(:class:`JobQueue`), routes each to an execution backend by resource
shape (:class:`Picker`), runs it on an in-process or fork-isolated
multiprocess backend (:mod:`repro.service.backends`), and stages the
outcome as an artifact bundle — metrics snapshot, Chrome trace,
sanitizer findings, captured stdout — in a per-job directory
(:class:`StagingDir`).

Layers (docs/SERVICE.md is the guide):

* :mod:`repro.service.job`       — ``JobRequest`` / ``JobResult`` / ``JobState``;
* :mod:`repro.service.staging`   — the per-job artifact bundle on disk;
* :mod:`repro.service.runner`    — the "run request → result payload" seam;
* :mod:`repro.service.isolation` — the one fork/pipe/waitpid implementation
  (shared with the figure-sweep runner in :mod:`repro.bench.sweep`);
* :mod:`repro.service.queue`     — priorities + weighted fair queueing;
* :mod:`repro.service.picker`    — request → backend-pool routing;
* :mod:`repro.service.backends`  — ``AbstractBackend`` and the eager /
  process-pool implementations;
* :mod:`repro.service.api`       — the :class:`Service` submit/poll/
  stream/fetch façade;
* ``python -m repro.service``    — submit / status / artifacts / worker /
  demo from the command line.
"""

from .api import Service
from .backends import AbstractBackend, EagerBackend, PoolBackend
from .job import JobRequest, JobResult, JobState
from .picker import Picker, Route
from .queue import JobQueue
from .runner import execute_request
from .staging import ARTIFACTS, StagingDir

__all__ = [
    "Service",
    "JobRequest",
    "JobResult",
    "JobState",
    "JobQueue",
    "Picker",
    "Route",
    "AbstractBackend",
    "EagerBackend",
    "PoolBackend",
    "StagingDir",
    "ARTIFACTS",
    "execute_request",
]
