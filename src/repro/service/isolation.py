"""Fork-isolated function calls: one fork/pipe/waitpid implementation.

Two consumers execute simulation work in a **freshly forked child** so
module-level counters (stream ids, cache use clocks) are pristine for
every run and a crash can never take the caller down: the figure-sweep
runner (:mod:`repro.bench.sweep`) and the service process-pool backend
(:mod:`repro.service.backends`).  Both call :func:`call_isolated`; the
child inherits the caller's current state copy-on-write, computes
``fn(*args)``, pickles the outcome down a pipe and ``_exit``\\ s without
ever returning into the caller's frames.

Failure taxonomy — the part both consumers must surface loudly:

* the callable **raised**: the child reports the formatted traceback and
  the caller re-raises it as :class:`ChildError`;
* the child **died** (segfault, ``os._exit``, OOM-kill): detected as pipe
  EOF without a payload, surfaced as :class:`ChildCrash` carrying the
  ``waitpid`` status — never a hang.

Both exception types pickle cleanly (custom ``__reduce__``), because the
service pool raises them inside ``ProcessPoolExecutor`` workers and they
must cross a second process boundary intact.
"""

from __future__ import annotations

import os
import pickle
import traceback

__all__ = ["ChildCrash", "ChildError", "call_isolated"]


class ChildCrash(RuntimeError):
    """The isolated child died without reporting an outcome."""

    def __init__(self, wait_status: int):
        super().__init__(
            f"isolated child died (wait status {wait_status:#x})")
        self.wait_status = wait_status

    def __reduce__(self):
        # Default exception reduce would replay ``args`` (the message)
        # into the int-typed constructor; rebuild from the status instead.
        return (ChildCrash, (self.wait_status,))


class ChildError(RuntimeError):
    """The isolated callable raised; carries the child's traceback text."""

    def __init__(self, tb: str):
        super().__init__(tb)
        self.traceback = tb

    def __reduce__(self):
        return (ChildError, (self.traceback,))


def call_isolated(fn, *args, **kwargs):
    """Run ``fn(*args, **kwargs)`` in a freshly forked child.

    Returns the callable's (picklable) result.  ``fn`` itself need not be
    picklable — the child is forked, not spawned, so it sees the caller's
    module state (including any monkeypatching) as of the call.
    """
    rfd, wfd = os.pipe()
    pid = os.fork()
    if pid == 0:                                  # the isolated child
        status = 1
        try:
            os.close(rfd)
            try:
                payload = pickle.dumps(("ok", fn(*args, **kwargs)))
            except BaseException:  # noqa: BLE001 - reported to the parent
                payload = pickle.dumps(("err", traceback.format_exc()))
            with os.fdopen(wfd, "wb") as fh:
                fh.write(payload)
            status = 0
        finally:
            os._exit(status)                      # never re-enter the caller
    os.close(wfd)
    with os.fdopen(rfd, "rb") as fh:
        data = fh.read()
    _, wait_status = os.waitpid(pid, 0)
    if not data:
        raise ChildCrash(wait_status)
    kind, value = pickle.loads(data)
    if kind == "err":
        raise ChildError(value)
    return value
