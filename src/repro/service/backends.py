"""Execution backends: the ``AbstractBackend`` contract and two plugins.

A backend turns dispatched jobs into result payloads asynchronously:
``start`` begins executing (never raises for *run* failures), ``poll``
reports an outcome exactly once when the job finishes.  Outcomes are
``("ok", payload)`` or ``("err", traceback_text)`` — a failed job is a
*result*, not a backend exception, so one crashing job can never take
the queue down (the service marks it failed and keeps draining).

Two implementations ship, the shape leaving the seam open for remote
plugins (a slurm/arq-style backend only has to implement the same four
methods against a remote queue):

* :class:`EagerBackend` — runs the request synchronously, in-process, at
  ``start`` time.  One slot.  The reference implementation: useful for
  tests, debugging, and as the determinism oracle for every other
  backend.
* :class:`PoolBackend` — a fork-context process pool; each job runs via
  :func:`repro.service.isolation.call_isolated` in a **fresh child
  forked from the pristine worker**, the same machinery (and the same
  isolation guarantee) as the figure-sweep runner.  Worker death
  surfaces as a failed job naming the wait status, not a hang.
"""

from __future__ import annotations

import abc
import concurrent.futures
import multiprocessing
import os
import traceback
from typing import Optional

from .isolation import ChildCrash, ChildError, call_isolated
from .job import JobRequest
from .runner import execute_request

__all__ = ["Outcome", "AbstractBackend", "EagerBackend", "PoolBackend"]

#: ("ok", payload dict) | ("err", formatted traceback / crash detail)
Outcome = "tuple[str, object]"


class AbstractBackend(abc.ABC):
    """The backend contract: start / poll / capacity / close."""

    #: registry name the picker routes by.
    name: str = "abstract"

    def __init__(self, slots: int = 1):
        if slots < 1:
            raise ValueError("slots must be at least 1")
        self.slots = slots

    @abc.abstractmethod
    def start(self, job_id: str, request: JobRequest) -> None:
        """Begin executing; must not raise for job failures (they are
        reported through :meth:`poll`)."""

    @abc.abstractmethod
    def poll(self, job_id: str) -> "Optional[tuple[str, object]]":
        """Non-blocking: ``None`` while running, the job's outcome once
        finished.  An outcome is delivered exactly once; polling an
        unknown or already-collected job raises ``KeyError``."""

    @abc.abstractmethod
    def active(self) -> "tuple[str, ...]":
        """Ids of jobs started but not yet collected."""

    def free_slots(self) -> int:
        return self.slots - len(self.active())

    def describe(self) -> dict:
        """Resource shape for status displays."""
        return {"name": self.name, "slots": self.slots}

    def close(self) -> None:
        """Release resources (idempotent)."""


class EagerBackend(AbstractBackend):
    """Synchronous in-process execution; the reference backend."""

    name = "eager"

    def __init__(self):
        super().__init__(slots=1)
        self._done: "dict[str, tuple[str, object]]" = {}

    def start(self, job_id: str, request: JobRequest) -> None:
        try:
            self._done[job_id] = ("ok", execute_request(request))
        except Exception:
            self._done[job_id] = ("err", traceback.format_exc())

    def poll(self, job_id: str) -> "Optional[tuple[str, object]]":
        return self._done.pop(job_id)

    def active(self) -> "tuple[str, ...]":
        return tuple(self._done)


def _pool_run(request: JobRequest) -> dict:
    """Worker-side entry point: one fresh forked child per job.

    Module-level (picklable) on purpose; ``execute_request`` is resolved
    through the module at call time, so tests can monkeypatch it before
    the pool forks."""
    return call_isolated(execute_request, request)


class PoolBackend(AbstractBackend):
    """Fork-isolated multiprocess pool; ``workers`` concurrent jobs.

    Shares :mod:`repro.service.isolation` with ``repro.bench.sweep`` —
    the pool worker forks one more child per job, so every job runs from
    the pristine pre-service module state and a dying job (segfault,
    ``os._exit``, OOM-kill) is detected via pipe EOF instead of
    corrupting the worker.
    """

    name = "pool"

    def __init__(self, workers: int = 2):
        super().__init__(slots=workers)
        if not hasattr(os, "fork"):  # pragma: no cover - non-POSIX guard
            raise RuntimeError("PoolBackend requires POSIX fork")
        ctx = multiprocessing.get_context("fork")
        self._pool = concurrent.futures.ProcessPoolExecutor(
            max_workers=workers, mp_context=ctx)
        self._futures: "dict[str, concurrent.futures.Future]" = {}

    def start(self, job_id: str, request: JobRequest) -> None:
        self._futures[job_id] = self._pool.submit(_pool_run, request)

    def poll(self, job_id: str) -> "Optional[tuple[str, object]]":
        fut = self._futures[job_id]
        if not fut.done():
            return None
        del self._futures[job_id]
        try:
            return ("ok", fut.result())
        except ChildError as exc:
            return ("err", exc.traceback)
        except ChildCrash as exc:
            return ("err", f"job process died (wait status "
                           f"{exc.wait_status:#x})")
        except Exception as exc:
            # The pool worker itself died or the payload failed to
            # unpickle: still an outcome, never an exception.
            return ("err", f"backend failure: {exc!r}")

    def active(self) -> "tuple[str, ...]":
        return tuple(self._futures)

    def describe(self) -> dict:
        return {"name": self.name, "slots": self.slots,
                "isolation": "fork-per-job"}

    def close(self) -> None:
        self._pool.shutdown(wait=False, cancel_futures=True)
