"""The async submit / poll / stream-status / fetch-artifacts façade.

A :class:`Service` owns the queue, the picker, the backends and a
staging root, and pumps jobs between them::

    from repro.service import JobRequest, Service

    with Service.local() as svc:
        job_id = svc.submit(JobRequest(app="matmul",
                                       size={"n": 64, "bs": 16}))
        svc.run_until_idle()
        result = svc.result(job_id)
        bundle = svc.fetch_artifacts(job_id)

``submit`` returns immediately with a job id; :meth:`Service.pump` is
the single synchronous step (collect finished outcomes, then dispatch
queued jobs to backends with free slots, in queue order).  ``poll``,
``stream_status`` and ``wait`` are conveniences over ``pump``.  All
lifecycle transitions are mirrored to the staging directory
(``status.json``), so an out-of-process observer — the CLI ``status``
command — sees the same states the in-process API reports.

Everything the service does is counted under ``service.*`` in its
metrics registry (see docs/OBSERVABILITY.md): submissions, per-tenant
dispatches, per-backend completions, failures, queue depth.
"""

from __future__ import annotations

import tempfile
import time
from dataclasses import dataclass, field
from typing import Iterator, Optional

from ..metrics import CounterRegistry
from .backends import AbstractBackend, EagerBackend, PoolBackend
from .job import JobRequest, JobResult, JobState
from .picker import Picker
from .queue import JobQueue
from .staging import StagingDir

__all__ = ["Service"]


@dataclass
class _JobRecord:
    request: JobRequest
    state: JobState = JobState.QUEUED
    backend: str = ""
    result: Optional[JobResult] = None
    payload: Optional[dict] = None
    seq: int = 0
    dispatch_seq: Optional[int] = None
    extras: dict = field(default_factory=dict)


class Service:
    """Queue + picker + backends + staging, pumped synchronously."""

    def __init__(self,
                 backends: "dict[str, AbstractBackend] | None" = None,
                 picker: Optional[Picker] = None,
                 queue: Optional[JobQueue] = None,
                 staging: "StagingDir | str | None" = None,
                 metrics: Optional[CounterRegistry] = None):
        self.metrics = metrics if metrics is not None else CounterRegistry()
        self.backends = dict(backends) if backends else \
            {"eager": EagerBackend()}
        for name, backend in self.backends.items():
            backend.name = name
        self.picker = picker if picker is not None else \
            Picker.default(tuple(self.backends))
        self.queue = queue if queue is not None else JobQueue()
        if self.queue.metrics is None:
            # Adopted queues report into the service's registry, so the
            # fair-share counters land in the same snapshot.
            self.queue.metrics = self.metrics
        self._tmpdir = None
        if staging is None:
            self._tmpdir = tempfile.TemporaryDirectory(prefix="repro-svc-")
            staging = self._tmpdir.name
        self.staging = (staging if isinstance(staging, StagingDir)
                        else StagingDir(staging))
        self._jobs: "dict[str, _JobRecord]" = {}
        self._seq = 0
        self._dispatch_seq = 0

    @classmethod
    def local(cls, workers: int = 0,
              staging: "StagingDir | str | None" = None,
              **kwargs) -> "Service":
        """An eager-only service, or eager + ``workers``-slot pool."""
        backends: dict[str, AbstractBackend] = {"eager": EagerBackend()}
        if workers > 0:
            backends["pool"] = PoolBackend(workers=workers)
        return cls(backends=backends, staging=staging, **kwargs)

    # -- submission -------------------------------------------------------
    def submit(self, request: JobRequest,
               job_id: Optional[str] = None) -> str:
        """Enqueue a request; returns its job id immediately."""
        if job_id is None:
            job_id = f"job-{self._seq:04d}-{request.tenant}-{request.app}"
        if job_id in self._jobs:
            raise ValueError(f"duplicate job id {job_id!r}")
        record = _JobRecord(request=request, seq=self._seq)
        self._seq += 1
        self._jobs[job_id] = record
        self.staging.write_request(job_id, request)
        self.staging.write_status(job_id, JobState.QUEUED,
                                  tenant=request.tenant)
        self.queue.push(job_id, request)
        self.metrics.inc("service.jobs_submitted")
        return job_id

    # -- the pump ---------------------------------------------------------
    def pump(self) -> int:
        """One synchronous step; returns the number of state transitions.

        Collects every finished outcome first (freeing slots), then
        dispatches queued jobs in queue order until the next job's
        backend has no free slot — dispatch is head-of-line on purpose,
        so the fair-share order the queue computes is the order jobs
        actually reach the backends.
        """
        progressed = 0
        for name, backend in self.backends.items():
            for job_id in backend.active():
                record = self._jobs.get(job_id)
                if record is None or record.state is not JobState.RUNNING:
                    continue
                outcome = backend.poll(job_id)
                if outcome is not None:
                    self._finish(job_id, record, outcome)
                    progressed += 1
        while self.queue:
            job_id, request = self.queue.peek()
            backend = self.backends[self.picker.pick(request)]
            if backend.free_slots() <= 0:
                break
            popped_id, request = self.queue.pop()
            assert popped_id == job_id
            record = self._jobs[job_id]
            record.state = JobState.RUNNING
            record.backend = backend.name
            record.dispatch_seq = self._dispatch_seq
            self._dispatch_seq += 1
            self.staging.write_status(job_id, JobState.RUNNING,
                                      backend=backend.name,
                                      tenant=request.tenant)
            self.metrics.inc(f"service.backend.{backend.name}.dispatched")
            backend.start(job_id, request)
            progressed += 1
        self.metrics.set_gauge(
            "service.active",
            sum(len(b.active()) for b in self.backends.values()))
        return progressed

    def _finish(self, job_id: str, record: _JobRecord, outcome) -> None:
        kind, value = outcome
        request = record.request
        if kind == "ok":
            payload = value
            record.payload = payload
            record.state = JobState.DONE
            result = JobResult(
                job_id=job_id, state=JobState.DONE, app=request.app,
                version=request.version, tenant=request.tenant,
                backend=record.backend,
                makespan=payload["makespan"], metric=payload["metric"],
                metric_unit=payload["metric_unit"],
                metrics=payload["metrics"], findings=payload["sanitizer"])
            self.staging.write_result(job_id, result, payload)
            self.staging.write_status(job_id, JobState.DONE,
                                      backend=record.backend,
                                      tenant=request.tenant)
            self.metrics.inc("service.jobs_completed")
            self.metrics.inc(f"service.backend.{record.backend}.completed")
            self.metrics.observe("service.job.makespan",
                                 payload["makespan"])
        else:
            record.state = JobState.FAILED
            result = JobResult(
                job_id=job_id, state=JobState.FAILED, app=request.app,
                version=request.version, tenant=request.tenant,
                backend=record.backend, error=str(value))
            self.staging.write_result(job_id, result)
            self.staging.write_status(job_id, JobState.FAILED,
                                      error=str(value),
                                      backend=record.backend,
                                      tenant=request.tenant)
            self.metrics.inc("service.jobs_failed")
            self.metrics.inc(f"service.backend.{record.backend}.failed")
        record.result = result

    # -- status & results -------------------------------------------------
    def _record(self, job_id: str) -> _JobRecord:
        try:
            return self._jobs[job_id]
        except KeyError:
            raise KeyError(f"unknown job {job_id!r}") from None

    def state(self, job_id: str) -> JobState:
        return self._record(job_id).state

    def status(self, job_id: str) -> dict:
        record = self._record(job_id)
        doc = {"job_id": job_id, "state": record.state.value,
               "tenant": record.request.tenant,
               "backend": record.backend or None}
        if record.result is not None and record.result.error:
            doc["error"] = record.result.error
        return doc

    def poll(self, job_id: str) -> JobState:
        """Pump once, then report the job's state."""
        self.pump()
        return self.state(job_id)

    def stream_status(self, job_id: str, poll_interval: float = 0.01,
                      timeout: Optional[float] = None
                      ) -> "Iterator[JobState]":
        """Yield the job's state now and on every change, pumping between
        polls, until it reaches a terminal state (which is yielded)."""
        deadline = None if timeout is None else time.monotonic() + timeout
        last = self.state(job_id)
        yield last
        while not last.terminal:
            if deadline is not None and time.monotonic() > deadline:
                raise TimeoutError(f"job {job_id} still {last.value}")
            if self.pump() == 0:
                time.sleep(poll_interval)
            state = self.state(job_id)
            if state is not last:
                last = state
                yield last

    def wait(self, job_id: str,
             timeout: Optional[float] = None) -> JobResult:
        """Block (pumping) until the job finishes; returns its result."""
        for _ in self.stream_status(job_id, timeout=timeout):
            pass
        return self.result(job_id)

    def run_until_idle(self, timeout: Optional[float] = None) -> None:
        """Pump until no job is queued or running."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while self.queue or any(
                r.state is JobState.RUNNING for r in self._jobs.values()):
            if deadline is not None and time.monotonic() > deadline:
                raise TimeoutError("service did not drain in time")
            if self.pump() == 0:
                time.sleep(0.005)

    def result(self, job_id: str) -> JobResult:
        record = self._record(job_id)
        if record.result is None:
            raise RuntimeError(f"job {job_id} is {record.state.value}; "
                               f"no result yet")
        return record.result

    def fetch_artifacts(self, job_id: str) -> "dict[str, object]":
        """Name → :class:`~pathlib.Path` of every staged artifact."""
        self._record(job_id)
        return self.staging.artifacts(job_id)

    def dispatch_order(self) -> "list[str]":
        """Job ids in the order they reached a backend (fairness probe)."""
        started = [(r.dispatch_seq, jid) for jid, r in self._jobs.items()
                   if r.dispatch_seq is not None]
        return [jid for _, jid in sorted(started)]

    def __contains__(self, job_id: str) -> bool:
        return job_id in self._jobs

    # -- lifecycle --------------------------------------------------------
    def close(self) -> None:
        for backend in self.backends.values():
            backend.close()
        if self._tmpdir is not None:
            self._tmpdir.cleanup()
            self._tmpdir = None

    def __enter__(self) -> "Service":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
