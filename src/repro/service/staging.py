"""Per-job staging directories: the artifact bundle on disk.

Every job owns one directory under the staging root::

    <root>/<job_id>/
        request.json     the JobRequest (diff-based; re-runnable)
        status.json      current lifecycle state (+ error for failures)
        result.json      JobResult summary (terminal states only)
        metrics.json     full counter-registry snapshot
        trace.json       Chrome trace-event JSON (open in Perfetto)
        sanitizer.json   sanitizer findings (``{"enabled": ..., "findings": [...]}``)
        stdout.txt       captured stdout of the run

The layout is the whole "fetch artifacts" API: a remote backend only has
to produce the same files.  ``status.json`` is written atomically
(rename) so a CLI worker and a ``status`` reader never race into half a
document.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Optional

from .job import JobRequest, JobResult, JobState

__all__ = ["ARTIFACTS", "StagingDir"]

#: Artifact file names a finished job may stage (beyond request/status).
ARTIFACTS = ("result.json", "metrics.json", "trace.json", "sanitizer.json",
             "stdout.txt")


class StagingDir:
    """One staging root; handles all per-job reads and writes."""

    def __init__(self, root: "str | os.PathLike"):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def job_dir(self, job_id: str, create: bool = False) -> Path:
        if not job_id or "/" in job_id or job_id.startswith("."):
            raise ValueError(f"bad job id {job_id!r}")
        path = self.root / job_id
        if create:
            path.mkdir(exist_ok=True)
        return path

    def jobs(self) -> "list[str]":
        """Known job ids (directories holding a request.json), sorted."""
        return sorted(p.name for p in self.root.iterdir()
                      if p.is_dir() and (p / "request.json").exists())

    # -- writes -----------------------------------------------------------
    def _write_atomic(self, path: Path, text: str) -> None:
        tmp = path.with_suffix(path.suffix + ".tmp")
        tmp.write_text(text)
        os.replace(tmp, path)

    def write_request(self, job_id: str, request: JobRequest) -> Path:
        path = self.job_dir(job_id, create=True) / "request.json"
        self._write_atomic(path, json.dumps(request.to_dict(), indent=1,
                                            sort_keys=True))
        return path

    def write_status(self, job_id: str, state: JobState,
                     error: Optional[str] = None, **extra) -> Path:
        doc = {"job_id": job_id, "state": state.value, **extra}
        if error is not None:
            doc["error"] = error
        path = self.job_dir(job_id, create=True) / "status.json"
        self._write_atomic(path, json.dumps(doc, indent=1, sort_keys=True))
        return path

    def write_result(self, job_id: str, result: JobResult,
                     payload: Optional[dict] = None) -> "dict[str, str]":
        """Stage the bundle for a terminal job; returns the artifact map.

        ``payload`` is the runner's raw outcome (metrics snapshot, Chrome
        trace text, findings, stdout); a failed job has none and stages
        only ``result.json``.
        """
        jdir = self.job_dir(job_id, create=True)
        artifacts: dict[str, str] = {"result": "result.json"}
        if payload is not None:
            self._write_atomic(jdir / "metrics.json",
                               json.dumps(payload.get("metrics") or {},
                                          indent=1, sort_keys=True))
            artifacts["metrics"] = "metrics.json"
            if payload.get("trace") is not None:
                self._write_atomic(jdir / "trace.json", payload["trace"])
                artifacts["trace"] = "trace.json"
            self._write_atomic(
                jdir / "sanitizer.json",
                json.dumps({"enabled": payload.get("sanitized", False),
                            "findings": payload.get("sanitizer", [])},
                           indent=1, sort_keys=True))
            artifacts["sanitizer"] = "sanitizer.json"
            self._write_atomic(jdir / "stdout.txt",
                               payload.get("stdout", ""))
            artifacts["stdout"] = "stdout.txt"
        result.artifacts = dict(artifacts)
        self._write_atomic(jdir / "result.json",
                           json.dumps(result.to_dict(), indent=1,
                                      sort_keys=True))
        return artifacts

    # -- reads ------------------------------------------------------------
    def read_request(self, job_id: str) -> JobRequest:
        doc = json.loads((self.job_dir(job_id) / "request.json").read_text())
        return JobRequest.from_dict(doc)

    def read_status(self, job_id: str) -> dict:
        return json.loads((self.job_dir(job_id) / "status.json").read_text())

    def read_result(self, job_id: str) -> JobResult:
        doc = json.loads((self.job_dir(job_id) / "result.json").read_text())
        return JobResult.from_dict(doc)

    def artifacts(self, job_id: str) -> "dict[str, Path]":
        """Name → path for every staged artifact of the job."""
        jdir = self.job_dir(job_id)
        out: dict[str, Path] = {}
        for name in ("request.json", "status.json", *ARTIFACTS):
            path = jdir / name
            if path.exists():
                out[name.rsplit(".", 1)[0]] = path
        return out
