"""Routing requests to backend pools by resource shape.

The picker answers one question per dispatch: *which backend pool should
run this request?*  Routes are declarative predicates over the request's
resource shape — machine kind, node/GPU count, program version — checked
in order, first match wins, with a mandatory fallback so every request
routes somewhere (modeled on i-VRESSE bartender's ``picker.py``, where
job descriptions choose among eager/arq/slurm scheduler pools).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .job import MACHINES, VERSIONS, JobRequest

__all__ = ["Route", "Picker"]


@dataclass(frozen=True)
class Route:
    """One routing rule: shape constraints → backend name.

    ``None`` constraints match anything; ``min_count``/``max_count``
    bound the request's GPU/node count inclusively.
    """

    backend: str
    machine: Optional[str] = None
    version: Optional[str] = None
    min_count: int = 1
    max_count: Optional[int] = None

    def __post_init__(self):
        if self.machine is not None and self.machine not in MACHINES:
            raise ValueError(f"unknown machine {self.machine!r}")
        if self.version is not None and self.version not in VERSIONS:
            raise ValueError(f"unknown version {self.version!r}")
        if self.min_count < 1:
            raise ValueError("min_count must be at least 1")
        if self.max_count is not None and self.max_count < self.min_count:
            raise ValueError("max_count must be >= min_count")

    def matches(self, request: JobRequest) -> bool:
        if self.machine is not None and request.machine != self.machine:
            return False
        if self.version is not None and request.version != self.version:
            return False
        if request.count < self.min_count:
            return False
        if self.max_count is not None and request.count > self.max_count:
            return False
        return True


class Picker:
    """Ordered routes plus a fallback backend name."""

    def __init__(self, routes: "tuple[Route, ...] | list[Route]" = (),
                 fallback: str = "eager"):
        self.routes = tuple(routes)
        self.fallback = fallback

    def pick(self, request: JobRequest) -> str:
        for route in self.routes:
            if route.matches(request):
                return route.backend
        return self.fallback

    @classmethod
    def default(cls, backend_names: "tuple[str, ...]") -> "Picker":
        """The stock routing for a service's backend set.

        With both an eager and a pool backend, heavyweight shapes —
        cluster runs and wide (3+ device) nodes — go to the pool, small
        single-node runs stay in-process; with only one backend,
        everything routes there.
        """
        if "pool" in backend_names and "eager" in backend_names:
            return cls(routes=(Route("pool", machine="cluster"),
                               Route("pool", min_count=3)),
                       fallback="eager")
        if not backend_names:
            raise ValueError("no backends to route to")
        return cls(fallback=backend_names[0])
