"""Declarative job descriptions and result bundles.

A :class:`JobRequest` is pure data — everything a backend needs to
reproduce a run, and nothing live: app name + size parameters instead of
arrays, a machine *shape* instead of a machine, a
:class:`~repro.runtime.config.RuntimeConfig` instead of a runtime.  That
is what makes a request process-portable (the pool backend pickles it to
a worker) and serializable (the CLI stages it as ``request.json``).

A :class:`JobResult` is the summary half of the artifact bundle: state,
makespan/metric, error traceback for failures, and the names of the
artifacts staged next to it (see :mod:`repro.service.staging`).

Serialization is *diff-based*: ``to_dict`` writes only fields that differ
from their defaults, so ``request.json`` stays a human-sized document and
round-trips through ``from_dict`` bit-identically (the dataclasses are
frozen and validated, so a decoded request re-runs its own checks).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field, fields
from enum import Enum
from typing import Optional

from ..faults.plan import FaultEvent, FaultPlan
from ..runtime.config import SCHEDULERS, RuntimeConfig

__all__ = ["APPS", "MACHINES", "VERSIONS", "JobState", "JobRequest",
           "JobResult"]

#: Apps a request may name (each has a ``repro.apps.<app>`` package).
APPS = ("matmul", "stream", "perlin", "nbody", "cholesky", "jacobi",
        "spreduce")
#: Hardware shapes: the paper's multi-GPU node or the GPU cluster.
MACHINES = ("multi_gpu", "cluster")
#: Program versions a service job may run.  ``ompss`` is the annotated
#: task version (full runtime, metrics, trace, sanitizer); ``mpi_cuda``
#: is the hand-written comparison baseline (timings only).
VERSIONS = ("ompss", "mpi_cuda")


class JobState(str, Enum):
    """Lifecycle: queued → running → done | failed."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"

    @property
    def terminal(self) -> bool:
        return self in (JobState.DONE, JobState.FAILED)


def _defaults(cls) -> dict:
    out = {}
    for f in fields(cls):
        if f.default is not dataclasses.MISSING:
            out[f.name] = f.default
        elif f.default_factory is not dataclasses.MISSING:
            out[f.name] = f.default_factory()
    return out


def _event_to_dict(ev: FaultEvent) -> dict:
    base = _defaults(FaultEvent)
    doc = {"kind": ev.kind}
    for f in fields(FaultEvent):
        v = getattr(ev, f.name)
        if f.name != "kind" and v != base[f.name]:
            doc[f.name] = v
    return doc


def _plan_to_dict(plan: FaultPlan) -> dict:
    base = _defaults(FaultPlan)
    doc: dict = {"events": [_event_to_dict(ev) for ev in plan.events]}
    for f in fields(FaultPlan):
        v = getattr(plan, f.name)
        if f.name != "events" and v != base[f.name]:
            doc[f.name] = v
    return doc


def _plan_from_dict(doc: dict) -> FaultPlan:
    doc = dict(doc)
    events = tuple(FaultEvent(**ev) for ev in doc.pop("events", ()))
    return FaultPlan(events=events, **doc)


def _config_to_dict(config: RuntimeConfig) -> dict:
    base = _defaults(RuntimeConfig)
    doc = {}
    for f in fields(RuntimeConfig):
        v = getattr(config, f.name)
        if v == base[f.name]:
            continue
        if f.name == "cache_policy":
            v = v.value
        elif f.name == "fault_plan":
            v = _plan_to_dict(v)
        doc[f.name] = v
    return doc


def _config_from_dict(doc: dict) -> RuntimeConfig:
    doc = dict(doc)
    if "fault_plan" in doc:
        doc["fault_plan"] = _plan_from_dict(doc["fault_plan"])
    return RuntimeConfig(**doc)


@dataclass(frozen=True)
class JobRequest:
    """One run, described declaratively.  Pure picklable data."""

    #: application name (one of :data:`APPS`).
    app: str
    #: program version (one of :data:`VERSIONS`).
    version: str = "ompss"
    #: hardware shape (one of :data:`MACHINES`).
    machine: str = "multi_gpu"
    #: GPU count (multi_gpu) or node count (cluster).
    count: int = 1
    #: keyword arguments for the app's frozen Size dataclass
    #: (e.g. ``{"n": 256, "bs": 64}`` for matmul); ``None`` uses the
    #: app's ``TEST_*`` size.
    size: Optional[dict] = None
    #: runtime configuration; ``None`` means ``RuntimeConfig()``.
    config: Optional[RuntimeConfig] = None
    #: scheduling-policy override (replaces ``config.scheduler``).
    scheduler: Optional[str] = None
    #: optional fault plan (replaces ``config.fault_plan``).
    fault_plan: Optional[FaultPlan] = None
    #: run under the annotation sanitizer and attach its findings to the
    #: bundle.  Requires a functional-mode ompss run (bodies must execute).
    sanitize: bool = False
    #: record task/kernel/transfer spans and attach the Chrome trace.
    collect_trace: bool = True
    #: fair-share accounting identity.
    tenant: str = "default"
    #: higher dispatches first; fairness applies within a priority class.
    priority: int = 0
    #: fair-share charge of this job (virtual time advanced per dispatch).
    cost: float = 1.0
    #: extra keyword arguments for the app entry point (``init=`` …).
    run_kwargs: dict = field(default_factory=dict)

    def __post_init__(self):
        if self.app not in APPS:
            raise ValueError(f"unknown app {self.app!r}; expected one of "
                             f"{APPS}")
        if self.machine not in MACHINES:
            raise ValueError(f"unknown machine {self.machine!r}; expected "
                             f"one of {MACHINES}")
        if self.version not in VERSIONS:
            raise ValueError(f"unknown version {self.version!r}; expected "
                             f"one of {VERSIONS}")
        if self.count < 1:
            raise ValueError("count must be at least 1")
        if self.scheduler is not None and self.scheduler not in SCHEDULERS:
            raise ValueError(f"unknown scheduler {self.scheduler!r}; "
                             f"expected one of {SCHEDULERS}")
        if self.cost <= 0:
            raise ValueError("cost must be positive")
        if not self.tenant:
            raise ValueError("tenant must be non-empty")
        if self.config is not None and not isinstance(self.config,
                                                      RuntimeConfig):
            raise TypeError("config must be a RuntimeConfig or None")
        if self.fault_plan is not None and not isinstance(self.fault_plan,
                                                          FaultPlan):
            raise TypeError("fault_plan must be a FaultPlan or None")
        if self.sanitize:
            if self.version != "ompss":
                raise ValueError("sanitize requires the ompss version")
            if self.config is not None and not self.config.functional:
                raise ValueError("sanitize requires a functional-mode "
                                 "config (bodies must actually run)")

    @property
    def label(self) -> str:
        return f"{self.tenant}/{self.app}-{self.version}@" \
               f"{self.machine}x{self.count}"

    def resolved_config(self) -> RuntimeConfig:
        """The effective :class:`RuntimeConfig` after overrides."""
        config = self.config or RuntimeConfig()
        if self.scheduler is not None:
            config = config.with_(scheduler=self.scheduler)
        if self.fault_plan is not None:
            config = config.with_(fault_plan=self.fault_plan)
        return config

    # -- serialization ----------------------------------------------------
    def to_dict(self) -> dict:
        base = _defaults(JobRequest)
        doc: dict = {"app": self.app}
        for f in fields(JobRequest):
            v = getattr(self, f.name)
            if f.name == "app" or v == base[f.name]:
                continue
            if f.name == "config":
                v = _config_to_dict(v)
            elif f.name == "fault_plan":
                v = _plan_to_dict(v)
            doc[f.name] = v
        return doc

    @classmethod
    def from_dict(cls, doc: dict) -> "JobRequest":
        doc = dict(doc)
        if "config" in doc:
            doc["config"] = _config_from_dict(doc["config"])
        if "fault_plan" in doc:
            doc["fault_plan"] = _plan_from_dict(doc["fault_plan"])
        return cls(**doc)


@dataclass
class JobResult:
    """Outcome summary: the ``result.json`` half of the artifact bundle.

    Bulk artifacts (full metrics snapshot, Chrome trace, stdout) live in
    their own staged files; :attr:`artifacts` names them.
    """

    job_id: str
    state: JobState
    app: str
    version: str
    tenant: str
    backend: str
    makespan: Optional[float] = None      #: simulated seconds
    metric: Optional[float] = None        #: app headline number
    metric_unit: str = ""
    #: full counter-registry snapshot of the run (``metrics.json`` holds
    #: the same data; kept here so in-process callers skip the disk).
    metrics: dict = field(default_factory=dict)
    #: sanitizer findings as plain dicts (empty when not sanitized).
    findings: list = field(default_factory=list)
    #: formatted traceback for failed jobs.
    error: Optional[str] = None
    #: artifact name → file name, relative to the job's staging dir.
    artifacts: dict = field(default_factory=dict)

    def to_dict(self, include_metrics: bool = False) -> dict:
        doc = {
            "job_id": self.job_id,
            "state": self.state.value,
            "app": self.app,
            "version": self.version,
            "tenant": self.tenant,
            "backend": self.backend,
            "makespan": self.makespan,
            "metric": self.metric,
            "metric_unit": self.metric_unit,
            "findings": self.findings,
            "error": self.error,
            "artifacts": self.artifacts,
        }
        if include_metrics:
            doc["metrics"] = self.metrics
        return doc

    @classmethod
    def from_dict(cls, doc: dict) -> "JobResult":
        doc = dict(doc)
        doc["state"] = JobState(doc["state"])
        doc.setdefault("metrics", {})
        return cls(**doc)
