"""``python -m repro.service`` — the service from the command line.

Five subcommands cover the job lifecycle without a daemon (the staging
directory *is* the queue — i-VRESSE bartender's file-staging shape):

* ``submit``    — stage a request as ``queued``; prints the job id.
* ``worker``    — drain every queued job in the staging dir through a
  local service (eager or fork-isolated pool backends); ``--watch``
  keeps scanning for new submissions.
* ``status``    — print a job's ``status.json``.
* ``artifacts`` — list (or ``--fetch`` one of) a job's staged artifacts.
* ``demo``      — saturate a 2-worker pool with a mixed-tenant batch of
  functional jobs, print the fair-share dispatch order and the
  ``service.*`` counters, and cross-check one job eager-vs-pool
  bit-identical.

Examples::

    python -m repro.service submit --staging /tmp/svc --app matmul \\
        --size n=256,bs=64 --perf --tenant alice
    python -m repro.service worker --staging /tmp/svc --pool 2
    python -m repro.service status  <job-id> --staging /tmp/svc
    python -m repro.service artifacts <job-id> --staging /tmp/svc --fetch metrics
    python -m repro.service demo --workers 2
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import uuid
from typing import Optional

from ..runtime.config import SCHEDULERS, RuntimeConfig
from .api import Service
from .backends import EagerBackend, PoolBackend
from .job import APPS, MACHINES, VERSIONS, JobRequest, JobState
from .picker import Picker
from .queue import JobQueue
from .staging import StagingDir

__all__ = ["main"]


def _parse_size(text: Optional[str]) -> Optional[dict]:
    """``"n=256,bs=64"`` → ``{"n": 256, "bs": 64}`` (ints)."""
    if not text:
        return None
    out = {}
    for part in text.split(","):
        key, _, value = part.partition("=")
        if not _:
            raise SystemExit(f"bad --size entry {part!r} (want key=int)")
        out[key.strip()] = int(value)
    return out


def _parse_weights(text: Optional[str]) -> "dict[str, float]":
    """``"alice=2,bob=1"`` → ``{"alice": 2.0, "bob": 1.0}``."""
    if not text:
        return {}
    out = {}
    for part in text.split(","):
        key, _, value = part.partition("=")
        if not _:
            raise SystemExit(f"bad --weights entry {part!r} "
                             f"(want tenant=weight)")
        out[key.strip()] = float(value)
    return out


def _request_from_args(args) -> JobRequest:
    if args.request:
        with open(args.request) as fh:
            return JobRequest.from_dict(json.load(fh))
    if not args.app:
        raise SystemExit("submit needs --app (or --request FILE)")
    config = RuntimeConfig(functional=not args.perf,
                           cache_policy=args.cache_policy)
    return JobRequest(
        app=args.app, version=args.version, machine=args.machine,
        count=args.count, size=_parse_size(args.size), config=config,
        scheduler=args.scheduler, sanitize=args.sanitize,
        collect_trace=not args.no_trace, tenant=args.tenant,
        priority=args.priority, cost=args.cost)


def _build_service(staging: str, pool: int,
                   weights: "dict[str, float]") -> Service:
    backends = ({"pool": PoolBackend(workers=pool)} if pool > 0
                else {"eager": EagerBackend()})
    return Service(backends=backends,
                   picker=Picker(fallback=next(iter(backends))),
                   queue=None if not weights else JobQueue(weights=weights),
                   staging=StagingDir(staging))


def cmd_submit(args) -> int:
    staging = StagingDir(args.staging)
    request = _request_from_args(args)
    job_id = args.job_id or \
        f"{request.tenant}-{request.app}-{uuid.uuid4().hex[:8]}"
    staging.write_request(job_id, request)
    staging.write_status(job_id, JobState.QUEUED, tenant=request.tenant)
    print(job_id)
    return 0


def _drain_pass(svc: Service, staging: StagingDir) -> int:
    """Adopt every still-queued staged job; returns how many were new."""
    adopted = 0
    for job_id in staging.jobs():
        if job_id in svc:
            continue
        if staging.read_status(job_id).get("state") != JobState.QUEUED.value:
            continue
        svc.submit(staging.read_request(job_id), job_id=job_id)
        adopted += 1
    return adopted


def cmd_worker(args) -> int:
    staging = StagingDir(args.staging)
    with _build_service(args.staging, args.pool,
                        _parse_weights(args.weights)) as svc:
        while True:
            adopted = _drain_pass(svc, staging)
            svc.run_until_idle()
            if adopted:
                for job_id in svc.dispatch_order()[-adopted:]:
                    status = svc.status(job_id)
                    print(f"{job_id}: {status['state']}")
            if args.watch is None:
                break
            time.sleep(args.watch)
    failed = sum(1 for doc in (staging.read_status(j)
                               for j in staging.jobs())
                 if doc.get("state") == JobState.FAILED.value)
    return 1 if failed and args.strict else 0


def cmd_status(args) -> int:
    staging = StagingDir(args.staging)
    print(json.dumps(staging.read_status(args.job_id), indent=1,
                     sort_keys=True))
    return 0


def cmd_artifacts(args) -> int:
    staging = StagingDir(args.staging)
    artifacts = staging.artifacts(args.job_id)
    if args.fetch:
        path = artifacts.get(args.fetch)
        if path is None:
            raise SystemExit(f"job {args.job_id} has no {args.fetch!r} "
                             f"artifact (have: {', '.join(artifacts)})")
        print(path.read_text())
        return 0
    for name, path in artifacts.items():
        print(f"{name}\t{path}")
    return 0


def _demo_batch() -> "list[JobRequest]":
    """Nine functional jobs: three tenants × three apps, sanitized."""
    tenants = ("alice", "alice", "alice", "bob", "bob", "bob",
               "carol", "carol", "carol")
    apps = ("matmul", "cholesky", "jacobi") * 3
    return [JobRequest(app=app, size=None, sanitize=True, tenant=tenant,
                       count=2)
            for tenant, app in zip(tenants, apps)]


def cmd_demo(args) -> int:
    weights = {"alice": 2.0, "bob": 1.0, "carol": 1.0}
    batch = _demo_batch()
    print(f"submitting {len(batch)} functional jobs for "
          f"{len(weights)} tenants (weights {weights}) "
          f"onto a {args.workers}-worker fork-isolated pool…")
    with Service(backends={"pool": PoolBackend(workers=args.workers)},
                 picker=Picker(fallback="pool"),
                 queue=JobQueue(weights=weights),
                 staging=args.staging) as svc:
        ids = [svc.submit(req) for req in batch]
        svc.run_until_idle(timeout=600)
        print("\ndispatch order (weighted fair, alice 2x):")
        for job_id in svc.dispatch_order():
            print(f"  {job_id}")
        print("\nper-job outcomes:")
        ok = True
        for job_id in ids:
            res = svc.result(job_id)
            ok = ok and res.state is JobState.DONE
            bundle = ", ".join(sorted(svc.fetch_artifacts(job_id)))
            print(f"  {job_id}: {res.state.value} "
                  f"makespan={res.makespan} findings={len(res.findings)} "
                  f"[{bundle}]")
        print("\nservice.* counters:")
        for name, value in sorted(svc.metrics.snapshot().items()):
            if name.startswith("service.") and not isinstance(value, dict):
                print(f"  {name} = {value}")

        # Determinism cross-check: the first job, re-run eagerly, must
        # reproduce the pool result bit-identically.
        from .runner import execute_request
        eager = execute_request(batch[0])
        pool_res = svc.result(ids[0])
        identical = (eager["makespan"] == pool_res.makespan
                     and eager["metric"] == pool_res.metric)
        print(f"\neager-vs-pool bit-identical: {identical}")
    return 0 if ok and identical else 1


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Simulation-as-a-service: submit jobs, run workers, "
                    "fetch artifact bundles (docs/SERVICE.md).")
    sub = parser.add_subparsers(dest="command", required=True)

    p_submit = sub.add_parser("submit", help="stage a job request")
    p_submit.add_argument("--staging", required=True,
                          help="staging root directory")
    p_submit.add_argument("--request", help="submit a request.json file "
                                            "instead of flags")
    p_submit.add_argument("--app", choices=APPS)
    p_submit.add_argument("--version", choices=VERSIONS, default="ompss")
    p_submit.add_argument("--machine", choices=MACHINES,
                          default="multi_gpu")
    p_submit.add_argument("--count", type=int, default=1,
                          help="GPU count (multi_gpu) or node count "
                               "(cluster)")
    p_submit.add_argument("--size", help='size params, e.g. "n=256,bs=64" '
                                         "(default: the app's test size)")
    p_submit.add_argument("--scheduler", choices=SCHEDULERS)
    p_submit.add_argument("--cache-policy", default="wb",
                          choices=("nocache", "wt", "wb"))
    p_submit.add_argument("--perf", action="store_true",
                          help="performance mode (no real data movement)")
    p_submit.add_argument("--sanitize", action="store_true",
                          help="run under the annotation sanitizer")
    p_submit.add_argument("--no-trace", action="store_true",
                          help="skip Chrome-trace capture")
    p_submit.add_argument("--tenant", default="default")
    p_submit.add_argument("--priority", type=int, default=0)
    p_submit.add_argument("--cost", type=float, default=1.0)
    p_submit.add_argument("--job-id", help="explicit job id")
    p_submit.set_defaults(fn=cmd_submit)

    p_worker = sub.add_parser("worker", help="drain queued staged jobs")
    p_worker.add_argument("--staging", required=True)
    p_worker.add_argument("--pool", type=int, default=0, metavar="N",
                          help="run on an N-worker fork-isolated pool "
                               "(default: eager in-process)")
    p_worker.add_argument("--weights", help='tenant weights, e.g. '
                                            '"alice=2,bob=1"')
    p_worker.add_argument("--watch", type=float, default=None,
                          metavar="SECONDS",
                          help="keep scanning for new submissions every "
                               "SECONDS (default: one drain pass)")
    p_worker.add_argument("--strict", action="store_true",
                          help="exit 1 if any staged job is failed")
    p_worker.set_defaults(fn=cmd_worker)

    p_status = sub.add_parser("status", help="print a job's status.json")
    p_status.add_argument("job_id")
    p_status.add_argument("--staging", required=True)
    p_status.set_defaults(fn=cmd_status)

    p_art = sub.add_parser("artifacts",
                           help="list or fetch a job's artifacts")
    p_art.add_argument("job_id")
    p_art.add_argument("--staging", required=True)
    p_art.add_argument("--fetch", metavar="NAME",
                       help="print one artifact (metrics, trace, "
                            "sanitizer, stdout, result, request, status)")
    p_art.set_defaults(fn=cmd_artifacts)

    p_demo = sub.add_parser("demo",
                            help="mixed-tenant batch on a worker pool")
    p_demo.add_argument("--workers", type=int, default=2)
    p_demo.add_argument("--staging", default=None,
                        help="keep the bundles here (default: temp dir)")
    p_demo.set_defaults(fn=cmd_demo)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
