"""The "run request → result payload" seam.

:func:`execute_request` turns one :class:`~repro.service.job.JobRequest`
into one picklable payload dict, building everything live — machine,
config, tracer, sanitizer — from the declarative description.  Every
backend funnels through this function, which is what makes eager and
pool execution bit-identical: a simulation depends only on its request
(the fork isolation in the pool is defensive, not semantic — the same
guarantee the figure sweeps pin in ``tests/bench/test_sweep.py``).

The payload carries the artifact-bundle raw material::

    {"makespan", "metric", "metric_unit",   # headline numbers
     "metrics",                             # full counter snapshot
     "trace",                               # Chrome trace JSON text | None
     "sanitized", "sanitizer",              # findings as plain dicts
     "stdout"}                              # captured run output
"""

from __future__ import annotations

import contextlib
import io

from ..runtime import trace as trace_mod
from ..runtime.trace import Tracer
from .job import JobRequest

__all__ = ["app_module", "build_size", "execute_request"]


def app_module(app: str):
    """The ``repro.apps.<app>`` package (imported lazily: a forked worker
    pays the import cost only for the app it actually runs)."""
    import importlib
    return importlib.import_module(f"repro.apps.{app}")


def build_size(app: str, params: "dict | None"):
    """The app's frozen Size dataclass from keyword params.

    Every app package exports exactly one ``*Size`` class and one
    ``TEST_*`` default; ``params=None`` returns the test size.
    """
    mod = app_module(app)
    if params is None:
        name = next(n for n in mod.__all__ if n.startswith("TEST_"))
        return getattr(mod, name)
    name = next(n for n in mod.__all__ if n.endswith("Size"))
    return getattr(mod, name)(**params)


def execute_request(request: JobRequest) -> dict:
    """Execute one job request; returns the picklable result payload.

    Raises whatever the app/runtime raises — surfacing errors is the
    backend's contract (:mod:`repro.service.backends`)."""
    from ..bench.harness import fresh_cluster, fresh_multi_gpu
    machine = (fresh_multi_gpu(request.count)
               if request.machine == "multi_gpu"
               else fresh_cluster(request.count))
    runner = getattr(app_module(request.app), f"run_{request.version}")
    size = build_size(request.app, request.size)
    kwargs = dict(request.run_kwargs)
    if request.version == "ompss":
        kwargs["config"] = request.resolved_config()
    else:
        kwargs["functional"] = False

    tracer = Tracer() if request.collect_trace else None
    out = io.StringIO()
    with contextlib.ExitStack() as stack:
        stack.enter_context(contextlib.redirect_stdout(out))
        if tracer is not None:
            stack.enter_context(trace_mod.install(tracer))
        san = None
        if request.sanitize:
            from ..sanitizer import install as install_sanitizer
            san = stack.enter_context(install_sanitizer())
        res = runner(machine, size, **kwargs)

    findings = []
    if san is not None:
        findings = [
            {"kind": f.kind, "task": f.task, "obj": f.obj,
             "detail": f.detail, "where": f.where, "count": f.count,
             "regions": list(f.regions), "cost": f.cost}
            for f in san.findings()
        ]
    return {
        "makespan": res.makespan,
        "metric": res.metric,
        "metric_unit": res.metric_unit,
        "metrics": res.metrics or {},
        "trace": tracer.to_chrome() if tracer is not None else None,
        "sanitized": request.sanitize,
        "sanitizer": findings,
        "stdout": out.getvalue(),
    }
