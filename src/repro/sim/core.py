"""Deterministic discrete-event simulation core.

The whole reproduction runs on this engine: the Nanos++ runtime threads, GPU
engines, network links and MPI ranks are all simulated processes scheduling
events in virtual time.  The engine is deliberately SimPy-like (generator
based), but self-contained and strictly deterministic: events that fire at the
same instant are ordered by (priority, insertion sequence).

Internally the queue is split into two structures that together implement
one total (time, priority, sequence) order:

* three *immediate lanes* (one FIFO deque per priority) hold events
  scheduled at the current instant — the overwhelmingly common case, since
  every ``succeed()`` and every process bootstrap fires "now";
* a binary heap holds *timed* events (timeouts with a positive delay,
  absolute-time callbacks).

The clock can only advance by popping from the heap, and it may only do so
once every immediate lane is empty — immediate events are by construction
earlier than any strictly-later heap event, so the split never reorders
anything; ``tests/sim/test_event_order.py`` drives random schedules against
a pure-heapq reference to prove it.  The win is that the hot path trades a
heappush+heappop of a 4-tuple for a deque append+popleft.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Iterable, Optional

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Interrupt",
    "SimulationError",
    "StopSimulation",
    "PRIORITY_URGENT",
    "PRIORITY_NORMAL",
    "PRIORITY_LOW",
]

#: Scheduling priorities for simultaneous events (lower fires first).
PRIORITY_URGENT = 0
PRIORITY_NORMAL = 1
PRIORITY_LOW = 2

#: Sentinel for "event has not been assigned a value yet".
_PENDING = object()


class SimulationError(Exception):
    """Raised for illegal uses of the simulation API."""


class StopSimulation(Exception):
    """Raised internally to end :meth:`Environment.run` early."""


class Interrupt(Exception):
    """Thrown into a process when another process interrupts it."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A happening in virtual time that processes can wait on.

    An event goes through three states: *pending* (created), *triggered*
    (given a value and scheduled on the event queue) and *processed* (its
    callbacks have run).  Waiting on an already-processed event is legal and
    resumes the waiter immediately.
    """

    __slots__ = (
        "env", "callbacks", "_value", "_ok", "_scheduled", "_processed",
        "_defused",
    )

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[list[Callable[[Event], None]]] = []
        self._value: Any = _PENDING
        self._ok = True
        self._scheduled = False
        self._processed = False
        self._defused = False

    # -- state ----------------------------------------------------------
    @property
    def triggered(self) -> bool:
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        return self._processed

    @property
    def ok(self) -> bool:
        if not self.triggered:
            raise SimulationError("event value not yet available")
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is _PENDING:
            raise SimulationError("event value not yet available")
        return self._value

    # -- triggering -----------------------------------------------------
    def succeed(self, value: Any = None, priority: int = PRIORITY_NORMAL) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._value = value
        self._ok = True
        self.env._schedule(self, priority)
        return self

    def fail(self, exc: BaseException, priority: int = PRIORITY_NORMAL) -> "Event":
        """Trigger the event with an exception to be thrown into waiters."""
        if not isinstance(exc, BaseException):
            raise SimulationError("fail() needs an exception instance")
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._value = exc
        self._ok = False
        self.env._schedule(self, priority)
        return self

    # -- composition ----------------------------------------------------
    def __and__(self, other: "Event") -> "Event":
        from .sync import AllOf

        return AllOf(self.env, [self, other])

    def __or__(self, other: "Event") -> "Event":
        from .sync import AnyOf

        return AnyOf(self.env, [self, other])

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = (
            "processed" if self._processed
            else "triggered" if self.triggered
            else "pending"
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires after a fixed virtual-time delay."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay!r}")
        # Timeouts are born triggered-and-scheduled: initialize and enqueue
        # directly instead of building a pending Event and re-wrapping it
        # through the guarded _schedule path (timeouts are the single most
        # common event, and the guard can never fire for a fresh one).
        self.env = env
        self.callbacks = []
        self._value = value
        self._ok = True
        self._scheduled = True
        self._processed = False
        self._defused = False
        self.delay = delay
        env._seq += 1
        if delay == 0.0:
            env._imm[PRIORITY_NORMAL].append((env._seq, self))
        else:
            heapq.heappush(env._queue,
                           (env._now + delay, PRIORITY_NORMAL, env._seq, self))


class Environment:
    """Owns the virtual clock and the event queue."""

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        #: timed events: a heap of (when, priority, seq, event).
        self._queue: list[tuple[float, int, int, Event]] = []
        #: immediate lanes: per-priority FIFOs of (seq, event) scheduled at
        #: the current instant (see the module docstring for the ordering
        #: argument).
        self._imm: tuple[deque, deque, deque] = (deque(), deque(), deque())
        self._seq = 0
        #: total events processed by step()/run() over this environment's
        #: lifetime — the numerator of ``sim_events_per_wall_second``.
        self.events_processed = 0
        self.active_process = None  # set by Process while running

    @property
    def now(self) -> float:
        """Current virtual time (seconds)."""
        return self._now

    # -- event construction ----------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def at(self, when: float, callback: Callable[[], None],
           priority: int = PRIORITY_NORMAL) -> Event:
        """Schedule ``callback()`` at absolute virtual time ``when``.

        Used by layers that plan wall-clock-independent interventions
        (e.g. the fault engine's timed device losses).  Returns the
        underlying event, already triggered — like a :class:`Timeout`.
        """
        if when < self._now:
            raise SimulationError(
                f"cannot schedule at {when} (now is {self._now})")
        event = Event(self)
        event.callbacks.append(lambda _ev: callback())
        event._value = None
        event._ok = True
        event._scheduled = True
        self._seq += 1
        heapq.heappush(self._queue, (when, priority, self._seq, event))
        return event

    def process(self, generator) -> "Process":
        from .process import Process

        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> Event:
        from .sync import AllOf

        return AllOf(self, list(events))

    def any_of(self, events: Iterable[Event]) -> Event:
        from .sync import AnyOf

        return AnyOf(self, list(events))

    # -- scheduling --------------------------------------------------------
    def _schedule(self, event: Event, priority: int = PRIORITY_NORMAL,
                  delay: float = 0.0) -> None:
        if event._scheduled:
            raise SimulationError(f"{event!r} already scheduled")
        event._scheduled = True
        self._seq += 1
        if delay == 0.0:
            self._imm[priority].append((self._seq, event))
        else:
            heapq.heappush(self._queue,
                           (self._now + delay, priority, self._seq, event))

    def _pop_next(self) -> Optional[Event]:
        """Remove and return the globally next event (by time, priority,
        sequence), advancing the clock to it; None when nothing is queued."""
        imm0, imm1, imm2 = self._imm
        lane = imm0 or imm1 or imm2
        queue = self._queue
        if lane:
            lane_prio = 0 if lane is imm0 else 1 if lane is imm1 else 2
            if queue:
                when, prio, seq, _ev = queue[0]
                # Heap events strictly later than now cannot precede a
                # lane event (lane time == now); at the same instant the
                # (priority, seq) tuple decides.
                if when == self._now and (prio, seq) < (lane_prio, lane[0][0]):
                    return heapq.heappop(queue)[3]
            return lane.popleft()[1]
        if queue:
            when, _prio, _seq, event = heapq.heappop(queue)
            self._now = when
            return event
        return None

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        if self._imm[0] or self._imm[1] or self._imm[2]:
            return self._now
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process the single next event (advancing the clock to it)."""
        event = self._pop_next()
        if event is None:
            raise SimulationError("no more events")
        self.events_processed += 1
        callbacks = event.callbacks
        event.callbacks = None
        event._processed = True
        assert callbacks is not None
        for callback in callbacks:
            callback(event)
        if not event._ok and not event._defused:
            # Nobody waited on a failed event: surface the error loudly
            # instead of losing it.
            raise event._value

    def run(self, until: Any = None) -> Any:
        """Run until ``until`` (an Event, a time, or queue exhaustion).

        Returns the value of the ``until`` event if one was given.
        """
        stop_at = None
        until_event: Optional[Event] = None
        if isinstance(until, Event):
            until_event = until
            if until_event._processed:
                return until_event.value if until_event._ok else None
            until_event.callbacks.append(self._stop_callback)
        elif until is not None:
            stop_at = float(until)
            if stop_at < self._now:
                raise SimulationError("cannot run into the past")

        # The hot loop below is step() inlined with local aliases: one
        # Python frame per run instead of one per event, and a direct call
        # for the overwhelmingly common single-callback event.  Immediate
        # lanes are drained before the heap may advance the clock; at equal
        # timestamps the (priority, seq) comparison against the heap top
        # keeps the total order identical to a single heap's.
        queue = self._queue
        imm0, imm1, imm2 = self._imm
        heappop = heapq.heappop
        processed = 0
        try:
            while True:
                lane = imm0 or imm1 or imm2
                if lane:
                    if queue:
                        top = queue[0]
                        if top[0] == self._now and (top[1], top[2]) < (
                                0 if lane is imm0 else
                                1 if lane is imm1 else 2, lane[0][0]):
                            event = heappop(queue)[3]
                        else:
                            event = lane.popleft()[1]
                    else:
                        event = lane.popleft()[1]
                elif queue:
                    when = queue[0][0]
                    if stop_at is not None and when > stop_at:
                        self._now = stop_at
                        return None
                    event = heappop(queue)[3]
                    self._now = when
                else:
                    break
                processed += 1
                callbacks = event.callbacks
                event.callbacks = None
                event._processed = True
                if len(callbacks) == 1:
                    callbacks[0](event)
                else:
                    for callback in callbacks:
                        callback(event)
                if not event._ok and not event._defused:
                    # Nobody waited on a failed event: surface the error
                    # loudly instead of losing it.
                    raise event._value
        except StopSimulation as stop:
            return stop.args[0] if stop.args else None
        finally:
            self.events_processed += processed
        if until_event is not None and not until_event.triggered:
            raise SimulationError(
                "run(until=event) exhausted the event queue before the event "
                "triggered (deadlock in the simulated system?)"
            )
        if stop_at is not None:
            self._now = stop_at
        return None

    @staticmethod
    def _stop_callback(event: Event) -> None:
        if event._ok:
            raise StopSimulation(event._value)
        event._defused = True
        raise event._value
