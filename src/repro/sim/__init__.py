"""Deterministic discrete-event simulation engine.

This subpackage is the substrate clock for the whole reproduction: runtime
threads, GPU engines, PCIe and network links, and MPI ranks are all simulated
processes over one :class:`Environment`.
"""

from .core import (
    Environment,
    Event,
    Interrupt,
    PRIORITY_LOW,
    PRIORITY_NORMAL,
    PRIORITY_URGENT,
    SimulationError,
    StopSimulation,
    Timeout,
)
from .process import Process
from .resources import Request, Resource, Store
from .sync import AllOf, AnyOf

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "Interrupt",
    "Resource",
    "Request",
    "Store",
    "AllOf",
    "AnyOf",
    "SimulationError",
    "StopSimulation",
    "PRIORITY_URGENT",
    "PRIORITY_NORMAL",
    "PRIORITY_LOW",
]
