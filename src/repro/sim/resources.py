"""Shared resources for simulated processes.

* :class:`Resource` — counted resource (e.g. a GPU engine, a link) with FIFO
  or priority queuing.
* :class:`Store` — unbounded FIFO of items (e.g. a task queue, a mailbox).
"""

from __future__ import annotations

import heapq
from typing import Any, Optional

from .core import Event, SimulationError

__all__ = ["Resource", "Request", "Store"]


class Request(Event):
    """Pending acquisition of a :class:`Resource` slot.

    Usable as a context manager::

        with resource.request() as req:
            yield req
            ... hold the resource ...
        # released on exit
    """

    __slots__ = ("resource", "priority", "_key")

    def __init__(self, resource: "Resource", priority: int = 0):
        super().__init__(resource.env)
        self.resource = resource
        self.priority = priority
        self._key = None

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.resource.release(self)

    def cancel(self) -> None:
        """Withdraw a not-yet-granted request."""
        self.resource._cancel(self)


class Resource:
    """A resource with ``capacity`` slots, granted in priority+FIFO order."""

    def __init__(self, env, capacity: int = 1, name: str = ""):
        if capacity < 1:
            raise SimulationError("capacity must be >= 1")
        self.env = env
        self.capacity = capacity
        self.name = name
        self._users: set[Request] = set()
        self._waiting: list[tuple[int, int, Request]] = []
        self._seq = 0

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self._users)

    @property
    def queue_len(self) -> int:
        return len(self._waiting)

    def request(self, priority: int = 0) -> Request:
        req = Request(self, priority)
        if len(self._users) < self.capacity and not self._waiting:
            # Uncontended grant: hand back an already-processed event, so a
            # process yielding it continues inline instead of taking a full
            # schedule/resume round-trip through the event queue.  (The
            # contended path below is unchanged: the grant happens inside
            # release(), and waiters wake through the queue as always.)
            self._users.add(req)
            req._value = self
            req._ok = True
            req._scheduled = True
            req._processed = True
            req.callbacks = None
        else:
            self._seq += 1
            entry = (priority, self._seq, req)
            req._key = entry
            heapq.heappush(self._waiting, entry)
        return req

    def release(self, request: Request) -> None:
        if request in self._users:
            self._users.remove(request)
            self._grant_next()
        elif request._key is not None:
            self._cancel(request)
        # Releasing an unknown request is a no-op (idempotent release).

    def _cancel(self, request: Request) -> None:
        if request._key is None:
            return
        try:
            self._waiting.remove(request._key)
            heapq.heapify(self._waiting)
        except ValueError:
            pass
        request._key = None

    def _grant_next(self) -> None:
        while self._waiting and len(self._users) < self.capacity:
            _prio, _seq, req = heapq.heappop(self._waiting)
            req._key = None
            if req.triggered:  # cancelled/failed elsewhere
                continue
            self._users.add(req)
            req.succeed(self)


class Store:
    """Unbounded FIFO of items with blocking :meth:`get`.

    ``put`` never blocks (capacity is unbounded — back-pressure in the
    reproduction is modelled explicitly where the paper's system has it).
    """

    def __init__(self, env, name: str = ""):
        self.env = env
        self.name = name
        self.items: list[Any] = []
        self._getters: list[Event] = []

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> None:
        self.items.append(item)
        self._serve()

    def put_front(self, item: Any) -> None:
        """Insert at the head of the queue (LIFO-style priority insert)."""
        self.items.insert(0, item)
        self._serve()

    def get(self) -> Event:
        """Event that fires with the next item once one is available."""
        ev = Event(self.env)
        self._getters.append(ev)
        self._serve()
        return ev

    def try_get(self) -> Optional[Any]:
        """Non-blocking get: pop the head item or return ``None``."""
        if self.items and not self._getters:
            return self.items.pop(0)
        return None

    def _serve(self) -> None:
        while self.items and self._getters:
            getter = self._getters.pop(0)
            if getter.triggered:
                continue
            getter.succeed(self.items.pop(0))
