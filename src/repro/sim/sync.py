"""Composite events: wait for all or any of a set of events."""

from __future__ import annotations

from typing import Iterable

from .core import Event, SimulationError

__all__ = ["AllOf", "AnyOf"]


class _Condition(Event):
    """Base for composite events over a fixed list of sub-events."""

    __slots__ = ("_events", "_count")

    def __init__(self, env, events: Iterable[Event]):
        super().__init__(env)
        self._events = list(events)
        for ev in self._events:
            if ev.env is not env:
                raise SimulationError("events belong to different environments")
        self._count = 0
        if not self._events:
            self.succeed(self._collect())
            return
        for ev in self._events:
            if ev.callbacks is None:
                # Already processed.
                self._check(ev)
            else:
                ev.callbacks.append(self._check)

    def _collect(self) -> dict[Event, object]:
        return {ev: ev._value for ev in self._events if ev.processed and ev._ok}

    def _check(self, event: Event) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class AllOf(_Condition):
    """Triggers once every sub-event has triggered (fails fast on failure)."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            if not event._ok:
                event._defused = True
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self._count += 1
        if self._count == len(self._events):
            self.succeed(self._collect())


class AnyOf(_Condition):
    """Triggers as soon as one sub-event triggers."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            if not event._ok:
                event._defused = True
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self.succeed(self._collect())
