"""Generator-based simulated processes.

A :class:`Process` wraps a Python generator.  Each value the generator yields
must be an :class:`~repro.sim.core.Event`; the process sleeps until the event
fires and is resumed with the event's value (or has the event's exception
thrown into it).  A process is itself an event that triggers with the
generator's return value, so processes can wait on each other.
"""

from __future__ import annotations

from typing import Any, Generator

from .core import Event, Interrupt, PRIORITY_URGENT, SimulationError

__all__ = ["Process"]


class Process(Event):
    """A running simulated activity (thread, engine, protocol handler...)."""

    __slots__ = ("_generator", "_target", "name")

    def __init__(self, env, generator: Generator, name: str = ""):
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise SimulationError(
                f"Process needs a generator, got {type(generator).__name__}"
            )
        super().__init__(env)
        self._generator = generator
        self._target: Event | None = None
        self.name = name or getattr(generator, "__name__", "process")
        # Kick off the process at the current instant, ahead of normal
        # events.  The bootstrap is born triggered-and-scheduled and lands
        # directly in the urgent immediate lane (same fast path as Timeout:
        # the _schedule guard can never fire for a fresh event).
        bootstrap = Event(env)
        bootstrap.callbacks = [self._resume]
        bootstrap._value = None
        bootstrap._ok = True
        bootstrap._scheduled = True
        env._seq += 1
        env._imm[PRIORITY_URGENT].append((env._seq, bootstrap))

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current instant."""
        if self.triggered:
            raise SimulationError("cannot interrupt a finished process")
        if self.env.active_process is self:
            raise SimulationError("a process cannot interrupt itself")
        event = Event(self.env)
        event.callbacks.append(self._resume)
        event._value = Interrupt(cause)
        event._ok = False
        event._defused = True
        # Detach from the event the process was waiting on, if any.
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._target = None
        self.env._schedule(event, PRIORITY_URGENT)

    # ------------------------------------------------------------------
    def _resume(self, event: Event) -> None:
        self.env.active_process = self
        while True:
            try:
                if event._ok:
                    next_event = self._generator.send(event._value)
                else:
                    event._defused = True
                    next_event = self._generator.throw(event._value)
            except StopIteration as stop:
                self.env.active_process = None
                self._target = None
                self.succeed(stop.value)
                return
            except BaseException as exc:
                self.env.active_process = None
                self._target = None
                self.fail(exc)
                return

            if not isinstance(next_event, Event):
                self.env.active_process = None
                exc = SimulationError(
                    f"process {self.name!r} yielded a non-event: {next_event!r}"
                )
                try:
                    self._generator.throw(exc)
                except BaseException as err:
                    self.fail(err)
                    return
                raise exc

            if next_event.callbacks is not None:
                # Event still pending: sleep until it fires.
                next_event.callbacks.append(self._resume)
                self._target = next_event
                self.env.active_process = None
                return
            # Event already processed: loop and resume immediately.
            event = next_event
