"""repro — reproduction of *Productive Programming of GPU Clusters with
OmpSs* (Bueno et al., IPDPS 2012).

The package implements the OmpSs programming model and the Nanos++ runtime
for clusters of GPUs over a deterministic discrete-event hardware simulation:

* :mod:`repro.api` — the programming model (``Program``, ``@task``,
  ``@target``, ``taskwait``, pragma parsing);
* :mod:`repro.runtime` — the Nanos++ reimplementation (dependences,
  schedulers, coherence, GPU managers, cluster master/slave images);
* :mod:`repro.memory` — regions, directory, software caches;
* :mod:`repro.cuda`, :mod:`repro.gasnet`, :mod:`repro.mpi`,
  :mod:`repro.hardware`, :mod:`repro.sim` — the simulated substrates;
* :mod:`repro.apps` — the four evaluation applications in their Serial /
  CUDA / MPI+CUDA / OmpSs versions;
* :mod:`repro.bench` — the harness regenerating every evaluation figure and
  table.
"""

from .api import (
    DataHandle,
    DataView,
    Program,
    from_pragmas,
    parse_pragma,
    target,
    task,
)
from .runtime import Runtime, RuntimeConfig

__version__ = "1.0.0"

__all__ = [
    "Program",
    "DataHandle",
    "DataView",
    "task",
    "target",
    "from_pragmas",
    "parse_pragma",
    "Runtime",
    "RuntimeConfig",
    "__version__",
]
