"""The paper's three scheduling policies for Nanos++, plus the adaptive
tier (work-stealing, critical-path lookahead, and the metrics-driven
meta-scheduler) — see docs/SCHEDULERS.md."""

from typing import Callable, Optional

from ...memory.directory import Directory
from .adaptive import AdaptiveScheduler
from .affinity import AffinityScheduler
from .base import Scheduler, TaskQueue, WorkerProtocol
from .breadth_first import BreadthFirstScheduler
from .critical_path import (BottomLevelEstimator, CriticalPathScheduler,
                            PriorityTaskQueue)
from .dep_aware import DependencyAwareScheduler
from .work_stealing import WorkStealingScheduler

__all__ = [
    "Scheduler",
    "TaskQueue",
    "PriorityTaskQueue",
    "WorkerProtocol",
    "BreadthFirstScheduler",
    "DependencyAwareScheduler",
    "AffinityScheduler",
    "WorkStealingScheduler",
    "CriticalPathScheduler",
    "BottomLevelEstimator",
    "AdaptiveScheduler",
    "make_scheduler",
]


def make_scheduler(name: str, notify: Callable[[], None],
                   directory: Directory, steal: bool = True,
                   rr_chunk: int = 1, metrics=None,
                   config=None) -> Scheduler:
    """Instantiate a scheduling policy by its evaluation-chart name.

    ``config`` (a :class:`~repro.runtime.config.RuntimeConfig`) is only
    consulted by the adaptive meta-scheduler, for its interval/hysteresis
    knobs; the static policies take everything through the explicit
    arguments.
    """
    if name == "bf":
        sched = BreadthFirstScheduler(notify, metrics=metrics)
    elif name == "default":
        sched = DependencyAwareScheduler(notify, metrics=metrics)
    elif name == "affinity":
        sched = AffinityScheduler(notify, directory, steal=steal,
                                  rr_chunk=rr_chunk, metrics=metrics)
    elif name == "ws":
        sched = WorkStealingScheduler(notify, directory, steal=steal,
                                      rr_chunk=rr_chunk, metrics=metrics)
    elif name == "cp":
        sched = CriticalPathScheduler(notify, directory, steal=steal,
                                      rr_chunk=rr_chunk, metrics=metrics)
    elif name == "adaptive":
        kwargs = {}
        if config is not None:
            kwargs = dict(interval=config.adaptive_interval,
                          hysteresis=config.adaptive_hysteresis,
                          adaptive_datamove=config.adaptive_datamove)
        sched = AdaptiveScheduler(notify, directory, steal=steal,
                                  rr_chunk=rr_chunk, metrics=metrics,
                                  **kwargs)
    else:
        raise ValueError(f"unknown scheduler {name!r}")
    if metrics is not None and name != "adaptive":
        # The adaptive policy maintains this itself ("adaptive:<child>").
        metrics.set_info("scheduler.policy", name)
    return sched
