"""The paper's three scheduling policies for Nanos++."""

from typing import Callable

from ...memory.directory import Directory
from .affinity import AffinityScheduler
from .base import Scheduler, TaskQueue, WorkerProtocol
from .breadth_first import BreadthFirstScheduler
from .dep_aware import DependencyAwareScheduler

__all__ = [
    "Scheduler",
    "TaskQueue",
    "WorkerProtocol",
    "BreadthFirstScheduler",
    "DependencyAwareScheduler",
    "AffinityScheduler",
    "make_scheduler",
]


def make_scheduler(name: str, notify: Callable[[], None],
                   directory: Directory, steal: bool = True,
                   rr_chunk: int = 1, metrics=None) -> Scheduler:
    """Instantiate a scheduling policy by its evaluation-chart name."""
    if name == "bf":
        return BreadthFirstScheduler(notify, metrics=metrics)
    if name == "default":
        return DependencyAwareScheduler(notify, metrics=metrics)
    if name == "affinity":
        return AffinityScheduler(notify, directory, steal=steal,
                                 rr_chunk=rr_chunk, metrics=metrics)
    raise ValueError(f"unknown scheduler {name!r}")
