"""The ``adaptive`` meta-scheduler: metrics-driven policy switching.

Closes the observability loop (ROADMAP item 4): the counters the runtime
already publishes are *consumed* here to pick the scheduling policy — and,
optionally, the data-movement write mode — mid-run.

Three child policies are kept registered (affinity, critical-path,
work-stealing); exactly one is *active* and owns every queued task.  Every
``interval`` scheduler events the window's signals are read:

* **starvation** — fraction of worker polls that returned no task while
  tasks were still live.  Starving workers with *shallow* ready queues
  mean the run is readiness-bound: switch to ``cp`` so the tasks that
  release the most work run first.  Starving workers with *deep* ready
  queues mean the work is placed where nobody is idle: switch to ``ws``
  and let thieves re-balance.
* **spread** — max/mean bottom level over a sample of pending tasks (the
  shared :class:`~.critical_path.BottomLevelEstimator`).  A large spread
  means ordering matters: prefer ``cp`` even before starvation shows.
* low starvation — locality is king again: fall back to ``affinity``.

A switch needs ``hysteresis`` consecutive agreeing evaluations, so one
noisy window cannot thrash the queues.  Switching drains every queue of
the old policy and resubmits the tasks (in readiness ``tid`` order) to the
new one — nothing is lost, which the chaos suite exercises under faults.

With ``adaptive_datamove`` the same evaluation also drives the PR 6 data
movement controls: sustained write-back pressure while the transfer links
are busy enables write-back elision (``DataMover.elision``, reverted when
the pressure clears) — and, when the run was configured write-through,
switches the commit write mode to write-back outright
(:meth:`DataMover.set_write_mode`, one-way), so eager per-commit
device->host copies stop competing with the fetch traffic.  Both use the
same hysteresis as policy switches.
"""

from __future__ import annotations

from itertools import islice
from typing import Optional

from ...memory.cache import CachePolicy
from ...memory.directory import Directory
from ..task import Task
from .affinity import AffinityScheduler
from .base import Scheduler, WorkerProtocol
from .critical_path import BottomLevelEstimator, CriticalPathScheduler
from .work_stealing import WorkStealingScheduler

__all__ = ["AdaptiveScheduler"]

#: starvation fraction above which the run counts as starving, and below
#: which locality (affinity) is safe again.
STARVE_HIGH = 0.5
STARVE_LOW = 0.15

#: bottom-level max/mean ratio above which ordering is deemed critical.
SPREAD_HIGH = 4.0

#: pending-task sample size for the spread signal.
SPREAD_SAMPLE = 32

#: link busy fraction of the window above which write-back pressure is
#: worth elision.
BUSY_HIGH = 0.5


class AdaptiveScheduler(Scheduler):
    name = "adaptive"

    def __init__(self, notify, directory: Directory, steal: bool = True,
                 rr_chunk: int = 1, metrics=None, interval: int = 24,
                 hysteresis: int = 2, adaptive_datamove: bool = False):
        super().__init__(notify, metrics=metrics)
        self.directory = directory
        self.interval = max(1, interval)
        self.hysteresis = max(1, hysteresis)
        self.adaptive_datamove = adaptive_datamove
        self._estimator = BottomLevelEstimator(metrics)
        # Children share the meta-scheduler's registry only through it:
        # metrics=None keeps them from double-counting ready_submissions
        # and pending against the instruments this class already owns.
        self.children: dict[str, Scheduler] = {
            "affinity": AffinityScheduler(notify, directory, steal=steal,
                                          rr_chunk=rr_chunk),
            "cp": CriticalPathScheduler(notify, directory, steal=steal,
                                        rr_chunk=rr_chunk,
                                        estimator=self._estimator),
            "ws": WorkStealingScheduler(notify, directory, steal=steal,
                                        rr_chunk=rr_chunk),
        }
        self.active = self.children["affinity"]
        self.switches = 0
        self._rt = None
        #: tid -> task for everything submitted but not yet dispatched
        #: (the spread-signal sample and the safety net for switches).
        self._ready: dict[int, Task] = {}
        self._since = 0          # events since the last evaluation
        self._polls = 0
        self._idle_polls = 0
        self._want: Optional[str] = None
        self._want_streak = 0
        self._dm_want: Optional[bool] = None
        self._dm_streak = 0
        self._dm_folded = (0.0, 0.0, 0.0)  # pressure, busy, sim-time
        self._wm_streak = 0                # write-mode switch streak
        if metrics is not None:
            metrics.set_info("scheduler.policy", f"adaptive:{self.active.name}")

    def attach_runtime(self, rt) -> None:
        """Give the meta-scheduler its signal sources (called by the owning
        image once the runtime exists)."""
        self._rt = rt

    # -- wiring (children stay in lock-step) ------------------------------
    def register_worker(self, worker: WorkerProtocol) -> None:
        super().register_worker(worker)
        for child in self.children.values():
            child.register_worker(worker)

    def blacklist(self, worker: WorkerProtocol) -> list[Task]:
        stranded = super().blacklist(worker)
        seen = {t.tid for t in stranded}
        for child in self.children.values():
            for task in child.blacklist(worker):
                if task.tid not in seen:
                    seen.add(task.tid)
                    stranded.append(task)
        return stranded

    def rebalance(self, worker: WorkerProtocol) -> list[Task]:
        moved = []
        for child in self.children.values():
            moved.extend(child.rebalance(worker))
        return moved

    def drain_unrunnable(self) -> list[Task]:
        stranded = super().drain_unrunnable()
        for child in self.children.values():
            stranded.extend(child.drain_unrunnable())
        return stranded

    # -- protocol ---------------------------------------------------------
    def submit(self, task: Task) -> None:
        self.tasks_submitted += 1
        if self._c_ready is not None:
            self._c_ready.value += 1
        self._ready[task.tid] = task
        self.active.submit(task)  # places and notifies
        if self._g_pending is not None:
            self._g_pending.set(self.pending)
        self._since += 1
        if self._since >= self.interval:
            self._evaluate()

    def task_finished(self, task: Task, worker: WorkerProtocol,
                      newly_ready: list[Task]) -> None:
        self._estimator.refresh()
        for t in newly_ready:
            self.submit(t)

    def next_task(self, worker: WorkerProtocol) -> Optional[Task]:
        task = self.active.next_task(worker)
        self._polls += 1
        self._since += 1
        if task is not None:
            self._ready.pop(task.tid, None)
        elif self._live_tasks() > 0:
            self._idle_polls += 1
        if self._since >= self.interval:
            self._evaluate()
        return task

    def peek_for(self, worker: WorkerProtocol, n: int) -> list[Task]:
        return self.active.peek_for(worker, n)

    @property
    def pending(self) -> int:
        return len(self.global_queue) + self.active.pending

    # -- signals ----------------------------------------------------------
    def _live_tasks(self) -> float:
        rt = self._rt
        if rt is None or rt.metrics is None:
            return 1.0  # assume live; starvation then measures raw idling
        return rt.metrics.value("runtime.tasks_live", 0)

    def _spread(self) -> float:
        if not self._ready:
            return 1.0
        sample = list(islice(self._ready.values(), SPREAD_SAMPLE))
        levels = [self._estimator.bottom_level(t) for t in sample]
        mean = sum(levels) / len(levels)
        return (max(levels) / mean) if mean > 0 else 1.0

    def _evaluate(self) -> None:
        polls, idle = self._polls, self._idle_polls
        self._since = self._polls = self._idle_polls = 0
        starvation = (idle / polls) if polls else 0.0
        depth = self.active.pending
        spread = self._spread()
        if self.metrics is not None:
            self.metrics.inc("scheduler.adaptive.evaluations")
            self.metrics.set_gauge("scheduler.adaptive.starvation", starvation)
            self.metrics.set_gauge("scheduler.adaptive.ready_depth", depth)
            self.metrics.set_gauge("scheduler.adaptive.spread", spread)
        want = self.active.name
        if starvation >= STARVE_HIGH:
            # Starving: shallow queues mean too little is ready (release
            # the critical path), deep queues mean it is parked wrong.
            want = "cp" if depth <= len(self.workers) else "ws"
        elif starvation <= STARVE_LOW:
            want = "affinity"
        if spread >= SPREAD_HIGH and depth > 0:
            want = "cp"
        if want != self.active.name:
            self._want_streak = (self._want_streak + 1
                                 if want == self._want else 1)
            self._want = want
            if self._want_streak >= self.hysteresis:
                self._switch(want)
        else:
            self._want, self._want_streak = None, 0
        self._evaluate_datamove()

    def _switch(self, name: str) -> None:
        old, new = self.active, self.children[name]
        self._want, self._want_streak = None, 0
        moved: list[Task] = []
        for worker in list(self.workers):
            moved.extend(old.rebalance(worker))
        moved.extend(old.global_queue.drain())
        pglobal = getattr(old, "_pglobal", None)
        if pglobal is not None:
            moved.extend(pglobal.drain())
        self.active = new
        self.switches += 1
        if self.metrics is not None:
            self.metrics.inc("scheduler.adaptive.switches")
            self.metrics.set_info("scheduler.policy", f"adaptive:{name}")
        moved.sort(key=lambda t: t.tid)  # readiness order
        for task in moved:
            new.submit(task)

    # -- datamove write-mode switching ------------------------------------
    def _dm_signals(self) -> tuple[float, float, float]:
        rt = self._rt
        m = rt.metrics
        pressure = sum(c.value for name, c in m._counters.items()
                       if name.startswith("cache.")
                       and name.endswith((".writebacks", ".writebacks_elided")))
        pressure += m.value("datamove.writebacks_elided", 0)
        busy = sum(g.value for name, g in m._gauges.items()
                   if name.endswith(".busy_seconds"))
        return pressure, busy, rt.env.now

    def _evaluate_datamove(self) -> None:
        rt = self._rt
        if (not self.adaptive_datamove or rt is None
                or rt.datamove is None or rt.metrics is None):
            return
        pressure, busy, now = self._dm_signals()
        p0, b0, t0 = self._dm_folded
        self._dm_folded = (pressure, busy, now)
        window = now - t0
        if window <= 0:
            return
        busy_frac = (busy - b0) / window
        pressed = pressure > p0 and busy_frac >= BUSY_HIGH
        dm = rt.datamove
        # Write-through under pressure: each commit pays an eager device->
        # host write-back while the transfer links are already saturated.
        # Deferring those writes (write-back mode) is always recoverable —
        # eviction and flush still drain dirty data — so the switch is
        # one-way: reverting to eager writes would just recreate the
        # saturation that triggered it.
        if (pressed and dm.write_mode is None
                and rt.config.cache_policy is CachePolicy.WRITE_THROUGH):
            self._wm_streak += 1
            if self._wm_streak >= self.hysteresis:
                dm.set_write_mode(CachePolicy.WRITE_BACK)
                if self.metrics is not None:
                    self.metrics.inc("scheduler.adaptive.datamove_switches")
                    self.metrics.set_info("datamove.write_mode", "wb")
        else:
            self._wm_streak = 0
        # Write traffic while links are saturated: elide.  (Elided
        # write-backs keep counting as pressure, so success does not read
        # as quiet and flap the mode back off.)
        want = pressed
        if want == dm.elision:
            self._dm_want, self._dm_streak = None, 0
            return
        self._dm_streak = (self._dm_streak + 1
                           if want == self._dm_want else 1)
        self._dm_want = want
        if self._dm_streak >= self.hysteresis:
            dm.elision = want
            self._dm_want, self._dm_streak = None, 0
            if self.metrics is not None:
                self.metrics.inc("scheduler.adaptive.datamove_switches")
                self.metrics.set_info("datamove.elision",
                                      "on" if want else "off")
