"""The ``bf`` policy: plain FIFO over a single global queue."""

from __future__ import annotations

from .base import Scheduler

__all__ = ["BreadthFirstScheduler"]


class BreadthFirstScheduler(Scheduler):
    """Simple FIFO scheduling strategy (paper: *breadth-first*)."""

    name = "bf"
