"""Scheduler interface and shared queue machinery (paper Section III.C.2).

Workers (SMP worker threads, GPU manager threads, and — on the master of a
cluster — the per-remote-node proxies served by the communication thread)
poll their scheduler for ready tasks.  Device constraints are respected
everywhere: a ``cuda`` task is only handed to a worker that can run it.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Optional, Protocol

from ..task import Task

__all__ = ["WorkerProtocol", "Scheduler", "TaskQueue"]


class WorkerProtocol(Protocol):
    """What schedulers need to know about an execution place.

    ``accepts`` must be a pure function of the task's *acceptance
    signature* — its ``device`` kind and whether it is top-level
    (``parent is None``).  Every worker in the runtime satisfies this (SMP
    workers take ``smp`` tasks, GPU managers take ``cuda`` tasks, node
    proxies take any top-level task); :class:`TaskQueue` relies on it to
    answer polls without scanning.
    """

    kind: str          # "smp" | "gpu" | "node"
    node_index: int
    space: object      # AddressSpace of the place (host/device space)

    def accepts(self, task: Task) -> bool: ...


def _signature(task: Task) -> tuple[str, bool]:
    """The acceptance signature TaskQueue buckets by (see WorkerProtocol)."""
    return (task.device, task.parent is None)


class TaskQueue:
    """FIFO of ready tasks (readiness order) with device-aware extraction.

    Tasks are bucketed by acceptance signature; each bucket is a deque of
    ``(sequence, task)`` kept in readiness order.  A poll inspects only the
    head of each bucket (at most four) and pops the acceptable head with the
    lowest sequence number — the same task the old full scan would have
    returned, in O(1) amortized instead of O(pending) per poll.
    """

    __slots__ = ("_buckets", "_size", "_back_seq", "_front_seq")

    def __init__(self):
        self._buckets: dict[tuple[str, bool], deque[tuple[int, Task]]] = {}
        self._size = 0
        self._back_seq = 0    # increases on push
        self._front_seq = 0   # decreases on push_front

    def _bucket(self, task: Task) -> deque:
        sig = _signature(task)
        bucket = self._buckets.get(sig)
        if bucket is None:
            bucket = self._buckets[sig] = deque()
        return bucket

    def push(self, task: Task) -> None:
        self._back_seq += 1
        self._bucket(task).append((self._back_seq, task))
        self._size += 1

    def push_front(self, task: Task) -> None:
        self._front_seq -= 1
        self._bucket(task).appendleft((self._front_seq, task))
        self._size += 1

    def peek_for(self, worker: WorkerProtocol, n: int) -> list[Task]:
        """Up to ``n`` queued tasks the worker could execute, in readiness
        order, *without* removing them (datamove prestage lookahead).
        Signature purity (see :class:`WorkerProtocol`) means checking each
        bucket's head covers the whole bucket."""
        if not self._size or n <= 0:
            return []
        items: list[tuple[int, Task]] = []
        for bucket in self._buckets.values():
            if bucket and worker.accepts(bucket[0][1]):
                count = min(n, len(bucket))
                for i, item in enumerate(bucket):
                    if i >= count:
                        break
                    items.append(item)
        items.sort(key=lambda seq_task: seq_task[0])
        return [task for _seq, task in items[:n]]

    def pop_for(self, worker: WorkerProtocol) -> Optional[Task]:
        """First queued task the worker can execute (stable order)."""
        if not self._size:
            # Idle polls vastly outnumber successful pops (every completion
            # wakes every sleeping worker); answer them without touching
            # the buckets.
            return None
        best: Optional[deque] = None
        best_seq = 0
        for bucket in self._buckets.values():
            if not bucket:
                continue
            seq, task = bucket[0]
            if (best is None or seq < best_seq) and worker.accepts(task):
                best, best_seq = bucket, seq
        if best is None:
            return None
        self._size -= 1
        return best.popleft()[1]

    def drain(self) -> list[Task]:
        """Remove and return every queued task, in readiness order."""
        items: list[tuple[int, Task]] = []
        for bucket in self._buckets.values():
            items.extend(bucket)
            bucket.clear()
        self._size = 0
        items.sort(key=lambda seq_task: seq_task[0])
        return [task for _seq, task in items]

    def drain_unacceptable(self, workers) -> list[Task]:
        """Remove tasks no worker in ``workers`` accepts any more (after a
        blacklist); signature purity means checking each bucket's head is
        checking the whole bucket."""
        stranded: list[tuple[int, Task]] = []
        for bucket in self._buckets.values():
            if not bucket:
                continue
            head = bucket[0][1]
            if not any(w.accepts(head) for w in workers):
                stranded.extend(bucket)
                self._size -= len(bucket)
                bucket.clear()
        stranded.sort(key=lambda seq_task: seq_task[0])
        return [task for _seq, task in stranded]

    def __len__(self) -> int:
        return self._size


class Scheduler:
    """Base scheduler: global FIFO; subclasses refine placement."""

    name = "base"

    def __init__(self, notify: Callable[..., None], metrics=None):
        #: callback waking idle workers when work arrives; called with the
        #: ready task's device kind so only places that could run it wake.
        self._notify = notify
        self.workers: list[WorkerProtocol] = []
        self.global_queue = TaskQueue()
        self.tasks_submitted = 0
        #: optional :class:`~repro.metrics.CounterRegistry`; counters are
        #: namespaced ``scheduler.*``.
        self.metrics = metrics
        if metrics is not None:
            self._c_ready = metrics.counter("scheduler.ready_submissions")
            self._g_pending = metrics.gauge("scheduler.pending")
        else:
            self._c_ready = self._g_pending = None

    # -- wiring -----------------------------------------------------------
    def register_worker(self, worker: WorkerProtocol) -> None:
        self.workers.append(worker)

    def blacklist(self, worker: WorkerProtocol) -> list[Task]:
        """Remove a dead execution place; return the tasks stranded in its
        queues so the caller (the fault engine) can re-place them."""
        self.workers = [w for w in self.workers if w is not worker]
        if self.metrics is not None:
            self.metrics.inc("scheduler.blacklisted")
        return []

    def rebalance(self, worker: WorkerProtocol) -> list[Task]:
        """Drain a still-registered worker's private queue (e.g. a node
        proxy whose GPU died) so its tasks can be re-placed.  The base
        scheduler has no private queues."""
        return []

    def drain_unrunnable(self) -> list[Task]:
        """Remove queued tasks no remaining worker accepts (called after a
        blacklist leaves a device bucket with no taker)."""
        return self.global_queue.drain_unacceptable(self.workers)

    # -- protocol ------------------------------------------------------------
    def submit(self, task: Task) -> None:
        """A task became ready: place it in some queue."""
        self.tasks_submitted += 1
        if self._c_ready is not None:
            self._c_ready.value += 1
        self._place(task)
        if self._g_pending is not None:
            # Read the gauge after placement: _place may hand the task to a
            # queue already, so pre-counting would over-report by one.
            self._g_pending.set(self.pending)
        self._notify(task.device)

    def task_finished(self, task: Task, worker: WorkerProtocol,
                      newly_ready: list[Task]) -> None:
        """A task finished on ``worker`` releasing ``newly_ready`` tasks."""
        for t in newly_ready:
            self.submit(t)

    def next_task(self, worker: WorkerProtocol) -> Optional[Task]:
        """Non-blocking poll for the next task ``worker`` should run."""
        return self.global_queue.pop_for(worker)

    def peek_for(self, worker: WorkerProtocol, n: int) -> list[Task]:
        """Up to ``n`` tasks ``worker`` would be handed next, left queued.
        Used by the cluster master's prestage lookahead (presend_depth).

        The base scheduler has only the global queue, whose tasks any
        worker may take — naively previewing it would prestage the same
        data to every node (observed to congest the master's NIC far
        beyond what the overlap wins back).  Instead the preview is
        *partitioned*: the acceptable prefix of the global queue is dealt
        round-robin across the node proxies by queue position, so each
        proxy previews a disjoint slice and no region is speculatively
        fanned out twice.  The slices are a heuristic — any proxy may
        still pop any task — but prestage is speculative by design, and a
        wrong guess costs one extra fetch, not correctness.  Only node
        proxies prestage, so other worker kinds report no lookahead."""
        return self._peek_partitioned(worker, n)

    def _peek_partitioned(self, worker: WorkerProtocol, n: int,
                          queue: "TaskQueue | None" = None) -> list[Task]:
        """Deal ``queue``'s (default: the global queue's) acceptable prefix
        round-robin across the registered node proxies and return this
        proxy's slice (see :meth:`peek_for`)."""
        if n <= 0 or worker.kind != "node":
            return []
        proxies = [w for w in self.workers if w.kind == "node"]
        rank = next((i for i, w in enumerate(proxies) if w is worker), None)
        if rank is None:
            return []
        k = len(proxies)
        src = self.global_queue if queue is None else queue
        candidates = src.peek_for(worker, n * k)
        return [t for i, t in enumerate(candidates) if i % k == rank][:n]

    # -- subclass hook ----------------------------------------------------------
    def _place(self, task: Task) -> None:
        self.global_queue.push(task)

    @property
    def pending(self) -> int:
        return len(self.global_queue)
