"""Scheduler interface and shared queue machinery (paper Section III.C.2).

Workers (SMP worker threads, GPU manager threads, and — on the master of a
cluster — the per-remote-node proxies served by the communication thread)
poll their scheduler for ready tasks.  Device constraints are respected
everywhere: a ``cuda`` task is only handed to a worker that can run it.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Optional, Protocol

from ..task import Task

__all__ = ["WorkerProtocol", "Scheduler", "TaskQueue"]


class WorkerProtocol(Protocol):
    """What schedulers need to know about an execution place."""

    kind: str          # "smp" | "gpu" | "node"
    node_index: int
    space: object      # AddressSpace of the place (host/device space)

    def accepts(self, task: Task) -> bool: ...


class TaskQueue:
    """FIFO of ready tasks (readiness order) with device-aware extraction."""

    def __init__(self):
        self._q: deque[Task] = deque()

    def push(self, task: Task) -> None:
        self._q.append(task)

    def push_front(self, task: Task) -> None:
        self._q.appendleft(task)

    def pop_for(self, worker: WorkerProtocol) -> Optional[Task]:
        """First queued task the worker can execute (stable order)."""
        for i, task in enumerate(self._q):
            if worker.accepts(task):
                del self._q[i]
                return task
        return None

    def __len__(self) -> int:
        return len(self._q)


class Scheduler:
    """Base scheduler: global FIFO; subclasses refine placement."""

    name = "base"

    def __init__(self, notify: Callable[[], None], metrics=None):
        #: callback waking idle workers when work arrives.
        self._notify = notify
        self.workers: list[WorkerProtocol] = []
        self.global_queue = TaskQueue()
        self.tasks_submitted = 0
        #: optional :class:`~repro.metrics.CounterRegistry`; counters are
        #: namespaced ``scheduler.*``.
        self.metrics = metrics

    # -- wiring -----------------------------------------------------------
    def register_worker(self, worker: WorkerProtocol) -> None:
        self.workers.append(worker)

    # -- protocol ------------------------------------------------------------
    def submit(self, task: Task) -> None:
        """A task became ready: place it in some queue."""
        self.tasks_submitted += 1
        if self.metrics is not None:
            self.metrics.inc("scheduler.ready_submissions")
            self.metrics.set_gauge("scheduler.pending", self.pending + 1)
        self._place(task)
        self._notify()

    def task_finished(self, task: Task, worker: WorkerProtocol,
                      newly_ready: list[Task]) -> None:
        """A task finished on ``worker`` releasing ``newly_ready`` tasks."""
        for t in newly_ready:
            self.submit(t)

    def next_task(self, worker: WorkerProtocol) -> Optional[Task]:
        """Non-blocking poll for the next task ``worker`` should run."""
        return self.global_queue.pop_for(worker)

    # -- subclass hook ----------------------------------------------------------
    def _place(self, task: Task) -> None:
        self.global_queue.push(task)

    @property
    def pending(self) -> int:
        return len(self.global_queue)
