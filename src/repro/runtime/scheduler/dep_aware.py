"""The ``default`` policy: FIFO plus successor-first on task completion.

Paper: "this is the same as [breadth-first] but before going to check in the
queue it first tries to schedule a successor of the task that just finished.
The idea behind this is that they will share data and it will end minimizing
the number of data transfers."
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from ..task import Task
from .base import Scheduler, TaskQueue, WorkerProtocol

__all__ = ["DependencyAwareScheduler"]


class DependencyAwareScheduler(Scheduler):
    name = "default"

    def __init__(self, notify, metrics=None):
        super().__init__(notify, metrics=metrics)
        self._hints: dict[int, TaskQueue] = {}

    def register_worker(self, worker: WorkerProtocol) -> None:
        super().register_worker(worker)
        self._hints[id(worker)] = TaskQueue()

    def blacklist(self, worker: WorkerProtocol) -> list[Task]:
        stranded = super().blacklist(worker)
        queue = self._hints.pop(id(worker), None)
        if queue is not None:
            stranded.extend(queue.drain())
        return stranded

    def rebalance(self, worker: WorkerProtocol) -> list[Task]:
        queue = self._hints.get(id(worker))
        if queue is None:
            return []
        return queue.drain()

    def task_finished(self, task: Task, worker: WorkerProtocol,
                      newly_ready: list[Task]) -> None:
        hint = self._hints.get(id(worker))
        for t in newly_ready:
            self.tasks_submitted += 1
            if self.metrics is not None:
                self.metrics.inc("scheduler.ready_submissions")
            # Freed successors the finishing worker can run go to its hint
            # queue, to be picked before the global queue; the rest go global.
            if hint is not None and worker.accepts(t):
                hint.push(t)
            else:
                self.global_queue.push(t)
        self._notify()

    def next_task(self, worker: WorkerProtocol) -> Optional[Task]:
        hint = self._hints.get(id(worker))
        if hint is not None:
            task = hint.pop_for(worker)
            if task is not None:
                return task
        task = self.global_queue.pop_for(worker)
        if task is not None:
            return task
        # Do not let hinted work rot if its worker is busy elsewhere: any
        # compatible worker may drain another worker's hint queue as a last
        # resort (keeps the policy work-conserving).
        for other_id, queue in self._hints.items():
            if other_id == id(worker):
                continue
            task = queue.pop_for(worker)
            if task is not None:
                return task
        return None

    def peek_for(self, worker: WorkerProtocol, n: int) -> list[Task]:
        """Preview the worker's own hint queue (tasks only it was hinted)
        first, then fill from this proxy's partitioned slice of the global
        queue (see :meth:`Scheduler.peek_for`).  Other workers' hint queues
        are not previewed — their owner will most likely take them."""
        out = self._hints[id(worker)].peek_for(worker, n)
        if len(out) < n:
            seen = {t.tid for t in out}
            for t in self._peek_partitioned(worker, n - len(out)):
                if t.tid not in seen:
                    out.append(t)
        return out[:n]

    @property
    def pending(self) -> int:
        return len(self.global_queue) + sum(len(q) for q in self._hints.values())
