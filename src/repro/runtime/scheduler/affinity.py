"""The ``affinity`` (locality-aware) policy, after Martinell et al.

Paper: "when a new task is submitted, the scheduler computes an affinity
score for each location.  This score is based on where each data specified by
the task is located and also takes into account the size of that data (i.e.,
tries to prioritize big data).  This score is used to place the task in the
queue of the thread with the highest affinity.  If there is no highest
affinity, it is placed in a global queue.  When threads request work they
first look into their local queue, then into the global queue and last, they
try to steal work from other threads to avoid load imbalance."
"""

from __future__ import annotations

from typing import Optional

from ...memory.directory import Directory
from ..task import Task
from .base import Scheduler, TaskQueue, WorkerProtocol

__all__ = ["AffinityScheduler", "locality_pulls", "locality_score"]


def locality_pulls(directory: Directory, task: Task) -> list[tuple[int, set]]:
    """One directory resolution per access: ``(weighted bytes, holder
    spaces)`` tuples, reused to score every candidate worker against the
    same snapshot (instead of workers x accesses directory lookups).
    The holder sets are the directory's live sets — placement is
    synchronous, so nothing mutates them between here and scoring, and
    skipping the per-access copies is measurable on figure workloads.

    Shared by every locality-aware policy (affinity, work-stealing victim
    bias, critical-path placement)."""
    pulls = []
    for acc in task.accesses:
        ent = directory.entry(acc.region)
        if not acc.direction.reads and ent.version == 0:
            # A pure output over a never-written region: there is no
            # data anywhere yet (the home entry is just the registration
            # point), so it exerts no pull.
            continue
        # Written data weighs double: keeping the produced (often
        # dirty) copy where it lives avoids migrating it, and its
        # next consumer is usually the next task of the same chain.
        weight = 2 if acc.direction.writes else 1
        pulls.append((weight * acc.region.nbytes, ent.holders))
    return pulls


def locality_score(pulls, worker: WorkerProtocol) -> int:
    """Bytes of the task's data currently resident in the worker's
    domain.  GPU workers score their own device space; node proxies (and
    SMP workers) score every space of their node — the hierarchical
    (node-level) view of the directory."""
    score = 0
    if worker.kind == "gpu":
        space = worker.space
        for nbytes, holders in pulls:
            if space in holders:
                score += nbytes
    else:
        node = worker.node_index
        for nbytes, holders in pulls:
            for s in holders:
                if s.node_index == node:
                    score += nbytes
                    break
    return score


class AffinityScheduler(Scheduler):
    name = "affinity"

    def __init__(self, notify, directory: Directory, steal: bool = True,
                 rr_chunk: int = 1, metrics=None):
        super().__init__(notify, metrics=metrics)
        self.directory = directory
        self.steal = steal
        #: consecutive no-affinity tasks dealt to the same node domain —
        #: blocked loops then land as contiguous chunks, which preserves
        #: row/column reuse for the tasks that consume them.
        self.rr_chunk = max(1, rr_chunk)
        self._local: dict[int, TaskQueue] = {}
        self.stolen = 0
        self._rr = 0

    def register_worker(self, worker: WorkerProtocol) -> None:
        super().register_worker(worker)
        self._local[id(worker)] = TaskQueue()

    def blacklist(self, worker: WorkerProtocol) -> list[Task]:
        stranded = super().blacklist(worker)
        queue = self._local.pop(id(worker), None)
        if queue is not None:
            stranded.extend(queue.drain())
        return stranded

    def rebalance(self, worker: WorkerProtocol) -> list[Task]:
        queue = self._local.get(id(worker))
        if queue is None:
            return []
        return queue.drain()

    # -- scoring ------------------------------------------------------------
    def _pulls(self, task: Task) -> list[tuple[int, set]]:
        """See :func:`locality_pulls` (shared with the adaptive tier)."""
        return locality_pulls(self.directory, task)

    @staticmethod
    def _score_from(pulls, worker: WorkerProtocol) -> int:
        """See :func:`locality_score` (shared with the adaptive tier)."""
        return locality_score(pulls, worker)

    def _score(self, task: Task, worker: WorkerProtocol) -> int:
        """Affinity of one worker for one task (kept for introspection;
        placement batches via :meth:`_pulls` + :meth:`_score_from`)."""
        return self._score_from(self._pulls(task), worker)

    def _place(self, task: Task) -> None:
        pulls = self._pulls(task)
        best: Optional[WorkerProtocol] = None
        best_score = 0
        if pulls:
            for worker in self.workers:
                if not worker.accepts(task):
                    continue
                score = self._score_from(pulls, worker)
                if score > best_score:
                    best, best_score = worker, score
        if best is not None:
            self._local[id(best)].push(task)
            return
        # "If there is no highest affinity, it is placed in a global queue."
        # On a cluster master the global queue would be drained almost
        # entirely by the (zero-latency) local workers, so no-affinity tasks
        # are dealt round-robin across the node domains — the per-node task
        # pools the communication thread polls (paper Section III.D.1).
        proxies = [w for w in self.workers
                   if w.kind == "node" and w.accepts(task)]
        if proxies:
            domains = len(proxies) + 1  # remote nodes + the master itself
            slot = (self._rr // self.rr_chunk) % domains
            self._rr += 1
            if slot > 0:
                self._local[id(proxies[slot - 1])].push(task)
                return
        self.global_queue.push(task)

    def next_task(self, worker: WorkerProtocol) -> Optional[Task]:
        local = self._local
        queue = local[id(worker)]
        if queue._size:
            task = queue.pop_for(worker)
            if task is not None:
                return task
        if self.global_queue._size:
            task = self.global_queue.pop_for(worker)
            if task is not None:
                return task
        if self.steal:
            # Stealing stays within the node: the paper does not steal
            # between the queues of different cluster nodes.
            node_index = worker.node_index
            for other in self.workers:
                if other is worker or other.node_index != node_index:
                    continue
                if other.kind == "node":
                    continue
                victim = local[id(other)]
                task = victim.pop_for(worker) if victim._size else None
                if task is not None:
                    self.stolen += 1
                    if self.metrics is not None:
                        self.metrics.inc("scheduler.steals")
                    return task
        return None

    def peek_for(self, worker: WorkerProtocol, n: int) -> list[Task]:
        """Lookahead into the worker's *local* queue only.  Global-queue and
        steal candidates are deliberately not previewed: any worker may take
        them, so prestaging their data would fan the same speculative
        transfers out to every node (observed to congest the master's NIC
        far beyond what the overlap wins back)."""
        return self._local[id(worker)].peek_for(worker, n)

    @property
    def pending(self) -> int:
        return len(self.global_queue) + sum(len(q) for q in self._local.values())
