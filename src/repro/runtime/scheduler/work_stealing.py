"""The ``ws`` (work-stealing) policy: per-worker deques, steal-half.

Classic Cilk-style decentralised load balancing adapted to the simulated
Nanos++ runtime: every execution place owns a private deque; ready tasks
are placed by locality (the affinity scoring shared with
:mod:`.affinity`) or dealt round-robin when no data pulls anywhere; an
idle worker steals the *back half* of the deepest same-node victim deque
in one operation, so one steal amortises many future polls instead of
ping-ponging single tasks.  Victim choice is locality-biased: among the
deepest deques the thief prefers the victim whose queued work's data is
already resident in the thief's domain.

Stealing never crosses node boundaries and never involves the cluster
master's node proxies (the paper's runtime does not migrate work between
nodes once dealt; the proxies' queues are drained by the communication
thread only).
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from ...memory.directory import Directory
from ..task import Task
from .affinity import locality_pulls, locality_score
from .base import Scheduler, WorkerProtocol

__all__ = ["WorkStealingScheduler"]


class WorkStealingScheduler(Scheduler):
    name = "ws"

    def __init__(self, notify, directory: Directory, steal: bool = True,
                 rr_chunk: int = 1, metrics=None):
        super().__init__(notify, metrics=metrics)
        self.directory = directory
        self.steal = steal
        self.rr_chunk = max(1, rr_chunk)
        #: id(worker) -> deque of (seq, task); owners pop the front (FIFO,
        #: readiness order), thieves take from the back (coldest work, the
        #: part the owner would reach last).
        self._deques: dict[int, deque] = {}
        self.stolen = 0          # steal operations
        self.stolen_tasks = 0    # tasks moved by steals
        self._seq = 0
        self._rr = 0

    # -- wiring -----------------------------------------------------------
    def register_worker(self, worker: WorkerProtocol) -> None:
        super().register_worker(worker)
        self._deques[id(worker)] = deque()

    def blacklist(self, worker: WorkerProtocol) -> list[Task]:
        stranded = super().blacklist(worker)
        dq = self._deques.pop(id(worker), None)
        if dq:
            stranded.extend(task for _seq, task in dq)
            dq.clear()
        return stranded

    def rebalance(self, worker: WorkerProtocol) -> list[Task]:
        dq = self._deques.get(id(worker))
        if not dq:
            return []
        moved = [task for _seq, task in dq]
        dq.clear()
        return moved

    def drain_unrunnable(self) -> list[Task]:
        stranded = super().drain_unrunnable()
        for dq in self._deques.values():
            if not dq:
                continue
            keep, dead = [], []
            for seq, task in dq:
                if any(w.accepts(task) for w in self.workers):
                    keep.append((seq, task))
                else:
                    dead.append(task)
            if dead:
                dq.clear()
                dq.extend(keep)
                stranded.extend(dead)
        return stranded

    # -- placement --------------------------------------------------------
    def _place(self, task: Task) -> None:
        pulls = locality_pulls(self.directory, task)
        best: Optional[WorkerProtocol] = None
        best_score = 0
        if pulls:
            for worker in self.workers:
                if not worker.accepts(task):
                    continue
                score = locality_score(pulls, worker)
                if score > best_score:
                    best, best_score = worker, score
        if best is None:
            # No data pull anywhere: deal round-robin over every place
            # that could run the task, so the initial (cold) wavefront is
            # spread before stealing has any depth to work with.
            takers = [w for w in self.workers if w.accepts(task)]
            if takers:
                best = takers[(self._rr // self.rr_chunk) % len(takers)]
                self._rr += 1
        if best is None:
            self.global_queue.push(task)
            return
        self._seq += 1
        self._deques[id(best)].append((self._seq, task))

    # -- dispatch ---------------------------------------------------------
    @staticmethod
    def _pop_front(dq: deque, worker: WorkerProtocol) -> Optional[Task]:
        """Pop the first entry ``worker`` accepts (placement targets only
        acceptable workers, so this is the head except when a fault made a
        place reject a device kind after the fact)."""
        for i in range(len(dq)):
            if worker.accepts(dq[0][1]):
                task = dq.popleft()[1]
                dq.rotate(i)  # undo the scan rotation
                return task
            dq.rotate(-1)
        # A full scan rotates by -len, i.e. back to the original order.
        return None

    def next_task(self, worker: WorkerProtocol) -> Optional[Task]:
        dq = self._deques[id(worker)]
        if dq:
            task = self._pop_front(dq, worker)
            if task is not None:
                return task
        if self.global_queue._size:
            task = self.global_queue.pop_for(worker)
            if task is not None:
                return task
        if self.steal and worker.kind != "node":
            return self._steal(worker)
        return None

    def _steal(self, thief: WorkerProtocol) -> Optional[Task]:
        node_index = thief.node_index
        best_victim: Optional[deque] = None
        best_key = None
        for other in self.workers:
            if other is thief or other.kind == "node":
                continue
            if other.node_index != node_index:
                # Paper semantics: no work migration between cluster nodes.
                continue
            dq = self._deques[id(other)]
            if not dq:
                continue
            # Deepest deque first; among equals prefer the victim whose
            # coldest (back) task already pulls toward the thief — the rest
            # of that deque tends to come from the same placement chain.
            back_task = dq[-1][1]
            if not thief.accepts(back_task):
                continue
            bias = locality_score(locality_pulls(self.directory, back_task),
                                  thief)
            key = (len(dq), bias)
            if best_key is None or key > best_key:
                best_victim, best_key = dq, key
        if best_victim is None:
            return None
        # Take the back half (rounded up, so depth-1 victims still yield):
        # scan from the back collecting entries the thief accepts.
        take = (len(best_victim) + 1) // 2
        loot: list[tuple[int, Task]] = []
        keep: list[tuple[int, Task]] = []
        while best_victim and len(loot) < take:
            entry = best_victim.pop()
            if thief.accepts(entry[1]):
                loot.append(entry)
            else:
                keep.append(entry)
        best_victim.extend(reversed(keep))
        if not loot:
            return None
        loot.reverse()  # back-of-deque pops reversed readiness order
        self.stolen += 1
        self.stolen_tasks += len(loot)
        if self.metrics is not None:
            self.metrics.inc("scheduler.steals")
            self.metrics.inc("scheduler.ws.stolen_tasks", len(loot))
        first = loot[0][1]
        self._deques[id(thief)].extend(loot[1:])
        return first

    # -- prestage lookahead ----------------------------------------------
    def peek_for(self, worker: WorkerProtocol, n: int) -> list[Task]:
        """Preview the worker's own deque front (its committed work) and
        fill from this proxy's partitioned global-queue slice.  Steal
        candidates are not previewed — prestaging a victim's data would
        race the victim's own execution of it."""
        out: list[Task] = []
        for _seq, task in self._deques[id(worker)]:
            if len(out) >= n:
                break
            if worker.accepts(task):
                out.append(task)
        if len(out) < n:
            seen = {t.tid for t in out}
            for t in self._peek_partitioned(worker, n - len(out)):
                if t.tid not in seen:
                    out.append(t)
        return out[:n]

    @property
    def pending(self) -> int:
        return len(self.global_queue) + sum(len(d) for d in self._deques.values())
