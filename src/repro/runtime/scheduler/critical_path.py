"""The ``cp`` (critical-path lookahead) policy: bottom-level priority.

Tasks are dispatched highest *bottom level* first — the length, in modelled
seconds, of the longest cost-weighted path from the task to a sink of the
dependence graph.  Tasks on the critical path therefore jump every queue,
which is exactly what FIFO policies get wrong on fan-in graphs (tiled
Cholesky: the next panel factorisation sits behind a full wavefront of
trailing-matrix updates it does not depend on).

Costs come from the models the tasks already carry — ``KernelSpec.cost``
for CUDA tasks, ``smp_cost`` for host tasks — evaluated against the specs
of the registered workers' hardware, with an EMA of *observed* per-kind
durations (folded from the ``tasks.{smp,cuda}.duration`` histograms in
:mod:`repro.metrics`) as the fallback for tasks with no usable model.

Bottom levels are computed over the successors known when a task becomes
ready.  Dependences are discovered at submission in this runtime, so a
very-early-ready task may not yet see its full subtree; that truncation
only ever *under*-prioritises the earliest wavefront, where queues are
shallow and ordering hardly matters.
"""

from __future__ import annotations

import heapq
from typing import Optional

from ...memory.directory import Directory
from ..task import Task
from .affinity import locality_pulls, locality_score
from .base import Scheduler, WorkerProtocol, _signature

__all__ = ["CriticalPathScheduler", "BottomLevelEstimator", "PriorityTaskQueue"]

#: nominal task cost (seconds) when neither a model nor an observation
#: exists yet — only the relative ordering matters, and with uniform costs
#: bottom level degrades gracefully to graph depth.
NOMINAL_COST = 1e-4

#: EMA smoothing factor for observed per-kind durations.
EMA_ALPHA = 0.25


class PriorityTaskQueue:
    """Max-priority analogue of :class:`~.base.TaskQueue`.

    Entries are bucketed by acceptance signature like the FIFO queue, so a
    poll inspects at most four heap heads; within a bucket a min-heap over
    ``(-priority, seq)`` yields the highest bottom level first, readiness
    order breaking ties (identical graphs stay bit-identical run to run).
    """

    __slots__ = ("_buckets", "_size", "_seq")

    def __init__(self):
        self._buckets: dict[tuple[str, bool], list] = {}
        self._size = 0
        self._seq = 0

    def push(self, task: Task, priority: float) -> None:
        sig = _signature(task)
        bucket = self._buckets.get(sig)
        if bucket is None:
            bucket = self._buckets[sig] = []
        self._seq += 1
        heapq.heappush(bucket, (-priority, self._seq, task))
        self._size += 1

    def pop_for(self, worker: WorkerProtocol) -> Optional[Task]:
        if not self._size:
            return None
        best = None
        for bucket in self._buckets.values():
            if bucket and worker.accepts(bucket[0][2]):
                if best is None or bucket[0][:2] < best[0][:2]:
                    best = bucket
        if best is None:
            return None
        self._size -= 1
        return heapq.heappop(best)[2]

    def peek_for(self, worker: WorkerProtocol, n: int) -> list[Task]:
        """Up to ``n`` acceptable tasks in dispatch (priority) order,
        without removing them."""
        if not self._size or n <= 0:
            return []
        items = []
        for bucket in self._buckets.values():
            if bucket and worker.accepts(bucket[0][2]):
                items.extend(heapq.nsmallest(n, bucket))
        items.sort(key=lambda e: e[:2])
        return [task for _np, _seq, task in items[:n]]

    def drain(self) -> list[Task]:
        items = []
        for bucket in self._buckets.values():
            items.extend(bucket)
            bucket.clear()
        self._size = 0
        items.sort(key=lambda e: e[1])  # readiness order, like TaskQueue
        return [task for _np, _seq, task in items]

    def drain_unacceptable(self, workers) -> list[Task]:
        stranded = []
        for bucket in self._buckets.values():
            if not bucket:
                continue
            head = bucket[0][2]
            if not any(w.accepts(head) for w in workers):
                stranded.extend(bucket)
                self._size -= len(bucket)
                bucket.clear()
        stranded.sort(key=lambda e: e[1])
        return [task for _np, _seq, task in stranded]

    def __len__(self) -> int:
        return self._size


class BottomLevelEstimator:
    """Cost models + observed-duration EMA -> memoized bottom levels."""

    def __init__(self, metrics=None):
        self.metrics = metrics
        self.gpu_spec = None
        self.cpu_spec = None
        self._memo: dict[int, float] = {}
        self._ema: dict[str, Optional[float]] = {"smp": None, "cuda": None}
        self._folded: dict[str, tuple[int, float]] = {"smp": (0, 0.0),
                                                      "cuda": (0, 0.0)}

    def note_worker(self, worker) -> None:
        """Learn hardware specs from a registering worker (duck-typed: test
        fakes carry neither attribute and fall back to the EMA path)."""
        if self.gpu_spec is None:
            gpu = getattr(worker, "gpu", None)
            if gpu is not None:
                self.gpu_spec = getattr(gpu, "spec", None)
        if self.cpu_spec is None:
            node = getattr(worker, "node", None)
            if node is not None:
                spec = getattr(node, "spec", None)
                if spec is not None:
                    self.cpu_spec = getattr(spec, "cpu", None)

    def refresh(self) -> None:
        """Fold new ``tasks.<kind>.duration`` observations into the EMA."""
        if self.metrics is None:
            return
        for kind in ("smp", "cuda"):
            hist = self.metrics.histogram(f"tasks.{kind}.duration")
            seen_count, seen_total = self._folded[kind]
            if hist.count <= seen_count:
                continue
            batch = (hist.total - seen_total) / (hist.count - seen_count)
            self._folded[kind] = (hist.count, hist.total)
            ema = self._ema[kind]
            self._ema[kind] = batch if ema is None else (
                ema + EMA_ALPHA * (batch - ema))

    def cost(self, task: Task) -> float:
        if task.device == "cuda":
            if task.kernel is not None and self.gpu_spec is not None:
                try:
                    return task.kernel.duration(self.gpu_spec,
                                                **task.cost_kwargs)
                except Exception:
                    pass
            ema = self._ema["cuda"]
        else:
            if self.cpu_spec is not None:
                try:
                    return task.smp_duration(self.cpu_spec)
                except Exception:
                    pass
            ema = self._ema["smp"]
        return ema if ema is not None else NOMINAL_COST

    def bottom_level(self, task: Task) -> float:
        """cost(task) + max over successors of their bottom level, memoized
        by tid; iterative so deep chains (long stream pipelines) don't hit
        the recursion limit."""
        memo = self._memo
        cached = memo.get(task.tid)
        if cached is not None:
            return cached
        # Two-phase postorder: a node is folded only after every successor
        # has been memoized (first pop schedules the children, second pop
        # folds — the graph is a DAG, so this terminates).
        stack = [(task, False)]
        while stack:
            node, ready = stack.pop()
            if node.tid in memo:
                continue
            if ready:
                memo[node.tid] = self.cost(node) + max(
                    (memo[s.tid] for s in node.successors), default=0.0)
                continue
            stack.append((node, True))
            for succ in node.successors:
                if succ.tid not in memo:
                    stack.append((succ, False))
        return memo[task.tid]


class CriticalPathScheduler(Scheduler):
    name = "cp"

    def __init__(self, notify, directory: Directory, steal: bool = True,
                 rr_chunk: int = 1, metrics=None,
                 estimator: Optional[BottomLevelEstimator] = None):
        super().__init__(notify, metrics=metrics)
        self.directory = directory
        self.steal = steal
        self.rr_chunk = max(1, rr_chunk)
        self.estimator = estimator or BottomLevelEstimator(metrics)
        self._local: dict[int, PriorityTaskQueue] = {}
        self._pglobal = PriorityTaskQueue()
        self.stolen = 0
        self._rr = 0

    # -- wiring -----------------------------------------------------------
    def register_worker(self, worker: WorkerProtocol) -> None:
        super().register_worker(worker)
        self.estimator.note_worker(worker)
        self._local[id(worker)] = PriorityTaskQueue()

    def blacklist(self, worker: WorkerProtocol) -> list[Task]:
        stranded = super().blacklist(worker)
        queue = self._local.pop(id(worker), None)
        if queue is not None:
            stranded.extend(queue.drain())
        return stranded

    def rebalance(self, worker: WorkerProtocol) -> list[Task]:
        queue = self._local.get(id(worker))
        if queue is None:
            return []
        return queue.drain()

    def drain_unrunnable(self) -> list[Task]:
        stranded = self.global_queue.drain_unacceptable(self.workers)
        stranded.extend(self._pglobal.drain_unacceptable(self.workers))
        for queue in self._local.values():
            stranded.extend(queue.drain_unacceptable(self.workers))
        return stranded

    # -- placement --------------------------------------------------------
    def task_finished(self, task: Task, worker: WorkerProtocol,
                      newly_ready: list[Task]) -> None:
        # Fold freshly observed durations before pricing the released
        # wavefront: the EMA fallback then tracks the run it is in.
        self.estimator.refresh()
        super().task_finished(task, worker, newly_ready)

    def _place(self, task: Task) -> None:
        priority = self.estimator.bottom_level(task)
        pulls = locality_pulls(self.directory, task)
        best: Optional[WorkerProtocol] = None
        best_score = 0
        if pulls:
            for worker in self.workers:
                if not worker.accepts(task):
                    continue
                score = locality_score(pulls, worker)
                if score > best_score:
                    best, best_score = worker, score
        if best is not None:
            self._local[id(best)].push(task, priority)
            return
        # Same no-affinity dealing as the affinity policy: spread over the
        # node domains so remote nodes see work, slot 0 meaning "keep it on
        # the master" via the (priority) global queue.
        proxies = [w for w in self.workers
                   if w.kind == "node" and w.accepts(task)]
        if proxies:
            domains = len(proxies) + 1
            slot = (self._rr // self.rr_chunk) % domains
            self._rr += 1
            if slot > 0:
                self._local[id(proxies[slot - 1])].push(task, priority)
                return
        self._pglobal.push(task, priority)

    # -- dispatch ---------------------------------------------------------
    def next_task(self, worker: WorkerProtocol) -> Optional[Task]:
        task = self._local[id(worker)].pop_for(worker)
        if task is not None:
            return task
        task = self._pglobal.pop_for(worker)
        if task is not None:
            return task
        if self.steal and worker.kind != "node":
            # Steal the *highest-priority* acceptable head among same-node
            # victims — under a priority policy the urgent task is the one
            # worth migrating, not the coldest.
            node_index = worker.node_index
            best_queue = None
            best_task = None
            best_pri = None
            for other in self.workers:
                if other is worker or other.kind == "node":
                    continue
                if other.node_index != node_index:
                    continue
                queue = self._local[id(other)]
                head = queue.peek_for(worker, 1)
                if not head:
                    continue
                pri = self.estimator.bottom_level(head[0])
                if best_pri is None or pri > best_pri:
                    best_queue, best_task, best_pri = queue, head[0], pri
            if best_queue is not None:
                task = best_queue.pop_for(worker)
                if task is not None:
                    self.stolen += 1
                    if self.metrics is not None:
                        self.metrics.inc("scheduler.steals")
                    return task
        return None

    # -- prestage lookahead ----------------------------------------------
    def peek_for(self, worker: WorkerProtocol, n: int) -> list[Task]:
        """Preview the worker's local priority queue in dispatch order,
        then fill from this proxy's partitioned slice of the (priority)
        global queue."""
        out = self._local[id(worker)].peek_for(worker, n)
        if len(out) < n:
            seen = {t.tid for t in out}
            for t in self._peek_partitioned(worker, n - len(out),
                                            queue=self._pglobal):
                if t.tid not in seen:
                    out.append(t)
        return out[:n]

    @property
    def pending(self) -> int:
        return (len(self.global_queue) + len(self._pglobal)
                + sum(len(q) for q in self._local.values()))
