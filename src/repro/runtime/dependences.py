"""The task dependency graph (paper Section III.C.1).

The runtime maintains a DAG where arcs encode read-after-write,
write-after-read and write-after-write dependences between *sibling* tasks
(dependences never cross the dynamic extent of a task — that restriction is
what makes the hierarchical cluster implementation possible, since a remote
task's children resolve their dependences entirely on the remote node).

Hot-path notes: arc deduplication is a set membership test on task ids
(``Task.successor_ids``) instead of a list scan, the region-shape validation
bisects a per-object sorted interval list instead of scanning every shape
ever seen, and per-region reader lists are compacted of finished tasks once
they grow, so WAR fan-out is bounded by the *live* reader count.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..memory.region import PartialOverlapError, Region, RegionKey
from .task import Task, TaskState

__all__ = ["DependencyGraph"]

#: Reader-list length beyond which finished readers are compacted away.
_READER_COMPACT_THRESHOLD = 16

_shape_key = (lambda r: (r.start, r.end))


@dataclass
class _RegionState:
    """Per-region bookkeeping for arc construction."""

    last_writer: Optional[Task] = None
    readers_since_write: list[Task] = field(default_factory=list)
    #: reader-list length that triggers the next finished-reader compaction
    #: (doubles with the live count, so compaction is amortized O(1)).
    compact_at: int = _READER_COMPACT_THRESHOLD


class DependencyGraph:
    """Sibling-scope dependency tracking for one parent task."""

    def __init__(self, on_ready: Optional[Callable[[Task], None]] = None):
        #: called when a task has no unfinished predecessors.
        self.on_ready = on_ready
        #: optional ``(pred, succ, region, kind, created)`` callback — the
        #: annotation sanitizer's arc-provenance tap.  It fires on *every*
        #: arc attempt (deduplicated ones included, with created=False) so
        #: an arc owed to several regions names all of them; None (the
        #: default) keeps the hot path a single predictable branch.
        self.arc_observer: Optional[Callable] = None
        self._regions: dict[RegionKey, _RegionState] = {}
        #: per object id, the distinct region shapes seen, sorted by start.
        self._shapes: dict[int, list[Region]] = {}
        self._live_tasks: set[int] = set()
        self.tasks_added = 0
        self.arcs_created = 0

    # -- bookkeeping ------------------------------------------------------
    def _check_shape(self, region: Region) -> None:
        """Validate equal-or-disjoint against prior shapes of the object.

        The stored shapes are pairwise disjoint (duplicates never get here:
        known keys short-circuit in :meth:`_state`), so only the two sorted
        neighbours of the insertion point can possibly overlap.
        """
        seen = self._shapes.setdefault(region.obj.oid, [])
        i = bisect_left(seen, (region.start, region.end), key=_shape_key)
        if i < len(seen) and seen[i].key == region.key:
            return  # exact shape already known
        other = None
        if i > 0 and seen[i - 1].end > region.start:
            other = seen[i - 1]
        elif i < len(seen) and region.end > seen[i].start:
            other = seen[i]
        if other is not None:
            raise PartialOverlapError(
                f"dependence region {region!r} partially overlaps "
                f"{other!r}; unsupported (paper Section II.A.3)"
            )
        seen.insert(i, region)

    def _state(self, region: Region) -> _RegionState:
        st = self._regions.get(region.key)
        if st is None:
            self._check_shape(region)
            st = _RegionState()
            self._regions[region.key] = st
        return st

    def _add_arc(self, pred: Task, succ: Task, region: Region,
                 kind: str) -> bool:
        if pred.state is TaskState.FINISHED or pred is succ:
            return False
        created = succ.tid not in pred.successor_ids
        if created:
            pred.successor_ids.add(succ.tid)
            pred.successors.append(succ)
            succ.pending_preds += 1
        if self.arc_observer is not None:
            self.arc_observer(pred, succ, region, kind, created)
        return created

    # -- public protocol ---------------------------------------------------
    def add_task(self, task: Task) -> bool:
        """Register ``task``; returns True when immediately ready."""
        self.tasks_added += 1
        self._live_tasks.add(task.tid)
        for acc in task.accesses:
            st = self._state(acc.region)
            region = acc.region
            if acc.direction.reads and st.last_writer is not None:
                if self._add_arc(st.last_writer, task, region, "raw"):
                    self.arcs_created += 1
            if acc.direction.writes:
                if st.last_writer is not None:
                    if self._add_arc(st.last_writer, task, region, "waw"):
                        self.arcs_created += 1
                for reader in st.readers_since_write:
                    if self._add_arc(reader, task, region, "war"):
                        self.arcs_created += 1
        # Second pass: update per-region state.
        for acc in task.accesses:
            st = self._state(acc.region)
            if acc.direction.writes:
                st.last_writer = task
                st.readers_since_write = []
            else:
                readers = st.readers_since_write
                readers.append(task)
                if len(readers) >= st.compact_at:
                    # Finished readers can never source a WAR arc again
                    # (_add_arc skips them); dropping them here keeps the
                    # next writer's fan-out scan bounded by live readers.
                    st.readers_since_write = [
                        t for t in readers
                        if t.state is not TaskState.FINISHED
                    ]
                    st.compact_at = max(_READER_COMPACT_THRESHOLD,
                                        2 * len(st.readers_since_write))
        if task.pending_preds == 0:
            task.state = TaskState.READY
            if self.on_ready is not None:
                self.on_ready(task)
            return True
        return False

    def task_finished(self, task: Task) -> list[Task]:
        """Mark finished; returns successors that became ready."""
        task.state = TaskState.FINISHED
        self._live_tasks.discard(task.tid)
        newly_ready: list[Task] = []
        for succ in task.successors:
            succ.pending_preds -= 1
            assert succ.pending_preds >= 0, "dependency counting broke"
            if succ.pending_preds == 0 and succ.state is TaskState.CREATED:
                succ.state = TaskState.READY
                newly_ready.append(succ)
        if self.on_ready is not None:
            for t in newly_ready:
                self.on_ready(t)
        return newly_ready

    def last_writer_of(self, region: Region) -> Optional[Task]:
        """Unfinished producer of ``region`` (for taskwait-on)."""
        st = self._regions.get(region.key)
        if st is None or st.last_writer is None:
            return None
        if st.last_writer.state is TaskState.FINISHED:
            return None
        return st.last_writer

    @property
    def live_count(self) -> int:
        return len(self._live_tasks)
