"""The task dependency graph (paper Section III.C.1).

The runtime maintains a DAG where arcs encode read-after-write,
write-after-read and write-after-write dependences between *sibling* tasks
(dependences never cross the dynamic extent of a task — that restriction is
what makes the hierarchical cluster implementation possible, since a remote
task's children resolve their dependences entirely on the remote node).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from ..memory.region import PartialOverlapError, Region, RegionKey, relation
from .task import Direction, Task, TaskState

__all__ = ["DependencyGraph"]


@dataclass
class _RegionState:
    """Per-region bookkeeping for arc construction."""

    last_writer: Optional[Task] = None
    readers_since_write: list[Task] = field(default_factory=list)


class DependencyGraph:
    """Sibling-scope dependency tracking for one parent task."""

    def __init__(self, on_ready: Optional[Callable[[Task], None]] = None):
        #: called when a task has no unfinished predecessors.
        self.on_ready = on_ready
        self._regions: dict[RegionKey, _RegionState] = {}
        self._shapes: dict[int, list[Region]] = {}
        self._live_tasks: set[int] = set()
        self.tasks_added = 0
        self.arcs_created = 0

    # -- bookkeeping ------------------------------------------------------
    def _check_shape(self, region: Region) -> None:
        seen = self._shapes.setdefault(region.obj.oid, [])
        for other in seen:
            if relation(region, other) == "partial":
                raise PartialOverlapError(
                    f"dependence region {region!r} partially overlaps "
                    f"{other!r}; unsupported (paper Section II.A.3)"
                )
        seen.append(region)

    def _state(self, region: Region) -> _RegionState:
        st = self._regions.get(region.key)
        if st is None:
            self._check_shape(region)
            st = _RegionState()
            self._regions[region.key] = st
        return st

    @staticmethod
    def _add_arc(pred: Task, succ: Task) -> bool:
        if pred.state is TaskState.FINISHED or pred is succ:
            return False
        if succ in pred.successors:
            return False
        pred.successors.append(succ)
        succ.pending_preds += 1
        return True

    # -- public protocol ---------------------------------------------------
    def add_task(self, task: Task) -> bool:
        """Register ``task``; returns True when immediately ready."""
        self.tasks_added += 1
        self._live_tasks.add(task.tid)
        for acc in task.accesses:
            st = self._state(acc.region)
            if acc.direction.reads and st.last_writer is not None:
                if self._add_arc(st.last_writer, task):      # RAW
                    self.arcs_created += 1
            if acc.direction.writes:
                if st.last_writer is not None:
                    if self._add_arc(st.last_writer, task):  # WAW
                        self.arcs_created += 1
                for reader in st.readers_since_write:
                    if self._add_arc(reader, task):          # WAR
                        self.arcs_created += 1
        # Second pass: update per-region state.
        for acc in task.accesses:
            st = self._state(acc.region)
            if acc.direction.writes:
                st.last_writer = task
                st.readers_since_write = []
            else:
                st.readers_since_write.append(task)
        if task.pending_preds == 0:
            task.state = TaskState.READY
            if self.on_ready is not None:
                self.on_ready(task)
            return True
        return False

    def task_finished(self, task: Task) -> list[Task]:
        """Mark finished; returns successors that became ready."""
        task.state = TaskState.FINISHED
        self._live_tasks.discard(task.tid)
        newly_ready: list[Task] = []
        for succ in task.successors:
            succ.pending_preds -= 1
            assert succ.pending_preds >= 0, "dependency counting broke"
            if succ.pending_preds == 0 and succ.state is TaskState.CREATED:
                succ.state = TaskState.READY
                newly_ready.append(succ)
        if self.on_ready is not None:
            for t in newly_ready:
                self.on_ready(t)
        return newly_ready

    def last_writer_of(self, region: Region) -> Optional[Task]:
        """Unfinished producer of ``region`` (for taskwait-on)."""
        st = self._regions.get(region.key)
        if st is None or st.last_writer is None:
            return None
        if st.last_writer.state is TaskState.FINISHED:
            return None
        return st.last_writer

    @property
    def live_count(self) -> int:
        return len(self._live_tasks)
