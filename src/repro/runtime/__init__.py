"""Nanos++ reimplementation: the paper's primary contribution.

Task model, dependency graph, three schedulers, coherence engine over the
directory and per-GPU software caches, GPU manager threads, and the cluster
master/slave machinery with presend and slave-to-slave transfers.
"""

from .config import RuntimeConfig, SCHEDULERS
from .coherence import CoherenceEngine
from .dependences import DependencyGraph
from .gpu_manager import GPUManager
from .runtime import Image, Runtime
from .scheduler import (
    AffinityScheduler,
    BreadthFirstScheduler,
    DependencyAwareScheduler,
    Scheduler,
    make_scheduler,
)
from .task import Access, Direction, Task, TaskState
from .trace import TraceEvent, Tracer
from .worker import SMPWorker

__all__ = [
    "Runtime",
    "Image",
    "RuntimeConfig",
    "SCHEDULERS",
    "Task",
    "Access",
    "Direction",
    "TaskState",
    "DependencyGraph",
    "CoherenceEngine",
    "Scheduler",
    "make_scheduler",
    "BreadthFirstScheduler",
    "DependencyAwareScheduler",
    "AffinityScheduler",
    "GPUManager",
    "SMPWorker",
    "Tracer",
    "TraceEvent",
]
