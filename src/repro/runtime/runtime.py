"""The Nanos++ runtime facade: images, spaces, submission, taskwait.

One :class:`Runtime` instance manages a whole execution over a
:class:`~repro.hardware.Machine`.  On a single node there is one *image*
(scheduler + SMP workers + GPU managers); on a cluster the master image
additionally owns the dependency graph, the per-remote-node proxies and the
communication thread, while slave images execute what they are sent — the
paper's hierarchical design.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

import numpy as np

from ..cuda.kernels import KernelRegistry
from ..faults import FaultEngine
from ..gasnet import AMLayer
from ..hardware.cluster import Machine
from ..memory.cache import SoftwareCache
from ..memory.directory import Directory
from ..memory.region import DataObject, Region
from ..memory.space import AddressSpace, DeviceSpace, HostSpace
from ..metrics import CounterRegistry
from ..sim import Environment, Event
from .cluster import CommThread, NodeProxy
from .coherence import CoherenceEngine
from .config import RuntimeConfig
from .datamove import DataMover
from .dependences import DependencyGraph
from .gpu_manager import GPUManager
from .scheduler import make_scheduler
from .task import Task, TaskState
from .worker import SMPWorker

__all__ = ["Runtime", "Image"]


class Image:
    """One runtime image: the per-node scheduler and execution places."""

    def __init__(self, rt: "Runtime", node, is_master: bool):
        self.rt = rt
        self.node = node
        self.is_master = is_master
        self.host_space = rt.host_space(node.index)
        self.scheduler = make_scheduler(
            rt.config.scheduler, rt.notify_work, rt.directory,
            steal=rt.config.steal, rr_chunk=rt.config.rr_chunk,
            metrics=rt.metrics, config=rt.config,
        )
        if hasattr(self.scheduler, "attach_runtime"):
            # The adaptive meta-scheduler reads live runtime signals
            # (tasks_live, link busy, datamove write mode).
            self.scheduler.attach_runtime(rt)
        # Execution places.  Each GPU claims a manager thread; on a cluster
        # master one more core serves communication; the rest run SMP tasks.
        reserved = len(node.gpus) + (1 if (is_master and rt.is_cluster) else 0)
        n_smp = rt.config.smp_workers or max(1, node.spec.cpu.cores - reserved)
        self.smp_workers = [SMPWorker(self, i) for i in range(n_smp)]
        self.gpu_managers = []
        for gpu in node.gpus:
            space = rt.gpu_space(node.index, gpu.index)
            cache = rt.cache_of(space)
            manager = GPUManager(self, gpu, space, cache)
            self.gpu_managers.append(manager)
            rt._managers[id(space)] = manager
        for worker in self.smp_workers + self.gpu_managers:
            self.scheduler.register_worker(worker)
        # Cluster master extras.
        self.proxies: list[NodeProxy] = []
        self.comm_thread: Optional[CommThread] = None
        if is_master and rt.is_cluster:
            self.proxies = [NodeProxy(rt, n.index)
                            for n in rt.machine.nodes[1:]]
            for proxy in self.proxies:
                self.scheduler.register_worker(proxy)
            self.comm_thread = CommThread(self, self.proxies)

    def start(self) -> None:
        env = self.rt.env
        for worker in self.smp_workers:
            env.process(worker.run())
        for manager in self.gpu_managers:
            env.process(manager.run())
        if self.comm_thread is not None:
            env.process(self.comm_thread.run())

    # ------------------------------------------------------------------
    def submit_local(self, task: Task) -> None:
        """Enter a (ready) task into this image's scheduler."""
        self.scheduler.submit(task)

    def run_children(self, parent: Task) -> Event:
        """Execute ``parent``'s decomposition children on this image.

        Children get their own sibling-scope dependency graph (paper
        Section III.C.1: "a hierarchical implementation of the graph") and
        never involve the master.  Returns an event firing when all of them
        have finished.
        """
        children = parent.subtasks()
        done = Event(self.rt.env)
        if not children:
            done.succeed()
            return done
        graph = DependencyGraph()
        sanitizer = self.rt.sanitizer
        if sanitizer is not None:
            graph.arc_observer = sanitizer.note_arc
        parent._child_graph = graph
        parent._children_left = len(children)
        parent._children_done = done
        datamove = self.rt.datamove
        for child in children:
            child.parent = parent
            child.done = self.rt.env.event()
            if sanitizer is not None:
                sanitizer.note_submit(child, parent=parent)
            if datamove is not None:
                datamove.note_submit(child)
            if graph.add_task(child):
                self.submit_local(child)
        return done

    def finish_task(self, task: Task, place) -> None:
        """Called by the executing place when a task's body has committed."""
        if self.rt.sanitizer is not None:
            self.rt.sanitizer.note_task_finish(task)
        if task.parent is not None:
            self._account_child(task, place)
        elif self.is_master:
            self.account_finished(task, place)
        else:
            # Completion notification back to the master (active message).
            self.rt.env.process(self._notify_master(task))

    def _account_child(self, task: Task, place) -> None:
        """Child-task bookkeeping: local graph + parent completion count."""
        if self.rt.datamove is not None:
            self.rt.datamove.note_finish(task)
        parent = task.parent
        newly_ready = parent._child_graph.task_finished(task)
        for t in newly_ready:
            self.submit_local(t)
        if task.done is not None and not task.done.triggered:
            task.done.succeed()
        parent._children_left -= 1
        if parent._children_left == 0:
            parent._children_done.succeed()
        self.rt.notify_work()

    def _notify_master(self, task: Task):
        yield self.rt.am.request(self.node.index, 0, "nanos.task_done",
                                 task, self.node.index)

    def account_finished(self, task: Task, place) -> None:
        """Master-side graph/scheduler bookkeeping for a finished task."""
        rt = self.rt
        if task.state is TaskState.FINISHED:
            # A duplicate completion (a resent acknowledgement, or a task
            # that was re-dispatched during recovery and finished twice)
            # must not double-decrement successor counts in the graph.
            rt.metrics.inc("runtime.duplicate_completions")
            return
        if rt.datamove is not None:
            rt.datamove.note_finish(task)
        newly_ready = rt.graph.task_finished(task)
        self.scheduler.task_finished(task, place, newly_ready)
        rt.tasks_finished += 1
        rt._c_finished.value += 1
        if task.done is not None and not task.done.triggered:
            task.done.succeed()
        rt.notify_completion()


class Runtime:
    """The whole Nanos++ instance for one execution."""

    def __init__(self, machine: Machine,
                 config: Optional[RuntimeConfig] = None,
                 kernel_registry: Optional[KernelRegistry] = None,
                 tracer=None,
                 metrics: Optional[CounterRegistry] = None,
                 sanitizer=None):
        self.machine = machine
        self.env: Environment = machine.env
        self.config = config or RuntimeConfig()
        self.kernel_registry = kernel_registry or KernelRegistry()
        #: optional Tracer recording task/transfer/message spans.  Picked
        #: up from ``repro.runtime.trace.install()`` when not passed
        #: explicitly (the same pattern the sanitizer uses below): span
        #: recording is passive, so traced runs keep identical timestamps.
        if tracer is None:
            from .trace import current_tracer
            tracer = current_tracer()
        self.tracer = tracer
        #: counter registry every subsystem reports into; scoped timers use
        #: the simulation clock.  Always present (recording is cheap); pass
        #: your own to share one registry across runtimes in a sweep.
        self.metrics = (metrics if metrics is not None
                        else CounterRegistry(clock=lambda: self.env.now))
        functional = self.config.functional

        # -- address spaces -------------------------------------------------
        self._host_spaces: list[HostSpace] = []
        self._gpu_spaces: dict[tuple[int, int], DeviceSpace] = {}
        self._caches: dict[int, SoftwareCache] = {}
        self._managers: dict[int, GPUManager] = {}
        for node in machine.nodes:
            host = HostSpace(f"node{node.index}.host", node.index,
                             functional, canonical=(node.index == 0))
            self._host_spaces.append(host)
            for gpu in node.gpus:
                space = DeviceSpace(f"node{node.index}.gpu{gpu.index}",
                                    node.index, gpu.index, functional)
                self._gpu_spaces[(node.index, gpu.index)] = space
                capacity = int(gpu.mem_capacity
                               * self.config.gpu_cache_fraction)
                self._caches[id(space)] = SoftwareCache(
                    space, capacity, self.config.cache_policy,
                    metrics=self.metrics)

        self.directory = Directory(home=self.master_host,
                                   metrics=self.metrics)

        # -- datamove optimisation layer ------------------------------------
        #: the :class:`~repro.runtime.datamove.DataMover`, or None when every
        #: datamove flag is off — the None case constructs nothing, so the
        #: baseline event stream (and the golden makespans) stays
        #: bit-identical.  Must exist before the coherence engine, which
        #: binds it in its own __init__.
        self.datamove: Optional[DataMover] = (
            DataMover(self) if self.config.datamove_enabled else None)
        if (self.datamove is not None
                and self.config.cost_aware_eviction):
            for cache in self._caches.values():
                cache.victim_cost_fn = self.datamove.make_cost_fn(cache)
        # hardware.link.* mirrors (satellite observability): registering is
        # timing-neutral, so it is unconditional.
        for node in machine.nodes:
            node.membus.attach_metrics(self.metrics)
            for link in (node.nic_tx, node.nic_rx):
                if link is not None:
                    link.attach_metrics(self.metrics)
            for gpu in node.gpus:
                gpu.h2d.attach_metrics(self.metrics)
                gpu.d2h.attach_metrics(self.metrics)

        self.coherence = CoherenceEngine(self)
        self.graph = DependencyGraph()

        # -- annotation sanitizer -------------------------------------------
        #: the active :class:`~repro.sanitizer.Sanitizer`, or None.  Picked
        #: up from ``repro.sanitizer.install()`` when not passed explicitly
        #: (lazy import: the sanitizer is an optional layer on top of the
        #: runtime, mirroring how ``fault_plan`` stays duck-typed).  Every
        #: hook below is gated on this attribute and none of them touches
        #: the simulated clock, so a disabled run executes the identical
        #: instruction stream and an enabled run keeps identical timestamps.
        if sanitizer is None:
            from ..sanitizer.core import current_sanitizer
            sanitizer = current_sanitizer()
        self.sanitizer = sanitizer
        if sanitizer is not None:
            sanitizer.attach(self)
            self.graph.arc_observer = sanitizer.note_arc

        # -- cluster fabric ------------------------------------------------------
        self.am: Optional[AMLayer] = None
        if machine.is_cluster:
            self.am = AMLayer(self.env, machine.network,
                              metrics=self.metrics)
            self._register_am_handlers()

        # -- images -------------------------------------------------------------
        self.images = [Image(self, node, is_master=(node.index == 0))
                       for node in machine.nodes]
        self.master_image = self.images[0]

        # -- fault injection ------------------------------------------------
        #: FaultEngine when the config carries a non-empty plan; None
        #: otherwise (an empty plan is treated exactly like no plan, so
        #: fault-free schedules stay bit-identical).
        self.faults = None
        plan = self.config.fault_plan
        if plan is not None and not plan.is_empty:
            self.faults = FaultEngine(self, plan)

        # -- signalling ------------------------------------------------------------
        self.running = False
        self._work_events = {kind: self.env.event()
                             for kind in ("smp", "cuda", "node")}
        self._completion_event = self.env.event()
        #: fired (and cleared) when the graph drains; lazily created by
        #: taskwait so a full barrier costs one wakeup, not one per task.
        self._idle_event: Optional[Event] = None
        # Bound per-task instruments (see CounterRegistry.counter): the
        # submit/finish bookkeeping runs once per task and skips the
        # registry's name lookups.
        self._c_submitted = self.metrics.counter("runtime.tasks_submitted")
        self._c_finished = self.metrics.counter("runtime.tasks_finished")
        self._g_live = self.metrics.gauge("runtime.tasks_live")
        self.tasks_submitted = 0
        self.tasks_finished = 0
        #: cumulative wall-clock spent inside run_main (engine throughput
        #: denominator; see :meth:`run_main`).
        self._wall_seconds = 0.0
        self._started = False

    # ------------------------------------------------------------------
    # Topology helpers
    # ------------------------------------------------------------------
    @property
    def is_cluster(self) -> bool:
        return self.machine.is_cluster

    @property
    def master_host(self) -> HostSpace:
        return self._host_spaces[0]

    def host_space(self, node_index: int) -> HostSpace:
        return self._host_spaces[node_index]

    def gpu_space(self, node_index: int, gpu_index: int) -> DeviceSpace:
        return self._gpu_spaces[(node_index, gpu_index)]

    def cache_of(self, space: AddressSpace) -> Optional[SoftwareCache]:
        return self._caches.get(id(space))

    def all_caches(self) -> list[SoftwareCache]:
        return list(self._caches.values())

    def gpu_manager_of(self, space: AddressSpace) -> GPUManager:
        return self._managers[id(space)]

    def place_of(self, space: AddressSpace):
        manager = self._managers.get(id(space))
        if manager is not None:
            return manager
        return self.images[space.node_index]

    # ------------------------------------------------------------------
    # Lifecycle and signalling
    # ------------------------------------------------------------------
    def start(self) -> "Runtime":
        if self._started:
            return self
        self._started = True
        self.running = True
        for image in self.images:
            image.start()
        if self.faults is not None:
            self.faults.start()
        return self

    def notify_work(self, device: Optional[str] = None) -> None:
        """Wake idle execution places.

        ``device`` narrows the wakeup to the places that could actually run
        the newly ready work (``"smp"`` workers or ``"cuda"`` managers);
        node-proxy waiters accept any task and are woken either way.  A bare
        call (completion, shutdown, fault recovery) wakes everyone — on
        figure workloads the narrow path eliminates the thundering herd of
        idle polls that used to follow every task completion.
        """
        events = self._work_events
        kinds = ("smp", "cuda", "node") if device is None else (device, "node")
        new_event = self.env.event
        for kind in kinds:
            ev = events[kind]
            if ev.callbacks:
                events[kind] = new_event()
                ev.succeed()

    def wait_for_work(self, kind: str = "node") -> Event:
        """Event the next :meth:`notify_work` relevant to ``kind`` fires.
        ``kind`` is the waiter's worker kind; ``"node"`` waiters (proxies,
        the communication thread) wake on every notification."""
        return self._work_events[kind]

    def notify_completion(self) -> None:
        # SMP/GPU places are woken by scheduler.submit when a successor
        # actually becomes ready, so completions don't wake them; node-level
        # waiters (the communication thread) must still see completions —
        # a remote task finishing frees proxy capacity, which can make a
        # long-queued dispatch possible without any new submission.
        ev = self._completion_event
        if ev.callbacks:
            self._completion_event = self.env.event()
            ev.succeed()
        events = self._work_events
        node_ev = events["node"]
        if node_ev.callbacks:
            events["node"] = self.env.event()
            node_ev.succeed()
        if self._idle_event is not None and self.graph.live_count == 0:
            ev, self._idle_event = self._idle_event, None
            ev.succeed()

    def wait_for_completion(self) -> Event:
        return self._completion_event

    # ------------------------------------------------------------------
    # Data registration (the application's shared objects)
    # ------------------------------------------------------------------
    def register_array(self, name: str, num_elements: int,
                       dtype=np.float32,
                       initial: Optional[np.ndarray] = None) -> DataObject:
        obj = DataObject(name=name, num_elements=num_elements, dtype=dtype)
        self.master_host.register_object(obj, initial=initial)
        # The directory learns about regions lazily, at the granularity tasks
        # actually use (whole-object entries here would conflict with tiles).
        return obj

    def read_array(self, obj: DataObject) -> np.ndarray:
        """The canonical (master host) contents — call after a flushing
        taskwait, otherwise the data may still live on a device."""
        return self.master_host.object_array(obj)

    # ------------------------------------------------------------------
    # Task submission / synchronization (the compiler-facing API)
    # ------------------------------------------------------------------
    def submit(self, task: Task) -> Task:
        if not self._started:
            self.start()
        task.done = self.env.event()
        self.tasks_submitted += 1
        self._c_submitted.value += 1
        if self.sanitizer is not None:
            self.sanitizer.note_submit(task)
        if self.datamove is not None:
            self.datamove.note_submit(task)
        ready = self.graph.add_task(task)
        self._g_live.set(self.graph.live_count)
        if ready:
            self.master_image.submit_local(task)
        return task

    def taskwait(self, noflush: bool = False):
        """Process generator: block until all submitted tasks finished;
        unless ``noflush``, also make host data current (paper's taskwait
        vs ``taskwait noflush``)."""
        while self.graph.live_count > 0:
            # A full barrier sleeps on the graph-drained event: one wakeup
            # when the last task commits instead of one per completion.
            if self._idle_event is None:
                self._idle_event = self.env.event()
            yield self._idle_event
        if not noflush:
            yield from self.coherence.flush()
        if self.sanitizer is not None:
            self.sanitizer.note_taskwait()

    def taskwait_on(self, regions: list[Region], noflush: bool = False):
        """Process generator: the ``taskwait on(...)`` construct — wait only
        for the producers of ``regions``."""
        producers = []
        for region in regions:
            producer = self.graph.last_writer_of(region)
            if producer is not None and producer.done is not None:
                producers.append(producer.done)
        if producers:
            yield self.env.all_of(producers)
        if not noflush:
            yield from self.coherence.flush(regions)
        if self.sanitizer is not None:
            self.sanitizer.note_taskwait_on(regions)

    def run_main(self, main_generator) -> float:
        """Execute a main program (a generator using submit/taskwait) to
        completion; returns the simulated makespan in seconds.

        Engine throughput is recorded in the metrics registry under
        ``engine.events_processed``, ``engine.wall_seconds`` and
        ``engine.events_per_wall_second`` (gauges, cumulative over every
        ``run_main`` call on this runtime) — the number reported by
        ``BENCH_core.json`` and the CI perf gate.
        """
        self.start()
        start = self.env.now
        events_before = self.env.events_processed
        wall_start = time.perf_counter()
        proc = self.env.process(main_generator)
        self.env.run(until=proc)
        wall = time.perf_counter() - wall_start
        events = self.env.events_processed - events_before
        self._wall_seconds += wall
        m = self.metrics
        for cache in self._caches.values():
            m.set_gauge(f"cache.{cache.space.name}.hit_rate",
                        cache.hit_rate)
        m.set_gauge("engine.events_processed", self.env.events_processed)
        m.set_gauge("engine.wall_seconds", self._wall_seconds)
        if self._wall_seconds > 0:
            m.set_gauge("engine.events_per_wall_second",
                        self.env.events_processed / self._wall_seconds)
        return self.env.now - start

    # ------------------------------------------------------------------
    # Cluster AM handlers
    # ------------------------------------------------------------------
    def _register_am_handlers(self) -> None:
        assert self.am is not None
        for endpoint in self.am.endpoints:
            endpoint.register("nanos.region_data", self._h_region_data)
            endpoint.register("nanos.region_data_multi",
                              self._h_region_data_multi)
            endpoint.register("nanos.run_task", self._h_run_task)
            endpoint.register("nanos.run_tasks", self._h_run_tasks)
            if endpoint.node_index == 0:
                endpoint.register("nanos.task_done", self._h_task_done)

    def _h_region_data(self, src: int, region: Region,
                       src_space: AddressSpace,
                       dst_space: AddressSpace) -> None:
        """Bulk region payload arriving at ``dst_space``'s node."""
        if self.config.functional:
            dst_space.write(region, src_space.read(region))

    def _h_region_data_multi(self, src: int, regions: "list[Region]",
                             src_space: AddressSpace,
                             dst_space: AddressSpace) -> None:
        """A coalesced bulk payload: several regions in one long AM."""
        if self.config.functional:
            for region in regions:
                dst_space.write(region, src_space.read(region))

    def _h_run_task(self, src: int, task: Task):
        """Control message: execute ``task`` on this image."""
        self._accept_dispatch(self.images[task.node_index], task)

    def _h_run_tasks(self, src: int, tasks: "list[Task]") -> None:
        """A coalesced control message: start several staged tasks."""
        for task in tasks:
            self._accept_dispatch(self.images[task.node_index], task)

    def _accept_dispatch(self, image: Image, task: Task) -> None:
        """Enter a dispatched task into the target image's scheduler.

        A dispatch can race a device loss: the master sent the task while
        every worker on the target node that could run it was dying.  The
        loss-time drains (blacklist / rebalance) can't see a task that is
        still on the wire, so an arrival nobody accepts must bounce back
        to the master or it would sit in the dead node's queue forever.
        """
        if (self.faults is not None and not image.is_master
                and not any(w.accepts(task)
                            for w in image.scheduler.workers)):
            self.faults.return_to_master(task, image.node.index)
            return
        image.submit_local(task)

    def _h_task_done(self, src: int, task: Task, node_index: int) -> None:
        """Completion message arriving back at the master."""
        self.master_image.comm_thread.on_remote_complete(task, node_index)
