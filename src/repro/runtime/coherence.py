"""Coherence layer: keeping region copies consistent across address spaces.

Paper Section III.C.3: before a task executes, the coherence support ensures
an up-to-date copy of its data is available in the executing address space.
The directory knows who holds the current version; per-GPU software caches
track residency, dirtiness and LRU victims; this engine resolves the physical
transfer paths and charges their simulated time:

* host <-> GPU: DMA through the GPU's PCIe engines (pageable on the null
  stream without overlap; pinned staging + copy stream with overlap);
* GPU <-> GPU (same node): through host memory (CUDA 3.2 has no peer DMA);
* node <-> node: GASNet long active messages, routed directly slave-to-slave
  or indirectly through the master depending on configuration (Fig. 9).

Concurrent fetches of the same region to the same space are deduplicated via
an in-flight table, and multi-leg paths record the intermediate host copy in
the directory (it genuinely holds the data afterwards).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..faults.errors import RegionLostError
from ..memory.cache import CachePolicy, SoftwareCache
from ..memory.region import Region
from ..memory.space import AddressSpace, DeviceSpace, HostSpace
from ..sim import Event
from .task import Task

if TYPE_CHECKING:  # pragma: no cover
    from .runtime import Runtime

__all__ = ["CoherenceEngine"]


class CoherenceEngine:
    """Transfer-path resolution + cache/directory orchestration."""

    def __init__(self, runtime: "Runtime"):
        self.rt = runtime
        self.env = runtime.env
        self.directory = runtime.directory
        self.config = runtime.config
        #: the datamove optimisation layer, or None (all flags off) — the
        #: None case must execute the byte-identical historical paths.
        self.datamove = runtime.datamove
        #: (space id, region key, version) -> completion event of the fetch.
        self._inflight: dict[tuple[int, tuple, int], Event] = {}
        #: per-link bound counter pairs (the f-string names are built and
        #: resolved once per link, not once per transfer leg).
        self._leg_counters: dict[str, tuple] = {}
        metrics = runtime.metrics
        self._c_transfers = metrics.counter("coherence.transfers")
        self._c_bytes = metrics.counter("coherence.bytes_transferred")
        # statistics
        self.transfers = 0
        self.bytes_transferred = 0
        self.dedup_hits = 0

    def _count_leg(self, link: str, nbytes: int) -> None:
        """One physical transfer leg: totals plus per-link accounting.
        ``link`` uses the tracer's place labels (``net:0->1``,
        ``link:node0.host->node0.gpu0``) so counters and timelines line up."""
        self.transfers += 1
        self.bytes_transferred += nbytes
        counters = self._leg_counters.get(link)
        if counters is None:
            metrics = self.rt.metrics
            counters = self._leg_counters[link] = (
                metrics.counter(f"link.{link}.transfers"),
                metrics.counter(f"link.{link}.bytes"),
            )
        self._c_transfers.value += 1
        self._c_bytes.value += nbytes
        counters[0].value += 1
        counters[1].value += nbytes

    # ------------------------------------------------------------------
    # Task-level protocol
    # ------------------------------------------------------------------
    def stage_in(self, task: Task, place) -> "object":
        """Process generator: make every copy-clause region of ``task``
        available (and pinned) in ``place.space`` before execution."""
        copy_accs = task.copy_accesses
        if not copy_accs:
            # No copy semantics: the task runs against whatever shared
            # memory the place can reach (paper Section II.A.3: SMP tasks
            # without copy clauses see host data as-is).
            return
            yield  # pragma: no cover - generator marker
        cache: Optional[SoftwareCache] = getattr(place, "cache", None)
        space: AddressSpace = place.space
        sanitizer = self.rt.sanitizer
        directory = self.directory
        needed = []
        for acc in copy_accs:
            if cache is not None:
                yield from self._allocate_and_pin(acc.region, cache)
            if acc.direction.reads:
                # Already-current inputs (cache hits, re-reads of a tile
                # this device produced) spawn no fetch process at all —
                # on figure workloads that is most of them.
                if not directory.is_current(acc.region, space):
                    if sanitizer is not None:
                        # A real input transfer is about to happen —
                        # remembered so an unused input clause can report
                        # the wasted bytes.
                        sanitizer.note_stage_in(task, acc.region)
                    needed.append(acc.region)
            elif self.config.functional and cache is not None:
                # Output-only on a device: materialize a writable buffer.
                space.writable(acc.region)
        if len(needed) == 1:
            # Single missing input: run the fetch inline in this process
            # instead of spawning (and immediately joining) a child.
            yield from self._fetch(needed[0], space, place)
        elif needed:
            yield self.env.all_of([
                self.env.process(self._fetch(region, space, place))
                for region in needed
            ])

    def commit_outputs(self, task: Task, place) -> "object":
        """Process generator: publish the task's writes per cache policy."""
        copy_accs = task.copy_accesses
        if not copy_accs:
            return
            yield  # pragma: no cover - generator marker
        cache: Optional[SoftwareCache] = getattr(place, "cache", None)
        space: AddressSpace = place.space
        written = [a for a in copy_accs if a.direction.writes]
        faults = self.rt.faults
        if faults is not None:
            # Cleared until the directory flip below: the executing place
            # checks it after a device loss to tell a torn commit (requeue
            # the task) from a completed one (the task really finished).
            task._committed = False
        protect = (faults is not None and cache is not None
                   and faults.plan.protect_outputs)
        host = self.rt.host_space(space.node_index)
        if protect:
            # Checkpoint-on-commit, data first: host memory receives the
            # new bytes *before* the directory flips to the new version,
            # so there is no instant at which the sole current copy lives
            # on the device — a loss mid-commit either leaves the old
            # version (with its holders) intact, or finds the new one
            # already salvaged below.  The legs complete even if the
            # device fails under them: functional buffers survive a
            # failure exactly so in-flight DMA can drain (see
            # AddressSpace.failed).
            for acc in written:
                yield from self._move_leg(acc.region, space, host, place)
        lost = faults is not None and space.failed
        if lost and not protect:
            # Unprotected torn commit: the outputs died with the device
            # and were never published.  Leave the old version (still
            # recorded elsewhere) as current; the caller re-executes.
            return
        sanitizer = self.rt.sanitizer
        for acc in written:
            owner = host if (lost and protect) else space
            self.directory.record_write(acc.region, owner, producer=task)
            if sanitizer is not None:
                sanitizer.note_commit(task, acc.region, self.env.now)
            if protect and not lost:
                self.directory.record_copy(acc.region, host)
            if faults is not None:
                faults.notify_write(acc.region)
            if cache is not None and not lost:
                if protect:
                    # Host already holds the new version: the entry is
                    # born clean, nothing to write back on eviction.
                    cache.mark_clean(acc.region)
                else:
                    cache.mark_dirty(acc.region)
        if faults is not None:
            task._committed = True
        if self.datamove is not None:
            # Publish point passed: the task's writes install in the
            # liveness tables and it stops counting as a live reader or
            # overwriter — *before* the elision decisions below, so its
            # own fresh version is never judged dead by its own write
            # entry.  A torn commit returns above without reaching this,
            # keeping the re-executed task's sequence entries intact.
            self.datamove.note_commit(task)
        if cache is None or lost:
            return
        policy = self.config.cache_policy
        dm = self.datamove
        if dm is not None and dm.write_mode is not None:
            # The adaptive layer switched write modes mid-run (see
            # DataMover.set_write_mode); later commits honor the override.
            policy = dm.write_mode
        if policy is CachePolicy.WRITE_THROUGH:
            # Propagate every write to host memory immediately — unless the
            # version is already dead (a live task will overwrite it and
            # nobody reads it): then the write-through is elided and the
            # entry stays dirty, exactly as write-back would keep it.
            for acc in written:
                if dm is not None and dm.may_elide_writeback(acc.region):
                    dm.count_elision(acc.region)
                else:
                    yield from self._writeback(acc.region, space, cache,
                                               place)
        elif policy is CachePolicy.NO_CACHE:
            # Move data out always: write back outputs, then drop everything
            # the task touched so nothing is reused.  Dead versions skip
            # the write-back and are dropped as deliberate discards.
            elided: set = set()
            for acc in written:
                if dm is not None and dm.may_elide_writeback(acc.region):
                    dm.count_elision(acc.region)
                    cache.clear_dirty(acc.region)
                    elided.add(acc.region.key)
                else:
                    yield from self._writeback(acc.region, space, cache,
                                               place)
            for acc in copy_accs:
                self._safe_unpin(acc.region, cache, faults)
                ent = cache.entry_or_none(acc.region)
                if ent is not None and ent.pin_count == 0:
                    self._drop_entry(acc.region, space, cache,
                                     dead=acc.region.key in elided)
            return
        # WB / WT: just unpin; entries stay resident.
        for acc in copy_accs:
            self._safe_unpin(acc.region, cache, faults)

    @staticmethod
    def _safe_unpin(region: Region, cache: SoftwareCache, faults) -> None:
        """Unpin, tolerating (in fault mode only) an entry that a device
        loss invalidated while the commit's writebacks were in flight."""
        if faults is not None:
            ent = cache.entry_or_none(region)
            if ent is None or ent.pin_count <= 0:
                return
        cache.unpin(region)

    # ------------------------------------------------------------------
    # Flushes (taskwait / OpenMP flush semantics)
    # ------------------------------------------------------------------
    def flush(self, regions: Optional[list[Region]] = None) -> "object":
        """Process generator: make the master host copy of each region
        current (all of them when ``regions`` is None)."""
        home = self.rt.master_host
        targets = self.directory.all_regions() if regions is None else regions
        moves = []
        for region in targets:
            if not self.directory.is_current(region, home):
                moves.append(self.env.process(
                    self._fetch(region, home, place=None)))
        if moves:
            yield self.env.all_of(moves)
        # Data written back is now clean in whichever caches hold it.
        for region in targets:
            for cache in self.rt.all_caches():
                if cache.has(region):
                    cache.mark_clean(region)

    # ------------------------------------------------------------------
    # Cache allocation / eviction
    # ------------------------------------------------------------------
    def _allocate_and_pin(self, region: Region, cache: SoftwareCache):
        """Make room for + pin ``region`` in ``cache`` (evicting LRU)."""
        # Record the access: resident = hit (no allocation work), absent =
        # miss (evict until it fits).  This is the hit/miss statistic the
        # cache-policy ablations report.
        cache.lookup(region)
        while not cache.has(region):
            victims = cache.choose_victims(region.nbytes)
            if not victims:
                cache.insert(region)
                break
            for victim in victims:
                # The victim may have been evicted by a concurrent staging
                # while we were writing a previous one back.
                if not cache.has(victim.region):
                    continue
                yield from self._evict(victim.region, cache)
        cache.pin(region)

    def _evict(self, region: Region, cache: SoftwareCache):
        space = cache.space
        ent = cache.entry_or_none(region)
        if ent is None or ent.pin_count > 0:
            return
        dead = False
        if ent.dirty:
            dm = self.datamove
            if dm is not None and dm.may_elide_writeback(region):
                # Dead version: a live task will overwrite it and no live
                # task reads it — drop without moving a byte to the host.
                dm.count_elision(region)
                cache.clear_dirty(region)
                dead = True
            else:
                yield from self._writeback(region, space, cache,
                                           place=self.rt.place_of(space))
        ent = cache.entry_or_none(region)
        if ent is not None and ent.pin_count == 0:
            self._drop_entry(region, space, cache, dead=dead)

    def _drop_entry(self, region: Region, space: AddressSpace,
                    cache: SoftwareCache, dead: bool = False) -> None:
        cache.remove(region)
        if self.directory.is_current(region, space):
            if dead:
                self.directory.record_discard(region, space)
            else:
                self.directory.record_drop(region, space)
        space.drop(region)

    def _writeback(self, region: Region, space: AddressSpace,
                   cache: SoftwareCache, place):
        """Copy a (possibly dirty) region from a device to its node host."""
        host = self.rt.host_space(space.node_index)
        if not self.directory.is_current(region, host):
            yield from self._move_leg(region, space, host, place)
            self.directory.record_copy(region, host)
        cache.mark_clean(region)

    # ------------------------------------------------------------------
    # Fetch path resolution
    # ------------------------------------------------------------------
    def fetch(self, region: Region, dst: AddressSpace, place=None):
        """Public alias of :meth:`_fetch` for the cluster layer."""
        yield from self._fetch(region, dst, place)

    def _fetch(self, region: Region, dst: AddressSpace, place):
        """Process generator: bring the current version of ``region`` to
        ``dst`` (directory updated; in-flight fetches deduplicated)."""
        if self.directory.is_current(region, dst):
            return
        version = self.directory.version(region)
        key = (id(dst), region.key, version)
        pending = self._inflight.get(key)
        if pending is not None:
            self.dedup_hits += 1
            self.rt.metrics.inc("coherence.dedup_hits")
            yield pending
            return
        done = Event(self.env)
        self._inflight[key] = done
        try:
            try:
                yield from self._fetch_path(region, dst, place)
            except RegionLostError:
                # Every copy died with a device; if the fault engine is
                # replaying the producer, wait for the restored version
                # and retry the path — otherwise the loss is fatal.
                restore = (self.rt.faults.wait_restored(region)
                           if self.rt.faults is not None else None)
                if restore is None:
                    raise
                self.rt.metrics.inc("coherence.lost_region_waits")
                yield restore
                yield from self._fetch_path(region, dst, place)
            if not dst.failed:
                self.directory.record_copy(region, dst)
        finally:
            del self._inflight[key]
            done.succeed()

    def _pick_source(self, region: Region, dst: AddressSpace) -> AddressSpace:
        holders = self.directory.holders(region)
        if not holders:
            raise RegionLostError(f"no holder for {region!r}")
        # Deterministic tie-breaks: frozenset iteration order is id-based,
        # and process address layout (ASLR) makes it vary *per process* —
        # any workload with genuinely ambiguous multi-holder reads (e.g.
        # Cholesky panel broadcasts) would otherwise pick different
        # sources, and therefore different makespans, on every run.  The
        # historical figure workloads never hit an ambiguous choice, so
        # sorting keeps their golden makespans bit-identical.
        holders = sorted(holders, key=lambda s: s.name)
        same_node = [s for s in holders if s.node_index == dst.node_index]
        for s in same_node:
            if s.kind == "host":
                return s
        if same_node:
            return same_node[0]
        # Remote: prefer a host copy; prefer the master among hosts.
        hosts = [s for s in holders if s.kind == "host"]
        if hosts:
            masters = [s for s in hosts if s.node_index == 0]
            return masters[0] if masters else hosts[0]
        return next(iter(holders))

    def _fetch_path(self, region: Region, dst: AddressSpace, place):
        src = self._pick_source(region, dst)
        if src.node_index == dst.node_index:
            if src.kind == "gpu" and dst.kind == "gpu":
                # Through host memory (no peer-to-peer DMA in CUDA 3.2).
                # Recursing through _fetch deduplicates the drain leg when
                # several consumers pull the same producer copy at once.
                host = self.rt.host_space(src.node_index)
                yield from self._fetch(region, host, self.rt.place_of(src))
                yield from self._move_leg(region, host, dst, place)
            else:
                yield from self._move_leg(region, src, dst, place)
            return
        # Cross-node path: secure a host-level copy on the source node
        # (dedup'd), wire it over, then descend to the device if needed.
        if src.kind == "gpu":
            src_host = self.rt.host_space(src.node_index)
            yield from self._fetch(region, src_host,
                                   self.rt.place_of(src))
            src = src_host
        dst_host = self.rt.host_space(dst.node_index)
        if src is not dst_host:
            if dst is not dst_host:
                # Let the host-level fetch dedup across this node's
                # consumers, then do the local PCIe leg.
                yield from self._fetch(region, dst_host, place)
            else:
                yield from self._wire(region, src, dst_host)
        if dst is not dst_host:
            yield from self._move_leg(region, dst_host, dst, place)

    def _wire(self, region: Region, src_host: AddressSpace,
              dst_host: AddressSpace):
        """Node-to-node leg, honoring the MtoS/StoS configuration."""
        src_n, dst_n = src_host.node_index, dst_host.node_index
        direct = (self.config.slave_to_slave
                  or src_n == 0 or dst_n == 0)
        if direct:
            yield from self._net_copy(region, src_host, dst_host)
            return
        # Master-routed: slave -> master -> slave (two wire legs through the
        # master's NIC ports, which is exactly the Fig. 9 bottleneck).
        master = self.rt.master_host
        if not self.directory.is_current(region, master):
            yield from self._net_copy(region, src_host, master)
            self.directory.record_copy(region, master)
        yield from self._net_copy(region, master, dst_host)

    # ------------------------------------------------------------------
    # Physical legs
    # ------------------------------------------------------------------
    def _net_copy(self, region: Region, src: AddressSpace,
                  dst: AddressSpace):
        dm = self.datamove
        if dm is not None and dm.coalescer is not None:
            key = ("net", src.node_index, dst.node_index)
            yield from dm.coalescer.submit(
                key, region,
                lambda regions: self._issue_net(regions, src, dst))
            return
        yield from self._issue_net([region], src, dst)

    def _issue_net(self, regions: list[Region], src: AddressSpace,
                   dst: AddressSpace):
        """One wire transfer carrying ``regions`` (one region = the
        historical solo message; several = a fused AM payload paying one
        latency + handler overhead for the summed bytes)."""
        am = self.rt.am
        assert am is not None, "network leg without a cluster fabric"
        start = self.env.now
        total = sum(r.nbytes for r in regions)
        if len(regions) == 1:
            yield am.request(src.node_index, dst.node_index,
                             "nanos.region_data", regions[0], src, dst,
                             payload_bytes=total)
        else:
            yield am.request(src.node_index, dst.node_index,
                             "nanos.region_data_multi", list(regions), src,
                             dst, payload_bytes=total, fused=len(regions))
            nic_tx = self.rt.machine.nodes[src.node_index].nic_tx
            if nic_tx is not None:
                nic_tx.count_fused(len(regions))
        link = f"net:{src.node_index}->{dst.node_index}"
        for region in regions:
            self._count_leg(link, region.nbytes)
            if self.rt.tracer is not None:
                self.rt.tracer.record("transfer", region.obj.name, link,
                                      start, self.env.now,
                                      nbytes=region.nbytes)

    def _move_leg(self, region: Region, src: AddressSpace,
                  dst: AddressSpace, place):
        """Same-node leg: host<->GPU DMA (or a pure host copy)."""
        if src is dst:
            return
        start = self.env.now
        if src.kind == "host" and dst.kind == "host":
            node = self.rt.machine.nodes[src.node_index]
            yield from node.host_copy(region.nbytes)
        else:
            gpu_space = dst if dst.kind == "gpu" else src
            direction = "h2d" if dst.kind == "gpu" else "d2h"
            manager = self.rt.gpu_manager_of(gpu_space)
            dm = self.datamove
            if dm is not None and dm.coalescer is not None:
                key = ("dma", id(manager), direction)
                yield from dm.coalescer.submit(
                    key, region,
                    lambda regions: manager.dma_fused(
                        [r.nbytes for r in regions], direction))
            else:
                yield from manager.dma(region.nbytes, direction)
        if self.config.functional:
            dst.write(region, src.read(region))
        link = f"link:{src.name}->{dst.name}"
        self._count_leg(link, region.nbytes)
        if self.rt.tracer is not None:
            self.rt.tracer.record("transfer", region.obj.name, link,
                                  start, self.env.now,
                                  nbytes=region.nbytes)
