"""Tasks and their data accesses (paper Section II.A.3).

A task carries dependence/copy clauses (``input`` / ``output`` / ``inout``
regions), a device constraint from the ``target`` construct, an execution
cost description, and — in functional mode — a body to run on the buffers of
whichever address space executes it.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable, Optional

from ..cuda.kernels import KernelSpec
from ..memory.region import Region

__all__ = ["Direction", "Access", "Task", "TaskState"]

_task_ids = itertools.count(1)


class Direction(Enum):
    IN = "input"
    OUT = "output"
    INOUT = "inout"


# ``reads``/``writes`` are plain member attributes rather than properties:
# clause checks run per access on every graph insertion, stage-in and
# commit, and a property call was measurable there.
Direction.IN.reads, Direction.IN.writes = True, False
Direction.OUT.reads, Direction.OUT.writes = False, True
Direction.INOUT.reads, Direction.INOUT.writes = True, True


@dataclass(frozen=True)
class Access:
    """One dependence clause entry: a region and its direction."""

    region: Region
    direction: Direction

    def __repr__(self) -> str:
        return f"<{self.direction.value} {self.region!r}>"


class TaskState(Enum):
    CREATED = "created"
    READY = "ready"
    RUNNING = "running"
    FINISHED = "finished"


@dataclass
class Task:
    """A unit of deferred work, as produced by the ``task`` construct."""

    name: str
    accesses: tuple[Access, ...] = ()
    #: target device kind: "smp" or "cuda" (paper's device clause).
    device: str = "smp"
    #: cost of a cuda task: a KernelSpec evaluated on the executing GPU.
    kernel: Optional[KernelSpec] = None
    #: kwargs for the kernel cost model.
    cost_kwargs: dict = field(default_factory=dict)
    #: cost of an smp task in seconds (constant, or callable of CPUSpec).
    smp_cost: "float | Callable" = 0.0
    #: functional body (smp tasks); cuda tasks use ``kernel.func``.
    func: Optional[Callable] = None
    #: argument list: Region placeholders are replaced by buffers at run time.
    args: tuple = ()
    #: whether dependence clauses also have copy semantics (copy_deps).
    copy_deps: bool = True
    #: explicit copy clauses (target's copy_in/copy_out/copy_inout): used
    #: when copy_deps is off, or in addition to it for extra regions the
    #: task touches without a dependence.
    copies: tuple[Access, ...] = ()
    parent: "Task | None" = None
    #: optional data-decomposition hook (paper Section III.D.1: "tasks
    #: executed in a remote node can create new tasks"): called after the
    #: body runs, returns child tasks executed *locally* on the same image
    #: with their own sibling-scope dependency graph; the parent completes
    #: (for its own siblings) once all children have.
    subtasks: Optional[Callable[[], list]] = None
    tid: int = field(default_factory=lambda: next(_task_ids))

    # -- runtime state (owned by the dependency graph / scheduler) -------
    state: TaskState = TaskState.CREATED
    #: predecessors not yet finished.
    pending_preds: int = 0
    #: tasks whose dependences include this one.
    successors: list = field(default_factory=list)
    #: tids mirrored from ``successors`` for O(1) arc deduplication.
    successor_ids: set = field(default_factory=set, repr=False)
    #: the execution place chosen by the scheduler (worker object).
    assigned_to: Any = None
    #: completion event, set when the runtime registers the task.
    done: Any = None
    #: node index the task has been dispatched to (cluster layer).
    node_index: Optional[int] = None
    #: re-execution count under fault injection (bounded by
    #: ``FaultPlan.max_task_retries``).
    retries: int = 0

    def __post_init__(self):
        if self.device not in ("smp", "cuda"):
            raise ValueError(f"unsupported device {self.device!r}")
        if self.device == "cuda" and self.kernel is None:
            raise ValueError(f"cuda task {self.name!r} needs a kernel")
        seen: dict = {}
        for acc in self.accesses:
            prev = seen.get(acc.region.key)
            if prev is not None:
                raise ValueError(
                    f"task {self.name!r} names region {acc.region!r} twice "
                    f"({prev.direction.value} and {acc.direction.value}); "
                    "merge into a single inout clause"
                )
            seen[acc.region.key] = acc

    # -- clause views ------------------------------------------------------
    @property
    def inputs(self) -> list[Access]:
        return [a for a in self.accesses if a.direction.reads]

    @property
    def outputs(self) -> list[Access]:
        return [a for a in self.accesses if a.direction.writes]

    @property
    def copy_accesses(self) -> tuple[Access, ...]:
        """The regions the coherence layer must make available/publish:
        the dependence clauses (under copy_deps) plus explicit copies."""
        base = self.accesses if self.copy_deps else ()
        if not self.copies:
            return base
        seen = {a.region.key for a in base}
        return base + tuple(c for c in self.copies
                            if c.region.key not in seen)

    @property
    def footprint_bytes(self) -> int:
        return sum(a.region.nbytes for a in self.accesses)

    def smp_duration(self, cpu_spec) -> float:
        if callable(self.smp_cost):
            return self.smp_cost(cpu_spec)
        return float(self.smp_cost)

    def __repr__(self) -> str:
        return f"<Task #{self.tid} {self.name!r} {self.device} {self.state.value}>"
