"""The data-movement optimisation layer (``RuntimeConfig`` datamove flags).

The paper's headline results come from *hiding* data movement: the software
cache, master-to-slave presend, and transfer/compute overlap.  This module
adds four mechanisms on top of the baseline protocol, each gated by its own
``RuntimeConfig`` flag and each a no-op when disabled (with every flag off
the runtime constructs no :class:`DataMover` at all, so the event stream —
and therefore every golden makespan — is bit-identical):

* **write-back elision** (``wb_elision``) — :class:`LivenessTracker` orders
  accesses per region by write sequence.  A dirty *version* whose remaining
  readers have all finished and whose next writer is a live pure-output copy
  access is *dead*: evicting it (or committing it under write-through /
  no-cache) skips the host write-back entirely.  The
  directory records the deliberate hole (:meth:`Directory.record_discard`)
  so invariant checks and fault recovery can tell it from data loss.

* **transfer coalescing** (``coalescing``) — :class:`TransferCoalescer`
  groups region transfers headed for the same channel (one NIC direction,
  one GPU DMA direction, or the master dispatch control path).  An idle
  channel sends immediately — no added latency — but while the channel is
  busy, arrivals collect for ``coalesce_window`` simulated seconds and then
  issue as one fused payload: one latency + per-message overhead charge,
  summed bandwidth.  Fused vs solo transfers are distinguished in metrics.

* **presend pipelining** (``presend_depth``) — the cluster master's
  communication thread peeks ``presend_depth`` tasks ahead in the affinity
  queues (beyond the dispatch credit window) and prestages their inputs at
  the target node, so slaves compute task *k* while the data of tasks
  *k+1..k+depth* is in flight.

* **cost-aware eviction** (``cost_aware_eviction``) — :meth:`make_cost_fn`
  gives each software cache a re-fetch cost estimator (bytes over the
  source link bandwidth, plus the write-back a dirty victim would cost);
  the cache evicts cheapest-to-refetch first within a widened LRU window.

Everything here is bookkeeping: no method schedules simulated events except
the coalescer's window timer, which only exists while a fused batch is
forming.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from ..memory.cache import CachePolicy
from ..memory.region import Region, RegionKey
from ..sim import Event

if TYPE_CHECKING:  # pragma: no cover
    from ..memory.cache import CacheEntry, SoftwareCache
    from ..memory.space import AddressSpace
    from .runtime import Runtime
    from .task import Task

__all__ = ["DataMover", "LivenessTracker", "TransferCoalescer"]


class LivenessTracker:
    """Version-aware liveness: which region versions can still be read.

    Region-level reader *counts* are useless for elision: a program that
    submits all its iterations up front (STREAM, matmul) always has live
    future readers of every region — but those readers consume future
    versions, not the one sitting dirty in a cache now.  The tracker
    therefore orders accesses by a per-region **write sequence**: every
    writer submitted bumps the sequence, a reader consumes the state after
    the writers submitted before it, and commits (which happen in sequence
    order, enforced by the dependency graph's RAW/WAR/WAW arcs) advance an
    *installed* pointer.

    The installed version ``s`` of a region is **dead** when:

    * the next live writer ``w1`` (the lowest uncommitted write sequence
      above ``s``) is a *pure copy overwriter* — a publish-through-commit
      access that writes without reading, so it replaces the bytes without
      ever observing them; and
    * no unfinished reader consumes the installed version — i.e. no live
      task holds a read sequence in ``[s, w1)``.

    Submission order is program order (OmpSs tasks are created by one
    sequential main), which is what makes the sequence attribution exact.
    """

    __slots__ = ("_wseq", "_installed", "_live")

    def __init__(self):
        #: last assigned write sequence per region (0 = registration state)
        self._wseq: dict[RegionKey, int] = {}
        #: write sequence of the currently committed (installed) version
        self._installed: dict[RegionKey, int] = {}
        #: key -> {tid: (read_seq | None, write_seq | None, pure_copy)}
        self._live: dict[RegionKey, dict[int, tuple]] = {}

    def task_submitted(self, task: "Task") -> None:
        # Merge the dependence and copy clauses into one direction per key.
        info: dict[RegionKey, list] = {}
        for acc in task.accesses:
            e = info.setdefault(acc.region.key, [False, False, False])
            e[0] |= acc.direction.reads
            e[1] |= acc.direction.writes
        for acc in task.copies:
            e = info.setdefault(acc.region.key, [False, False, False])
            e[0] |= acc.direction.reads
            e[1] |= acc.direction.writes
        # Only copy-clause writes publish a new version through
        # commit_outputs; a dependence-only OUT mutates data without a
        # commit, so it can never cover a discard.
        for acc in task.copy_accesses:
            if acc.direction.writes:
                info[acc.region.key][2] = True
        entries = []
        tid = task.tid
        for key, (reads, writes, publishes) in info.items():
            r = self._wseq.get(key, 0) if reads else None
            w = None
            if writes:
                w = self._wseq.get(key, 0) + 1
                self._wseq[key] = w
            pure = publishes and writes and not reads
            entries.append((key, r, w, pure))
            self._live.setdefault(key, {})[tid] = (r, w, pure)
        task._liveness_entries = entries

    def task_committed(self, task: "Task") -> None:
        """The task's writes are being published: advance the installed
        pointers and drop it from the live tables (its reads are done)."""
        self._retire(task, installs=True)

    def task_finished(self, task: "Task") -> None:
        # A task that committed was already retired there; a copy-less
        # task (or one whose device died after publishing) retires here.
        # Its writes — if any — happened (SMP tasks mutate host data
        # directly), so they install too.
        self._retire(task, installs=True)

    def _retire(self, task: "Task", installs: bool) -> None:
        entries = getattr(task, "_liveness_entries", None)
        if entries is None:
            return
        task._liveness_entries = None
        tid = task.tid
        for key, _r, w, _pure in entries:
            live = self._live.get(key)
            if live is not None:
                live.pop(tid, None)
                if not live:
                    del self._live[key]
            if installs and w is not None \
                    and w > self._installed.get(key, 0):
                self._installed[key] = w

    def version_is_dead(self, region: Region) -> bool:
        """True when the installed version of ``region`` can never be
        observed again: its next writer is a live pure copy overwriter and
        every reader of the installed version has finished."""
        live = self._live.get(region.key)
        if not live:
            return False
        s = self._installed.get(region.key, 0)
        w1 = None
        w1_pure = False
        for _r, w, pure in live.values():
            if w is not None and w > s and (w1 is None or w < w1):
                w1, w1_pure = w, pure
        if w1 is None or not w1_pure:
            return False
        for r, _w, _pure in live.values():
            if r is not None and s <= r < w1:
                return False
        return True


class TransferCoalescer:
    """Window-based batching of transfers per channel.

    A *channel* is one serialization point: ``("net", src_node, dst_node)``
    for a NIC direction, ``("dma", manager_id, direction)`` for one GPU's
    DMA direction, or ``("ctl", node)`` for the master's dispatch control
    stream.  The policy is congestion-triggered: the first transfer on an
    idle channel issues immediately and alone (batching it would only add
    the window's delay); transfers arriving while the channel has an issue
    in flight open a window and fuse.
    """

    def __init__(self, rt: "Runtime", window: float):
        self.rt = rt
        self.env = rt.env
        self.window = window
        #: channel -> list of (entry, completion event) collecting a batch.
        self._open: dict[tuple, list] = {}
        #: channel -> number of issues currently in flight.
        self._active: dict[tuple, int] = {}
        metrics = rt.metrics
        self._c_solo = metrics.counter("datamove.solo_transfers")
        self._c_fused = metrics.counter("datamove.fused_transfers")
        self._c_batches = metrics.counter("datamove.fused_batches")

    def submit(self, key: tuple, entry,
               issue: Callable[[list], "object"]):
        """Process generator: route ``entry`` through channel ``key``.

        ``issue(entries)`` is a process generator moving a whole batch in
        one shot; the solo path runs it inline (identical event stream to
        an uncoalesced transfer), the fused path parks the caller on the
        batch's completion event.
        """
        batch = self._open.get(key)
        if batch is None and not self._active.get(key):
            # Idle channel: nothing to fuse with, send now — zero window tax.
            self._active[key] = self._active.get(key, 0) + 1
            try:
                yield from issue([entry])
            finally:
                self._active[key] -= 1
            self._c_solo.value += 1
            return
        if batch is None:
            batch = self._open[key] = []
            self.env.process(self._flush_after_window(key, issue))
        done = Event(self.env)
        batch.append((entry, done))
        yield done

    def _flush_after_window(self, key: tuple, issue):
        yield self.env.timeout(self.window)
        batch = self._open.pop(key)
        self._active[key] = self._active.get(key, 0) + 1
        try:
            yield from issue([entry for entry, _ in batch])
        except BaseException as exc:  # noqa: BLE001 - fan the failure out
            self._active[key] -= 1
            for _, done in batch:
                done.fail(exc)
            return
        self._active[key] -= 1
        self._c_batches.value += 1
        self._c_fused.value += len(batch)
        for _, done in batch:
            done.succeed()


class DataMover:
    """Facade the runtime consults; holds whichever mechanisms are on."""

    def __init__(self, rt: "Runtime"):
        cfg = rt.config
        self.rt = rt
        self.elision = cfg.wb_elision
        self.presend_depth = cfg.presend_depth
        #: runtime override of the configured cache write policy.  ``None``
        #: means "as configured"; the adaptive meta-scheduler sets it (e.g.
        #: write-through -> write-back when eager commit write-backs are
        #: saturating the transfer links).  Consulted by
        #: :meth:`CoherenceEngine.commit_outputs` at every publish point,
        #: so a switch takes effect for all subsequent commits.
        self.write_mode: Optional[CachePolicy] = None
        self.liveness: Optional[LivenessTracker] = (
            LivenessTracker()
            if (cfg.wb_elision or cfg.cost_aware_eviction
                or cfg.adaptive_datamove) else None)
        self.coalescer: Optional[TransferCoalescer] = (
            TransferCoalescer(rt, cfg.coalesce_window)
            if cfg.coalescing else None)
        self._c_elisions = rt.metrics.counter("datamove.writebacks_elided")
        self._c_elided_bytes = rt.metrics.counter("datamove.bytes_elided")

    # -- liveness hooks (called by the runtime on task lifecycle) --------
    def note_submit(self, task: "Task") -> None:
        if self.liveness is not None:
            self.liveness.task_submitted(task)

    def note_commit(self, task: "Task") -> None:
        """The task's commit has *published* its outputs (directory
        updated): its writes install, it stops reading, and its own fresh
        version must no longer look overwritable by its own write entry.
        Called only after the publish point — a torn commit never installs,
        so the re-executed task keeps its original sequence numbers."""
        if self.liveness is not None:
            self.liveness.task_committed(task)

    def note_finish(self, task: "Task") -> None:
        # Idempotent with note_commit; retires copy-less (SMP) tasks whose
        # host-side writes happen without a commit.
        if self.liveness is not None:
            self.liveness.task_finished(task)

    def note_resubmit(self, task: "Task") -> None:
        """Fault recovery is re-executing ``task``.  Requeue only happens
        before a successful commit, so the task was never retired: its
        sequence entries are intact and re-execution reuses them.  Kept as
        an explicit hook (and assertion point) rather than silent reliance
        on that invariant."""
        if self.liveness is not None:
            assert getattr(task, "_liveness_entries", None) is not None, \
                "requeued task was already retired from liveness"

    # -- runtime write-mode switching -------------------------------------
    def set_write_mode(self, policy: "CachePolicy | str") -> None:
        """Override the cache write policy for every commit from now on.

        Dirty entries created before the switch keep their state: a
        write-through -> write-back switch simply stops eager commit
        write-backs (eviction and flush still drain dirty data), and the
        reverse resumes them.  Neither direction can lose data."""
        self.write_mode = CachePolicy.parse(policy)
        self.rt.metrics.inc("datamove.write_mode_switches")

    # -- write-back elision ----------------------------------------------
    def may_elide_writeback(self, region: Region) -> bool:
        if not self.elision:
            return False
        return self.liveness.version_is_dead(region)

    def count_elision(self, region: Region) -> None:
        self._c_elisions.value += 1
        self._c_elided_bytes.value += region.nbytes

    # -- cost-aware eviction ---------------------------------------------
    def make_cost_fn(self, cache: "SoftwareCache"
                     ) -> Callable[["CacheEntry"], float]:
        """Re-fetch cost estimator for one device cache, in seconds.

        Costs: a dirty victim pays its write-back first; refetching then
        costs one PCIe leg when a same-node host copy exists (or will,
        after the write-back), and a NIC wire leg on top when the data
        lives only on a remote node.  A dead dirty version (see
        :class:`LivenessTracker`) costs nothing — it will never be fetched
        again — which composes elision with eviction ordering.
        """
        rt = self.rt
        space = cache.space
        node = rt.machine.nodes[space.node_index]
        gpu = node.gpus[space.device_index]
        pcie_bw = gpu.spec.pcie_pinned_bw
        nic_bw = (rt.machine.network.nic.bandwidth
                  if rt.is_cluster else None)
        directory = rt.directory
        liveness = self.liveness

        def cost(ent: "CacheEntry") -> float:
            region = ent.region
            nbytes = region.nbytes
            if ent.dirty and liveness is not None \
                    and self.elision and liveness.version_is_dead(region):
                return 0.0
            seconds = nbytes / pcie_bw          # the refetch PCIe leg
            if ent.dirty:
                seconds += nbytes / pcie_bw     # write-back before the drop
                return seconds                  # host then holds the source
            dent = directory.peek(region)
            if dent is not None and not any(
                    s.kind == "host" and s.node_index == space.node_index
                    for s in dent.holders):
                # No same-node host copy: the refetch crosses the fabric
                # (or drains a sibling device first).
                seconds += (nbytes / nic_bw if nic_bw is not None
                            else nbytes / pcie_bw)
            return seconds

        return cost
