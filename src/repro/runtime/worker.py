"""SMP worker threads: execute ``smp`` tasks on host cores."""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..memory.region import Region
from .task import Direction, Task, TaskState

if TYPE_CHECKING:  # pragma: no cover
    from .runtime import Image

__all__ = ["SMPWorker", "resolve_args"]


def resolve_args(task: Task, space, sanitizer=None) -> list:
    """Replace Region placeholders in the task's args with space buffers.

    Read regions resolve via ``space.read`` (the fetched copy); written
    regions via ``space.writable`` (allocated on demand), so the body mutates
    the executing space's storage in place.

    With a ``sanitizer`` the resolved buffers are wrapped in watched views
    (same memory — functional results are unchanged) so the body's actual
    reads and writes are recorded against the declared clauses.
    """
    directions = {a.region.key: a.direction
                  for a in (*task.accesses, *task.copies)}
    record = sanitizer.begin_task(task) if sanitizer is not None else None

    def one(region: Region):
        direction = directions.get(region.key)
        if direction is None:
            raise ValueError(
                f"task {task.name!r} passes region {region!r} without a "
                "dependence clause for it"
            )
        buf = (space.writable(region) if direction.writes
               else space.read(region))
        if record is not None:
            buf = sanitizer.watch_buffer(record, region, buf)
        return buf

    resolved = []
    for arg in task.args:
        if isinstance(arg, Region):
            resolved.append(one(arg))
        elif (isinstance(arg, tuple) and arg
              and all(isinstance(r, Region) for r in arg)):
            resolved.append([one(r) for r in arg])
        else:
            resolved.append(arg)
    return resolved


class SMPWorker:
    """One host-core worker thread of one image."""

    kind = "smp"

    def __init__(self, image: "Image", worker_index: int):
        self.image = image
        self.rt = image.rt
        self.env = image.rt.env
        self.node = image.node
        self.node_index = image.node.index
        self.space = image.host_space
        self.cache = None  # host memory is not a software cache
        self.worker_index = worker_index
        self.tasks_run = 0
        #: scheduler-visible place label + its per-worker metric key,
        #: interned once instead of f-string-built per finished task.
        self.place_name = f"smp:{self.node_index}:{self.worker_index}"
        self._c_tasks = self.rt.metrics.counter(
            f"worker.{self.place_name}.tasks")

    def accepts(self, task: Task) -> bool:
        return task.device == "smp"

    def run(self):
        """The worker loop (a simulated process)."""
        rt = self.rt
        while rt.running:
            task = self.image.scheduler.next_task(self)
            if task is None:
                yield rt.wait_for_work("smp")
                continue
            yield from self.execute(task)

    def execute(self, task: Task):
        task.state = TaskState.RUNNING
        task.assigned_to = self
        trace_start = self.env.now
        if self.rt.config.task_overhead:
            yield self.env.timeout(self.rt.config.task_overhead)
        yield from self.rt.coherence.stage_in(task, self)
        duration = task.smp_duration(self.node.spec.cpu)
        yield from self.node.run_cpu_work(duration)
        if self.rt.config.functional and task.func is not None:
            task.func(*resolve_args(task, self.space, self.rt.sanitizer))
        yield from self.rt.coherence.commit_outputs(task, self)
        if self.rt.tracer is not None:
            self.rt.tracer.record("task", task.name, self.place_name,
                                  trace_start, self.env.now)
        if task.subtasks is not None:
            # Hierarchical decomposition: children run on this image with
            # their own sibling-scope graph; the parent completes once they
            # all have (so its own siblings see the decomposed work done).
            yield self.image.run_children(task)
        self.tasks_run += 1
        self._c_tasks.value += 1
        self.rt.metrics.observe("tasks.smp.duration",
                                self.env.now - trace_start)
        self.image.finish_task(task, self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<SMPWorker n{self.node_index}.w{self.worker_index}>"
