"""GPU manager threads (paper Section III.D.2).

On startup the runtime creates one manager thread per GPU.  The manager
transfers data from and to its GPU, launches kernels, synchronizes their
execution, and implements the two GPU-level optimizations the paper
evaluates:

* **overlap of transfers and computation** — DMA through a pinned staging
  buffer on a separate CUDA stream (requires the extra host-side copy, so it
  is off by default, matching the paper);
* **data prefetch** — once a kernel is launched, the manager immediately
  requests the next task from the scheduler and starts its input transfers,
  so they complete while the kernel runs.  Without overlap those transfers
  serialize behind the kernel on the null stream, which is precisely why the
  paper notes prefetch "is more effective when combined with the
  overlapping".
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..cuda.api import CudaContext
from ..faults.errors import TaskRetryExceeded
from ..sim import Event
from .task import Task, TaskState
from .worker import resolve_args

if TYPE_CHECKING:  # pragma: no cover
    from .runtime import Image

__all__ = ["GPUManager"]


class GPUManager:
    """One GPU's manager thread, also its scheduler-visible worker."""

    kind = "gpu"

    def __init__(self, image: "Image", gpu, space, cache):
        self.image = image
        self.rt = image.rt
        self.env = image.rt.env
        self.node = image.node
        self.node_index = image.node.index
        self.gpu = gpu
        self.space = space
        self.cache = cache
        self.ctx = CudaContext(self.env, gpu, image.node,
                               registry=self.rt.kernel_registry,
                               jitter=self.rt.config.kernel_jitter,
                               metrics=self.rt.metrics)
        self.copy_stream = self.ctx.create_stream()
        self.tasks_run = 0
        #: cleared by the fault engine on a gpu_loss event; the manager
        #: loop abandons (and requeues) its work and exits.
        self.alive = True
        self.current_task: Optional[Task] = None
        #: scheduler-visible place label, also the prefix of every metric
        #: this manager records — all interned once here instead of being
        #: f-string-built per DMA leg / kernel / task.
        self.place_name = f"gpu:{self.node_index}:{self.gpu.index}"
        prefix = f"gpu.{self.place_name}"
        metrics = self.rt.metrics
        self._c_dma = {
            d: (metrics.counter(f"{prefix}.dma.{d}.copies"),
                metrics.counter(f"{prefix}.dma.{d}.bytes"))
            for d in ("h2d", "d2h")
        }
        self._c_dma_fused = metrics.counter(f"{prefix}.dma.fused")
        self._c_kernels = metrics.counter(f"{prefix}.kernels")
        self._c_tasks = metrics.counter(f"{prefix}.tasks")
        self._c_prefetch_hits = metrics.counter(f"{prefix}.prefetch.hits")
        self._c_prefetch_staged = metrics.counter(
            f"{prefix}.prefetch.staged")

    def accepts(self, task: Task) -> bool:
        return task.device == "cuda" and self.alive

    # ------------------------------------------------------------------
    def dma(self, nbytes: int, direction: str):
        """Process generator: one host<->device transfer, honoring the
        overlap configuration (used by the coherence engine)."""
        c_copies, c_bytes = self._c_dma[direction]
        c_copies.value += 1
        c_bytes.value += nbytes
        if not self.rt.config.overlap:
            # Pageable copy on the null stream: serializes with kernels.
            yield self.ctx.memcpy(nbytes, direction, pinned=False)
            return
        # Staged pinned copy on a dedicated stream: can overlap compute,
        # at the price of a pinned-buffer lease and a host memcpy.
        lease = yield self.ctx.malloc_host(nbytes)
        try:
            if direction == "h2d":
                yield self.ctx.staging_copy(nbytes)
                yield self.ctx.memcpy(nbytes, direction, pinned=True,
                                      stream=self.copy_stream)
            else:
                yield self.ctx.memcpy(nbytes, direction, pinned=True,
                                      stream=self.copy_stream)
                yield self.ctx.staging_copy(nbytes)
        finally:
            lease.release()

    def dma_fused(self, sizes: list, direction: str):
        """Process generator: a coalesced DMA batch (datamove coalescing).

        One entry delegates to :meth:`dma` — the solo path must stay
        bit-identical to an uncoalesced transfer.  A real batch moves its
        chunks back-to-back: without overlap, one pageable copy of the
        summed bytes (one stream op instead of one per chunk); with
        overlap, a double-buffered pinned pipeline that stages chunk *k+1*
        while chunk *k* crosses PCIe.
        """
        if len(sizes) == 1:
            yield from self.dma(sizes[0], direction)
            return
        c_copies, c_bytes = self._c_dma[direction]
        c_copies.value += len(sizes)
        c_bytes.value += sum(sizes)
        self._c_dma_fused.value += len(sizes)
        link = self.gpu.h2d if direction == "h2d" else self.gpu.d2h
        link.count_fused(len(sizes))
        if not self.rt.config.overlap:
            yield self.ctx.memcpy(sum(sizes), direction, pinned=False)
            return
        # Two staging slots of the largest chunk: one being filled or
        # drained by the host while the other is in flight on PCIe.
        lease = yield self.ctx.malloc_host(2 * max(sizes))
        try:
            if direction == "h2d":
                last = None
                for nbytes in sizes:
                    yield self.ctx.staging_copy(nbytes)
                    last = self.ctx.memcpy(nbytes, direction, pinned=True,
                                           stream=self.copy_stream)
                # The copy stream is in-order: the last memcpy completing
                # means every earlier chunk has already landed.
                yield last
            else:
                stagings = []
                for nbytes in sizes:
                    yield self.ctx.memcpy(nbytes, direction, pinned=True,
                                          stream=self.copy_stream)
                    stagings.append(self.ctx.staging_copy(nbytes))
                yield self.env.all_of(stagings)
        finally:
            lease.release()

    # ------------------------------------------------------------------
    def run(self):
        """The manager loop (a simulated process)."""
        rt = self.rt
        staged_next: Optional[Task] = None
        while rt.running:
            if not self.alive:
                self._abandon(None, staged_next)
                return
            task = staged_next
            staged_next = None
            if task is None:
                task = self.image.scheduler.next_task(self)
            if task is None:
                yield rt.wait_for_work("cuda")
                continue
            self.current_task = task
            task.state = TaskState.RUNNING
            task.assigned_to = self
            trace_start = self.env.now
            if rt.config.task_overhead:
                yield self.env.timeout(rt.config.task_overhead)
            if not self.alive:
                self._abandon(task, None)
                return
            if getattr(task, "_staged", False):
                # Inputs already on the device: the prefetch paid off.
                self._c_prefetch_hits.value += 1
            else:
                yield from rt.coherence.stage_in(task, self)
            if not self.alive:
                self._abandon(task, None)
                return
            faults = rt.faults
            # Abort-before-side-effects: in fault mode the functional body
            # is deferred to after the kernel + health checks, so an
            # aborted or lost kernel never mutates device buffers (an
            # inout region stays at the version the directory records).
            aborted = (faults is not None
                       and faults.kernel_should_abort(self, task))
            kernel_done = self._launch(task, defer_body=faults is not None)
            self._c_kernels.value += 1

            prefetch_proc = None
            if rt.config.prefetch:
                candidate = self.image.scheduler.next_task(self)
                if candidate is not None:
                    prefetch_proc = self.env.process(
                        self._prefetch(candidate))
                    staged_next = candidate
                    self._c_prefetch_staged.value += 1

            kernel_enqueued = self.env.now
            yield kernel_done
            if rt.tracer is not None:
                rt.tracer.record("kernel", task.name, self.place_name,
                                 kernel_enqueued, self.env.now)
            if prefetch_proc is not None:
                yield prefetch_proc
            if not self.alive:
                self._abandon(task, staged_next)
                return
            if aborted:
                self._requeue(task, "kernel_abort")
                self.current_task = None
                continue
            if faults is not None:
                self._run_body(task)
            yield from rt.coherence.commit_outputs(task, self)
            if (faults is not None
                    and not getattr(task, "_committed", True)):
                # Torn commit (device died mid-commit without output
                # protection): nothing was published, re-execute.
                self._requeue(task, "torn_commit")
                self.current_task = None
                if not self.alive:
                    self._abandon(None, staged_next)
                    return
                continue
            if rt.tracer is not None:
                rt.tracer.record("task", task.name, self.place_name,
                                 trace_start, self.env.now)
            if task.subtasks is not None:
                yield self.image.run_children(task)
            self.tasks_run += 1
            self._c_tasks.value += 1
            rt.metrics.observe("tasks.cuda.duration",
                               self.env.now - trace_start)
            self.current_task = None
            self.image.finish_task(task, self)

    def _prefetch(self, task: Task):
        task.assigned_to = self
        yield from self.rt.coherence.stage_in(task, self)
        task._staged = True

    def _launch(self, task: Task, defer_body: bool = False) -> Event:
        """Enqueue the task's kernel; returns the completion event.

        With ``defer_body`` the functional body is *not* attached to the
        kernel completion — the caller runs it via :meth:`_run_body` only
        after the launch survives fault checks."""
        func_args: tuple = ()
        if (not defer_body and self.rt.config.functional
                and task.kernel.func is not None):
            func_args = tuple(resolve_args(task, self.space,
                                           self.rt.sanitizer))
        return self.ctx.launch(task.kernel, func_args=func_args,
                               **task.cost_kwargs)

    def _run_body(self, task: Task) -> None:
        """The deferred functional body (fault mode): mirrors exactly what
        the stream op would have run at kernel completion."""
        if self.rt.config.functional and task.kernel.func is not None:
            func_args = tuple(resolve_args(task, self.space,
                                           self.rt.sanitizer))
            if func_args:
                task.kernel.func(*func_args)

    # ------------------------------------------------------------------
    # Fault recovery (never reached without a fault engine)
    # ------------------------------------------------------------------
    def _abandon(self, task: Optional[Task],
                 staged: Optional[Task]) -> None:
        """The device died: requeue whatever this loop was holding."""
        for t in (task, staged):
            if t is not None:
                self._requeue(t, "device_lost")
        self.current_task = None

    def _requeue(self, task: Task, why: str) -> None:
        """Return a failed (not committed) task to a scheduler.

        The task's inputs are still coherent — commit never ran, so the
        directory was never updated — which is what makes plain
        re-execution from the dependency graph's recorded inputs safe."""
        rt = self.rt
        if self.cache is not None:
            for acc in task.copy_accesses:
                ent = self.cache.entry_or_none(acc.region)
                if ent is not None and ent.pin_count > 0:
                    self.cache.unpin(acc.region)
        task._staged = False
        task.state = TaskState.READY
        task.assigned_to = None
        if rt.datamove is not None:
            rt.datamove.note_resubmit(task)
        task.retries += 1
        if task.retries > rt.faults.plan.max_task_retries:
            raise TaskRetryExceeded(
                f"task {task.name!r} failed {task.retries} times "
                f"(last: {why} on {self.place_name}); giving up")
        rt.metrics.inc("faults.tasks_reexecuted")
        rt.faults.note("task_reexecuted",
                       f"{task.name}:{why}@{self.place_name}")
        rt.faults.resubmit(self.image, task)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<GPUManager n{self.node_index}.g{self.gpu.index}>"
