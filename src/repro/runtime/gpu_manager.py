"""GPU manager threads (paper Section III.D.2).

On startup the runtime creates one manager thread per GPU.  The manager
transfers data from and to its GPU, launches kernels, synchronizes their
execution, and implements the two GPU-level optimizations the paper
evaluates:

* **overlap of transfers and computation** — DMA through a pinned staging
  buffer on a separate CUDA stream (requires the extra host-side copy, so it
  is off by default, matching the paper);
* **data prefetch** — once a kernel is launched, the manager immediately
  requests the next task from the scheduler and starts its input transfers,
  so they complete while the kernel runs.  Without overlap those transfers
  serialize behind the kernel on the null stream, which is precisely why the
  paper notes prefetch "is more effective when combined with the
  overlapping".
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..cuda.api import CudaContext
from ..sim import Event
from .task import Task, TaskState
from .worker import resolve_args

if TYPE_CHECKING:  # pragma: no cover
    from .runtime import Image

__all__ = ["GPUManager"]


class GPUManager:
    """One GPU's manager thread, also its scheduler-visible worker."""

    kind = "gpu"

    def __init__(self, image: "Image", gpu, space, cache):
        self.image = image
        self.rt = image.rt
        self.env = image.rt.env
        self.node = image.node
        self.node_index = image.node.index
        self.gpu = gpu
        self.space = space
        self.cache = cache
        self.ctx = CudaContext(self.env, gpu, image.node,
                               registry=self.rt.kernel_registry,
                               jitter=self.rt.config.kernel_jitter,
                               metrics=self.rt.metrics)
        self.copy_stream = self.ctx.create_stream()
        self.tasks_run = 0

    def accepts(self, task: Task) -> bool:
        return task.device == "cuda"

    @property
    def place_name(self) -> str:
        return f"gpu:{self.node_index}:{self.gpu.index}"

    # ------------------------------------------------------------------
    def dma(self, nbytes: int, direction: str):
        """Process generator: one host<->device transfer, honoring the
        overlap configuration (used by the coherence engine)."""
        metrics = self.rt.metrics
        metrics.inc(f"gpu.{self.place_name}.dma.{direction}.copies")
        metrics.inc(f"gpu.{self.place_name}.dma.{direction}.bytes", nbytes)
        if not self.rt.config.overlap:
            # Pageable copy on the null stream: serializes with kernels.
            yield self.ctx.memcpy(nbytes, direction, pinned=False)
            return
        # Staged pinned copy on a dedicated stream: can overlap compute,
        # at the price of a pinned-buffer lease and a host memcpy.
        lease = yield self.ctx.malloc_host(nbytes)
        try:
            if direction == "h2d":
                yield self.ctx.staging_copy(nbytes)
                yield self.ctx.memcpy(nbytes, direction, pinned=True,
                                      stream=self.copy_stream)
            else:
                yield self.ctx.memcpy(nbytes, direction, pinned=True,
                                      stream=self.copy_stream)
                yield self.ctx.staging_copy(nbytes)
        finally:
            lease.release()

    # ------------------------------------------------------------------
    def run(self):
        """The manager loop (a simulated process)."""
        rt = self.rt
        staged_next: Optional[Task] = None
        while rt.running:
            task = staged_next
            staged_next = None
            if task is None:
                task = self.image.scheduler.next_task(self)
            if task is None:
                yield rt.wait_for_work()
                continue
            task.state = TaskState.RUNNING
            task.assigned_to = self
            trace_start = self.env.now
            if rt.config.task_overhead:
                yield self.env.timeout(rt.config.task_overhead)
            if getattr(task, "_staged", False):
                # Inputs already on the device: the prefetch paid off.
                rt.metrics.inc(f"gpu.{self.place_name}.prefetch.hits")
            else:
                yield from rt.coherence.stage_in(task, self)
            kernel_done = self._launch(task)
            rt.metrics.inc(f"gpu.{self.place_name}.kernels")

            prefetch_proc = None
            if rt.config.prefetch:
                candidate = self.image.scheduler.next_task(self)
                if candidate is not None:
                    prefetch_proc = self.env.process(
                        self._prefetch(candidate))
                    staged_next = candidate
                    rt.metrics.inc(f"gpu.{self.place_name}.prefetch.staged")

            kernel_enqueued = self.env.now
            yield kernel_done
            if rt.tracer is not None:
                rt.tracer.record("kernel", task.name, self.place_name,
                                 kernel_enqueued, self.env.now)
            if prefetch_proc is not None:
                yield prefetch_proc
            yield from rt.coherence.commit_outputs(task, self)
            if rt.tracer is not None:
                rt.tracer.record("task", task.name, self.place_name,
                                 trace_start, self.env.now)
            if task.subtasks is not None:
                yield self.image.run_children(task)
            self.tasks_run += 1
            rt.metrics.inc(f"gpu.{self.place_name}.tasks")
            rt.metrics.observe("tasks.cuda.duration",
                               self.env.now - trace_start)
            self.image.finish_task(task, self)

    def _prefetch(self, task: Task):
        task.assigned_to = self
        yield from self.rt.coherence.stage_in(task, self)
        task._staged = True

    def _launch(self, task: Task) -> Event:
        """Enqueue the task's kernel; returns the completion event."""
        func_args: tuple = ()
        if self.rt.config.functional and task.kernel.func is not None:
            func_args = tuple(resolve_args(task, self.space))
        return self.ctx.launch(task.kernel, func_args=func_args,
                               **task.cost_kwargs)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<GPUManager n{self.node_index}.g{self.gpu.index}>"
