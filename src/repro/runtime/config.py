"""Runtime configuration: the knobs the paper's evaluation sweeps.

Every option corresponds to a configuration dimension in Section IV:

* ``cache_policy`` — nocache / wt / wb (Figs. 5-8);
* ``scheduler`` — bf / default (dependencies) / affinity (Figs. 5-6);
* ``overlap`` — transfer/compute overlap via CUDA streams + pinned staging
  (Section III.D.2, "disabled by default but can be requested");
* ``prefetch`` — GPU data prefetch of the next scheduled task;
* ``presend`` — how many tasks the master pre-sends to a remote node beyond
  the one executing (Fig. 9's presend sweep);
* ``slave_to_slave`` — direct StoS data transfers vs routing via the master
  (Fig. 9's MtoS/StoS dimension);
* ``steal`` — work stealing between thread queues in the affinity scheduler.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..memory.cache import CachePolicy

__all__ = ["RuntimeConfig", "SCHEDULERS"]

#: the paper's three policies plus the adaptive tier (docs/SCHEDULERS.md):
#: ``ws`` work-stealing, ``cp`` critical-path lookahead, ``adaptive``
#: metrics-driven meta-scheduler.
SCHEDULERS = ("bf", "default", "affinity", "ws", "cp", "adaptive")


@dataclass(frozen=True)
class RuntimeConfig:
    cache_policy: CachePolicy = CachePolicy.WRITE_BACK
    scheduler: str = "default"
    overlap: bool = False
    prefetch: bool = False
    presend: int = 0
    slave_to_slave: bool = True
    steal: bool = True
    #: functional mode moves real NumPy data; performance mode only times.
    functional: bool = True
    #: fraction of GPU memory usable by the software cache (the rest models
    #: CUDA context/code overheads).
    gpu_cache_fraction: float = 0.9
    #: SMP worker threads per node; 0 means one per core not otherwise
    #: reserved for GPU-manager or communication duty.
    smp_workers: int = 0
    #: relative kernel-duration variability (deterministic pseudo-noise);
    #: models real launch-to-launch variance so schedules do not lock-step.
    kernel_jitter: float = 0.03
    #: per-task runtime management cost on the executing thread's critical
    #: path (graph insertion, clause evaluation, cache lookups — calibrated
    #: for the 2012-era Nanos++ implementation).
    task_overhead: float = 150e-6
    #: chunk size for round-robin placement of no-affinity tasks across
    #: cluster node domains (affinity scheduler).  1 = pure cyclic deal;
    #: larger values keep blocked loops contiguous per node (ablation knob —
    #: cyclic wins for the paper's workloads because it spreads the tile
    #: sources evenly over the fabric).
    rr_chunk: int = 1
    #: optional :class:`repro.faults.FaultPlan`.  ``None`` (or an empty
    #: plan) leaves every fault hook dormant — the simulation schedules not
    #: a single extra event, so timed results stay bit-identical.  Typed
    #: ``object`` to keep this module import-light (faults imports runtime
    #: pieces lazily, not the other way around).
    fault_plan: object = None
    # -- data-movement optimisation layer (repro.runtime.datamove) --------
    # All four mechanisms default off: with every flag at its default the
    # runtime constructs no DataMover and executes the identical event
    # stream, keeping the golden makespans bit-identical.
    #: skip the host write-back of a dirty region whose version is dead —
    #: no live task still reads it and a live task will overwrite it.
    wb_elision: bool = False
    #: fuse region transfers queued on the same channel (NIC direction or
    #: GPU DMA direction) within ``coalesce_window`` into one payload:
    #: one latency charge, summed bandwidth.
    coalescing: bool = False
    #: how long (simulated seconds) a congested channel collects transfers
    #: before issuing the fused batch.  Only consulted when ``coalescing``
    #: is on; an idle channel always sends immediately (no window tax).
    coalesce_window: float = 2e-6
    #: tasks the cluster master prestages *beyond* the presend credit
    #: window, via scheduler lookahead: slaves compute task k while the
    #: inputs of tasks k+1..k+depth are already in flight.
    presend_depth: int = 0
    #: break cache-eviction LRU ties by re-fetch cost (nbytes divided by
    #: the source link bandwidth): cheap-to-refetch regions evict first.
    cost_aware_eviction: bool = False
    # -- adaptive meta-scheduler knobs (scheduler="adaptive") -------------
    #: scheduler events (submissions + polls) between signal evaluations.
    adaptive_interval: int = 24
    #: consecutive agreeing evaluations required before a policy (or
    #: datamove write-mode) switch — the anti-thrash guard.
    adaptive_hysteresis: int = 2
    #: let the adaptive scheduler drive the datamove write mode (toggling
    #: write-back elision from live link/write-back pressure).  Constructs
    #: a DataMover (with liveness tracking) even when the static elision
    #: flag is off, so the mode can be switched mid-run.
    adaptive_datamove: bool = False

    def __post_init__(self):
        object.__setattr__(self, "cache_policy",
                           CachePolicy.parse(self.cache_policy))
        if self.scheduler not in SCHEDULERS:
            raise ValueError(
                f"unknown scheduler {self.scheduler!r}; "
                f"expected one of {SCHEDULERS}"
            )
        if self.presend < 0:
            raise ValueError("presend window cannot be negative")
        if not 0 < self.gpu_cache_fraction <= 1:
            raise ValueError("gpu_cache_fraction must be in (0, 1]")
        if self.smp_workers < 0:
            raise ValueError("smp_workers cannot be negative")
        if not 0 <= self.kernel_jitter < 1:
            raise ValueError("kernel_jitter must be in [0, 1)")
        if self.task_overhead < 0:
            raise ValueError("task_overhead cannot be negative")
        if self.rr_chunk < 1:
            raise ValueError("rr_chunk must be at least 1")
        if self.coalesce_window <= 0:
            raise ValueError("coalesce_window must be positive")
        if self.presend_depth < 0:
            raise ValueError("presend_depth cannot be negative")
        if self.adaptive_interval < 1:
            raise ValueError("adaptive_interval must be at least 1")
        if self.adaptive_hysteresis < 1:
            raise ValueError("adaptive_hysteresis must be at least 1")
        if self.fault_plan is not None and not hasattr(
                self.fault_plan, "is_empty"):
            # Duck-typed on purpose: importing repro.faults here would
            # create a cycle (faults -> runtime internals).
            raise TypeError(
                f"fault_plan must be a FaultPlan or None, "
                f"got {type(self.fault_plan).__name__}")

    def with_(self, **changes) -> "RuntimeConfig":
        """A copy with the given fields replaced (sweep helper)."""
        return replace(self, **changes)

    @property
    def datamove_enabled(self) -> bool:
        """True when any data-movement optimisation flag is active."""
        return bool(self.wb_elision or self.coalescing
                    or self.presend_depth or self.cost_aware_eviction
                    or self.adaptive_datamove)

    def describe(self) -> str:
        """Short label used by the benchmark tables, e.g. ``wb-affinity``."""
        parts = [self.cache_policy.value, self.scheduler]
        if self.overlap:
            parts.append("ovl")
        if self.prefetch:
            parts.append("pf")
        if self.presend:
            parts.append(f"ps{self.presend}")
        parts.append("stos" if self.slave_to_slave else "mtos")
        if self.wb_elision:
            parts.append("elide")
        if self.coalescing:
            parts.append("coal")
        if self.presend_depth:
            parts.append(f"pd{self.presend_depth}")
        if self.cost_aware_eviction:
            parts.append("cae")
        if self.adaptive_datamove:
            parts.append("adm")
        return "-".join(parts)
