"""Cluster architecture of Nanos++: master/slave images over active messages."""

from .master import CommThread, NodeProxy

__all__ = ["CommThread", "NodeProxy"]
