"""Master-side cluster machinery (paper Section III.D.1).

When running on a cluster the first runtime image is the *master*; remote
nodes run *slave* images.  Tasks scheduled to a remote node are served by a
single **communication thread** that polls the task pool of each node in a
round-robin fashion.  For every dispatched task the master first gathers the
task's data at the target node (directly from the owner slave when
slave-to-slave transfers are enabled, through the master otherwise), then
sends a control active message to start remote execution; the slave answers
with a completion message.

The **presend** mechanism lets the communication thread keep up to
``1 + presend`` tasks outstanding per node, so the data movement for queued
tasks overlaps with the computation of earlier ones.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ...faults.errors import RegionLostError
from ...gasnet.am import SHORT_SIZE
from ..task import Task, TaskState

if TYPE_CHECKING:  # pragma: no cover
    from ..runtime import Image, Runtime

__all__ = ["NodeProxy", "CommThread"]


class NodeProxy:
    """The master scheduler's stand-in for one remote node.

    It is registered as a worker: the affinity scheduler scores it by the
    bytes already resident anywhere on its node (the hierarchical view), and
    round-robin polling by the communication thread pulls tasks placed on it.
    """

    kind = "node"

    def __init__(self, rt: "Runtime", node_index: int):
        self.rt = rt
        self.node_index = node_index
        self.space = rt.host_space(node_index)
        self.cache = None
        self.outstanding = 0
        self.tasks_dispatched = 0
        #: dispatched-but-unacknowledged tasks keyed by tid (Task equality
        #: recurses through successor lists, so identity keys only).
        self.inflight: dict[int, Task] = {}
        #: tids whose inputs the datamove prestage already started moving
        #: (prevents re-spawning the same speculative fetches every poll).
        self.prestaged: set[int] = set()

    def accepts(self, task: Task) -> bool:
        # A remote node has CPUs and a GPU: it can host either device kind.
        # Decomposition children are local to the image that runs their
        # parent ("executed by any thread that becomes available in the
        # node") and are never shipped through a proxy.
        if task.parent is not None:
            return False
        if task.device != "cuda" or self.rt.faults is None:
            return True
        # Under fault injection a node whose GPUs all died must stop
        # attracting cuda work, or dispatches would just bounce back.
        image = self.rt.images[self.node_index]
        return any(m.alive for m in image.gpu_managers)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<NodeProxy node{self.node_index}>"


class CommThread:
    """The master's single communication thread."""

    def __init__(self, master_image: "Image", proxies: list[NodeProxy]):
        self.image = master_image
        self.rt = master_image.rt
        self.env = self.rt.env
        self.proxies = proxies

    @property
    def window(self) -> int:
        """Outstanding tasks allowed per node: the executing one plus the
        presend credit."""
        return 1 + self.rt.config.presend

    def run(self):
        """Round-robin polling loop (a simulated process)."""
        rt = self.rt
        dm = rt.datamove
        depth = 0 if dm is None else dm.presend_depth
        batching = dm is not None and dm.coalescer is not None
        while rt.running:
            progressed = False
            for proxy in self.proxies:
                batch: "list[Task] | None" = [] if batching else None
                while proxy.outstanding < self.window:
                    task = self.image.scheduler.next_task(proxy)
                    if task is None:
                        break
                    proxy.outstanding += 1
                    proxy.tasks_dispatched += 1
                    proxy.inflight[task.tid] = task
                    task.node_index = proxy.node_index
                    metrics = rt.metrics
                    node_ns = f"cluster.node{proxy.node_index}"
                    metrics.inc(f"{node_ns}.dispatched")
                    if proxy.outstanding > 1:
                        # Shipped while an earlier task still runs there:
                        # this dispatch's data movement is presend overlap.
                        metrics.inc(f"{node_ns}.presends")
                    metrics.gauge(f"{node_ns}.outstanding").set(
                        proxy.outstanding)
                    if batch is not None and self._staged(task, proxy):
                        # Inputs already at the node: no staging leg, so
                        # the control message can fuse with siblings from
                        # this poll round into one batched AM.
                        batch.append(task)
                    else:
                        self.env.process(self._dispatch(proxy, task))
                    progressed = True
                if batch:
                    if len(batch) == 1:
                        self.env.process(self._dispatch(proxy, batch[0]))
                    else:
                        self.env.process(self._dispatch_batch(proxy, batch))
                if depth and self._prestage(proxy, depth):
                    progressed = True
            if not progressed:
                yield rt.wait_for_work()

    def _staged(self, task: Task, proxy: NodeProxy) -> bool:
        """True when every input region is already current somewhere on the
        proxy's node (dispatch needs no staging fetches)."""
        rt = self.rt
        return all(proxy.node_index in rt.directory.nodes_with(acc.region)
                   for acc in task.inputs)

    def _dispatch(self, proxy: NodeProxy, task: Task):
        """Stage data at the node, then start remote execution."""
        rt = self.rt
        task.state = TaskState.RUNNING
        task.assigned_to = proxy
        # Node-level staging: every read region must be current somewhere on
        # the target node (the slave's local coherence handles host<->GPU).
        node_host = rt.host_space(proxy.node_index)
        fetches = []
        for acc in task.inputs:
            if proxy.node_index in rt.directory.nodes_with(acc.region):
                continue
            fetches.append(self.env.process(
                rt.coherence.fetch(acc.region, node_host)))
        if fetches:
            yield self.env.all_of(fetches)
        # Control message starting the remote execution (fire and forget —
        # completion comes back via its own active message).
        start = self.env.now
        yield rt.am.request(0, proxy.node_index, "nanos.run_task", task)
        if rt.tracer is not None:
            rt.tracer.record("message", f"run:{task.name}",
                             f"ctl:0->{proxy.node_index}", start,
                             self.env.now)

    def _dispatch_batch(self, proxy: NodeProxy, tasks: list[Task]):
        """Start several staged tasks with one fused control message:
        one wire latency + handler overhead for the whole batch instead of
        one per task — the dispatch-path face of transfer coalescing."""
        rt = self.rt
        for task in tasks:
            task.state = TaskState.RUNNING
            task.assigned_to = proxy
        start = self.env.now
        yield rt.am.request(0, proxy.node_index, "nanos.run_tasks",
                            list(tasks),
                            payload_bytes=SHORT_SIZE * len(tasks),
                            fused=len(tasks))
        rt.metrics.inc("cluster.ctl_batches")
        rt.metrics.inc("cluster.ctl_batched_tasks", len(tasks))
        nic_tx = rt.machine.nodes[0].nic_tx
        if nic_tx is not None:
            nic_tx.count_fused(len(tasks))
        if rt.tracer is not None:
            names = ",".join(t.name for t in tasks)
            rt.tracer.record("message", f"run[{len(tasks)}]:{names}",
                             f"ctl:0->{proxy.node_index}", start,
                             self.env.now)

    def _prestage(self, proxy: NodeProxy, depth: int) -> bool:
        """Speculatively move the inputs of the next ``depth`` queued tasks
        to the proxy's node (scheduler lookahead beyond the credit window).
        Returns True when new fetches were actually started."""
        rt = self.rt
        node_host = rt.host_space(proxy.node_index)
        launched = False
        for task in self.image.scheduler.peek_for(proxy, depth):
            if task.tid in proxy.prestaged:
                continue
            proxy.prestaged.add(task.tid)
            rt.metrics.inc(f"cluster.node{proxy.node_index}.prestages")
            for acc in task.inputs:
                if proxy.node_index in rt.directory.nodes_with(acc.region):
                    continue
                self.env.process(
                    self._prestage_fetch(acc.region, node_host))
                launched = True
        return launched

    def _prestage_fetch(self, region, node_host):
        try:
            yield from self.rt.coherence.fetch(region, node_host)
        except RegionLostError:
            # Speculative fetch racing a device loss: give up quietly —
            # the real dispatch repeats the fetch under fault recovery.
            self.rt.metrics.inc("cluster.prestage_aborted")

    def on_remote_complete(self, task: Task, node_index: int) -> None:
        """Handler-side bookkeeping for a task completion message.

        Completions are deduplicated against the proxy's in-flight set:
        an acknowledgement for a task the fault engine already rerouted
        away from this node (or that a retried message delivered twice)
        must not decrement the presend window a second time, or the
        window would leak credit and over-dispatch.
        """
        if task.state is TaskState.FINISHED:
            self.rt.metrics.inc("cluster.stale_completions")
            return
        finished_proxy = None
        for proxy in self.proxies:
            if proxy.node_index == node_index:
                if task.tid not in proxy.inflight:
                    # A completion from a node the task was already pulled
                    # back from (device blacklisted, task rerouted): the
                    # dispatch credit was reclaimed by forget_dispatch.
                    self.rt.metrics.inc("cluster.stale_completions")
                    return
                del proxy.inflight[task.tid]
                proxy.prestaged.discard(task.tid)
                proxy.outstanding -= 1
                assert proxy.outstanding >= 0, "presend window broke"
                self.rt.metrics.gauge(
                    f"cluster.node{node_index}.outstanding").set(
                        proxy.outstanding)
                finished_proxy = proxy
                break
        # Credit the proxy (not the slave-side worker) so successor-first
        # hints keep follow-up tasks on the same node.
        self.image.account_finished(task, finished_proxy)

    def forget_dispatch(self, task: Task, node_index: int) -> None:
        """Reclaim the dispatch credit for a task being rerouted off a
        node (fault recovery).  Idempotent: a completion message that
        still arrives later is recognised as stale via ``inflight``."""
        for proxy in self.proxies:
            if proxy.node_index == node_index:
                if proxy.inflight.pop(task.tid, None) is not None:
                    proxy.outstanding -= 1
                    assert proxy.outstanding >= 0, "presend window broke"
                    self.rt.metrics.gauge(
                        f"cluster.node{node_index}.outstanding").set(
                            proxy.outstanding)
                return
