"""Execution tracing (the Paraver/Extrae role in the BSC ecosystem).

Nanos++ installations are habitually analyzed with Paraver timelines; this
module records the same kinds of spans from the simulated execution — task
bodies per execution place, kernels, data transfers per link, cluster
control messages, and ``stage`` spans for runtime phases — and can export
both a minimal Paraver ``.prv`` trace and a Chrome trace-event JSON
(loadable in ``chrome://tracing`` / Perfetto).  Per-place utilization and
idle-gap queries let the tests assert scheduling properties (e.g. that a
GPU never runs two kernels at once, or that prefetch removed a staging
gap).

The example below is complete and runs as-is (the doc-snippet smoke test
executes it)::

    from repro.runtime import Tracer

    tracer = Tracer()                      # pass to Runtime(..., tracer=...)
    tracer.record("task", "k0", "gpu:0:0", start=0.0, end=1.0)
    tracer.record("stage", "flush", "gpu:0:0", start=2.0, end=3.0)
    assert tracer.utilization("gpu:0:0", makespan=4.0) == 0.5
    assert tracer.gaps("gpu:0:0") == [(1.0, 2.0)]      # idle between spans
    prv = tracer.to_paraver()              # Paraver .prv text
    json_text = tracer.to_chrome()         # chrome://tracing JSON

In a real run the runtime records the spans: build the runtime as
``Runtime(machine, config, tracer=tracer)`` and export after ``run_main``
(see ``examples/metrics_report.py``).
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterable, Optional

__all__ = ["Tracer", "TraceEvent", "CATEGORIES", "current_tracer",
           "install"]

#: Span categories recorded by the instrumented runtime.
CATEGORIES = ("task", "kernel", "transfer", "message", "stage", "fault",
              "sanitizer")


@dataclass(frozen=True)
class TraceEvent:
    """One span on one place's timeline."""

    category: str
    name: str
    place: str          # e.g. "gpu:0:1", "smp:0:3", "net:0->2"
    start: float
    end: float
    nbytes: int = 0

    def __post_init__(self):
        if self.category not in CATEGORIES:
            raise ValueError(f"unknown trace category {self.category!r}")
        if self.end < self.start:
            raise ValueError("span ends before it starts")

    @property
    def duration(self) -> float:
        return self.end - self.start


class Tracer:
    """Collects spans; provides queries and Paraver export."""

    def __init__(self):
        self.events: list[TraceEvent] = []

    # -- recording ---------------------------------------------------------
    def record(self, category: str, name: str, place: str, start: float,
               end: float, nbytes: int = 0) -> None:
        self.events.append(TraceEvent(category, name, place, start, end,
                                      nbytes))

    # -- queries ----------------------------------------------------------
    def by_category(self, category: str) -> list[TraceEvent]:
        return [e for e in self.events if e.category == category]

    def places(self) -> list[str]:
        return sorted({e.place for e in self.events})

    def timeline(self, place: str) -> list[TraceEvent]:
        return sorted((e for e in self.events if e.place == place),
                      key=lambda e: (e.start, e.end))

    def busy_time(self, place: str,
                  categories: Optional[Iterable[str]] = None) -> float:
        """Union length of the place's spans (overlaps merged)."""
        spans = [(e.start, e.end) for e in self.timeline(place)
                 if categories is None or e.category in categories]
        if not spans:
            return 0.0
        total = 0.0
        cur_start, cur_end = spans[0]
        for start, end in spans[1:]:
            if start > cur_end:
                total += cur_end - cur_start
                cur_start, cur_end = start, end
            else:
                cur_end = max(cur_end, end)
        return total + (cur_end - cur_start)

    def utilization(self, place: str, makespan: float,
                    categories: Optional[Iterable[str]] = None) -> float:
        if makespan <= 0:
            return 0.0
        return self.busy_time(place, categories) / makespan

    def bytes_moved(self) -> int:
        return sum(e.nbytes for e in self.by_category("transfer"))

    def gaps(self, place: str,
             categories: Optional[Iterable[str]] = None
             ) -> list[tuple[float, float]]:
        """Idle intervals between the place's spans (overlaps merged).

        Useful for the "where did the time go" questions the paper's
        evaluation asks: a GPU gap between a ``stage`` span and the next
        ``kernel`` span is staging latency prefetch should have hidden.
        """
        spans = [(e.start, e.end) for e in self.timeline(place)
                 if categories is None or e.category in categories]
        if not spans:
            return []
        idle: list[tuple[float, float]] = []
        cur_end = spans[0][1]
        for start, end in spans[1:]:
            if start > cur_end:
                idle.append((cur_end, start))
            cur_end = max(cur_end, end)
        return idle

    # -- Paraver export -----------------------------------------------------
    def to_paraver(self) -> str:
        """A minimal Paraver .prv rendering: one 'thread' per place, state
        records (type 1) per span, in microseconds."""
        places = self.places()
        ids = {p: i + 1 for i, p in enumerate(places)}
        end_us = max((e.end for e in self.events), default=0.0) * 1e6
        header = (f"#Paraver (repro):{int(end_us)}_us:"
                  f"1(1):{len(places)}({','.join('1' for _ in places)})")
        lines = [header]
        cat_code = {c: i + 1 for i, c in enumerate(CATEGORIES)}
        for e in sorted(self.events, key=lambda e: e.start):
            tid = ids[e.place]
            lines.append(
                f"1:{tid}:1:{tid}:1:{int(e.start * 1e6)}:"
                f"{int(e.end * 1e6)}:{cat_code[e.category]}"
            )
        return "\n".join(lines) + "\n"

    # -- Chrome trace export ------------------------------------------------
    def to_chrome(self, metrics: Optional[dict] = None) -> str:
        """Chrome trace-event JSON (open in ``chrome://tracing`` or
        https://ui.perfetto.dev).

        Each place becomes a named thread under one process; every span is a
        complete (``"ph": "X"``) event with microsecond timestamps.  Transfer
        spans carry their byte count in ``args``.  An optional ``metrics``
        dict (e.g. ``registry.snapshot()``) is embedded under
        ``otherData`` so one file holds both the timeline and the counters.
        """
        places = self.places()
        tids = {p: i + 1 for i, p in enumerate(places)}
        events: list[dict] = [
            {"name": "thread_name", "ph": "M", "pid": 1, "tid": tids[p],
             "args": {"name": p}}
            for p in places
        ]
        for e in sorted(self.events, key=lambda e: (e.start, e.end)):
            record: dict = {
                "name": e.name,
                "cat": e.category,
                "ph": "X",
                "pid": 1,
                "tid": tids[e.place],
                "ts": e.start * 1e6,
                "dur": e.duration * 1e6,
            }
            if e.nbytes:
                record["args"] = {"nbytes": e.nbytes}
            events.append(record)
        doc: dict = {"traceEvents": events, "displayTimeUnit": "ms"}
        if metrics is not None:
            doc["otherData"] = {"metrics": metrics}
        return json.dumps(doc, indent=1)


# ----------------------------------------------------------------------
# Installation (how a Runtime built elsewhere finds the active tracer)
# ----------------------------------------------------------------------
_ACTIVE: "list[Tracer]" = []


def current_tracer() -> "Tracer | None":
    """The innermost installed tracer, or None."""
    return _ACTIVE[-1] if _ACTIVE else None


@contextmanager
def install(tracer: "Tracer | None" = None):
    """Context manager: runtimes built inside record into the tracer.

    Mirrors :func:`repro.sanitizer.install` — app entry points construct
    their own ``Program``/``Runtime``, so callers that cannot pass
    ``tracer=`` through (the service runner, scripts wrapping an app)
    install one around the call instead::

        from repro.runtime import trace

        with trace.install() as tracer:
            run_ompss(machine, size, config=config)
        chrome_json = tracer.to_chrome()

    Recording is passive (spans are appended after the fact, never
    scheduled), so a traced run's simulated timestamps are bit-identical
    to an untraced one.
    """
    t = tracer if tracer is not None else Tracer()
    _ACTIVE.append(t)
    try:
        yield t
    finally:
        _ACTIVE.remove(t)
