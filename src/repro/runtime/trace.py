"""Execution tracing (the Paraver/Extrae role in the BSC ecosystem).

Nanos++ installations are habitually analyzed with Paraver timelines; this
module records the same kinds of spans from the simulated execution — task
bodies per execution place, data transfers per link, cluster control
messages — and can export a minimal Paraver ``.prv`` trace plus compute
per-place utilization, which the tests use to assert scheduling properties
(e.g. that a GPU never runs two kernels at once).

Enable by passing a :class:`Tracer` to the runtime::

    tracer = Tracer()
    rt = Runtime(machine, config, tracer=tracer)
    ...
    print(tracer.utilization("gpu:0:0", rt.env.now))
    Path("run.prv").write_text(tracer.to_paraver())
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

__all__ = ["Tracer", "TraceEvent", "CATEGORIES"]

#: Span categories recorded by the instrumented runtime.
CATEGORIES = ("task", "kernel", "transfer", "message", "stage")


@dataclass(frozen=True)
class TraceEvent:
    """One span on one place's timeline."""

    category: str
    name: str
    place: str          # e.g. "gpu:0:1", "smp:0:3", "net:0->2"
    start: float
    end: float
    nbytes: int = 0

    def __post_init__(self):
        if self.category not in CATEGORIES:
            raise ValueError(f"unknown trace category {self.category!r}")
        if self.end < self.start:
            raise ValueError("span ends before it starts")

    @property
    def duration(self) -> float:
        return self.end - self.start


class Tracer:
    """Collects spans; provides queries and Paraver export."""

    def __init__(self):
        self.events: list[TraceEvent] = []

    # -- recording ---------------------------------------------------------
    def record(self, category: str, name: str, place: str, start: float,
               end: float, nbytes: int = 0) -> None:
        self.events.append(TraceEvent(category, name, place, start, end,
                                      nbytes))

    # -- queries ----------------------------------------------------------
    def by_category(self, category: str) -> list[TraceEvent]:
        return [e for e in self.events if e.category == category]

    def places(self) -> list[str]:
        return sorted({e.place for e in self.events})

    def timeline(self, place: str) -> list[TraceEvent]:
        return sorted((e for e in self.events if e.place == place),
                      key=lambda e: (e.start, e.end))

    def busy_time(self, place: str,
                  categories: Optional[Iterable[str]] = None) -> float:
        """Union length of the place's spans (overlaps merged)."""
        spans = [(e.start, e.end) for e in self.timeline(place)
                 if categories is None or e.category in categories]
        if not spans:
            return 0.0
        total = 0.0
        cur_start, cur_end = spans[0]
        for start, end in spans[1:]:
            if start > cur_end:
                total += cur_end - cur_start
                cur_start, cur_end = start, end
            else:
                cur_end = max(cur_end, end)
        return total + (cur_end - cur_start)

    def utilization(self, place: str, makespan: float,
                    categories: Optional[Iterable[str]] = None) -> float:
        if makespan <= 0:
            return 0.0
        return self.busy_time(place, categories) / makespan

    def bytes_moved(self) -> int:
        return sum(e.nbytes for e in self.by_category("transfer"))

    # -- Paraver export -----------------------------------------------------
    def to_paraver(self) -> str:
        """A minimal Paraver .prv rendering: one 'thread' per place, state
        records (type 1) per span, in microseconds."""
        places = self.places()
        ids = {p: i + 1 for i, p in enumerate(places)}
        end_us = max((e.end for e in self.events), default=0.0) * 1e6
        header = (f"#Paraver (repro):{int(end_us)}_us:"
                  f"1(1):{len(places)}({','.join('1' for _ in places)})")
        lines = [header]
        cat_code = {c: i + 1 for i, c in enumerate(CATEGORIES)}
        for e in sorted(self.events, key=lambda e: e.start):
            tid = ids[e.place]
            lines.append(
                f"1:{tid}:1:{tid}:1:{int(e.start * 1e6)}:"
                f"{int(e.end * 1e6)}:{cat_code[e.category]}"
            )
        return "\n".join(lines) + "\n"
