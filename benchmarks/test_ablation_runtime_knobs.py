"""Ablations of the runtime design choices DESIGN.md calls out.

Each ablation isolates one mechanism on the workload that exercises it:

* GPU transfer/compute **overlap** and **prefetch** (Section III.D.2) on a
  transfer-heavy multi-GPU matmul;
* the affinity scheduler's **work stealing** on an imbalanced workload;
* the **presend** window on the cluster matmul (Section III.D.1);
* **slave-to-slave** routing on a workload whose data lives on slaves.
"""

import pytest

from repro.apps import matmul
from repro.bench.harness import fresh_cluster, fresh_multi_gpu
from repro.runtime import RuntimeConfig

SIZE = matmul.MatmulSize(n=6144, bs=1024)


def run_multi_gpu(**cfg):
    config = RuntimeConfig(functional=False, **cfg)
    return matmul.run_ompss(fresh_multi_gpu(4), SIZE, config=config).metric


def run_cluster(nodes=4, init="smp", **cfg):
    defaults = dict(functional=False, scheduler="affinity",
                    cache_policy="wb")
    defaults.update(cfg)
    return matmul.run_ompss(fresh_cluster(nodes), SIZE,
                            config=RuntimeConfig(**defaults),
                            init=init).metric


def test_ablation_overlap_and_prefetch(run_once):
    def sweep():
        return {
            "baseline": run_multi_gpu(),
            "overlap": run_multi_gpu(overlap=True),
            "prefetch": run_multi_gpu(prefetch=True),
            "both": run_multi_gpu(overlap=True, prefetch=True),
        }

    r = run_once(sweep)
    print()
    for name, value in r.items():
        print(f"  {name:10s} {value:8.1f} GFLOP/s")
    # Prefetch alone is serialized behind kernels (paper III.D.2); combined
    # with overlap it must be the best configuration.
    assert r["both"] > r["baseline"]
    assert r["both"] >= r["prefetch"]
    assert r["both"] >= 0.95 * r["overlap"]


def test_ablation_work_stealing(run_once):
    def sweep():
        return {
            "steal": run_multi_gpu(scheduler="affinity", steal=True),
            "no_steal": run_multi_gpu(scheduler="affinity", steal=False),
        }

    r = run_once(sweep)
    print()
    for name, value in r.items():
        print(f"  {name:10s} {value:8.1f} GFLOP/s")
    # Stealing is the affinity scheduler's load-balance escape hatch: it
    # must not hurt, and usually helps when chains finish unevenly.
    assert r["steal"] >= 0.9 * r["no_steal"]


def test_ablation_presend_window(run_once):
    def sweep():
        return {ps: run_cluster(presend=ps, overlap=True, prefetch=True)
                for ps in (0, 1, 2, 4)}

    r = run_once(sweep)
    print()
    for ps, value in r.items():
        print(f"  presend={ps}: {value:8.1f} GFLOP/s")
    # A wider window overlaps the staging of queued tasks with execution.
    assert r[4] > 1.15 * r[0]
    assert r[1] > r[0]


def test_ablation_rr_chunking(run_once):
    """No-affinity placement granularity: pure cyclic dealing beats chunked
    dealing for the paper's workloads — chunking concentrates each tile row
    of B on one node, creating migrating NIC hotspots during the wavefront,
    while cyclic spreads every row's sources across the fabric."""

    def sweep():
        return {chunk: run_cluster(nodes=8, rr_chunk=chunk, presend=4,
                                   overlap=True, prefetch=True)
                for chunk in (1, 4, 16)}

    r = run_once(sweep)
    print()
    for chunk, value in r.items():
        print(f"  rr_chunk={chunk:2d}: {value:8.1f} GFLOP/s")
    assert r[1] >= r[16], "cyclic dealing must not lose to coarse chunks"


def test_ablation_slave_to_slave(run_once):
    def sweep():
        return {
            "stos": run_cluster(nodes=8, slave_to_slave=True, presend=4,
                                overlap=True, prefetch=True),
            "mtos": run_cluster(nodes=8, slave_to_slave=False, presend=4,
                                overlap=True, prefetch=True),
        }

    r = run_once(sweep)
    print()
    for name, value in r.items():
        print(f"  {name:6s} {value:8.1f} GFLOP/s")
    # Routing slave data through the master serializes on its NIC ports.
    assert r["stos"] > 1.3 * r["mtos"]
