"""End-to-end throughput regression gate.

Measures ``sim_events_per_wall_second`` on the canonical end-to-end figure
point (matmul, 2 GPUs, write-back + affinity — the same run BENCH_core.json
reports) and fails when it regresses more than the tolerance against the
checked-in baseline, ``perf_baseline.json``.

Raw events/sec is machine-dependent, so the gated quantity is *normalized
throughput*: events/sec divided by a calibration score measured in the same
process — a fixed pure-Python workload (function calls, dict traffic, heap
churn: the same operation mix the engine hot path is made of).  The ratio
cancels most of the host-speed difference between the machine that wrote
the baseline and the machine running the gate, which is what makes a
checked-in number gateable on CI at all.

Usage::

    PYTHONPATH=src python benchmarks/perf/perf_gate.py            # gate
    PYTHONPATH=src python benchmarks/perf/perf_gate.py --update   # rebase
    PYTHONPATH=src python benchmarks/perf/perf_gate.py --quick    # CI mode

Quick mode shrinks the matrix (256 vs 1024) so the whole gate runs in a
few seconds; baseline entries are kept per mode, so quick and full runs
never gate against each other's numbers.
"""

from __future__ import annotations

import argparse
import heapq
import json
import os
import time

from repro.apps import matmul
from repro.bench.harness import fresh_multi_gpu
from repro.runtime.config import RuntimeConfig

SCHEMA = "repro.bench.perf_gate/v1"
BASELINE_PATH = os.path.join(os.path.dirname(__file__),
                             "perf_baseline.json")


def calibrate(rounds: int = 3, n: int = 60_000) -> float:
    """Host speed score: iterations/sec of an engine-shaped Python loop."""

    def one_round() -> float:
        heap: list = []
        d: dict = {}
        total = 0
        t0 = time.perf_counter()
        for i in range(n):
            heapq.heappush(heap, (i % 97, i))
            d[i % 512] = i
            total += d.get((i * 7) % 512, 0)
            if heap and i % 3 == 0:
                heapq.heappop(heap)
        elapsed = time.perf_counter() - t0
        assert total >= 0
        return n / elapsed

    return max(one_round() for _ in range(rounds))


def measure(quick: bool, repeats: int = 5) -> dict:
    """Best-of-``repeats`` end-to-end run; returns throughput numbers."""
    size = matmul.MatmulSize(n=256, bs=64) if quick \
        else matmul.MatmulSize(n=1024, bs=128)
    cfg = RuntimeConfig(functional=False, cache_policy="wb",
                        scheduler="affinity")
    best = None
    for _ in range(repeats):
        res = matmul.run_ompss(fresh_multi_gpu(2), size, config=cfg)
        eps = res.metrics["engine.events_per_wall_second"]
        if best is None or eps > best["events_per_wall_second"]:
            best = {
                "events_per_wall_second": eps,
                "events_processed": res.metrics["engine.events_processed"],
                "makespan": res.makespan,
            }
    return best


def run_gate(quick: bool, update: bool, tolerance: float,
             baseline_path: str = BASELINE_PATH) -> int:
    mode = "quick" if quick else "full"
    calibration = calibrate()
    result = measure(quick)
    normalized = result["events_per_wall_second"] / calibration
    print(f"mode: {mode}")
    print(f"calibration: {calibration:,.0f} iters/s")
    print(f"throughput: {result['events_per_wall_second']:,.0f} events/s "
          f"({result['events_processed']} events)")
    print(f"normalized: {normalized:.4f}")

    baseline = {}
    if os.path.exists(baseline_path):
        with open(baseline_path) as fh:
            baseline = json.load(fh)

    if update:
        baseline.setdefault("schema", SCHEMA)
        baseline["tolerance"] = tolerance
        baseline.setdefault("modes", {})[mode] = {
            "normalized_throughput": normalized,
            "events_per_wall_second": result["events_per_wall_second"],
            "calibration": calibration,
            "events_processed": result["events_processed"],
        }
        with open(baseline_path, "w") as fh:
            json.dump(baseline, fh, indent=1)
            fh.write("\n")
        print(f"baseline updated: {baseline_path}")
        return 0

    entry = baseline.get("modes", {}).get(mode)
    if entry is None:
        print(f"no {mode!r} baseline in {baseline_path}; "
              "run with --update to create one")
        return 2
    floor = entry["normalized_throughput"] * (1.0 - tolerance)
    verdict = "PASS" if normalized >= floor else "FAIL"
    print(f"baseline normalized: {entry['normalized_throughput']:.4f} "
          f"(floor at -{tolerance:.0%}: {floor:.4f}) -> {verdict}")
    if verdict == "FAIL":
        print("end-to-end throughput regressed beyond tolerance; if the "
              "slowdown is intentional, rebase with --update")
        return 1
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small matrix (CI mode; seconds, not minutes)")
    parser.add_argument("--update", "--update-baseline", dest="update",
                        action="store_true",
                        help="rewrite the baseline with this run's numbers")
    parser.add_argument("--tolerance", type=float, default=0.20,
                        help="allowed fractional regression (default 0.20)")
    parser.add_argument("--baseline", default=BASELINE_PATH,
                        help="baseline file (default: perf_baseline.json "
                             "next to this script)")
    args = parser.parse_args(argv)
    return run_gate(args.quick, args.update, args.tolerance, args.baseline)


if __name__ == "__main__":
    raise SystemExit(main())
