"""Fault-injection overhead and recovery-latency benchmarks.

Three questions, each answered in *simulated* time (deterministic, so the
numbers are comparable across machines and PRs):

* **zero-overhead + checkpoint cost** — an empty plan must not move the
  makespan by a single bit; arming the engine with inert events prices the
  protect-outputs checkpoint (eager device->host writeback on every
  commit) that fault mode buys recovery with;
* **AM fault tolerance** — how much does cluster matmul's makespan inflate
  as the message-drop probability rises (each retry costs a real watchdog
  timeout plus backoff)?
* **GPU-loss recovery** — how much virtual time does losing one of two
  GPUs mid-run cost (blacklist + invalidation + re-execution), and how
  many tasks had to re-run?

Results land in ``BENCH_faults.json``.  Usage::

    PYTHONPATH=src python benchmarks/perf/faults_bench.py            # full
    PYTHONPATH=src python benchmarks/perf/faults_bench.py --smoke    # CI
    PYTHONPATH=src python benchmarks/perf/faults_bench.py --out path.json

Smoke mode shrinks the problem sizes; it validates the suite, not the
numbers.
"""

from __future__ import annotations

import argparse
import json
import time

from repro.apps import matmul
from repro.bench.harness import fresh_cluster, fresh_multi_gpu
from repro.faults import FaultEvent, FaultPlan
from repro.runtime.config import RuntimeConfig

SCHEMA = "repro.bench.faults/v1"


def _mgpu_run(size, plan):
    cfg = RuntimeConfig(functional=False, cache_policy="wb",
                        scheduler="affinity", fault_plan=plan)
    return matmul.run_ompss(fresh_multi_gpu(2), size, config=cfg)


def _cluster_run(size, plan):
    cfg = RuntimeConfig(functional=False, cache_policy="wb",
                        scheduler="affinity", presend=2, fault_plan=plan)
    return matmul.run_ompss(fresh_cluster(2), size, config=cfg)


def bench_zero_overhead(size) -> dict:
    """Empty plan = bit-identical makespan; inert plan = engine armed but
    silent, so its inflation is purely the checkpoint-on-commit writeback
    cost.  Wall-clock ratios are recorded for context only."""
    t0 = time.perf_counter()
    bare = _mgpu_run(size, None)
    bare_wall = time.perf_counter() - t0

    t0 = time.perf_counter()
    empty = _mgpu_run(size, FaultPlan())
    empty_wall = time.perf_counter() - t0

    inert = FaultPlan(events=(
        FaultEvent(kind="kernel_abort", nth=10**9),), seed=0)
    t0 = time.perf_counter()
    armed = _mgpu_run(size, inert)
    armed_wall = time.perf_counter() - t0

    assert empty.makespan == bare.makespan, "empty plan moved the makespan"
    return {
        "matrix_n": size.n,
        "makespan": bare.makespan,
        "empty_plan_bit_identical": empty.makespan == bare.makespan,
        "armed_inert_makespan": armed.makespan,
        "armed_inert_inflation": armed.makespan / bare.makespan - 1.0,
        "wall_overhead_empty": empty_wall / bare_wall - 1.0,
        "wall_overhead_armed": armed_wall / bare_wall - 1.0,
    }


def bench_am_drop_sweep(size, probabilities) -> dict:
    """Cluster matmul makespan inflation vs message-drop probability."""
    baseline = _cluster_run(size, None)
    points = []
    for p in probabilities:
        plan = FaultPlan(events=(
            FaultEvent(kind="am_drop", probability=p),
        ), seed=42, am_timeout=2e-3, am_backoff=2e-4)
        res = _cluster_run(size, plan)
        points.append({
            "drop_probability": p,
            "makespan": res.makespan,
            "inflation": res.makespan / baseline.makespan - 1.0,
            "retries": res.metrics.get("am.retries", 0),
            "dropped": res.metrics.get("faults.am_dropped", 0),
        })
    return {
        "matrix_n": size.n,
        "baseline_makespan": baseline.makespan,
        "points": points,
    }


def bench_gpu_loss_recovery(size) -> dict:
    """Cost of losing one of two GPUs at 40% of the fault-free makespan."""
    baseline = _mgpu_run(size, None)
    plan = FaultPlan(events=(
        FaultEvent(kind="gpu_loss", node=0, gpu=1,
                   at=baseline.makespan * 0.4),
    ), seed=7)
    res = _mgpu_run(size, plan)
    single = RuntimeConfig(functional=False, cache_policy="wb",
                           scheduler="affinity")
    lone = matmul.run_ompss(fresh_multi_gpu(1), size, config=single)
    return {
        "matrix_n": size.n,
        "baseline_makespan": baseline.makespan,
        "degraded_makespan": res.makespan,
        # 1.0 = free recovery; the single-GPU run bounds the worst case.
        "inflation": res.makespan / baseline.makespan - 1.0,
        "single_gpu_makespan": lone.makespan,
        "tasks_reexecuted": res.metrics.get("faults.tasks_reexecuted", 0),
        "tasks_rebalanced": res.metrics.get("faults.tasks_rebalanced", 0),
    }


def run_suite(smoke: bool = False) -> dict:
    mgpu_size = matmul.MatmulSize(n=128, bs=32) if smoke \
        else matmul.MatmulSize(n=512, bs=64)
    cluster_size = matmul.MatmulSize(n=96, bs=32) if smoke \
        else matmul.MatmulSize(n=256, bs=64)
    probs = (0.02, 0.1) if smoke else (0.01, 0.02, 0.05, 0.1, 0.2)
    results = {
        "zero_overhead": bench_zero_overhead(mgpu_size),
        "am_drop_sweep": bench_am_drop_sweep(cluster_size, probs),
        "gpu_loss_recovery": bench_gpu_loss_recovery(mgpu_size),
    }
    return {
        "schema": SCHEMA,
        "mode": "smoke" if smoke else "full",
        "results": results,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="tiny sizes; validates the suite, not the perf")
    parser.add_argument("--out", default="BENCH_faults.json",
                        help="output path (default: ./BENCH_faults.json)")
    args = parser.parse_args(argv)
    report = run_suite(smoke=args.smoke)
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=1)
        fh.write("\n")
    res = report["results"]
    zo = res["zero_overhead"]
    print(f"zero_overhead: empty plan bit-identical="
          f"{zo['empty_plan_bit_identical']}, armed inflation="
          f"{zo['armed_inert_inflation'] * 100:.3f}%")
    for pt in res["am_drop_sweep"]["points"]:
        print(f"am_drop p={pt['drop_probability']}: "
              f"{pt['inflation'] * 100:+.1f}% makespan, "
              f"{pt['retries']} retries")
    gl = res["gpu_loss_recovery"]
    print(f"gpu_loss: +{gl['inflation'] * 100:.1f}% makespan "
          f"(single-GPU bound +"
          f"{(gl['single_gpu_makespan'] / gl['baseline_makespan'] - 1) * 100:.1f}%), "
          f"{gl['tasks_reexecuted']} tasks re-executed")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
