"""Scheduling benchmark: the paper tier vs the adaptive tier, per point.

Runs every scheduling policy (``bf``/``default``/``affinity`` — the paper
tier — and ``ws``/``cp``/``adaptive`` — the adaptive tier) over the
scheduling-sensitive evaluation points: the tiled-Cholesky task graph at
two problem sizes on the multi-GPU node, the same graph on the GPU
cluster, and a regular figure workload (matmul) as the locality-dominated
control.  The Cholesky multi-GPU points run under write-through — the
paper's conservative cache mode — so the ablation also measures whether a
policy can *recover* the write-back performance without being told: the
static policies execute the configuration as given, while the adaptive
meta-scheduler watches the link/write-back counters and switches the
commit write mode mid-run (docs/SCHEDULERS.md).

Two headline numbers are recorded and gated:

* ``cholesky_geomean_improvement`` — geometric-mean makespan reduction of
  the best adaptive-tier policy over the best paper-tier policy across
  the Cholesky problem sizes (floor: ``GEOMEAN_FLOOR``);
* ``adaptive_max_regret`` — the worst slowdown of ``adaptive`` against
  the best *static* policy on any measured point (ceiling:
  ``REGRET_CEIL``) — the meta-scheduler must never lose much by adapting.

Everything is simulated time: machine-independent, exactly reproducible,
zero-tolerance comparable against the checked-in ``BENCH_sched.json``.

Usage::

    PYTHONPATH=src python benchmarks/perf/sched_bench.py            # full
    PYTHONPATH=src python benchmarks/perf/sched_bench.py --quick    # CI
    PYTHONPATH=src python benchmarks/perf/sched_bench.py --out path.json
    PYTHONPATH=src python benchmarks/perf/sched_bench.py --check    # gate

``--quick`` shrinks the problem sizes so the suite runs in seconds; the
regime (write-through pressure, fan-in DAG) is preserved by construction,
so the gates are checked in both modes, but quick results are never
written over the checked-in full numbers.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys

from repro.apps import cholesky, matmul
from repro.bench.harness import CLUSTER_BEST
from repro.bench.sweep import PointSpec, run_points
from repro.runtime.config import RuntimeConfig

SCHEMA = "repro.bench.sched/v1"
RESULT_PATH = os.path.join(os.path.dirname(__file__), "..", "..",
                           "BENCH_sched.json")

#: paper tier, then adaptive tier — order matters for the report.
PAPER_TIER = ("bf", "default", "affinity")
NEW_TIER = ("ws", "cp", "adaptive")

#: the gate: best adaptive-tier policy must beat the best paper-tier
#: policy by this geomean makespan fraction across the Cholesky sizes.
GEOMEAN_FLOOR = 0.15

#: the gate: ``adaptive`` may trail the best static policy by at most
#: this fraction on any point.
REGRET_CEIL = 0.03

#: counters/info pulled into the per-run rows of the report.
_METRIC_KEYS = {
    "steals": "scheduler.steals",
    "switches": "scheduler.adaptive.switches",
    "dm_switches": "scheduler.adaptive.datamove_switches",
    "wback": "datamove.write_mode_switches",
}
_INFO_KEYS = {
    "policy": "scheduler.policy",
    "write_mode": "datamove.write_mode",
}

#: write-through Cholesky configuration (see the module docstring).
_CHOLESKY_WT = dict(functional=False, overlap=True, prefetch=True,
                    cache_policy="wt")


def _points(quick: bool) -> dict:
    """point name -> PointSpec template kwargs.  The ``gated`` points are
    the Cholesky problem sizes entering the geomean."""
    if quick:
        sizes = (cholesky.CholeskySize(n=6144, bs=512),
                 cholesky.CholeskySize(n=8192, bs=512))
        cl_size = cholesky.CholeskySize(n=4096, bs=512)
        mm_size = matmul.MatmulSize(n=4096, bs=512)
        cl_nodes = 2
    else:
        sizes = (cholesky.PAPER_CHOLESKY,
                 cholesky.CholeskySize(n=24576, bs=1024))
        cl_size = cholesky.PAPER_CHOLESKY
        mm_size = matmul.PAPER_MATMUL
        # 8 nodes: the width-limited regime where placement dominates (at
        # 4 nodes the graph saturates the machine and FIFO spreading is
        # competitive with locality placement).
        cl_nodes = 8
    cluster_cfg = {k: v for k, v in CLUSTER_BEST.items()
                   if k != "scheduler"}
    points = {}
    for size in sizes:
        points[f"cholesky-{size.n // 1024}k"] = dict(
            app="cholesky", machine="multi_gpu", count=4, size=size,
            cfg=dict(_CHOLESKY_WT), gated=True)
    points["cholesky-cluster"] = dict(
        app="cholesky", machine="cluster", count=cl_nodes, size=cl_size,
        cfg=dict(cluster_cfg, presend=2), gated=False)
    points["matmul-mgpu"] = dict(
        app="matmul", machine="multi_gpu", count=4, size=mm_size,
        cfg=dict(functional=False, overlap=True, prefetch=True),
        gated=False)
    return points


def run_suite(quick: bool, parallel: int = 0) -> dict:
    specs, index = [], []
    points = _points(quick)
    for point, base in points.items():
        for policy in PAPER_TIER + NEW_TIER:
            cfg = dict(base["cfg"], scheduler=policy)
            if policy == "adaptive":
                cfg["adaptive_datamove"] = True
            specs.append(PointSpec(
                figure="sched", series=policy, x=point, app=base["app"],
                machine=base["machine"], count=base["count"],
                size=base["size"], config=RuntimeConfig(**cfg),
                want_metrics=True))
            index.append((point, policy))
    values = run_points(specs, parallel=parallel)

    results: dict = {"schema": SCHEMA, "mode": "quick" if quick else "full",
                     "points": {}, "cholesky_geomean_improvement": None,
                     "adaptive_max_regret": None}
    for (point, policy), val in zip(index, values):
        entry = results["points"].setdefault(point, {})
        snap = val["metrics"]
        row = {"makespan": val["makespan"]}
        row.update({label: snap.get(key, 0)
                    for label, key in _METRIC_KEYS.items()})
        row.update({label: snap.get(key, "-")
                    for label, key in _INFO_KEYS.items()})
        entry[policy] = row

    ratios, regrets = [], []
    for point, entry in results["points"].items():
        paper = min(entry[p]["makespan"] for p in PAPER_TIER)
        new = min(entry[p]["makespan"] for p in NEW_TIER)
        static = min(entry[p]["makespan"]
                     for p in PAPER_TIER + ("ws", "cp"))
        entry["improvement"] = round(1.0 - new / paper, 4)
        regret = entry["adaptive"]["makespan"] / static - 1.0
        entry["adaptive_regret"] = round(regret, 4)
        regrets.append(regret)
        if points[point]["gated"]:
            ratios.append(new / paper)
    results["cholesky_geomean_improvement"] = round(
        1.0 - math.exp(sum(map(math.log, ratios)) / len(ratios)), 4)
    results["adaptive_max_regret"] = round(max(regrets), 4)
    return results


def render(results: dict) -> str:
    lines = [f"sched bench ({results['mode']} mode)"]
    for point, entry in results["points"].items():
        lines.append(f"\n{point}:")
        paper = min(entry[p]["makespan"] for p in PAPER_TIER)
        for policy in PAPER_TIER + NEW_TIER:
            row = entry[policy]
            delta = 1.0 - row["makespan"] / paper
            lines.append(
                f"  {policy:9s} makespan={row['makespan']:.5f}s "
                f"({delta:+6.1%})  steals={row['steals']:>4} "
                f"switches={row['switches']:>2} "
                f"policy={row['policy']} write_mode={row['write_mode']}")
        lines.append(
            f"  best new vs best paper: {entry['improvement']:+.1%}; "
            f"adaptive regret vs best static: "
            f"{entry['adaptive_regret']:+.1%}")
    lines.append(
        f"\ncholesky geomean improvement: "
        f"{results['cholesky_geomean_improvement']:+.1%} "
        f"(floor {GEOMEAN_FLOOR:.0%})")
    lines.append(
        f"adaptive max regret: {results['adaptive_max_regret']:+.1%} "
        f"(ceiling {REGRET_CEIL:.0%})")
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="shrunken sizes (CI smoke; seconds)")
    parser.add_argument("--parallel", type=int, default=0, metavar="N",
                        help="fan points out over N worker processes")
    parser.add_argument("--out", default=None,
                        help="write results JSON here (default: "
                             "BENCH_sched.json at the repo root, full "
                             "mode only)")
    parser.add_argument("--check", action="store_true",
                        help="gate: fail if the geomean improvement is "
                             f"below {GEOMEAN_FLOOR:.0%} or the adaptive "
                             f"regret exceeds {REGRET_CEIL:.0%}")
    args = parser.parse_args(argv)

    results = run_suite(args.quick, parallel=args.parallel)
    print(render(results))

    out = args.out
    if out is None and not args.quick:
        out = os.path.normpath(RESULT_PATH)
    if out:
        with open(out, "w") as fh:
            json.dump(results, fh, indent=1)
            fh.write("\n")
        print(f"\nresults written: {out}")

    if args.check:
        failed = False
        if results["cholesky_geomean_improvement"] < GEOMEAN_FLOOR:
            print(f"FAIL: cholesky geomean improvement "
                  f"{results['cholesky_geomean_improvement']:.1%} is "
                  f"below the {GEOMEAN_FLOOR:.0%} floor", file=sys.stderr)
            failed = True
        if results["adaptive_max_regret"] > REGRET_CEIL:
            print(f"FAIL: adaptive regret "
                  f"{results['adaptive_max_regret']:.1%} exceeds the "
                  f"{REGRET_CEIL:.0%} ceiling", file=sys.stderr)
            failed = True
        if failed:
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
