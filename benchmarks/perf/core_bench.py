"""Core hot-path microbenchmarks: queues, dependency graph, caches, one
end-to-end figure run.

Each structural benchmark times the *current* implementation against a
faithful replica of the seed (pre-overhaul) implementation, so the recorded
``speedup`` is the wall-clock win of the O(n^2) -> O(log n)/O(1) swaps at
that size.  Results land in ``BENCH_core.json``; future PRs are measured
against them.

Usage::

    PYTHONPATH=src python benchmarks/perf/core_bench.py            # full
    PYTHONPATH=src python benchmarks/perf/core_bench.py --smoke    # CI
    PYTHONPATH=src python benchmarks/perf/core_bench.py --out path.json

Smoke mode shrinks every size so the whole suite runs in a few seconds; it
exists to catch crashes and schema drift in CI, never to judge timing.
"""

from __future__ import annotations

import argparse
import json
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Optional

from repro.apps import matmul
from repro.bench.harness import fresh_multi_gpu
from repro.cuda.kernels import KernelSpec
from repro.memory.cache import CacheCapacityError, SoftwareCache
from repro.memory.region import DataObject, PartialOverlapError, Region, relation
from repro.memory.space import DeviceSpace
from repro.runtime.config import RuntimeConfig
from repro.runtime.dependences import DependencyGraph
from repro.runtime.scheduler.base import Scheduler
from repro.runtime.task import Access, Direction, Task, TaskState

SCHEMA = "repro.bench.core/v1"

_NULL_KERNEL = KernelSpec("bench.null", cost=lambda spec, **kw: 1e-6)


# ---------------------------------------------------------------------------
# Seed (pre-overhaul) replicas, kept verbatim-in-spirit as baselines
# ---------------------------------------------------------------------------

class SeedTaskQueue:
    """The seed ready queue: one deque, linear scan-and-delete per poll."""

    def __init__(self):
        self._q: deque = deque()

    def push(self, task) -> None:
        self._q.append(task)

    def push_front(self, task) -> None:
        self._q.appendleft(task)

    def pop_for(self, worker):
        for i, task in enumerate(self._q):
            if worker.accepts(task):
                del self._q[i]
                return task
        return None

    def __len__(self) -> int:
        return len(self._q)


@dataclass
class _SeedRegionState:
    last_writer: Optional[Task] = None
    readers_since_write: list = field(default_factory=list)


class SeedDependencyGraph:
    """The seed graph: list-scan arc dedup, linear shape validation."""

    def __init__(self):
        self._regions: dict = {}
        self._shapes: dict = {}

    def _check_shape(self, region: Region) -> None:
        seen = self._shapes.setdefault(region.obj.oid, [])
        for other in seen:
            if relation(region, other) == "partial":
                raise PartialOverlapError(region)
        seen.append(region)

    def _state(self, region: Region) -> _SeedRegionState:
        st = self._regions.get(region.key)
        if st is None:
            self._check_shape(region)
            st = _SeedRegionState()
            self._regions[region.key] = st
        return st

    @staticmethod
    def _add_arc(pred: Task, succ: Task) -> bool:
        if pred.state is TaskState.FINISHED or pred is succ:
            return False
        if succ in pred.successors:          # the O(successors) list scan
            return False
        pred.successors.append(succ)
        succ.pending_preds += 1
        return True

    def add_task(self, task: Task) -> bool:
        for acc in task.accesses:
            st = self._state(acc.region)
            if acc.direction.reads and st.last_writer is not None:
                self._add_arc(st.last_writer, task)
            if acc.direction.writes:
                if st.last_writer is not None:
                    self._add_arc(st.last_writer, task)
                for reader in st.readers_since_write:
                    self._add_arc(reader, task)
        for acc in task.accesses:
            st = self._state(acc.region)
            if acc.direction.writes:
                st.last_writer = task
                st.readers_since_write = []
            else:
                st.readers_since_write.append(task)
        if task.pending_preds == 0:
            task.state = TaskState.READY
            return True
        return False

    def task_finished(self, task: Task) -> list:
        task.state = TaskState.FINISHED
        newly_ready = []
        for succ in task.successors:
            succ.pending_preds -= 1
            if succ.pending_preds == 0 and succ.state is TaskState.CREATED:
                succ.state = TaskState.READY
                newly_ready.append(succ)
        return newly_ready


class SeedCache(SoftwareCache):
    """The current cache with the seed's sort-per-eviction victim search."""

    def choose_victims(self, nbytes_needed: int):
        if nbytes_needed <= self.bytes_free:
            return []
        victims, freed = [], 0
        need = nbytes_needed - self.bytes_free
        for ent in sorted(self._entries.values(), key=lambda e: e.last_use):
            if not ent.evictable:
                continue
            victims.append(ent)
            freed += ent.nbytes
            if freed >= need:
                return victims
        raise CacheCapacityError(nbytes_needed)


# ---------------------------------------------------------------------------
# Workloads
# ---------------------------------------------------------------------------

class _Worker:
    """Stub execution place (same accepts() contract as the runtime's)."""

    def __init__(self, kind: str):
        self.kind = kind
        self.node_index = 0
        self.space = object()

    def accepts(self, task) -> bool:
        if self.kind == "smp":
            return task.device == "smp"
        if self.kind == "gpu":
            return task.device == "cuda"
        return task.parent is None


def _queue_tasks(n: int) -> list[Task]:
    """A gpu-heavy ready stream: the seed queue's worst realistic case is an
    SMP worker scanning past a long cuda prefix on every poll."""
    tasks = []
    for i in range(n):
        if i % 10 < 9:
            tasks.append(Task(name="k", device="cuda", kernel=_NULL_KERNEL))
        else:
            tasks.append(Task(name="c", device="smp"))
    return tasks


def bench_scheduler(n: int) -> dict:
    """Submit ``n`` ready tasks, then drain via alternating worker polls."""
    smp, gpu = _Worker("smp"), _Worker("gpu")

    def drive(sched: Scheduler, tasks) -> float:
        t0 = time.perf_counter()
        for task in tasks:
            sched.submit(task)
        popped = 0
        while popped < len(tasks):
            task = sched.next_task(smp)
            if task is not None:
                popped += 1
            task = sched.next_task(gpu)
            if task is not None:
                popped += 1
        return time.perf_counter() - t0

    current = Scheduler(notify=lambda *a: None)
    elapsed = drive(current, _queue_tasks(n))
    seed = Scheduler(notify=lambda *a: None)
    seed.global_queue = SeedTaskQueue()
    seed_elapsed = drive(seed, _queue_tasks(n))
    return {
        "tasks": n,
        "tasks_per_sec": n / elapsed,
        "seed_tasks_per_sec": n / seed_elapsed,
        "speedup": seed_elapsed / elapsed,
    }


def _graph_tasks(n: int, hot_regions: int = 8, readers_per_write: int = 499,
                 tile_objects: int = 16) -> list[Task]:
    """A figure-shaped dependence stream: a broadcast producer whose output
    is read by hundreds of consumers (RAW fan-out: think the N-Body position
    block or a matmul B column), while every consumer also reads its own
    distinct tile — so the shape table grows to thousands of regions, the
    seed's linear territory."""
    hot = DataObject(name="hot", num_elements=hot_regions)
    tiles = [DataObject(name=f"tile{j}", num_elements=n)
             for j in range(tile_objects)]
    tasks: list[Task] = []
    phase = 0
    while len(tasks) < n:
        region = hot.region(phase % hot_regions, 1)
        tasks.append(Task(name="w", accesses=(
            Access(region, Direction.INOUT),)))
        for _ in range(min(readers_per_write, n - len(tasks))):
            i = len(tasks)
            own = tiles[i % tile_objects].region(i // tile_objects, 1)
            tasks.append(Task(name="r", accesses=(
                Access(region, Direction.IN), Access(own, Direction.IN))))
        phase += 1
    return tasks[:n]


def bench_depgraph(n: int, window: int = 256) -> dict:
    """Feed ``n`` tasks through the graph, retiring ready tasks once more
    than ``window`` are in flight — the bounded parallelism of a real run,
    which is what lets producer successor lists grow while consumers are
    still arriving."""

    def drive(graph, tasks) -> float:
        t0 = time.perf_counter()
        ready: deque = deque()
        for task in tasks:
            if graph.add_task(task):
                ready.append(task)
            if len(ready) > window:
                ready.extend(graph.task_finished(ready.popleft()))
        while ready:
            ready.extend(graph.task_finished(ready.popleft()))
        return time.perf_counter() - t0

    elapsed = drive(DependencyGraph(), _graph_tasks(n))
    seed_elapsed = drive(SeedDependencyGraph(), _graph_tasks(n))
    return {
        "tasks": n,
        "window": window,
        "tasks_per_sec": n / elapsed,
        "seed_tasks_per_sec": n / seed_elapsed,
        "speedup": seed_elapsed / elapsed,
    }


def bench_cache(ops: int, resident: int = 1000) -> dict:
    """Streaming working set at 4x capacity: every access misses and must
    evict (the seed re-sorted all resident entries per victim search)."""

    def drive(cache: SoftwareCache, regions) -> float:
        t0 = time.perf_counter()
        for i in range(ops):
            r = regions[i % len(regions)]
            if not cache.lookup(r):
                for victim in cache.choose_victims(r.nbytes):
                    cache.remove(victim.region)
                cache.insert(r, dirty=(i % 3 == 0))
        return time.perf_counter() - t0

    def fresh(cls):
        space = DeviceSpace("bench-gpu", 0, 0, functional=False)
        # capacity = `resident` one-element float32 regions
        return cls(space, capacity=resident * 4)

    obj = DataObject(name="c", num_elements=4 * resident)
    regions = [obj.region(i, 1) for i in range(4 * resident)]
    elapsed = drive(fresh(SoftwareCache), regions)
    seed_elapsed = drive(fresh(SeedCache), regions)
    return {
        "ops": ops,
        "resident_entries": resident,
        "ops_per_sec": ops / elapsed,
        "seed_ops_per_sec": ops / seed_elapsed,
        "speedup": seed_elapsed / elapsed,
    }


def bench_end_to_end(smoke: bool, repeats: int = 3) -> dict:
    """Wall-clock of one figure-style run (matmul, 2 GPUs, wb + affinity).

    Best-of-``repeats`` wall time; engine throughput comes from the run's
    own ``engine.*`` gauges (see ``Runtime.run_main``), so the events/sec
    figure excludes program-construction time outside the event loop.
    """
    size = matmul.MatmulSize(n=256, bs=64) if smoke \
        else matmul.MatmulSize(n=1024, bs=128)
    cfg = RuntimeConfig(functional=False, cache_policy="wb",
                        scheduler="affinity")
    best_wall, best = float("inf"), None
    for _ in range(1 if smoke else repeats):
        t0 = time.perf_counter()
        res = matmul.run_ompss(fresh_multi_gpu(2), size, config=cfg)
        wall = time.perf_counter() - t0
        if wall < best_wall:
            best_wall, best = wall, res
    return {
        "figure": f"matmul-2gpu-wb-affinity-n{size.n}",
        "wall_seconds": best_wall,
        "simulated_makespan": best.makespan,
        "sim_events_processed": best.metrics.get("engine.events_processed"),
        "sim_events_per_wall_second":
            best.metrics.get("engine.events_per_wall_second"),
    }


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

def run_suite(smoke: bool = False) -> dict:
    sched_sizes = (200, 1000) if smoke else (1000, 10000)
    graph_size = 1000 if smoke else 10000
    cache_ops = 2000 if smoke else 50000
    results = {
        "scheduler": {str(n): bench_scheduler(n) for n in sched_sizes},
        "depgraph": bench_depgraph(graph_size),
        "cache": bench_cache(cache_ops),
        "end_to_end": bench_end_to_end(smoke),
    }
    return {
        "schema": SCHEMA,
        "mode": "smoke" if smoke else "full",
        "results": results,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="tiny sizes; validates the suite, not the perf")
    parser.add_argument("--out", default="BENCH_core.json",
                        help="output path (default: ./BENCH_core.json)")
    args = parser.parse_args(argv)
    report = run_suite(smoke=args.smoke)
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=1)
        fh.write("\n")
    for name, res in report["results"].items():
        if name == "scheduler":
            for size, r in res.items():
                print(f"scheduler@{size}: {r['tasks_per_sec']:,.0f} tasks/s "
                      f"({r['speedup']:.1f}x vs seed)")
        elif "speedup" in res:
            unit = "tasks/s" if "tasks_per_sec" in res else "ops/s"
            rate = res.get("tasks_per_sec", res.get("ops_per_sec"))
            print(f"{name}: {rate:,.0f} {unit} "
                  f"({res['speedup']:.1f}x vs seed)")
        else:
            eps = res.get("sim_events_per_wall_second") or 0.0
            print(f"{name}: {res['wall_seconds']:.2f} s wall, "
                  f"{res['simulated_makespan'] * 1e3:.2f} ms simulated, "
                  f"{eps:,.0f} events/s")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
