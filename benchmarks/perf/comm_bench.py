"""Communication benchmark: the datamove layer on its comm-bound points.

Runs the two communication-bound evaluation points the data-movement
optimisation layer targets (see ``repro.bench.figures.DATAMOVE_POINTS``)
in five configurations each — baseline, one per mechanism, and all four
together — and records the *simulated* makespans plus the mechanism
counters that explain them.  The headline number is the geometric-mean
makespan reduction of ``all`` over ``baseline`` across the points; the
checked-in ``BENCH_comm.json`` pins it and the README quotes it.

Unlike the wall-clock suites next door, everything here is virtual time:
the numbers are machine-independent and exactly reproducible, so the gate
can compare against the checked-in results with zero tolerance noise.

Usage::

    PYTHONPATH=src python benchmarks/perf/comm_bench.py            # full
    PYTHONPATH=src python benchmarks/perf/comm_bench.py --quick    # CI
    PYTHONPATH=src python benchmarks/perf/comm_bench.py --out path.json
    PYTHONPATH=src python benchmarks/perf/comm_bench.py --check    # gate

``--quick`` shrinks the problem sizes so the suite runs in seconds: the
mechanisms still fire (the points stay comm-bound by construction) but the
gains differ from the full run, so quick results are never written over
the checked-in full numbers.  ``--check`` re-runs at the recorded sizes
and fails if the geomean improvement fell below the floor.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys

from repro.apps import matmul, stream
from repro.bench.figures import DATAMOVE_FLAGS
from repro.bench.sweep import PointSpec, run_points
from repro.runtime.config import RuntimeConfig

SCHEMA = "repro.bench.comm/v1"
RESULT_PATH = os.path.join(os.path.dirname(__file__), "..", "..",
                           "BENCH_comm.json")
#: the gate: all-mechanisms geomean makespan reduction must stay >= this.
GEOMEAN_FLOOR = 0.15

#: mechanism ablation: label -> the RuntimeConfig flags it turns on.
MECHANISMS = {
    "baseline": {},
    "elision": dict(wb_elision=True),
    "coalescing": dict(coalescing=True),
    "prestage": dict(presend_depth=4),
    "cost-evict": dict(cost_aware_eviction=True),
    "all": dict(DATAMOVE_FLAGS),
}

_METRIC_KEYS = {
    "elided": "datamove.writebacks_elided",
    "elided_MB": "datamove.bytes_elided",
    "fused": "datamove.fused_transfers",
    "solo": "datamove.solo_transfers",
    "net_MB": "am.bytes_sent",
}


def _points(quick: bool) -> dict:
    """point name -> (PointSpec template kwargs)."""
    mm_size = (matmul.MatmulSize(n=1536, bs=128) if quick
               else matmul.PAPER_MATMUL)
    st_size = (stream.StreamSize(n=2 ** 24, bsize=2 ** 20, ntimes=4)
               if quick else stream.paper_stream_size(4))
    # The full-size stream arrays (3 x 1.07 GB) overflow 20% of device
    # memory; the quick arrays (3 x 128 MB) need a proportionally smaller
    # cache to stay in the same thrash-bound regime (capacity above the
    # pinned floor of ~6 blocks, below the ~12-block per-GPU footprint).
    st_fraction = 0.025 if quick else 0.2
    return {
        # Master-routed cluster matmul with no presend credit: every tile
        # crosses the master NIC synchronously — the Fig. 9 worst corner.
        "matmul-cluster": dict(
            app="matmul", machine="cluster", count=4, size=mm_size,
            run_kwargs={"init": "seq"},
            cfg=dict(functional=False, cache_policy="wb",
                     scheduler="affinity", overlap=True, prefetch=True,
                     slave_to_slave=False, presend=0)),
        # Multi-GPU STREAM with the cache squeezed to 20% of device
        # memory: steady-state eviction/write-back traffic dominates.
        "stream-mgpu": dict(
            app="stream", machine="multi_gpu", count=4, size=st_size,
            run_kwargs={},
            cfg=dict(functional=False, cache_policy="wb",
                     scheduler="affinity", overlap=True, prefetch=True,
                     gpu_cache_fraction=st_fraction)),
    }


def run_suite(quick: bool, parallel: int = 0) -> dict:
    specs, index = [], []
    for point, base in _points(quick).items():
        for mech, flags in MECHANISMS.items():
            specs.append(PointSpec(
                figure="comm", series=mech, x=point, app=base["app"],
                machine=base["machine"], count=base["count"],
                size=base["size"],
                config=RuntimeConfig(**base["cfg"], **flags),
                run_kwargs=base["run_kwargs"], want_metrics=True))
            index.append((point, mech))
    values = run_points(specs, parallel=parallel)

    results: dict = {"schema": SCHEMA, "mode": "quick" if quick else "full",
                     "points": {}, "geomean_improvement": None}
    for (point, mech), val in zip(index, values):
        entry = results["points"].setdefault(point, {})
        counters = {label: val["metrics"].get(key, 0)
                    for label, key in _METRIC_KEYS.items()}
        counters["elided_MB"] = round(counters["elided_MB"] / 1e6, 1)
        counters["net_MB"] = round(counters["net_MB"] / 1e6, 1)
        entry[mech] = {"makespan": val["makespan"], **counters}

    ratios = []
    for point, entry in results["points"].items():
        base = entry["baseline"]["makespan"]
        best = entry["all"]["makespan"]
        entry["improvement"] = round(1.0 - best / base, 4)
        ratios.append(best / base)
    results["geomean_improvement"] = round(
        1.0 - math.exp(sum(map(math.log, ratios)) / len(ratios)), 4)
    return results


def render(results: dict) -> str:
    lines = [f"comm bench ({results['mode']} mode)"]
    for point, entry in results["points"].items():
        lines.append(f"\n{point}:")
        base = entry["baseline"]["makespan"]
        for mech in MECHANISMS:
            row = entry[mech]
            delta = 1.0 - row["makespan"] / base
            lines.append(
                f"  {mech:10s} makespan={row['makespan']:.5f}s "
                f"({delta:+6.1%})  elided={row['elided']:>4} "
                f"fused={row['fused']:>5} net={row['net_MB']:.1f}MB")
        lines.append(f"  improvement (all vs baseline): "
                     f"{entry['improvement']:+.1%}")
    lines.append(f"\ngeomean improvement: "
                 f"{results['geomean_improvement']:+.1%} "
                 f"(floor {GEOMEAN_FLOOR:.0%})")
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="shrunken sizes (CI smoke; seconds)")
    parser.add_argument("--parallel", type=int, default=0, metavar="N",
                        help="fan points out over N worker processes")
    parser.add_argument("--out", default=None,
                        help="write results JSON here (default: "
                             "BENCH_comm.json at the repo root, full mode "
                             "only)")
    parser.add_argument("--check", action="store_true",
                        help="gate: fail if geomean improvement is below "
                             f"{GEOMEAN_FLOOR:.0%}")
    args = parser.parse_args(argv)

    results = run_suite(args.quick, parallel=args.parallel)
    print(render(results))

    out = args.out
    if out is None and not args.quick:
        out = os.path.normpath(RESULT_PATH)
    if out:
        with open(out, "w") as fh:
            json.dump(results, fh, indent=1)
            fh.write("\n")
        print(f"\nresults written: {out}")

    if args.check and results["geomean_improvement"] < GEOMEAN_FLOOR:
        print(f"FAIL: geomean improvement "
              f"{results['geomean_improvement']:.1%} is below the "
              f"{GEOMEAN_FLOOR:.0%} floor", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
