"""Wall-clock microbenchmarks for the runtime's hot data structures.

Run ``PYTHONPATH=src python benchmarks/perf/core_bench.py`` to produce
``BENCH_core.json``.  See docs/PERFORMANCE.md for how to read it.
"""
