"""Figure 6: STREAM on the multi-GPU node.

Paper claims reproduced here: "the key point of the STREAM is the memory
management; no-cache and write-through move data to main memory every time a
task writes ... write-back handles better the situation and obtains a good
performance."

Known deviation (see EXPERIMENTS.md): under our model the breadth-first
scheduler combined with write-back migrates block chains between GPUs, which
costs ~20 kernel-times per bounce for a bandwidth-bound kernel; the paper
reports schedulers as interchangeable for STREAM.  The headline claim is
checked on the default and affinity schedulers.
"""

from repro.bench import fig6


def test_fig6_stream_multigpu(run_once):
    result = run_once(fig6)
    print()
    print(result.render())

    for sched in ("default", "affinity"):
        for g in (1, 2, 4):
            wb = result.value(f"wb-{sched}", g)
            assert wb > 3 * result.value(f"wt-{sched}", g), \
                "write-back must dominate write-through on STREAM"
            assert wb > 3 * result.value(f"nocache-{sched}", g), \
                "write-back must dominate no-cache on STREAM"

    # For the non-write-back policies the scheduler choice is immaterial
    # (the paper's "every scheduler performs well enough" regime: transfers
    # dominate identically).
    for policy in ("nocache", "wt"):
        for g in (1, 2, 4):
            vals = [result.value(f"{policy}-{s}", g)
                    for s in ("bf", "default", "affinity")]
            assert max(vals) < 1.25 * min(vals)

    # write-back STREAM scales with GPU count.
    wb = result.series["wb-affinity"]
    assert wb[2] > 3 * wb[0]
