"""Figure 9: Matmul on the GPU cluster — transfers, init modes, presend.

Paper claims reproduced here:
* "Slave-to-Slave transfers are a must to achieve a proper scalability";
* "Initializing the data in parallel also turns out to be a critical
  factor";
* "SMP initialization provides in general better results than GPU
  initialization" (checked at the largest node count, where the remote
  traffic the paper attributes it to dominates);
* "Presend also helps to improve scalability ... Presend must be used along
  with Slave-to-Slave transfers."
"""

from repro.bench import fig9


def test_fig9_matmul_cluster(run_once):
    result = run_once(fig9, presends=(0, 4))
    print()
    print(result.render())

    v = result.value

    # Slave-to-slave transfers are a must at scale (with parallel init).
    assert v("StoS-smp-ps4", 8) > 1.5 * v("MtoS-smp-ps4", 8)
    assert v("StoS-smp-ps0", 8) > 1.5 * v("MtoS-smp-ps0", 8)

    # Parallel initialization beats sequential at scale.
    assert v("StoS-smp-ps4", 8) > 1.5 * v("StoS-seq-ps4", 8)
    assert v("StoS-smp-ps4", 4) > 1.2 * v("StoS-seq-ps4", 4)

    # SMP init beats GPU init at the largest node count (remote fetches of
    # GPU-resident data pay the extra device-to-host hop).
    assert v("StoS-smp-ps4", 8) > v("StoS-gpu-ps4", 8)

    # Presend improves scalability (with StoS).
    assert v("StoS-smp-ps4", 4) > 1.2 * v("StoS-smp-ps0", 4)
    assert v("StoS-smp-ps4", 8) > 1.1 * v("StoS-smp-ps0", 8)
