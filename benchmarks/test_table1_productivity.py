"""Table I: productivity — useful lines of code per benchmark version.

The paper counts useful lines for Serial / CUDA / MPI+CUDA / OmpSs+CUDA and
finds: "the CUDA version adds some lines of code, and the MPI+CUDA version
even more.  Instead, the increase in the number of lines is lower when
writing the OmpSs+CUDA version."

Reproduced orderings (on our Python renderings): every parallel version
costs more lines than serial, and MPI+CUDA costs the most.  Known deviation
(EXPERIMENTS.md): OmpSs does not undercut CUDA here, because our *simulated*
CUDA API is one call per operation, while real CUDA's allocation/transfer/
launch boilerplate (what OmpSs eliminates) is many lines per operation.  The
paper's reference numbers are printed alongside for comparison.
"""

from repro.bench import table1_rows
from repro.bench.report import render_table

#: Table I of the paper (useful lines; % increment over serial).
PAPER_TABLE1 = {
    "matmul": {"serial": 643, "cuda": 683, "mpi_cuda": 696, "ompss": 677},
    "stream": {"serial": 378, "cuda": 485, "mpi_cuda": 496, "ompss": 420},
    "perlin": {"serial": 562, "cuda": 761, "mpi_cuda": 788, "ompss": 632},
    "nbody": {"serial": 888, "cuda": 908, "mpi_cuda": 1049, "ompss": 908},
}


def test_table1_productivity(run_once):
    rows = run_once(table1_rows)
    printable = []
    for row in rows:
        paper = PAPER_TABLE1[row["app"]]
        printable.append([
            row["app"], row["serial"],
            f"{row['cuda']} ({row['cuda_pct']:+.0f}%)",
            f"{row['mpi_cuda']} ({row['mpi_cuda_pct']:+.0f}%)",
            f"{row['ompss']} ({row['ompss_pct']:+.0f}%)",
            f"{paper['cuda']}/{paper['mpi_cuda']}/{paper['ompss']}",
        ])
    print()
    print(render_table(
        "Table I: useful lines of code",
        ["app", "serial", "cuda", "mpi+cuda", "ompss",
         "paper cuda/mpi/ompss"],
        printable,
        note="paper columns are the published absolute counts",
    ))

    for row in rows:
        app = row["app"]
        assert row["serial"] < row["cuda"], f"{app}: cuda adds lines"
        assert row["serial"] < row["ompss"], f"{app}: ompss adds lines"
        assert row["cuda"] < row["mpi_cuda"], \
            f"{app}: MPI+CUDA must cost more lines than CUDA"
        assert row["ompss"] < row["mpi_cuda"], \
            f"{app}: OmpSs must cost fewer lines than MPI+CUDA"

    # The paper's numbers themselves satisfy the full ordering, including
    # OmpSs <= CUDA — kept visible for the comparison.
    for app, paper in PAPER_TABLE1.items():
        assert paper["serial"] < paper["ompss"] <= paper["cuda"] \
            < paper["mpi_cuda"]
