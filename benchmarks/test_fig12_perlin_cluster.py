"""Figure 12: Perlin noise on the GPU cluster.

Paper claims: the Flush version's communications "cannot be overlapped
easily with computation", so presend/StoS do not help it; "The MPI+CUDA
version also faces these issues and achieves the same performance as the
OmpSs version."  The NoFlush variant keeps frames on the GPUs and scales.
"""

from repro.bench import fig12


def test_fig12_perlin_cluster(run_once):
    result = run_once(fig12)
    print()
    print(result.render())

    v = result.value
    # NoFlush scales with nodes.
    assert v("ompss-noflush", 8) > 4 * v("ompss-noflush", 1)
    # Flush does not scale: the per-step frame movement bounds it.
    assert v("ompss-flush", 8) < 1.5 * v("ompss-flush", 1)
    # MPI+CUDA (whose per-step frames are gathered by the host consumer)
    # degrades to the same regime as OmpSs-Flush at scale.
    assert v("mpi+cuda", 8) < 0.5 * v("ompss-noflush", 8)
    assert 0.3 < v("ompss-flush", 8) / v("mpi+cuda", 8) < 3.0
    # NoFlush dominates Flush everywhere.
    for nodes in (1, 2, 4, 8):
        assert v("ompss-noflush", nodes) > v("ompss-flush", nodes)
