"""Shared helpers for the figure-regeneration benchmarks.

Each benchmark regenerates one table or figure of the paper at the paper's
problem sizes (simulated time, performance mode), prints the series the
chart reports, and asserts the *shape* claims made in the evaluation text.
Run with ``pytest benchmarks/ --benchmark-only``.
"""

import pytest


@pytest.fixture
def run_once(benchmark):
    """Run the (expensive, deterministic) sweep exactly once."""

    def _run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1, warmup_rounds=0)

    return _run
