"""Figure 5: Matmul on the multi-GPU node, cache policy x scheduler sweep.

Paper claims reproduced here:
* no-cache is slowest ("data is moved back and forth each time");
* write-through improves on it but "writes still create a significant
  number of transfers";
* write-back is best;
* with write-back at 4 GPUs, the dependency-aware and locality-aware
  schedulers give large benefits over breadth-first — "up to the point of
  almost doubling the performance".
"""

from repro.bench import fig5


def test_fig5_matmul_multigpu(run_once):
    result = run_once(fig5)
    print()
    print(result.render())

    for sched in ("default", "affinity"):
        for g in (1, 2, 4):
            assert result.value(f"wb-{sched}", g) > result.value(
                f"wt-{sched}", g), "write-back must beat write-through"
            assert result.value(f"wt-{sched}", g) > result.value(
                f"nocache-{sched}", g), "write-through must beat no-cache"

    # Scheduler effect at 4 GPUs with write-back: bf far behind.
    bf = result.value("wb-bf", 4)
    assert result.value("wb-default", 4) > 1.4 * bf
    assert result.value("wb-affinity", 4) > 1.3 * bf

    # The best configuration scales with GPUs.
    best = result.series["wb-default"]
    assert best[1] > 1.6 * best[0]
    assert best[2] > 2.8 * best[0]
