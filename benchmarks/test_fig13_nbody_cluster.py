"""Figure 13: N-Body on the GPU cluster.

Paper claim: "the scalability obtained by the OmpSs version is better than
the one obtained by the MPI+CUDA, even though the OmpSs performs worse with
1 and 2 nodes", with an all-to-all exchange every iteration that "leaves
almost no space to overlap communication and computation".
"""

from repro.bench import fig13


def test_fig13_nbody_cluster(run_once):
    result = run_once(fig13)
    print()
    print(result.render())

    v = result.value
    # OmpSs does not win small configurations ...
    assert v("ompss", 1) < 1.05 * v("mpi+cuda", 1)
    assert v("ompss", 2) < 1.05 * v("mpi+cuda", 2)
    # ... but scales better: clear advantage at 8 nodes.
    assert v("ompss", 8) > 1.08 * v("mpi+cuda", 8)
    # OmpSs relative scalability 1 -> 8 exceeds MPI's.
    ompss_scaling = v("ompss", 8) / v("ompss", 1)
    mpi_scaling = v("mpi+cuda", 8) / v("mpi+cuda", 1)
    assert ompss_scaling > mpi_scaling
