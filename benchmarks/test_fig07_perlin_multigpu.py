"""Figure 7: Perlin noise on the multi-GPU node, Flush vs NoFlush.

Paper claims reproduced here: "when we minimize the memory transfers we
achieve a good performance.  For the Flush version, the data movement is
always done, thus we can not achieve as good performance as the NoFlush
version."
"""

from repro.bench import fig7


def test_fig7_perlin_multigpu(run_once):
    result = run_once(fig7)
    print()
    print(result.render())

    # NoFlush (write-back) beats every Flush variant at every GPU count.
    for g in (1, 2, 4):
        noflush = result.value("noflush-wb", g)
        for policy in ("nocache", "wt", "wb"):
            assert noflush > result.value(f"flush-{policy}", g)

    # NoFlush scales with GPUs; Flush is bottlenecked by the writebacks.
    noflush = result.series["noflush-wb"]
    assert noflush[2] > 3 * noflush[0]
    flush = result.series["flush-wb"]
    assert flush[2] < 2 * noflush[0] * 4 / 3  # nowhere near NoFlush scaling
