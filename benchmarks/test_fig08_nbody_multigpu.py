"""Figure 8: N-Body on the multi-GPU node — where no-cache wins.

Paper claims reproduced here: "the N-Body uses a lot of GPU memory which is
also transferred between all the devices.  This causes that the no-cache
policy outperforms the rest of policies, which fill the GPU memory and
trigger the replacement mechanism and delay the writing to main memory ...
With this we still achieve a good scalability with 2 and 4 GPUs."

Substitution note (DESIGN.md): the body count is scaled beyond the paper's
20000 so the all-to-all traffic and the GPU memory pressure are visible in
the simulated cost model.  Write-through ties no-cache in our model (clean
evictions are free); the decisive claim — no-cache beats the default
write-back policy — is asserted.
"""

from repro.bench import fig8


def test_fig8_nbody_multigpu(run_once):
    result = run_once(fig8)
    print()
    print(result.render())

    # no-cache outperforms write-back at 4 GPUs (delayed writebacks stall
    # the consumers of each block).
    assert result.value("nocache", 4) > 1.15 * result.value("wb", 4)
    assert result.value("nocache", 2) >= 0.99 * result.value("wb", 2)

    # Good scalability 2 -> 4 GPUs with the winning policy.
    assert result.value("nocache", 4) > 1.8 * result.value("nocache", 2)
