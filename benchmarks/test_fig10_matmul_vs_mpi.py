"""Figure 10: cluster Matmul — best OmpSs setup vs MPI+CUDA (SUMMA).

Paper claim: "While the MPI obtains better performance with 1 and 2 nodes,
the techniques implemented by our runtime outperform the MPI+CUDA version."

Reproduced: the crossover — MPI wins at 2 nodes, OmpSs wins at 4.  Known
deviations (EXPERIMENTS.md): at 1 node our OmpSs beats the baseline (our
simulated CUDA baseline has no boilerplate inefficiency to lose), and at 8
nodes SUMMA's 2D-blocked placement retains an edge over affinity's emergent
placement.
"""

from repro.bench import fig10


def test_fig10_matmul_vs_mpi(run_once):
    result = run_once(fig10)
    print()
    print(result.render())

    v = result.value
    # MPI wins at 2 nodes ...
    assert v("mpi+cuda", 2) > v("ompss-best", 2)
    # ... OmpSs catches up and wins at 4 nodes (the paper's crossover).
    assert v("ompss-best", 4) > v("mpi+cuda", 4)
    # Both scale from 1 to 8 nodes.
    assert v("ompss-best", 8) > 1.8 * v("ompss-best", 1)
    assert v("mpi+cuda", 8) > 2.5 * v("mpi+cuda", 1)
