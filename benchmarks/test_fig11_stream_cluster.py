"""Figure 11: STREAM on the GPU cluster.

Paper claim: "The application scales perfectly since there are no data
transfers among the nodes of the cluster, thus it achieves a good
performance using MPI+CUDA and OmpSs."
"""

from repro.bench import fig11


def test_fig11_stream_cluster(run_once):
    result = run_once(fig11)
    print()
    print(result.render())

    for name in ("ompss", "mpi+cuda"):
        series = result.series[name]
        # Near-linear scaling 1 -> 8 nodes.
        assert series[3] > 5.5 * series[0], f"{name} must scale on STREAM"
        assert series[1] > 1.5 * series[0]
        assert series[2] > 1.7 * series[1]

    # OmpSs stays within a constant factor of the explicit version.
    for i in range(4):
        assert result.series["ompss"][i] > 0.5 * result.series["mpi+cuda"][i]
