"""Run a multi-GPU matmul with full observability: counters + Chrome trace.

The runtime always records into its :class:`~repro.metrics.CounterRegistry`;
this example runs a tiled matmul on a 2-GPU node, prints the per-subsystem
metrics tables (cache hits/misses per device, bytes per physical link,
kernel launches), and writes ``matmul_trace.json`` — a Chrome trace-event
file with the counter snapshot embedded, loadable in ``chrome://tracing``
or https://ui.perfetto.dev.

Run:  python examples/metrics_report.py
"""

import json
from pathlib import Path

from repro.api import Program
from repro.apps.matmul import MatmulSize
from repro.apps.matmul.common import tile_start
from repro.apps.matmul.ompss import matmul_tile
from repro.bench.report import render_metrics
from repro.hardware import build_multi_gpu_node
from repro.runtime import RuntimeConfig, Tracer
from repro.sim import Environment


def main():
    size = MatmulSize(n=512, bs=128)
    tracer = Tracer()
    machine = build_multi_gpu_node(Environment(), num_gpus=2)
    prog = Program(machine,
                   RuntimeConfig(scheduler="affinity", functional=False),
                   tracer=tracer)

    a = prog.array("A", size.elements)
    b = prog.array("B", size.elements)
    c = prog.array("C", size.elements)
    te, nt, bs = size.tile_elements, size.nt, size.bs

    def tile(h, i, j):
        s = tile_start(size, i, j)
        return h[s:s + te]

    def main_program():
        for i in range(nt):
            for j in range(nt):
                for k in range(nt):
                    matmul_tile(tile(a, i, k), tile(b, k, j),
                                tile(c, i, j), bs, bs, bs)
        yield from prog.taskwait(noflush=True)

    makespan = prog.run(main_program())
    print(f"matmul {size.n}x{size.n}, {nt ** 3} tasks, "
          f"{makespan * 1e3:.2f} ms simulated\n")

    # Per-subsystem metrics tables from one snapshot.
    snapshot = prog.metrics.snapshot()
    print(render_metrics(snapshot, title="software caches", prefix="cache."))
    print()
    print(render_metrics(snapshot, title="bytes per link", prefix="link."))
    print()
    print(render_metrics(snapshot, title="GPU managers", prefix="gpu."))

    # Chrome trace with the counters embedded under otherData.metrics.
    out = Path(__file__).parent / "matmul_trace.json"
    text = tracer.to_chrome(metrics=snapshot)
    json.loads(text)  # the exporter must emit valid JSON
    out.write_text(text)
    print(f"\nChrome trace written to {out} "
          f"({len(tracer.events)} spans; open in chrome://tracing)")


if __name__ == "__main__":
    main()
