"""Driving the runtime through the paper's literal pragma syntax.

The Mercurium compiler's role — parsing ``#pragma omp`` directives into
runtime calls — is played by :func:`repro.api.from_pragmas`: the decorator
takes the directive strings of the paper's Figure 2 verbatim and produces
the same task machinery as the Python-native decorators.

Run:  python examples/pragma_frontend.py
"""

import numpy as np

from repro.api import Program, from_pragmas, parse_pragma
from repro.cuda import streaming_cost
from repro.hardware import build_multi_gpu_node
from repro.sim import Environment

N = 4096


def cost(spec, bound):
    return streaming_cost(spec, 2 * 8 * bound["N"])


@from_pragmas(
    "#pragma omp target device(cuda) copy_deps",
    "#pragma omp task input([N] a) output([N] c)",
    cost=cost,
)
def copy(a, c, N):
    c[:] = a


@from_pragmas(
    "#pragma omp target device(cuda) copy_deps",
    "#pragma omp task input([N] c) output([N] b)",
    cost=cost,
)
def scale(b, c, scalar, N):
    b[:] = scalar * c


def main():
    # What the front-end sees:
    directive = parse_pragma(
        "#pragma omp task input([N] a, [N] b) output([N] c)")
    print("parsed:", directive, "\n")

    env = Environment()
    prog = Program(build_multi_gpu_node(env, num_gpus=1))
    a = prog.array("a", N, dtype=np.float64,
                   init=np.arange(N, dtype=np.float64))
    b = prog.array("b", N, dtype=np.float64)
    c = prog.array("c", N, dtype=np.float64)

    def program():
        copy(a.whole, c.whole, N)
        scale(b.whole, c.whole, 3.0, N)
        yield from prog.taskwait()

    prog.run(program())
    assert np.allclose(b.np, 3.0 * np.arange(N))
    print(f"two pragma-declared tasks ran on the GPU; b[10] = {b.np[10]:.0f}")
    print(f"task devices: copy={copy.device}, scale={scale.device}; "
          f"copy_deps={copy.copy_deps}")


if __name__ == "__main__":
    main()
