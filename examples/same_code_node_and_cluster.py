"""The paper's headline property: one program, any machine.

"With it, the same program that runs sequentially in a node with a single
GPU can run in parallel in multiple GPUs either local (single node) or
remote (cluster of GPUs)."

This example defines the tiled Matmul main once and executes it, unchanged,
on: one GPU, a 4-GPU node, and a 4-node GPU cluster — comparing performance
and verifying all three produce identical results.

Run:  python examples/same_code_node_and_cluster.py
"""

import numpy as np

from repro.apps.matmul import (
    TEST_MATMUL,
    run_ompss,
    run_serial,
    tiled_to_dense,
)
from repro.hardware import build_gpu_cluster, build_multi_gpu_node
from repro.runtime import RuntimeConfig
from repro.sim import Environment


def main():
    reference = run_serial(TEST_MATMUL).output["c"]

    machines = [
        ("single GPU", lambda env: build_multi_gpu_node(env, num_gpus=1)),
        ("4-GPU node", lambda env: build_multi_gpu_node(env, num_gpus=4)),
        ("4-node cluster", lambda env: build_gpu_cluster(env, num_nodes=4)),
    ]
    config = RuntimeConfig(scheduler="affinity")

    print(f"{'machine':16s} {'GFLOP/s':>10s} {'tasks':>6s} {'verified':>9s}")
    for name, build in machines:
        env = Environment()
        result = run_ompss(build(env), TEST_MATMUL, config=config,
                           verify=True)
        ok = np.allclose(result.output["c"], reference, rtol=1e-4)
        print(f"{name:16s} {result.metric:10.2f} "
              f"{result.stats['tasks']:6d} {'OK' if ok else 'FAIL':>9s}")
        assert ok

    dense = tiled_to_dense(TEST_MATMUL, reference)
    print(f"\nC[0,0]={dense[0, 0]:.1f} — same application code ran on all "
          "three machines; only the Machine object changed.")


if __name__ == "__main__":
    main()
