"""N-Body on a GPU cluster: all-to-all dataflow managed by the runtime.

Every iteration each block-update task reads *all* position blocks (a
dependence clause over a list of views) and writes its own block of the next
buffer — the runtime turns that into the minimal set of node-to-node
transfers, deduplicating concurrent fetches of the same block.

Run:  python examples/nbody_cluster.py
"""

import numpy as np

from repro.apps.nbody import (
    NBodySize,
    initial_state,
    nbody_step_reference,
    run_ompss,
)
from repro.hardware import build_gpu_cluster
from repro.runtime import RuntimeConfig
from repro.sim import Environment

SIZE = NBodySize(n=256, blocks=4, iters=5)


def main():
    # Reference trajectory.
    pos, vel = initial_state(SIZE)
    for _ in range(SIZE.iters):
        pos = nbody_step_reference(pos, vel)

    print(f"{SIZE.n} bodies, {SIZE.iters} iterations, "
          f"{SIZE.blocks} update tasks per iteration\n")
    print(f"{'nodes':>5s} {'GFLOP/s':>9s} {'net MB':>7s} {'verified':>9s}")
    for nodes in (1, 2, 4):
        env = Environment()
        machine = build_gpu_cluster(env, num_nodes=nodes)
        result = run_ompss(machine, SIZE,
                           config=RuntimeConfig(scheduler="affinity"),
                           verify=True)
        ok = np.allclose(result.output["pos"], pos, rtol=1e-5, atol=1e-6)
        net_mb = result.stats["network_bytes"] / 1e6
        print(f"{nodes:5d} {result.metric:9.3f} {net_mb:7.2f} "
              f"{'OK' if ok else 'FAIL':>9s}")
        assert ok

    com = pos.reshape(-1, 4)[:, :3].mean(axis=0)
    print(f"\ncenter of mass after {SIZE.iters} steps: "
          f"({com[0]:+.4f}, {com[1]:+.4f}, {com[2]:+.4f})")


if __name__ == "__main__":
    main()
