"""Quickstart: annotate a serial program with task/target, run it on a GPU.

The OmpSs model in three steps: register shared arrays, annotate functions
as tasks (dependence clauses name parameters), synchronize with taskwait.
The runtime builds the dependency graph, schedules the tasks onto the
simulated GPU, and moves data automatically.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import Program, target, task
from repro.cuda import streaming_cost
from repro.hardware import build_multi_gpu_node
from repro.sim import Environment


def axpy_cost(gpu_spec, bound):
    # y = a*x + y touches 3 * n floats: bandwidth-bound.
    return streaming_cost(gpu_spec, 3 * 4 * bound["n"])


@target(device="cuda", copy_deps=True)
@task(inputs=("x",), inouts=("y",), cost=axpy_cost)
def saxpy(alpha, x, y, n):
    y += alpha * x


@target(device="cuda", copy_deps=True)
@task(inputs=("x", "y"), outputs=("out",), cost=axpy_cost)
def vector_add(x, y, out, n):
    out[:] = x + y


def main():
    env = Environment()
    prog = Program(build_multi_gpu_node(env, num_gpus=2))

    n, bs = 1 << 16, 1 << 13
    x = prog.array("x", n, init=np.linspace(0, 1, n, dtype=np.float32))
    y = prog.array("y", n, init=np.ones(n, dtype=np.float32))
    z = prog.array("z", n)

    def program():
        # Each call creates a task; blocks form independent chains that the
        # runtime spreads over the two GPUs.
        for j in range(0, n, bs):
            saxpy(2.0, x[j:j + bs], y[j:j + bs], bs)
        for j in range(0, n, bs):
            vector_add(x[j:j + bs], y[j:j + bs], z[j:j + bs], bs)
        yield from prog.taskwait()   # wait + flush results to the host

    makespan = prog.run(program())

    expected = np.linspace(0, 1, n) * 3 + 1
    assert np.allclose(z.np, expected, rtol=1e-5)
    print(f"z = x + (2x + y) computed by {prog.stats['tasks']} GPU tasks")
    print(f"simulated makespan: {makespan * 1e3:.3f} ms")
    print(f"transfers: {prog.stats['transfers']} "
          f"({prog.stats['bytes_transferred'] / 1e6:.1f} MB)")
    print("result verified against NumPy: OK")


if __name__ == "__main__":
    main()
