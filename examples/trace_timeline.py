"""Tracing an execution and exporting a Paraver timeline.

Nanos++ executions at BSC are habitually inspected with Paraver; the
runtime's tracer records the same span categories (tasks per execution
place, kernels, transfers per link, cluster control messages) and exports a
minimal ``.prv``.  This example runs a small multi-GPU matmul with tracing
on, prints per-place utilization, and writes ``matmul.prv``.

Run:  python examples/trace_timeline.py
"""

from pathlib import Path

from repro.apps.matmul import MatmulSize, run_ompss
from repro.hardware import build_multi_gpu_node
from repro.runtime import Runtime, RuntimeConfig, Tracer
from repro.sim import Environment


def main():
    from repro.api import Program
    from repro.apps.matmul.ompss import matmul_tile
    from repro.apps.matmul.common import tile_start

    size = MatmulSize(n=512, bs=128)
    env = Environment()
    tracer = Tracer()
    machine = build_multi_gpu_node(env, num_gpus=2)
    prog = Program(machine,
                   RuntimeConfig(scheduler="affinity", functional=False),
                   tracer=tracer)

    a = prog.array("A", size.elements)
    b = prog.array("B", size.elements)
    c = prog.array("C", size.elements)
    te, nt, bs = size.tile_elements, size.nt, size.bs

    def tile(h, i, j):
        s = tile_start(size, i, j)
        return h[s:s + te]

    def main_program():
        for i in range(nt):
            for j in range(nt):
                for k in range(nt):
                    matmul_tile(tile(a, i, k), tile(b, k, j),
                                tile(c, i, j), bs, bs, bs)
        yield from prog.taskwait(noflush=True)

    makespan = prog.run(main_program())

    print(f"matmul {size.n}x{size.n}, {nt ** 3} tasks, "
          f"{makespan * 1e3:.2f} ms simulated\n")
    print(f"{'place':14s} {'spans':>6s} {'busy ms':>8s} {'util':>6s}")
    for place in tracer.places():
        spans = len(tracer.timeline(place))
        busy = tracer.busy_time(place)
        util = tracer.utilization(place, makespan)
        print(f"{place:14s} {spans:6d} {busy * 1e3:8.2f} {util:6.1%}")

    out = Path(__file__).parent / "matmul.prv"
    out.write_text(tracer.to_paraver())
    print(f"\nParaver trace written to {out} "
          f"({len(tracer.events)} records)")


if __name__ == "__main__":
    main()
