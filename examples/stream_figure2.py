"""The STREAM benchmark written exactly as the paper's Figure 2.

Four annotated function tasks (copy / scale / add / triad), blocked loops,
and not a single explicit data transfer: the runtime keeps the blocks on the
GPUs (write-back caching) and only moves what the dependence clauses imply.
The example also sweeps the cache policies to show why write-back wins
(Figure 6's point).

Run:  python examples/stream_figure2.py
"""

import numpy as np

from repro.api import Program, target, task
from repro.cuda import streaming_cost
from repro.hardware import build_multi_gpu_node
from repro.runtime import RuntimeConfig
from repro.sim import Environment

N, BSIZE, NTIMES = 1 << 18, 1 << 15, 4
SCALAR = 3.0


def cost2(spec, bound):
    return streaming_cost(spec, 2 * 8 * bound["n"])


def cost3(spec, bound):
    return streaming_cost(spec, 3 * 8 * bound["n"])


#  #pragma omp target device(cuda) copy_deps
#  #pragma omp task input([N] a) output([N] c)
@target(device="cuda", copy_deps=True)
@task(inputs=("a",), outputs=("c",), cost=cost2)
def copy(a, c, n):
    c[:] = a


@target(device="cuda", copy_deps=True)
@task(inputs=("c",), outputs=("b",), cost=cost2)
def scale(b, c, scalar, n):
    b[:] = scalar * c


@target(device="cuda", copy_deps=True)
@task(inputs=("a", "b"), outputs=("c",), cost=cost3)
def add(a, b, c, n):
    c[:] = a + b


@target(device="cuda", copy_deps=True)
@task(inputs=("b", "c"), outputs=("a",), cost=cost3)
def triad(a, b, c, scalar, n):
    a[:] = b + scalar * c


def stream(prog, a, b, c):
    """The stream() function of Figure 2, verbatim structure."""
    for _ in range(NTIMES):
        for j in range(0, N, BSIZE):
            copy(a[j:j + BSIZE], c[j:j + BSIZE], BSIZE)
        for j in range(0, N, BSIZE):
            scale(b[j:j + BSIZE], c[j:j + BSIZE], SCALAR, BSIZE)
        for j in range(0, N, BSIZE):
            add(a[j:j + BSIZE], b[j:j + BSIZE], c[j:j + BSIZE], BSIZE)
        for j in range(0, N, BSIZE):
            triad(a[j:j + BSIZE], b[j:j + BSIZE], c[j:j + BSIZE], SCALAR,
                  BSIZE)
    yield from prog.taskwait(noflush=True)


def run(policy: str) -> float:
    env = Environment()
    prog = Program(build_multi_gpu_node(env, num_gpus=2),
                   RuntimeConfig(cache_policy=policy))
    a = prog.array("a", N, dtype=np.float64,
                   init=np.arange(N, dtype=np.float64))
    b = prog.array("b", N, dtype=np.float64)
    c = prog.array("c", N, dtype=np.float64)
    makespan = prog.run(stream(prog, a, b, c))
    moved = 10 * 8 * N * NTIMES          # bytes the four kernels touch
    return moved / makespan / 1e9


def main():
    print(f"STREAM, {N} doubles, {NTIMES} iterations, 2 GPUs")
    print(f"{'cache policy':14s} {'GB/s':>8s}")
    for policy in ("nocache", "wt", "wb"):
        print(f"{policy:14s} {run(policy):8.1f}")
    print("\nwrite-back keeps blocks on the GPUs between kernels — the "
          "other policies pay PCIe for every write (Figure 6).")


if __name__ == "__main__":
    main()
