"""Reductions with tasks — the paper's future-work item, expressible today.

"Further improvements that we envision to the model are better support of
reduction operations ..." — without dedicated reduction clauses, a tree
reduction is still natural in the task model: leaf tasks produce partial
sums over blocks, and combiner tasks merge pairs; the dependence clauses
give the tree shape and the runtime schedules/locates everything.

Run:  python examples/reduction_tree.py
"""

import numpy as np

from repro import Program, target, task
from repro.cuda import streaming_cost
from repro.hardware import build_multi_gpu_node
from repro.runtime import RuntimeConfig
from repro.sim import Environment

N, BS = 1 << 16, 1 << 12          # 16 leaf blocks


@target(device="cuda", copy_deps=True)
@task(inputs=("block",), outputs=("partial",),
      cost=lambda spec, bound: streaming_cost(spec, 4 * bound["n"]))
def partial_sum(block, partial, n):
    partial[0] = block.sum()


@target(device="cuda", copy_deps=True)
@task(inputs=("left", "right"), outputs=("out",),
      cost=lambda spec, bound: 1e-6)
def combine(left, right, out):
    out[0] = left[0] + right[0]


def main():
    env = Environment()
    prog = Program(build_multi_gpu_node(env, num_gpus=4),
                   RuntimeConfig(scheduler="affinity"))
    data = prog.array("data", N,
                      init=np.arange(N, dtype=np.float32) / N)
    nblocks = N // BS
    # One scratch slot per tree node (leaves + internal).
    scratch = prog.array("scratch", 2 * nblocks)

    def program():
        # Leaves: one partial per block.
        level = []
        for i in range(nblocks):
            slot = scratch[i:i + 1]
            partial_sum(data[i * BS:(i + 1) * BS], slot, BS)
            level.append((i, slot))
        # Tree: combine pairs until one slot remains.
        next_slot = nblocks
        while len(level) > 1:
            new_level = []
            for j in range(0, len(level) - 1, 2):
                out = scratch[next_slot:next_slot + 1]
                combine(level[j][1], level[j + 1][1], out)
                new_level.append((next_slot, out))
                next_slot += 1
            if len(level) % 2:
                new_level.append(level[-1])
            level = new_level
        yield from prog.taskwait()
        return level[0][1]

    root = None

    def wrapper():
        nonlocal root
        root = yield from program()

    prog.run(wrapper())
    expected = (np.arange(N, dtype=np.float32) / N).sum()
    got = root.np[0]
    print(f"tree reduction over {N} elements, {nblocks} leaves, "
          f"{prog.stats['tasks']} tasks")
    print(f"sum = {got:.3f} (reference {expected:.3f})")
    print(f"simulated makespan: {prog.makespan * 1e3:.3f} ms on 4 GPUs")
    assert abs(got - expected) < 1.0
    print("verified: OK")


if __name__ == "__main__":
    main()
