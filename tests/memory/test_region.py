"""Tests for data objects and the region algebra."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory import (
    DataObject,
    PartialOverlapError,
    Region,
    check_supported_overlap,
    relation,
)


def make_obj(n=1000, dtype=np.float32, name="a"):
    return DataObject(name=name, num_elements=n, dtype=dtype)


def test_object_nbytes():
    obj = make_obj(100, np.float32)
    assert obj.nbytes == 400
    obj64 = make_obj(100, np.float64)
    assert obj64.nbytes == 800


def test_object_ids_are_unique():
    a, b = make_obj(), make_obj()
    assert a.oid != b.oid


def test_object_rejects_nonpositive_size():
    with pytest.raises(ValueError):
        DataObject(name="bad", num_elements=0)


def test_whole_region_covers_object():
    obj = make_obj(50)
    assert obj.whole.start == 0
    assert obj.whole.length == 50


def test_region_bounds_checked():
    obj = make_obj(10)
    with pytest.raises(ValueError):
        Region(obj, 5, 6)  # runs past the end
    with pytest.raises(ValueError):
        Region(obj, -1, 5)
    with pytest.raises(ValueError):
        Region(obj, 0, 0)


def test_region_key_identity():
    obj = make_obj(100)
    assert Region(obj, 0, 10).key == Region(obj, 0, 10).key
    assert Region(obj, 0, 10).key != Region(obj, 10, 10).key


def test_region_nbytes():
    obj = make_obj(100, np.float32)
    assert Region(obj, 0, 10).nbytes == 40


def test_relation_equal():
    obj = make_obj(100)
    assert relation(Region(obj, 10, 20), Region(obj, 10, 20)) == "equal"


def test_relation_disjoint_same_object():
    obj = make_obj(100)
    assert relation(Region(obj, 0, 10), Region(obj, 10, 10)) == "disjoint"
    assert relation(Region(obj, 50, 10), Region(obj, 0, 10)) == "disjoint"


def test_relation_different_objects_always_disjoint():
    a, b = make_obj(name="a"), make_obj(name="b")
    assert relation(Region(a, 0, 100), Region(b, 0, 100)) == "disjoint"


def test_relation_partial():
    obj = make_obj(100)
    assert relation(Region(obj, 0, 10), Region(obj, 5, 10)) == "partial"
    assert relation(Region(obj, 0, 20), Region(obj, 5, 5)) == "partial"  # containment


def test_check_supported_overlap_raises_on_partial():
    obj = make_obj(100)
    with pytest.raises(PartialOverlapError, match="partially overlap"):
        check_supported_overlap(Region(obj, 0, 10), Region(obj, 5, 10))


def test_check_supported_overlap_passes_equal_and_disjoint():
    obj = make_obj(100)
    assert check_supported_overlap(Region(obj, 0, 10), Region(obj, 0, 10)) == "equal"
    assert check_supported_overlap(Region(obj, 0, 10), Region(obj, 20, 10)) == "disjoint"


# ------------------------------------------------------------- property tests

region_params = st.tuples(
    st.integers(min_value=0, max_value=99),
    st.integers(min_value=1, max_value=100),
).filter(lambda p: p[0] + p[1] <= 100)


@settings(max_examples=200, deadline=None)
@given(a=region_params, b=region_params)
def test_relation_is_symmetric(a, b):
    obj = DataObject(name="p", num_elements=100)
    ra, rb = Region(obj, *a), Region(obj, *b)
    assert relation(ra, rb) == relation(rb, ra)


@settings(max_examples=200, deadline=None)
@given(a=region_params, b=region_params)
def test_relation_matches_interval_arithmetic(a, b):
    obj = DataObject(name="p", num_elements=100)
    ra, rb = Region(obj, *a), Region(obj, *b)
    sa = set(range(ra.start, ra.end))
    sb = set(range(rb.start, rb.end))
    rel = relation(ra, rb)
    if rel == "equal":
        assert sa == sb
    elif rel == "disjoint":
        assert not (sa & sb)
    else:
        assert (sa & sb) and sa != sb


@settings(max_examples=100, deadline=None)
@given(a=region_params)
def test_relation_reflexive_equal(a):
    obj = DataObject(name="p", num_elements=100)
    ra = Region(obj, *a)
    assert relation(ra, ra) == "equal"
