"""Tests for BytePool (device memory and pinned staging pools)."""

import pytest

from repro.memory import BytePool
from repro.sim import Environment


def test_pool_capacity_validated():
    env = Environment()
    with pytest.raises(ValueError):
        BytePool(env, capacity=0)


def test_acquire_release_roundtrip():
    env = Environment()
    pool = BytePool(env, capacity=100)
    leases = []

    def proc():
        lease = yield pool.acquire(60)
        leases.append(lease)
        assert pool.bytes_used == 60
        lease.release()
        assert pool.bytes_used == 0

    env.process(proc())
    env.run()
    assert len(leases) == 1


def test_acquire_blocks_until_release():
    env = Environment()
    pool = BytePool(env, capacity=100)
    log = []

    def first():
        lease = yield pool.acquire(80)
        yield env.timeout(5)
        lease.release()

    def second():
        lease = yield pool.acquire(80)
        log.append(env.now)
        lease.release()

    env.process(first())
    env.process(second())
    env.run()
    assert log == [5]


def test_oversized_request_rejected_immediately():
    env = Environment()
    pool = BytePool(env, capacity=100)
    with pytest.raises(ValueError):
        pool.acquire(101)
    with pytest.raises(ValueError):
        pool.acquire(0)


def test_fifo_no_starvation_of_big_request():
    """A large request at the head is not bypassed by small ones."""
    env = Environment()
    pool = BytePool(env, capacity=100)
    order = []

    def holder():
        lease = yield pool.acquire(60)
        yield env.timeout(10)
        lease.release()

    def big():
        yield env.timeout(1)
        lease = yield pool.acquire(100)
        order.append(("big", env.now))
        yield env.timeout(1)
        lease.release()

    def small():
        yield env.timeout(2)
        lease = yield pool.acquire(10)
        order.append(("small", env.now))
        lease.release()

    env.process(holder())
    env.process(big())
    env.process(small())
    env.run()
    assert order[0][0] == "big"
    assert order == [("big", 10), ("small", 11)]


def test_try_acquire():
    env = Environment()
    pool = BytePool(env, capacity=100)
    lease = pool.try_acquire(50)
    assert lease is not None
    assert pool.try_acquire(60) is None
    lease.release()
    assert pool.try_acquire(60) is not None


def test_double_release_is_noop():
    env = Environment()
    pool = BytePool(env, capacity=100)
    lease = pool.try_acquire(50)
    lease.release()
    lease.release()
    assert pool.bytes_used == 0


def test_peak_usage_tracked():
    env = Environment()
    pool = BytePool(env, capacity=100)
    a = pool.try_acquire(40)
    b = pool.try_acquire(50)
    a.release()
    b.release()
    assert pool.peak_usage == 90
