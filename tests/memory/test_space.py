"""Tests for address spaces (functional data plane)."""

import numpy as np
import pytest

from repro.memory import DataObject, DeviceSpace, HostSpace, Region


def make_canonical(functional=True):
    return HostSpace("master.host", node_index=0, functional=functional,
                     canonical=True)


def test_canonical_registration_with_initial_data():
    space = make_canonical()
    obj = DataObject(name="v", num_elements=4)
    space.register_object(obj, initial=np.array([1, 2, 3, 4], dtype=np.float32))
    np.testing.assert_array_equal(space.read(obj.whole), [1, 2, 3, 4])


def test_canonical_registration_zero_fills_by_default():
    space = make_canonical()
    obj = DataObject(name="z", num_elements=3)
    space.register_object(obj)
    np.testing.assert_array_equal(space.read(obj.whole), [0, 0, 0])


def test_registration_size_mismatch_rejected():
    space = make_canonical()
    obj = DataObject(name="v", num_elements=4)
    with pytest.raises(ValueError):
        space.register_object(obj, initial=np.zeros(5, dtype=np.float32))


def test_non_canonical_cannot_register():
    space = HostSpace("slave.host", node_index=1, functional=True)
    obj = DataObject(name="v", num_elements=4)
    with pytest.raises(RuntimeError):
        space.register_object(obj)


def test_canonical_subregion_read_is_view():
    space = make_canonical()
    obj = DataObject(name="v", num_elements=10)
    space.register_object(obj, initial=np.arange(10, dtype=np.float32))
    sub = space.read(Region(obj, 2, 3))
    np.testing.assert_array_equal(sub, [2, 3, 4])
    # Writing through the view updates canonical storage (it is a view).
    sub[:] = 0
    np.testing.assert_array_equal(space.read(obj.whole)[2:5], [0, 0, 0])


def test_canonical_write_region():
    space = make_canonical()
    obj = DataObject(name="v", num_elements=6)
    space.register_object(obj)
    space.write(Region(obj, 3, 3), np.array([7, 8, 9], dtype=np.float32))
    np.testing.assert_array_equal(space.read(obj.whole),
                                  [0, 0, 0, 7, 8, 9])


def test_device_space_roundtrip():
    dev = DeviceSpace("gpu0", node_index=0, device_index=0, functional=True)
    obj = DataObject(name="v", num_elements=4)
    region = obj.whole
    dev.write(region, np.array([5, 6, 7, 8], dtype=np.float32))
    np.testing.assert_array_equal(dev.read(region), [5, 6, 7, 8])
    assert dev.holds_buffer(region)


def test_device_write_copies_not_aliases():
    dev = DeviceSpace("gpu0", node_index=0, device_index=0, functional=True)
    obj = DataObject(name="v", num_elements=3)
    src = np.array([1, 2, 3], dtype=np.float32)
    dev.write(obj.whole, src)
    src[:] = 99
    np.testing.assert_array_equal(dev.read(obj.whole), [1, 2, 3])


def test_device_writable_allocates_zeroed_buffer():
    dev = DeviceSpace("gpu0", node_index=0, device_index=0, functional=True)
    obj = DataObject(name="v", num_elements=3)
    buf = dev.writable(obj.whole)
    np.testing.assert_array_equal(buf, [0, 0, 0])
    buf[:] = 4
    np.testing.assert_array_equal(dev.read(obj.whole), [4, 4, 4])


def test_drop_removes_device_copy():
    dev = DeviceSpace("gpu0", node_index=0, device_index=0, functional=True)
    obj = DataObject(name="v", num_elements=3)
    dev.write(obj.whole, np.zeros(3, dtype=np.float32))
    dev.drop(obj.whole)
    assert not dev.holds_buffer(obj.whole)
    with pytest.raises(KeyError):
        dev.read(obj.whole)


def test_canonical_drop_is_noop():
    space = make_canonical()
    obj = DataObject(name="v", num_elements=3)
    space.register_object(obj)
    space.drop(obj.whole)
    assert space.holds_buffer(obj.whole)


def test_slave_host_space_holds_region_copies():
    space = HostSpace("slave.host", node_index=1, functional=True)
    obj = DataObject(name="v", num_elements=4)
    region = Region(obj, 0, 2)
    space.write(region, np.array([1, 2], dtype=np.float32))
    np.testing.assert_array_equal(space.read(region), [1, 2])
    space.drop(region)
    assert not space.holds_buffer(region)


def test_performance_mode_write_is_noop_and_read_rejected():
    space = make_canonical(functional=False)
    obj = DataObject(name="v", num_elements=4)
    space.register_object(obj)  # no storage materialized
    space.write(obj.whole, np.zeros(4))  # silently ignored
    with pytest.raises(RuntimeError):
        space.read(obj.whole)
    dev = DeviceSpace("gpu0", node_index=0, device_index=0, functional=False)
    dev.write(obj.whole, np.zeros(4))
    with pytest.raises(RuntimeError):
        dev.read(obj.whole)
    with pytest.raises(RuntimeError):
        dev.writable(obj.whole)


def test_write_casts_dtype():
    dev = DeviceSpace("gpu0", node_index=0, device_index=0, functional=True)
    obj = DataObject(name="v", num_elements=3, dtype=np.float32)
    dev.write(obj.whole, np.array([1, 2, 3], dtype=np.float64))
    assert dev.read(obj.whole).dtype == np.float32
