"""Tests for the location/version directory."""

import pytest

from repro.memory import (
    DataObject,
    Directory,
    DeviceSpace,
    HostSpace,
    PartialOverlapError,
    Region,
)


def make_world():
    host = HostSpace("master.host", 0, functional=False, canonical=True)
    gpu0 = DeviceSpace("gpu0", 0, 0, functional=False)
    gpu1 = DeviceSpace("gpu1", 0, 1, functional=False)
    remote = HostSpace("node1.host", 1, functional=False)
    return host, gpu0, gpu1, remote, Directory(home=host)


def region():
    return DataObject(name="x", num_elements=100).whole


def test_fresh_region_lives_at_home():
    host, *_rest, d = make_world()
    r = region()
    assert d.holders(r) == {host}
    assert d.version(r) == 0
    assert d.host_is_current(r)


def test_record_copy_adds_holder():
    host, gpu0, _g1, _rem, d = make_world()
    r = region()
    d.record_copy(r, gpu0)
    assert d.holders(r) == {host, gpu0}
    assert d.is_current(r, gpu0)
    assert d.version(r) == 0


def test_record_write_invalidates_other_holders():
    host, gpu0, gpu1, _rem, d = make_world()
    r = region()
    d.record_copy(r, gpu0)
    d.record_copy(r, gpu1)
    d.record_write(r, gpu0)
    assert d.holders(r) == {gpu0}
    assert d.version(r) == 1
    assert not d.is_current(r, host)
    assert not d.host_is_current(r)


def test_record_drop_removes_holder():
    host, gpu0, _g1, _rem, d = make_world()
    r = region()
    d.record_copy(r, gpu0)
    d.record_drop(r, gpu0)
    assert d.holders(r) == {host}


def test_dropping_last_copy_is_fatal():
    _h, gpu0, _g1, _rem, d = make_world()
    r = region()
    d.record_write(r, gpu0)
    with pytest.raises(RuntimeError, match="lose data"):
        d.record_drop(r, gpu0)


def test_drop_of_non_holder_is_noop():
    host, gpu0, _g1, _rem, d = make_world()
    r = region()
    d.record_drop(r, gpu0)
    assert d.holders(r) == {host}


def test_nodes_with_gives_hierarchical_view():
    host, gpu0, _g1, remote, d = make_world()
    r = region()
    d.record_copy(r, remote)
    assert d.nodes_with(r) == {0, 1}
    d.record_write(r, remote)
    assert d.nodes_with(r) == {1}


def test_partial_overlap_detected_across_uses():
    _h, _g0, _g1, _rem, d = make_world()
    obj = DataObject(name="x", num_elements=100)
    d.entry(Region(obj, 0, 10))
    d.entry(Region(obj, 20, 10))  # disjoint: fine
    d.entry(Region(obj, 0, 10))   # equal: fine
    with pytest.raises(PartialOverlapError):
        d.entry(Region(obj, 5, 10))


def test_regions_held_by():
    host, gpu0, _g1, _rem, d = make_world()
    obj = DataObject(name="x", num_elements=100)
    r1, r2 = Region(obj, 0, 10), Region(obj, 10, 10)
    d.record_copy(r1, gpu0)
    d.entry(r2)
    held = d.regions_held_by(gpu0)
    assert [r.key for r in held] == [r1.key]
    assert len(d.regions_held_by(host)) == 2


def test_len_counts_entries():
    *_spaces, d = make_world()
    obj = DataObject(name="x", num_elements=100)
    d.entry(Region(obj, 0, 10))
    d.entry(Region(obj, 10, 10))
    assert len(d) == 2


def test_versions_are_monotonic():
    _h, gpu0, gpu1, _rem, d = make_world()
    r = region()
    versions = [d.version(r)]
    for space in (gpu0, gpu1, gpu0):
        d.record_write(r, space)
        versions.append(d.version(r))
    assert versions == sorted(versions)
    assert len(set(versions)) == len(versions)
