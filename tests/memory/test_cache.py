"""Tests for the software cache state machine."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory import (
    CacheCapacityError,
    CachePolicy,
    DataObject,
    DeviceSpace,
    Region,
    SoftwareCache,
)


def make_cache(capacity=1000, policy="wb"):
    space = DeviceSpace("gpu0", 0, 0, functional=False)
    return SoftwareCache(space, capacity=capacity, policy=policy)


def obj_region(nbytes, name="x"):
    # float32 -> 4 bytes/element
    assert nbytes % 4 == 0
    return DataObject(name=name, num_elements=nbytes // 4,
                      dtype=np.float32).whole


def test_policy_parsing():
    assert CachePolicy.parse("wb") is CachePolicy.WRITE_BACK
    assert CachePolicy.parse("wt") is CachePolicy.WRITE_THROUGH
    assert CachePolicy.parse("nocache") is CachePolicy.NO_CACHE
    assert CachePolicy.parse(CachePolicy.WRITE_BACK) is CachePolicy.WRITE_BACK
    with pytest.raises(ValueError, match="unknown cache policy"):
        CachePolicy.parse("lru")


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        make_cache(capacity=0)


def test_miss_then_hit():
    cache = make_cache()
    r = obj_region(400)
    assert not cache.lookup(r)
    cache.insert(r)
    assert cache.lookup(r)
    assert cache.hits == 1
    assert cache.misses == 1


def test_insert_accounts_bytes():
    cache = make_cache(capacity=1000)
    r = obj_region(400)
    cache.insert(r)
    assert cache.bytes_used == 400
    assert cache.bytes_free == 600


def test_insert_beyond_free_space_rejected():
    cache = make_cache(capacity=1000)
    cache.insert(obj_region(800, "a"))
    with pytest.raises(CacheCapacityError):
        cache.insert(obj_region(400, "b"))


def test_reinsert_refreshes_and_merges_dirty():
    cache = make_cache()
    r = obj_region(400)
    cache.insert(r, dirty=True)
    ent = cache.insert(r, dirty=False)
    assert ent.dirty  # dirty is sticky until cleaned
    assert cache.bytes_used == 400  # not double-counted


def test_choose_victims_lru_order():
    cache = make_cache(capacity=1200)
    ra, rb, rc = (obj_region(400, n) for n in "abc")
    cache.insert(ra)
    cache.insert(rb)
    cache.insert(rc)
    cache.lookup(ra)  # refresh a: b is now least recently used
    victims = cache.choose_victims(400)
    assert [v.region.key for v in victims] == [rb.key]


def test_choose_victims_skips_pinned():
    cache = make_cache(capacity=800)
    ra, rb = obj_region(400, "a"), obj_region(400, "b")
    cache.insert(ra)
    cache.insert(rb)
    cache.pin(ra)
    victims = cache.choose_victims(400)
    assert [v.region.key for v in victims] == [rb.key]


def test_choose_victims_no_eviction_needed():
    cache = make_cache(capacity=1000)
    cache.insert(obj_region(400))
    assert cache.choose_victims(400) == []


def test_working_set_too_big_raises():
    cache = make_cache(capacity=800)
    ra = obj_region(400, "a")
    cache.insert(ra)
    cache.pin(ra)
    with pytest.raises(CacheCapacityError):
        cache.choose_victims(800)


def test_remove_frees_bytes_and_counts_eviction():
    cache = make_cache()
    r = obj_region(400)
    cache.insert(r)
    cache.remove(r)
    assert cache.bytes_used == 0
    assert cache.evictions == 1
    assert not cache.has(r)


def test_remove_pinned_entry_rejected():
    cache = make_cache()
    r = obj_region(400)
    cache.insert(r)
    cache.pin(r)
    with pytest.raises(RuntimeError, match="pinned"):
        cache.remove(r)
    assert cache.has(r)  # still present after the failed removal


def test_pin_unpin_balance():
    cache = make_cache()
    r = obj_region(400)
    cache.insert(r)
    cache.pin(r)
    cache.pin(r)
    cache.unpin(r)
    assert not cache.get(r).evictable
    cache.unpin(r)
    assert cache.get(r).evictable
    with pytest.raises(RuntimeError):
        cache.unpin(r)


def test_dirty_tracking_and_writeback_count():
    cache = make_cache()
    r = obj_region(400)
    cache.insert(r)
    cache.mark_dirty(r)
    assert [e.region.key for e in cache.dirty_entries()] == [r.key]
    cache.mark_clean(r)
    assert cache.dirty_entries() == []
    assert cache.writebacks == 1
    cache.mark_clean(r)  # idempotent
    assert cache.writebacks == 1


@settings(max_examples=50, deadline=None)
@given(sizes=st.lists(st.integers(min_value=1, max_value=50), min_size=1,
                      max_size=30))
def test_bytes_used_matches_sum_of_entries(sizes):
    cache = make_cache(capacity=10**9)
    for i, size in enumerate(sizes):
        cache.insert(obj_region(size * 4, name=f"r{i}"))
    assert cache.bytes_used == sum(s * 4 for s in sizes)
    assert cache.bytes_used == sum(e.nbytes for r in cache.resident_regions()
                                   for e in [cache.get(r)])


@settings(max_examples=50, deadline=None)
@given(
    capacity_units=st.integers(min_value=10, max_value=100),
    accesses=st.lists(st.integers(min_value=0, max_value=15), min_size=1,
                      max_size=100),
)
def test_cache_never_exceeds_capacity_under_lru_workload(capacity_units,
                                                         accesses):
    """Drive the (lookup -> choose_victims -> remove -> insert) protocol."""
    capacity = capacity_units * 4
    cache = make_cache(capacity=capacity)
    objs = [obj_region(4 * (1 + (i % 5)), name=f"o{i}") for i in range(16)]
    for idx in accesses:
        r = objs[idx]
        if r.nbytes > capacity:
            continue
        if not cache.lookup(r):
            for victim in cache.choose_victims(r.nbytes):
                cache.remove(victim.region)
            cache.insert(r)
        assert cache.bytes_used <= capacity
