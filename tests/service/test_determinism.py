"""The determinism pin: eager and pool backends are bit-identical.

A simulation depends only on its :class:`JobRequest` (machines, tracer
and sanitizer are built fresh per run; the pool's fork isolation is
defensive, not semantic), so the same request must produce the same
makespan, metric and mechanism counters whichever backend runs it.
Only ``engine.*`` gauges — wall-clock observations of this host — may
differ, exactly as ``tests/bench/test_sweep.py`` pins for figure sweeps.
"""

import os

import pytest

from repro.runtime.config import RuntimeConfig
from repro.service import JobRequest, Picker, PoolBackend, Service

pytestmark = pytest.mark.skipif(not hasattr(os, "fork"),
                                reason="pool backend requires POSIX fork")

#: Canonical requests spanning perf-mode multi-GPU, a cluster shape and
#: a functional sanitized run — the service analogue of a figure grid.
REQUESTS = [
    JobRequest(app="matmul", size={"n": 256, "bs": 64}, count=2,
               config=RuntimeConfig(functional=False,
                                    scheduler="affinity")),
    JobRequest(app="stream", machine="cluster", count=2,
               config=RuntimeConfig(functional=False)),
    JobRequest(app="jacobi", sanitize=True),
]


def _simulated(metrics: dict) -> dict:
    """Counter snapshot minus the wall-clock ``engine.*`` gauges."""
    return {k: v for k, v in metrics.items()
            if not k.startswith("engine.")}


def run_all(svc: Service):
    ids = [svc.submit(req) for req in REQUESTS]
    svc.run_until_idle(timeout=300)
    return [svc.result(job_id) for job_id in ids]


def test_eager_and_pool_results_bit_identical(tmp_path):
    with Service(staging=tmp_path / "eager") as svc:
        eager = run_all(svc)
    with Service(backends={"pool": PoolBackend(workers=2)},
                 picker=Picker(fallback="pool"),
                 staging=tmp_path / "pool") as svc:
        pooled = run_all(svc)
    for e, p in zip(eager, pooled):
        assert e.state is p.state
        assert e.makespan == p.makespan          # bit-identical float
        assert e.metric == p.metric
        assert e.findings == p.findings
        assert _simulated(e.metrics) == _simulated(p.metrics)
