"""``python -m repro.service`` CLI: the staged submit → worker → fetch
round trip, without a daemon (the staging directory is the queue)."""

import json

import pytest

from repro.service.cli import main


def run(capsys, *argv):
    code = main(list(argv))
    return code, capsys.readouterr().out


def submit(capsys, staging, *extra):
    code, out = run(capsys, "submit", "--staging", str(staging),
                    "--app", "matmul", "--size", "n=256,bs=64", "--perf",
                    *extra)
    assert code == 0
    return out.strip()


def test_submit_worker_status_artifacts_round_trip(tmp_path, capsys):
    staging = tmp_path / "svc"
    job_id = submit(capsys, staging, "--tenant", "alice")
    assert job_id.startswith("alice-matmul-")

    # Before the worker runs, the job is staged queued.
    code, out = run(capsys, "status", job_id, "--staging", str(staging))
    assert code == 0
    assert json.loads(out)["state"] == "queued"

    code, out = run(capsys, "worker", "--staging", str(staging))
    assert code == 0
    assert f"{job_id}: done" in out

    code, out = run(capsys, "status", job_id, "--staging", str(staging))
    assert json.loads(out)["state"] == "done"

    code, out = run(capsys, "artifacts", job_id, "--staging", str(staging))
    assert code == 0
    names = {line.split("\t")[0] for line in out.strip().splitlines()}
    assert {"request", "status", "result", "metrics", "trace",
            "stdout"} <= names

    code, out = run(capsys, "artifacts", job_id, "--staging", str(staging),
                    "--fetch", "result")
    assert code == 0
    doc = json.loads(out)
    assert doc["state"] == "done"
    assert doc["makespan"] > 0


def test_submit_from_request_file(tmp_path, capsys):
    staging = tmp_path / "svc"
    request_file = tmp_path / "request.json"
    request_file.write_text(json.dumps(
        {"app": "jacobi", "tenant": "bob",
         "config": {"functional": False}}))
    code, out = run(capsys, "submit", "--staging", str(staging),
                    "--request", str(request_file), "--job-id", "bob-j1")
    assert code == 0
    assert out.strip() == "bob-j1"
    code, out = run(capsys, "worker", "--staging", str(staging))
    assert code == 0
    assert "bob-j1: done" in out


def test_worker_strict_flags_failed_jobs(tmp_path, capsys):
    staging = tmp_path / "svc"
    request_file = tmp_path / "bad.json"
    request_file.write_text(json.dumps(
        {"app": "matmul", "config": {"functional": False},
         "run_kwargs": {"nonsense": True}}))
    run(capsys, "submit", "--staging", str(staging),
        "--request", str(request_file), "--job-id", "bad-1")
    code, out = run(capsys, "worker", "--staging", str(staging),
                    "--strict")
    assert code == 1
    assert "bad-1: failed" in out
    code, _ = run(capsys, "worker", "--staging", str(staging))
    assert code == 0                  # non-strict drains cleanly


def test_worker_skips_already_terminal_jobs(tmp_path, capsys):
    staging = tmp_path / "svc"
    job_id = submit(capsys, staging)
    run(capsys, "worker", "--staging", str(staging))
    # A second pass adopts nothing (the job is already done) and exits 0.
    code, out = run(capsys, "worker", "--staging", str(staging))
    assert code == 0
    assert job_id not in out


def test_submit_rejects_malformed_size(tmp_path, capsys):
    with pytest.raises(SystemExit):
        main(["submit", "--staging", str(tmp_path), "--app", "matmul",
              "--size", "n256"])


def test_missing_artifact_names_available_ones(tmp_path, capsys):
    staging = tmp_path / "svc"
    job_id = submit(capsys, staging)
    with pytest.raises(SystemExit, match="no 'sanitizer'"):
        main(["artifacts", job_id, "--staging", str(staging),
              "--fetch", "sanitizer"])
