"""JobQueue: strict priorities, weighted fairness, deterministic order.

The queue is synchronous and wall-clock-free, so these tests assert
*exact* dispatch sequences (see :mod:`repro.service.queue` for the WFQ
semantics being pinned).
"""

import pytest

from repro.metrics import CounterRegistry
from repro.service import JobQueue, JobRequest


def req(tenant="default", priority=0, cost=1.0, app="matmul"):
    return JobRequest(app=app, tenant=tenant, priority=priority, cost=cost)


def drain(queue):
    out = []
    while queue:
        job_id, _ = queue.pop()
        out.append(job_id)
    return out


def test_fifo_within_one_tenant():
    q = JobQueue()
    for i in range(4):
        q.push(f"j{i}", req())
    assert drain(q) == ["j0", "j1", "j2", "j3"]


def test_priority_is_strict():
    q = JobQueue()
    q.push("low", req(priority=0))
    q.push("mid", req(priority=1))
    q.push("high", req(priority=5))
    q.push("low2", req(priority=0))
    assert drain(q) == ["high", "mid", "low", "low2"]


def test_priority_beats_fairness():
    """A late high-priority job from a busy tenant still jumps the line."""
    q = JobQueue()
    q.push("a1", req(tenant="alice"))
    q.push("b1", req(tenant="bob"))
    q.push("a-urgent", req(tenant="alice", priority=1))
    assert q.pop()[0] == "a-urgent"


def test_weighted_fairness_under_contention():
    """alice (weight 2) drains twice as fast as bob/carol (weight 1).

    Three tenants, three equal-cost jobs each: the virtual-time order is
    fully determined, so the exact sequence is pinned.
    """
    q = JobQueue(weights={"alice": 2.0})
    for tenant in ("alice", "bob", "carol"):
        for i in range(3):
            q.push(f"{tenant}{i}", req(tenant=tenant))
    order = drain(q)
    tenants = [j.rstrip("012") for j in order]
    assert tenants == ["alice", "bob", "carol", "alice", "alice",
                       "bob", "carol", "bob", "carol"]
    # Over the first contended window alice got 2x bob's share.
    assert tenants[:5].count("alice") == 3


def test_cost_charges_virtual_time():
    """An expensive job delays its tenant's next turn proportionally."""
    q = JobQueue()
    q.push("a-big", req(tenant="alice", cost=3.0))
    q.push("a2", req(tenant="alice"))
    q.push("b1", req(tenant="bob"))
    q.push("b2", req(tenant="bob"))
    q.push("b3", req(tenant="bob"))
    # alice goes first (tie at vtime 0), but her cost-3 job pushes her
    # virtual time to 3; bob catches up with three cost-1 jobs.
    assert drain(q) == ["a-big", "b1", "b2", "b3", "a2"]


def test_idle_tenant_reenters_at_virtual_clock():
    """Sitting out does not bank credit: a fresh tenant joining a busy
    queue starts at the current virtual clock and interleaves, instead of
    monopolizing the backends until it 'catches up'."""
    q = JobQueue()
    for i in range(5):
        q.push(f"a{i}", req(tenant="alice"))
    assert drain(q) == [f"a{i}" for i in range(5)]
    # bob was idle the whole time; both tenants now submit three jobs.
    for i in range(3):
        q.push(f"b{i}", req(tenant="bob"))
        q.push(f"a{i + 5}", req(tenant="alice"))
    # bob starts at the current virtual clock, one step behind alice's
    # last start tag, so the two interleave from the first dispatch —
    # bob does not get five free turns to "catch up".
    assert drain(q) == ["b0", "a5", "b1", "a6", "b2", "a7"]


def test_peek_matches_pop():
    q = JobQueue(weights={"alice": 2.0})
    q.push("a", req(tenant="alice"))
    q.push("b", req(tenant="bob"))
    while q:
        peeked = q.peek()
        assert q.pop() == peeked
    assert q.peek() is None
    assert q.pop() is None


def test_queue_counters_report_into_bound_registry():
    metrics = CounterRegistry()
    q = JobQueue(metrics=metrics)
    q.push("a1", req(tenant="alice"))
    q.push("b1", req(tenant="bob"))
    q.pop()
    snap = metrics.snapshot()
    assert snap["service.tenant.alice.queued"] == 1
    assert snap["service.tenant.alice.dispatched"] == 1
    assert snap["service.jobs_dispatched"] == 1
    assert snap["service.queue.depth"] == 1


def test_unbound_queue_counts_nothing_and_does_not_crash():
    q = JobQueue()
    assert q.metrics is None
    q.push("a", req())
    assert q.pop()[0] == "a"


def test_invalid_weights_rejected():
    with pytest.raises(ValueError):
        JobQueue(weights={"alice": 0.0})
    with pytest.raises(ValueError):
        JobQueue(default_weight=-1.0)
    q = JobQueue()
    with pytest.raises(ValueError):
        q.set_weight("alice", 0.0)
