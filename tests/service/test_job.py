"""JobRequest / JobResult: validation and diff-based serialization.

The contract (see :mod:`repro.service.job`): a request is pure validated
data, ``to_dict`` writes only non-default fields, and
``from_dict(to_dict())`` round-trips bit-identically — including nested
RuntimeConfig and FaultPlan values, which carry their own diff-based
encodings.
"""

import json

import pytest

from repro.faults.plan import FaultEvent, FaultPlan
from repro.runtime.config import RuntimeConfig
from repro.service import JobRequest, JobResult, JobState


def test_minimal_request_serializes_to_app_only():
    req = JobRequest(app="matmul")
    assert req.to_dict() == {"app": "matmul"}
    assert JobRequest.from_dict({"app": "matmul"}) == req


def test_full_request_round_trips_bit_identically():
    plan = FaultPlan(events=(FaultEvent(kind="gpu_loss", at=0.5, node=1,
                                        gpu=0),),
                     seed=7)
    req = JobRequest(
        app="cholesky", version="ompss", machine="cluster", count=4,
        size={"n": 512, "bs": 128},
        config=RuntimeConfig(functional=False, cache_policy="nocache"),
        scheduler="cp", fault_plan=plan, collect_trace=False,
        tenant="alice", priority=2, cost=3.0,
        run_kwargs={"flush": False})
    doc = req.to_dict()
    # The document is JSON-clean and diff-based: default fields absent.
    doc = json.loads(json.dumps(doc))
    assert "version" not in doc           # default
    assert doc["machine"] == "cluster"
    assert doc["config"] == {"functional": False, "cache_policy": "nocache"}
    clone = JobRequest.from_dict(doc)
    assert clone == req


def test_resolved_config_applies_overrides():
    plan = FaultPlan(events=(FaultEvent(kind="gpu_loss", at=1.0, node=0,
                                        gpu=0),))
    req = JobRequest(app="matmul", config=RuntimeConfig(functional=False),
                     scheduler="ws", fault_plan=plan)
    cfg = req.resolved_config()
    assert cfg.functional is False
    assert cfg.scheduler == "ws"
    assert cfg.fault_plan is plan
    # The request's own config is untouched (with_ copies).
    assert req.config.scheduler != "ws" or req.config.fault_plan is None


@pytest.mark.parametrize("kwargs", [
    {"app": "nosuchapp"},
    {"app": "matmul", "machine": "laptop"},
    {"app": "matmul", "version": "fortran"},
    {"app": "matmul", "count": 0},
    {"app": "matmul", "scheduler": "nosuchpolicy"},
    {"app": "matmul", "cost": 0.0},
    {"app": "matmul", "tenant": ""},
    {"app": "matmul", "sanitize": True, "version": "mpi_cuda"},
    {"app": "matmul", "sanitize": True,
     "config": RuntimeConfig(functional=False)},
])
def test_invalid_requests_rejected(kwargs):
    with pytest.raises((ValueError, TypeError)):
        JobRequest(**kwargs)


def test_job_state_terminality():
    assert not JobState.QUEUED.terminal
    assert not JobState.RUNNING.terminal
    assert JobState.DONE.terminal
    assert JobState.FAILED.terminal


def test_job_result_round_trips():
    res = JobResult(job_id="j1", state=JobState.DONE, app="matmul",
                    version="ompss", tenant="alice", backend="pool",
                    makespan=1.25, metric=2.5, metric_unit="GFLOPS",
                    findings=[{"kind": "missing_output"}],
                    artifacts={"result": "result.json"})
    doc = json.loads(json.dumps(res.to_dict()))
    clone = JobResult.from_dict(doc)
    assert clone.state is JobState.DONE
    assert clone.makespan == res.makespan
    assert clone.findings == res.findings
    assert clone.artifacts == res.artifacts
