"""Picker: declarative shape-based routing, first match wins."""

import pytest

from repro.service import JobRequest, Picker, Route


def test_routes_checked_in_order_first_match_wins():
    picker = Picker(routes=(Route("slurm", machine="cluster"),
                            Route("pool", min_count=2)),
                    fallback="eager")
    assert picker.pick(JobRequest(app="matmul", machine="cluster",
                                  count=8)) == "slurm"
    assert picker.pick(JobRequest(app="matmul", count=2)) == "pool"
    assert picker.pick(JobRequest(app="matmul", count=1)) == "eager"


def test_version_and_count_bounds():
    route = Route("pool", version="mpi_cuda", min_count=2, max_count=4)
    assert route.matches(JobRequest(app="matmul", version="mpi_cuda",
                                    count=3))
    assert not route.matches(JobRequest(app="matmul", count=3))   # ompss
    assert not route.matches(JobRequest(app="matmul", version="mpi_cuda",
                                        count=1))
    assert not route.matches(JobRequest(app="matmul", version="mpi_cuda",
                                        count=5))


def test_default_picker_splits_heavy_shapes_to_pool():
    picker = Picker.default(("eager", "pool"))
    assert picker.pick(JobRequest(app="matmul", machine="cluster",
                                  count=2)) == "pool"
    assert picker.pick(JobRequest(app="matmul", count=4)) == "pool"
    assert picker.pick(JobRequest(app="matmul", count=1)) == "eager"


def test_default_picker_single_backend_routes_everything_there():
    picker = Picker.default(("pool",))
    assert picker.pick(JobRequest(app="matmul", count=1)) == "pool"
    with pytest.raises(ValueError):
        Picker.default(())


def test_invalid_routes_rejected():
    with pytest.raises(ValueError):
        Route("pool", machine="laptop")
    with pytest.raises(ValueError):
        Route("pool", version="fortran")
    with pytest.raises(ValueError):
        Route("pool", min_count=0)
    with pytest.raises(ValueError):
        Route("pool", min_count=3, max_count=2)
