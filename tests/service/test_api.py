"""Service end-to-end: async lifecycle, fairness, artifacts, crashes.

Covers the acceptance scenario for the service tier: a mixed-tenant
batch of 8+ jobs drains through a 2-worker fork-isolated pool with the
weighted-fair dispatch order observable in the ``service.*`` counters,
every finished job stages a full artifact bundle, and a job whose
process dies mid-run is marked failed (with the crash detail) while the
queue keeps draining.
"""

import json
import os

import pytest

from repro.runtime.config import RuntimeConfig
from repro.service import (JobQueue, JobRequest, JobState, Picker,
                           PoolBackend, Service)
from repro.service import backends as backends_mod

needs_fork = pytest.mark.skipif(not hasattr(os, "fork"),
                                reason="pool backend requires POSIX fork")

PERF = RuntimeConfig(functional=False)


def perf_request(**kwargs):
    kwargs.setdefault("size", {"n": 256, "bs": 64})
    return JobRequest(app="matmul", config=PERF, **kwargs)


def test_submit_poll_wait_round_trip(tmp_path):
    with Service(staging=tmp_path) as svc:
        job_id = svc.submit(perf_request())
        assert svc.state(job_id) is JobState.QUEUED
        assert job_id in svc
        result = svc.wait(job_id, timeout=60)
        assert result.state is JobState.DONE
        assert result.makespan > 0
        assert result.backend == "eager"
        # The staged status mirrors the in-process state.
        assert svc.status(job_id)["state"] == "done"
        assert svc.staging.read_status(job_id)["state"] == "done"


def test_stream_status_yields_each_transition(tmp_path):
    with Service(staging=tmp_path) as svc:
        job_id = svc.submit(perf_request())
        states = list(svc.stream_status(job_id, timeout=60))
    assert states[0] is JobState.QUEUED
    assert states[-1] is JobState.DONE
    assert [s for s in states if s.terminal] == [states[-1]]


def test_artifact_bundle_complete(tmp_path):
    """A finished sanitized+traced job stages the full bundle."""
    with Service(staging=tmp_path) as svc:
        job_id = svc.submit(JobRequest(app="jacobi", sanitize=True))
        svc.wait(job_id, timeout=120)
        bundle = svc.fetch_artifacts(job_id)
    assert set(bundle) == {"request", "status", "result", "metrics",
                           "trace", "sanitizer", "stdout"}
    result = json.loads(bundle["result"].read_text())
    assert result["state"] == "done"
    assert result["makespan"] > 0
    metrics = json.loads(bundle["metrics"].read_text())
    assert any(k.startswith("runtime.") for k in metrics)
    trace = json.loads(bundle["trace"].read_text())
    assert trace["traceEvents"]
    sanitizer = json.loads(bundle["sanitizer"].read_text())
    assert sanitizer["enabled"] is True
    assert sanitizer["findings"] == []          # jacobi is clean


def test_failed_job_keeps_traceback_and_queue_drains(tmp_path):
    with Service(staging=tmp_path) as svc:
        bad = svc.submit(perf_request(run_kwargs={"nonsense": True}))
        good = svc.submit(perf_request())
        svc.run_until_idle(timeout=60)
        assert svc.state(bad) is JobState.FAILED
        assert svc.state(good) is JobState.DONE
        assert "TypeError" in svc.result(bad).error
        assert svc.status(bad)["error"]
        # Failed bundles still stage result.json (with the error).
        doc = json.loads(svc.fetch_artifacts(bad)["result"].read_text())
        assert doc["state"] == "failed"
        snap = svc.metrics.snapshot()
        assert snap["service.jobs_failed"] == 1
        assert snap["service.jobs_completed"] == 1


def test_duplicate_and_unknown_job_ids_rejected(tmp_path):
    with Service(staging=tmp_path) as svc:
        job_id = svc.submit(perf_request(), job_id="fixed")
        assert job_id == "fixed"
        with pytest.raises(ValueError):
            svc.submit(perf_request(), job_id="fixed")
        with pytest.raises(KeyError):
            svc.state("nope")
        with pytest.raises(RuntimeError):
            svc.result("fixed")                 # not finished yet


@needs_fork
def test_mixed_tenant_batch_fair_share_on_pool(tmp_path):
    """The acceptance scenario: 9 jobs / 3 tenants / 3 apps on a
    2-worker pool; the WFQ dispatch order (alice weight 2) is exact and
    observable in the ``service.*`` counters."""
    apps = ("matmul", "cholesky", "jacobi")
    batch = [JobRequest(app=app, config=PERF, tenant=tenant)
             for tenant in ("alice", "bob", "carol") for app in apps]
    assert len(batch) >= 8
    with Service(backends={"pool": PoolBackend(workers=2)},
                 picker=Picker(fallback="pool"),
                 queue=JobQueue(weights={"alice": 2.0}),
                 staging=tmp_path) as svc:
        ids = [svc.submit(req) for req in batch]
        svc.run_until_idle(timeout=300)
        results = [svc.result(job_id) for job_id in ids]
        dispatch = svc.dispatch_order()
        snap = svc.metrics.snapshot()
    assert all(r.state is JobState.DONE for r in results)
    assert all(r.backend == "pool" for r in results)
    # Exact WFQ order: alice (weight 2) takes two turns per bob/carol one.
    tenants = [jid.split("-")[2] for jid in dispatch]
    assert tenants == ["alice", "bob", "carol", "alice", "alice",
                       "bob", "carol", "bob", "carol"]
    # Fair share is observable in the counters.
    for tenant in ("alice", "bob", "carol"):
        assert snap[f"service.tenant.{tenant}.queued"] == 3
        assert snap[f"service.tenant.{tenant}.dispatched"] == 3
    assert snap["service.jobs_submitted"] == 9
    assert snap["service.jobs_dispatched"] == 9
    assert snap["service.jobs_completed"] == 9
    assert snap["service.backend.pool.completed"] == 9
    assert snap["service.queue.depth"] == 0
    assert snap["service.active"] == 0


@needs_fork
def test_worker_death_fails_job_and_queue_keeps_draining(tmp_path,
                                                         monkeypatch):
    """A job process dying mid-run (os._exit stand-in for a segfault)
    surfaces as a failed job naming the wait status; the remaining jobs
    still complete."""
    real = backends_mod.execute_request

    def fake(request):
        if request.tenant == "doomed":
            os._exit(43)
        return real(request)

    monkeypatch.setattr(backends_mod, "execute_request", fake)
    with Service(backends={"pool": PoolBackend(workers=2)},
                 picker=Picker(fallback="pool"),
                 staging=tmp_path) as svc:
        crash = svc.submit(perf_request(tenant="doomed"))
        good = [svc.submit(perf_request()) for _ in range(3)]
        svc.run_until_idle(timeout=120)
        assert svc.state(crash) is JobState.FAILED
        assert "died" in svc.result(crash).error
        assert all(svc.state(j) is JobState.DONE for j in good)
        snap = svc.metrics.snapshot()
        assert snap["service.jobs_failed"] == 1
        assert snap["service.jobs_completed"] == 3


def test_head_of_line_dispatch_respects_queue_order(tmp_path):
    """Dispatch is head-of-line: while the single eager slot is busy,
    nothing bypasses the queue's chosen next job."""
    with Service(staging=tmp_path) as svc:
        first = svc.submit(perf_request(tenant="alice"))
        second = svc.submit(perf_request(tenant="bob", priority=1))
        third = svc.submit(perf_request(tenant="alice"))
        svc.run_until_idle(timeout=60)
        order = svc.dispatch_order()
    # The priority-1 job overtakes the queued alice job but not the
    # already-submitted order of the head element at each pump.
    assert order.index(second) < order.index(third)
    assert set(order) == {first, second, third}
