"""Backend contract: outcomes not exceptions, crash surfacing, capacity.

A failed job is a *result* (``("err", detail)``), never a backend
exception — that invariant is what lets one crashing job leave the
queue draining (pinned end-to-end in test_api.py).
"""

import os

import pytest

from repro.service import EagerBackend, JobRequest, PoolBackend
from repro.service import backends as backends_mod
from repro.runtime.config import RuntimeConfig

needs_fork = pytest.mark.skipif(not hasattr(os, "fork"),
                                reason="PoolBackend requires POSIX fork")

PERF = RuntimeConfig(functional=False)


def perf_request(**kwargs):
    return JobRequest(app="matmul", size={"n": 256, "bs": 64}, config=PERF,
                      **kwargs)


def test_eager_backend_returns_ok_payload():
    backend = EagerBackend()
    backend.start("j1", perf_request())
    assert backend.active() == ("j1",)
    kind, payload = backend.poll("j1")
    assert kind == "ok"
    assert payload["makespan"] > 0
    assert payload["trace"] is not None
    # Outcomes are delivered exactly once.
    assert backend.active() == ()
    with pytest.raises(KeyError):
        backend.poll("j1")


def test_eager_backend_surfaces_job_error_as_outcome():
    backend = EagerBackend()
    backend.start("bad", perf_request(run_kwargs={"nonsense": True}))
    kind, detail = backend.poll("bad")
    assert kind == "err"
    assert "TypeError" in detail or "nonsense" in detail


def test_free_slots_and_describe():
    backend = EagerBackend()
    assert backend.free_slots() == 1
    assert backend.describe() == {"name": "eager", "slots": 1}


def test_slot_count_validated():
    class Custom(backends_mod.AbstractBackend):
        def start(self, job_id, request): ...
        def poll(self, job_id): ...
        def active(self): return ()

    assert Custom(slots=3).free_slots() == 3
    with pytest.raises(ValueError):
        Custom(slots=0)


@needs_fork
def test_pool_backend_runs_jobs_and_reports_capacity():
    with_close = PoolBackend(workers=2)
    try:
        assert with_close.free_slots() == 2
        assert with_close.describe()["isolation"] == "fork-per-job"
        with_close.start("j1", perf_request())
        assert with_close.free_slots() == 1
        while (outcome := with_close.poll("j1")) is None:
            pass
        kind, payload = outcome
        assert kind == "ok"
        assert payload["makespan"] > 0
    finally:
        with_close.close()


@needs_fork
def test_pool_backend_surfaces_child_error_with_traceback():
    backend = PoolBackend(workers=1)
    try:
        backend.start("bad", perf_request(run_kwargs={"nonsense": True}))
        while (outcome := backend.poll("bad")) is None:
            pass
        kind, detail = outcome
        assert kind == "err"
        assert "TypeError" in detail
    finally:
        backend.close()


@needs_fork
def test_pool_backend_surfaces_dead_job_process(monkeypatch):
    """A job process that dies without reporting (segfault stand-in:
    os._exit) becomes a failed outcome naming the wait status — never a
    hang, never a backend exception."""
    monkeypatch.setattr(backends_mod, "execute_request",
                        lambda request: os._exit(42))
    backend = PoolBackend(workers=1)
    try:
        backend.start("crash", perf_request())
        while (outcome := backend.poll("crash")) is None:
            pass
        kind, detail = outcome
        assert kind == "err"
        assert "died" in detail
    finally:
        backend.close()
