"""Unit tests for Resource and Store."""

import pytest

from repro.sim import Environment, Resource, SimulationError, Store


def test_resource_capacity_validation():
    env = Environment()
    with pytest.raises(SimulationError):
        Resource(env, capacity=0)


def test_resource_grants_immediately_when_free():
    env = Environment()
    res = Resource(env, capacity=1)
    log = []

    def proc():
        with res.request() as req:
            yield req
            log.append(env.now)

    env.process(proc())
    env.run()
    assert log == [0]


def test_resource_serializes_at_capacity_one():
    env = Environment()
    res = Resource(env, capacity=1)
    log = []

    def proc(tag):
        with res.request() as req:
            yield req
            log.append((tag, env.now))
            yield env.timeout(10)

    env.process(proc("a"))
    env.process(proc("b"))
    env.process(proc("c"))
    env.run()
    assert log == [("a", 0), ("b", 10), ("c", 20)]


def test_resource_capacity_two_allows_two_concurrent():
    env = Environment()
    res = Resource(env, capacity=2)
    log = []

    def proc(tag):
        with res.request() as req:
            yield req
            log.append((tag, env.now))
            yield env.timeout(10)

    for tag in "abc":
        env.process(proc(tag))
    env.run()
    assert log == [("a", 0), ("b", 0), ("c", 10)]


def test_resource_priority_order():
    env = Environment()
    res = Resource(env, capacity=1)
    log = []

    def holder():
        with res.request() as req:
            yield req
            yield env.timeout(5)

    def waiter(tag, prio, delay):
        yield env.timeout(delay)
        with res.request(priority=prio) as req:
            yield req
            log.append(tag)

    env.process(holder())
    env.process(waiter("low", 5, 1))
    env.process(waiter("high", 0, 2))  # arrives later but higher priority
    env.run()
    assert log == ["high", "low"]


def test_resource_count_and_queue_len():
    env = Environment()
    res = Resource(env, capacity=1)

    def holder():
        with res.request() as req:
            yield req
            assert res.count == 1
            yield env.timeout(5)

    def waiter():
        yield env.timeout(1)
        with res.request() as req:
            assert res.queue_len == 1
            yield req

    env.process(holder())
    env.process(waiter())
    env.run()
    assert res.count == 0
    assert res.queue_len == 0


def test_cancel_pending_request():
    env = Environment()
    res = Resource(env, capacity=1)
    log = []

    def holder():
        with res.request() as req:
            yield req
            yield env.timeout(10)

    def canceller():
        yield env.timeout(1)
        req = res.request()
        yield env.timeout(1)
        req.cancel()
        log.append("cancelled")

    def other():
        yield env.timeout(3)
        with res.request() as req:
            yield req
            log.append(("other", env.now))

    env.process(holder())
    env.process(canceller())
    env.process(other())
    env.run()
    # After cancellation, "other" is the only waiter and gets the slot at t=10.
    assert log == ["cancelled", ("other", 10)]


def test_double_release_is_noop():
    env = Environment()
    res = Resource(env, capacity=1)

    def proc():
        req = res.request()
        yield req
        res.release(req)
        res.release(req)  # idempotent

    env.process(proc())
    env.run()
    assert res.count == 0


def test_store_put_then_get():
    env = Environment()
    store = Store(env)
    got = []

    def consumer():
        item = yield store.get()
        got.append(item)

    store.put("x")
    env.process(consumer())
    env.run()
    assert got == ["x"]


def test_store_get_blocks_until_put():
    env = Environment()
    store = Store(env)
    got = []

    def consumer():
        item = yield store.get()
        got.append((item, env.now))

    def producer():
        yield env.timeout(5)
        store.put("late")

    env.process(consumer())
    env.process(producer())
    env.run()
    assert got == [("late", 5)]


def test_store_fifo_order():
    env = Environment()
    store = Store(env)
    got = []

    def consumer():
        for _ in range(3):
            got.append((yield store.get()))

    for item in [1, 2, 3]:
        store.put(item)
    env.process(consumer())
    env.run()
    assert got == [1, 2, 3]


def test_store_put_front_jumps_queue():
    env = Environment()
    store = Store(env)
    store.put("second")
    store.put_front("first")
    assert store.try_get() == "first"
    assert store.try_get() == "second"


def test_store_try_get_empty_returns_none():
    env = Environment()
    store = Store(env)
    assert store.try_get() is None


def test_store_len():
    env = Environment()
    store = Store(env)
    assert len(store) == 0
    store.put(1)
    store.put(2)
    assert len(store) == 2


def test_store_multiple_getters_fifo():
    env = Environment()
    store = Store(env)
    got = []

    def consumer(tag):
        item = yield store.get()
        got.append((tag, item))

    env.process(consumer("a"))
    env.process(consumer("b"))

    def producer():
        yield env.timeout(1)
        store.put(1)
        store.put(2)

    env.process(producer())
    env.run()
    assert got == [("a", 1), ("b", 2)]
