"""Edge cases of the simulation engine exercised by the runtime."""

import pytest

from repro.sim import (
    Environment,
    Event,
    Interrupt,
    Resource,
    SimulationError,
    Store,
)


def test_interrupt_while_waiting_on_resource():
    env = Environment()
    res = Resource(env, capacity=1)
    log = []

    def holder():
        with res.request() as req:
            yield req
            yield env.timeout(100)

    def waiter():
        req = res.request()
        try:
            yield req
        except Interrupt:
            req.cancel()
            log.append(("interrupted", env.now))

    def interrupter(target):
        yield env.timeout(5)
        target.interrupt()

    env.process(holder())
    w = env.process(waiter())
    env.process(interrupter(w))
    env.run(until=50)
    assert log == [("interrupted", 5)]
    # The cancelled request must not consume the slot when freed.
    assert res.queue_len == 0


def test_process_immediately_returning_generator():
    env = Environment()

    def instant():
        return "now"
        yield  # pragma: no cover - generator marker

    p = env.process(instant())
    env.run()
    assert p.value == "now"


def test_event_succeed_from_callback_of_other_event():
    env = Environment()
    first = env.timeout(1)
    second = env.event()
    first.callbacks.append(lambda _ev: second.succeed("chained"))
    got = []

    def waiter():
        got.append((yield second))

    env.process(waiter())
    env.run()
    assert got == ["chained"]


def test_nested_processes_three_deep():
    env = Environment()

    def level3():
        yield env.timeout(1)
        return 3

    def level2():
        value = yield env.process(level3())
        return value + 10

    def level1():
        value = yield env.process(level2())
        return value + 100

    p = env.process(level1())
    env.run()
    assert p.value == 113


def test_store_interleaved_producers_consumers_deterministic():
    env = Environment()
    store = Store(env)
    got = []

    def producer(tag, delay):
        yield env.timeout(delay)
        store.put(tag)

    def consumer():
        for _ in range(3):
            got.append((yield store.get()))

    env.process(consumer())
    for tag, delay in (("a", 3), ("b", 1), ("c", 2)):
        env.process(producer(tag, delay))
    env.run()
    assert got == ["b", "c", "a"]


def test_zero_delay_timeout_preserves_fifo():
    env = Environment()
    order = []

    def proc(tag):
        yield env.timeout(0)
        order.append(tag)

    for tag in range(4):
        env.process(proc(tag))
    env.run()
    assert order == [0, 1, 2, 3]


def test_run_twice_continues_from_stop_point():
    env = Environment()
    ticks = []

    def clock():
        while True:
            yield env.timeout(10)
            ticks.append(env.now)

    env.process(clock())
    env.run(until=25)
    assert ticks == [10, 20]
    env.run(until=45)
    assert ticks == [10, 20, 30, 40]


def test_failed_event_value_is_exception():
    env = Environment()
    ev = env.event()
    err = RuntimeError("x")
    ev.fail(err)
    assert ev.value is err
    assert not ev.ok
    ev._defused = True  # silence the unhandled-failure check
    env.run()
