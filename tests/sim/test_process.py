"""Unit tests for simulated processes."""

import pytest

from repro.sim import Environment, Interrupt, SimulationError


def test_process_runs_to_completion():
    env = Environment()
    steps = []

    def proc():
        steps.append("start")
        yield env.timeout(1)
        steps.append("middle")
        yield env.timeout(1)
        steps.append("end")

    env.process(proc())
    env.run()
    assert steps == ["start", "middle", "end"]
    assert env.now == 2


def test_process_return_value_becomes_event_value():
    env = Environment()

    def proc():
        yield env.timeout(1)
        return 99

    p = env.process(proc())
    env.run()
    assert p.value == 99


def test_process_waits_on_other_process():
    env = Environment()
    log = []

    def child():
        yield env.timeout(5)
        log.append("child done")
        return "result"

    def parent():
        c = env.process(child())
        value = yield c
        log.append(f"parent got {value}")

    env.process(parent())
    env.run()
    assert log == ["child done", "parent got result"]


def test_waiting_on_finished_process_resumes_immediately():
    env = Environment()
    log = []

    def child():
        yield env.timeout(1)
        return "early"

    def parent(c):
        yield env.timeout(10)
        value = yield c
        log.append((env.now, value))

    c = env.process(child())
    env.process(parent(c))
    env.run()
    assert log == [(10, "early")]


def test_process_exception_propagates_to_waiter():
    env = Environment()
    caught = []

    def child():
        yield env.timeout(1)
        raise KeyError("child blew up")

    def parent():
        try:
            yield env.process(child())
        except KeyError as exc:
            caught.append(str(exc))

    env.process(parent())
    env.run()
    assert caught == ["'child blew up'"]


def test_unwaited_process_exception_surfaces_from_run():
    env = Environment()

    def proc():
        yield env.timeout(1)
        raise RuntimeError("unobserved crash")

    env.process(proc())
    with pytest.raises(RuntimeError, match="unobserved crash"):
        env.run()


def test_process_rejects_non_generator():
    env = Environment()
    with pytest.raises(SimulationError):
        env.process(lambda: None)


def test_yielding_non_event_is_an_error():
    env = Environment()

    def proc():
        yield 42

    env.process(proc())
    with pytest.raises(SimulationError, match="non-event"):
        env.run()


def test_interrupt_resumes_with_interrupt_exception():
    env = Environment()
    log = []

    def sleeper():
        try:
            yield env.timeout(100)
        except Interrupt as intr:
            log.append((env.now, intr.cause))

    def interrupter(target):
        yield env.timeout(3)
        target.interrupt(cause="wake up")

    target = env.process(sleeper())
    env.process(interrupter(target))
    env.run()
    assert log == [(3, "wake up")]


def test_interrupt_finished_process_rejected():
    env = Environment()

    def quick():
        yield env.timeout(1)

    def late(target):
        yield env.timeout(5)
        with pytest.raises(SimulationError):
            target.interrupt()

    p = env.process(quick())
    env.process(late(p))
    env.run()


def test_self_interrupt_rejected():
    env = Environment()
    errors = []

    def proc():
        me = env.active_process
        try:
            me.interrupt()
        except SimulationError:
            errors.append("rejected")
        yield env.timeout(0)

    env.process(proc())
    env.run()
    assert errors == ["rejected"]


def test_is_alive_flag():
    env = Environment()

    def proc():
        yield env.timeout(2)

    p = env.process(proc())
    assert p.is_alive
    env.run()
    assert not p.is_alive


def test_active_process_is_tracked():
    env = Environment()
    seen = []

    def proc():
        seen.append(env.active_process)
        yield env.timeout(1)

    p = env.process(proc())
    env.run()
    assert seen == [p]
    assert env.active_process is None


def test_many_processes_interleave_deterministically():
    env = Environment()
    order = []

    def proc(tag, delay):
        yield env.timeout(delay)
        order.append(tag)
        yield env.timeout(delay)
        order.append(tag)

    env.process(proc("a", 1))
    env.process(proc("b", 2))
    env.process(proc("c", 3))
    env.run()
    # Simultaneous events fire in event-creation order: b's first timeout was
    # created at t=0, before a's second timeout (created at t=1), so at t=2
    # b runs before a.
    assert order == ["a", "b", "a", "c", "b", "c"]


def test_process_chain_without_delays_runs_same_instant():
    env = Environment()
    log = []

    def inner():
        log.append("inner")
        return "x"
        yield  # pragma: no cover - makes this a generator

    def outer():
        value = yield env.process(inner())
        log.append(f"outer {value}")

    env.process(outer())
    env.run()
    assert log == ["inner", "outer x"]
    assert env.now == 0
