"""Unit tests and property tests for AllOf/AnyOf composite events."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import AllOf, AnyOf, Environment, SimulationError


def test_allof_waits_for_all():
    env = Environment()
    done = []

    def proc():
        yield env.all_of([env.timeout(1), env.timeout(5), env.timeout(3)])
        done.append(env.now)

    env.process(proc())
    env.run()
    assert done == [5]


def test_anyof_fires_on_first():
    env = Environment()
    done = []

    def proc():
        yield env.any_of([env.timeout(4), env.timeout(2), env.timeout(9)])
        done.append(env.now)

    env.process(proc())
    env.run()
    assert done == [2]


def test_allof_empty_fires_immediately():
    env = Environment()
    done = []

    def proc():
        yield env.all_of([])
        done.append(env.now)

    env.process(proc())
    env.run()
    assert done == [0]


def test_allof_collects_values():
    env = Environment()
    got = []

    def proc():
        t1 = env.timeout(1, value="a")
        t2 = env.timeout(2, value="b")
        values = yield env.all_of([t1, t2])
        got.append(sorted(values.values()))

    env.process(proc())
    env.run()
    assert got == [["a", "b"]]


def test_allof_with_already_processed_event():
    env = Environment()
    got = []

    def proc():
        t1 = env.timeout(1, value="early")
        yield env.timeout(5)
        t2 = env.timeout(1, value="late")
        values = yield env.all_of([t1, t2])
        got.append(sorted(values.values()))

    env.process(proc())
    env.run()
    assert got == [["early", "late"]]
    assert env.now == 6


def test_allof_fails_fast_on_failure():
    env = Environment()
    caught = []

    def failer():
        yield env.timeout(1)
        raise ValueError("sub-event failed")

    def proc():
        try:
            yield env.all_of([env.process(failer()), env.timeout(100)])
        except ValueError:
            caught.append(env.now)

    env.process(proc())
    env.run(until=10)
    assert caught == [1]


def test_anyof_failure_propagates():
    env = Environment()
    caught = []

    def failer():
        yield env.timeout(1)
        raise KeyError("x")

    def proc():
        try:
            yield env.any_of([env.process(failer()), env.timeout(100)])
        except KeyError:
            caught.append(env.now)

    env.process(proc())
    env.run(until=10)
    assert caught == [1]


def test_cross_environment_events_rejected():
    env1 = Environment()
    env2 = Environment()
    with pytest.raises(SimulationError):
        AllOf(env1, [env1.event(), env2.event()])


def test_late_failure_after_anyof_resolution_is_defused():
    env = Environment()

    def failer():
        yield env.timeout(5)
        raise RuntimeError("late loser")

    def proc():
        yield env.any_of([env.timeout(1), env.process(failer())])

    env.process(proc())
    env.run()  # must not re-raise the late loser's failure


@settings(max_examples=50, deadline=None)
@given(delays=st.lists(st.floats(min_value=0, max_value=1000,
                                 allow_nan=False), min_size=1, max_size=20))
def test_allof_resolves_at_max_delay(delays):
    env = Environment()
    resolved = []

    def proc():
        yield env.all_of([env.timeout(d) for d in delays])
        resolved.append(env.now)

    env.process(proc())
    env.run()
    assert resolved == [max(delays)]


@settings(max_examples=50, deadline=None)
@given(delays=st.lists(st.floats(min_value=0, max_value=1000,
                                 allow_nan=False), min_size=1, max_size=20))
def test_anyof_resolves_at_min_delay(delays):
    env = Environment()
    resolved = []

    def proc():
        yield env.any_of([env.timeout(d) for d in delays])
        resolved.append(env.now)

    env.process(proc())
    env.run()
    assert resolved == [min(delays)]


@settings(max_examples=30, deadline=None)
@given(delays=st.lists(st.floats(min_value=0, max_value=100,
                                 allow_nan=False), min_size=1, max_size=30))
def test_timeouts_fire_in_nondecreasing_time_order(delays):
    env = Environment()
    fired = []

    def proc(d):
        yield env.timeout(d)
        fired.append(env.now)

    for d in delays:
        env.process(proc(d))
    env.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)
