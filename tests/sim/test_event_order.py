"""The split immediate-lanes + heap queue preserves single-heap order.

``Environment`` keeps events scheduled "now" in three per-priority deques
and only timed events in the binary heap (see the :mod:`repro.sim.core`
module docstring).  These tests drive randomized cascades of simultaneous
and timed events through the real engine and through a pure-heapq
reference implementation of the documented total order — (time, priority,
sequence) — and require the two processing orders to be identical.
"""

import heapq
import random

import pytest

from repro.sim.core import (
    PRIORITY_LOW,
    PRIORITY_NORMAL,
    PRIORITY_URGENT,
    Environment,
    Event,
)

#: Delay grid for cascades: zero (immediate lane) plus a few timed values
#: that collide often enough to exercise the same-instant heap-vs-lane
#: comparison in ``Environment.run``.
DELAYS = (0.0, 0.0, 0.0, 0.001, 0.002, 0.003)
PRIORITIES = (PRIORITY_URGENT, PRIORITY_NORMAL, PRIORITY_LOW)


def build_cascade(rng: random.Random, total: int):
    """Random tree as explicit structures: roots + children-by-node-id."""
    children: dict[int, list[tuple[int, float, int]]] = {}
    counter = [0]

    def new_node() -> int:
        counter[0] += 1
        children[counter[0]] = []
        return counter[0]

    roots = []
    all_nodes = []
    for _ in range(max(1, total // 10)):
        node = new_node()
        roots.append((node, rng.choice(PRIORITIES)))
        all_nodes.append(node)
    while counter[0] < total:
        parent = rng.choice(all_nodes)
        node = new_node()
        children[parent].append((node, rng.choice(DELAYS),
                                 rng.choice(PRIORITIES)))
        all_nodes.append(node)
    return roots, children


def run_real(roots, children) -> list[int]:
    """Drive the cascade through the real Environment."""
    env = Environment()
    order: list[int] = []

    def fire(node: int):
        order.append(node)
        for child, delay, prio in children[node]:
            schedule(child, delay, prio)

    def schedule(node: int, delay: float, prio: int):
        if delay == 0.0:
            ev = Event(env)
            ev.callbacks.append(lambda _ev, n=node: fire(n))
            ev.succeed(priority=prio)
        else:
            env.at(env.now + delay, lambda n=node: fire(n), priority=prio)

    for node, prio in roots:
        schedule(node, 0.0, prio)
    env.run()
    return order


def run_reference(roots, children) -> list[int]:
    """The same cascade on one plain heapq ordered (time, prio, seq)."""
    heap: list[tuple[float, int, int, int]] = []
    seq = [0]
    now = [0.0]
    order: list[int] = []

    def schedule(node: int, delay: float, prio: int):
        seq[0] += 1
        heapq.heappush(heap, (now[0] + delay, prio, seq[0], node))

    for node, prio in roots:
        schedule(node, 0.0, prio)
    while heap:
        when, _prio, _seq, node = heapq.heappop(heap)
        now[0] = when
        order.append(node)
        for child, delay, prio in children[node]:
            schedule(child, delay, prio)
    return order


@pytest.mark.parametrize("seed", range(8))
def test_random_cascades_match_single_heap(seed):
    rng = random.Random(seed)
    roots, children = build_cascade(rng, total=250)
    real = run_real(roots, children)
    ref = run_reference(roots, children)
    assert len(real) == 250
    assert real == ref


def test_priorities_order_simultaneous_events():
    env = Environment()
    order = []
    for prio, tag in ((PRIORITY_LOW, "low1"), (PRIORITY_NORMAL, "norm1"),
                      (PRIORITY_URGENT, "urg1"), (PRIORITY_LOW, "low2"),
                      (PRIORITY_URGENT, "urg2"), (PRIORITY_NORMAL, "norm2")):
        ev = Event(env)
        ev.callbacks.append(lambda _ev, t=tag: order.append(t))
        ev.succeed(priority=prio)
    env.run()
    assert order == ["urg1", "urg2", "norm1", "norm2", "low1", "low2"]


def test_zero_timeout_and_succeed_share_fifo_order():
    """delay-0 timeouts land in the same lane as succeed(): pure FIFO."""
    env = Environment()
    order = []
    t1 = env.timeout(0.0)
    t1.callbacks.append(lambda _ev: order.append("t1"))
    ev = Event(env)
    ev.callbacks.append(lambda _ev: order.append("ev"))
    ev.succeed()
    t2 = env.timeout(0.0)
    t2.callbacks.append(lambda _ev: order.append("t2"))
    env.run()
    assert order == ["t1", "ev", "t2"]


def test_earlier_scheduled_heap_event_beats_later_lane_event():
    """A timed event planned long ago still wins the (prio, seq) race
    against an immediate event created at its firing instant."""
    env = Environment()
    order = []
    # seq 1: fires at t=1 and immediately schedules a lane event (seq 3).
    env.at(1.0, lambda: (order.append("first"), spawn()), PRIORITY_NORMAL)
    # seq 2: also at t=1 — lower seq than the lane event spawned above,
    # so with equal priority it must fire before it.
    env.at(1.0, lambda: order.append("second"), PRIORITY_NORMAL)

    def spawn():
        ev = Event(env)
        ev.callbacks.append(lambda _ev: order.append("spawned"))
        ev.succeed()

    env.run()
    assert order == ["first", "second", "spawned"]


def test_urgent_lane_event_beats_same_instant_heap_event():
    env = Environment()
    order = []
    env.at(1.0, lambda: (order.append("first"), spawn()), PRIORITY_NORMAL)
    env.at(1.0, lambda: order.append("normal-heap"), PRIORITY_NORMAL)

    def spawn():
        ev = Event(env)
        ev.callbacks.append(lambda _ev: order.append("urgent-lane"))
        ev.succeed(priority=PRIORITY_URGENT)

    env.run()
    assert order == ["first", "urgent-lane", "normal-heap"]


def test_events_processed_counts_every_event():
    rng = random.Random(1234)
    roots, children = build_cascade(rng, total=100)
    env = Environment()
    # Reuse run_real's scheduling against this env via a tiny inline copy
    # so we can inspect the same Environment afterwards.
    order = []

    def fire(node: int):
        order.append(node)
        for child, delay, prio in children[node]:
            schedule(child, delay, prio)

    def schedule(node: int, delay: float, prio: int):
        if delay == 0.0:
            ev = Event(env)
            ev.callbacks.append(lambda _ev, n=node: fire(n))
            ev.succeed(priority=prio)
        else:
            env.at(env.now + delay, lambda n=node: fire(n), priority=prio)

    for node, prio in roots:
        schedule(node, 0.0, prio)
    env.run()
    assert env.events_processed == len(order) == 100
