"""Unit tests for the discrete-event simulation core."""

import pytest

from repro.sim import (
    Environment,
    Event,
    SimulationError,
    Timeout,
)


def test_environment_starts_at_zero():
    env = Environment()
    assert env.now == 0.0


def test_environment_custom_start_time():
    env = Environment(initial_time=5.0)
    assert env.now == 5.0


def test_timeout_advances_clock():
    env = Environment()

    def proc():
        yield env.timeout(3.5)

    env.process(proc())
    env.run()
    assert env.now == 3.5


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(SimulationError):
        env.timeout(-1)


def test_timeout_carries_value():
    env = Environment()
    got = []

    def proc():
        value = yield env.timeout(1, value="payload")
        got.append(value)

    env.process(proc())
    env.run()
    assert got == ["payload"]


def test_event_succeed_resumes_waiter():
    env = Environment()
    ev = env.event()
    got = []

    def waiter():
        got.append((yield ev))

    def trigger():
        yield env.timeout(2)
        ev.succeed(42)

    env.process(waiter())
    env.process(trigger())
    env.run()
    assert got == [42]
    assert env.now == 2


def test_event_fail_throws_into_waiter():
    env = Environment()
    ev = env.event()
    caught = []

    def waiter():
        try:
            yield ev
        except ValueError as exc:
            caught.append(str(exc))

    def trigger():
        yield env.timeout(1)
        ev.fail(ValueError("boom"))

    env.process(waiter())
    env.process(trigger())
    env.run()
    assert caught == ["boom"]


def test_double_trigger_rejected():
    env = Environment()
    ev = env.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)
    with pytest.raises(SimulationError):
        ev.fail(RuntimeError("x"))


def test_value_before_trigger_raises():
    env = Environment()
    ev = env.event()
    with pytest.raises(SimulationError):
        _ = ev.value
    with pytest.raises(SimulationError):
        _ = ev.ok


def test_run_until_time_stops_clock_exactly():
    env = Environment()

    def proc():
        while True:
            yield env.timeout(10)

    env.process(proc())
    env.run(until=25)
    assert env.now == 25


def test_run_until_event_returns_its_value():
    env = Environment()

    def proc():
        yield env.timeout(4)
        return "done"

    p = env.process(proc())
    result = env.run(until=p)
    assert result == "done"
    assert env.now == 4


def test_run_until_past_time_rejected():
    env = Environment(initial_time=10)
    with pytest.raises(SimulationError):
        env.run(until=5)


def test_run_until_never_triggering_event_reports_deadlock():
    env = Environment()
    ev = env.event()
    with pytest.raises(SimulationError, match="deadlock"):
        env.run(until=ev)


def test_simultaneous_events_fire_in_fifo_order():
    env = Environment()
    order = []

    def proc(tag):
        yield env.timeout(1)
        order.append(tag)

    for tag in range(5):
        env.process(proc(tag))
    env.run()
    assert order == [0, 1, 2, 3, 4]


def test_step_with_empty_queue_raises():
    env = Environment()
    with pytest.raises(SimulationError):
        env.step()


def test_peek_returns_next_event_time():
    env = Environment()
    env.timeout(7)
    assert env.peek() == 7
    env2 = Environment()
    assert env2.peek() == float("inf")


def test_unhandled_failure_surfaces_from_run():
    env = Environment()
    ev = env.event()
    ev.fail(RuntimeError("lost failure"))
    with pytest.raises(RuntimeError, match="lost failure"):
        env.run()


def test_events_compose_with_and_or():
    env = Environment()
    results = []

    def proc():
        t1 = env.timeout(1, value="a")
        t2 = env.timeout(2, value="b")
        got = yield t1 & t2
        results.append(sorted(got.values()))
        t3 = env.timeout(1, value="c")
        t4 = env.timeout(5, value="d")
        got = yield t3 | t4
        results.append(sorted(got.values()))

    env.process(proc())
    env.run()
    assert results == [["a", "b"], ["c"]]
    # AnyOf resolved at t=3 but the losing timeout still drains at t=7.
    assert env.now == 7


def test_event_repr_mentions_state():
    env = Environment()
    ev = env.event()
    assert "pending" in repr(ev)
    ev.succeed()
    assert "triggered" in repr(ev)


def test_timeout_is_event_subclass():
    env = Environment()
    assert isinstance(env.timeout(1), Event)
    assert isinstance(env.timeout(1), Timeout)
