"""Tests for the hardware specification catalog."""

import pytest

from repro.hardware import (
    CLUSTER_NODE,
    GB,
    GTX_480,
    MULTI_GPU_NODE,
    QDR_INFINIBAND,
    TESLA_S2050,
    ClusterSpec,
    gpu_cluster_spec,
)


def test_tesla_s2050_matches_paper():
    assert TESLA_S2050.mem_capacity == int(2.62 * GB)
    assert TESLA_S2050.copy_engines == 2


def test_gtx480_matches_paper():
    assert GTX_480.peak_sp_gflops == pytest.approx(1345.0)
    assert GTX_480.mem_capacity == int(1.5 * GB)
    assert GTX_480.mem_bandwidth == pytest.approx(177.4e9)
    assert GTX_480.copy_engines == 1


def test_sgemm_sustained_below_peak():
    for spec in (TESLA_S2050, GTX_480):
        assert 0 < spec.sgemm_gflops < spec.peak_sp_gflops


def test_multi_gpu_node_has_four_gpus_and_eight_cores():
    assert len(MULTI_GPU_NODE.gpus) == 4
    assert MULTI_GPU_NODE.cpu.cores == 8
    assert MULTI_GPU_NODE.host_mem_capacity == int(15.66 * GB)


def test_cluster_node_has_one_gtx480():
    assert CLUSTER_NODE.gpus == (GTX_480,)
    assert CLUSTER_NODE.host_mem_capacity == 25 * GB


def test_with_gpus_subsets_node():
    two = MULTI_GPU_NODE.with_gpus(2)
    assert len(two.gpus) == 2
    assert two.cpu is MULTI_GPU_NODE.cpu


def test_with_gpus_bounds_checked():
    with pytest.raises(ValueError):
        MULTI_GPU_NODE.with_gpus(0)
    with pytest.raises(ValueError):
        MULTI_GPU_NODE.with_gpus(5)


def test_qdr_ib_effective_bandwidth():
    # Paper quotes an 8 Gbit/s peak; effective must not exceed it.
    assert QDR_INFINIBAND.bandwidth <= 8e9 / 8 * 1.01


def test_gpu_cluster_spec_counts_nodes():
    spec = gpu_cluster_spec(8)
    assert spec.num_nodes == 8
    assert spec.node is CLUSTER_NODE


def test_cluster_spec_rejects_zero_nodes():
    with pytest.raises(ValueError):
        ClusterSpec(name="bad", node=CLUSTER_NODE, num_nodes=0,
                    nic=QDR_INFINIBAND)
