"""Tests for links, GPUs, nodes and the network fabric."""

import pytest

from repro.hardware import (
    GTX_480,
    Link,
    TESLA_S2050,
    build_gpu_cluster,
    build_multi_gpu_node,
)
from repro.hardware.gpu import GPUDevice
from repro.sim import Environment


# ---------------------------------------------------------------------- Link

def test_link_occupancy_formula():
    env = Environment()
    link = Link(env, bandwidth=1e9, latency=1e-3)
    assert link.occupancy(1_000_000) == pytest.approx(1e-3 + 1e-3)


def test_link_rejects_bad_parameters():
    env = Environment()
    with pytest.raises(ValueError):
        Link(env, bandwidth=0, latency=0)
    with pytest.raises(ValueError):
        Link(env, bandwidth=1e9, latency=-1)
    link = Link(env, bandwidth=1e9, latency=0)
    with pytest.raises(ValueError):
        link.occupancy(-5)


def test_link_serializes_transfers():
    env = Environment()
    link = Link(env, bandwidth=1e6, latency=0)  # 1 MB/s
    done = []

    def xfer(tag):
        yield env.process(link.transfer(1_000_000))  # 1 s each
        done.append((tag, env.now))

    env.process(xfer("a"))
    env.process(xfer("b"))
    env.run()
    assert done == [("a", 1.0), ("b", 2.0)]
    assert link.bytes_moved == 2_000_000
    assert link.transfer_count == 2


def test_link_busy_time_includes_latency_term():
    """A latency-bound stream of tiny transfers must report the link as
    busy for the full hold time — counting only bytes/bandwidth would make
    the link look idle while it is in fact saturated by latency."""
    env = Environment()
    link = Link(env, bandwidth=1e9, latency=1e-3)
    for _ in range(10):
        env.process(link.transfer(1000))      # 1 us of wire, 1 ms of latency
    env.run()
    expected = 10 * (1e-3 + 1000 / 1e9)
    assert link.busy_seconds == pytest.approx(expected)
    assert env.now == pytest.approx(expected)  # fully serialized: held 100%


def test_link_degraded_hold_time_is_accounted():
    env = Environment()
    link = Link(env, bandwidth=1e6, latency=0.5)
    link.degradation = 3.0
    env.process(link.transfer(1_000_000))
    env.run()
    assert link.busy_seconds == pytest.approx(3.0 * (0.5 + 1.0))


def test_link_metrics_mirror_counters():
    from repro.metrics import CounterRegistry
    env = Environment()
    link = Link(env, bandwidth=1e6, latency=0.0, name="nic0.tx")
    registry = CounterRegistry()
    link.attach_metrics(registry)
    env.process(link.transfer(2_000_000))
    env.run()
    link.count_fused(3)
    assert registry.value("hardware.link.nic0.tx.bytes_moved") == 2_000_000
    assert registry.value("hardware.link.nic0.tx.transfers") == 1
    assert registry.value("hardware.link.nic0.tx.transfers_fused") == 3
    assert registry.value("hardware.link.nic0.tx.busy_seconds") \
        == pytest.approx(2.0)
    assert link.transfers_fused == 3


def test_multilane_link_allows_concurrency():
    env = Environment()
    link = Link(env, bandwidth=1e6, latency=0, lanes=2)
    done = []

    def xfer(tag):
        yield env.process(link.transfer(1_000_000))
        done.append((tag, env.now))

    env.process(xfer("a"))
    env.process(xfer("b"))
    env.run()
    assert done == [("a", 1.0), ("b", 1.0)]


# ----------------------------------------------------------------------- GPU

def test_gpu_kernel_occupies_compute_engine():
    env = Environment()
    gpu = GPUDevice(env, TESLA_S2050, index=0)
    done = []

    def kern(tag):
        yield env.process(gpu.run_kernel(1.0))
        done.append((tag, env.now))

    env.process(kern("k1"))
    env.process(kern("k2"))
    env.run()
    ovh = TESLA_S2050.kernel_launch_overhead
    assert done[0] == ("k1", pytest.approx(1.0 + ovh))
    assert done[1] == ("k2", pytest.approx(2.0 + 2 * ovh))
    assert gpu.kernels_launched == 2
    assert gpu.busy_time == pytest.approx(2.0 + 2 * ovh)


def test_gpu_rejects_negative_kernel_duration():
    env = Environment()
    gpu = GPUDevice(env, TESLA_S2050, index=0)
    with pytest.raises(ValueError):
        env.process(gpu.run_kernel(-1))
        env.run()


def test_tesla_two_copy_engines_overlap_directions():
    env = Environment()
    gpu = GPUDevice(env, TESLA_S2050, index=0)
    done = []

    def move(direction):
        yield env.process(gpu.dma_transfer(100 * 1024 * 1024, direction))
        done.append((direction, env.now))

    env.process(move("h2d"))
    env.process(move("d2h"))
    env.run()
    # Two copy engines: both directions complete at (roughly) the same time.
    assert done[0][1] == pytest.approx(done[1][1])


def test_gtx480_single_copy_engine_serializes_directions():
    env = Environment()
    gpu = GPUDevice(env, GTX_480, index=0)
    done = []

    def move(direction):
        yield env.process(gpu.dma_transfer(100 * 1024 * 1024, direction))
        done.append((direction, env.now))

    env.process(move("h2d"))
    env.process(move("d2h"))
    env.run()
    assert done[1][1] == pytest.approx(2 * done[0][1], rel=0.01)


def test_pageable_transfer_slower_than_pinned():
    env1, env2 = Environment(), Environment()
    g1 = GPUDevice(env1, GTX_480, index=0)
    g2 = GPUDevice(env2, GTX_480, index=0)
    env1.process(g1.dma_transfer(10 * 1024 * 1024, "h2d", pinned=True))
    env1.run()
    env2.process(g2.dma_transfer(10 * 1024 * 1024, "h2d", pinned=False))
    env2.run()
    assert env2.now > env1.now


def test_bad_dma_direction_rejected():
    env = Environment()
    gpu = GPUDevice(env, GTX_480, index=0)
    with pytest.raises(ValueError):
        env.process(gpu.dma_transfer(1, "sideways"))
        env.run()


# ---------------------------------------------------------------- Node/Machine

def test_multi_gpu_machine_shape():
    env = Environment()
    m = build_multi_gpu_node(env, num_gpus=4)
    assert m.num_nodes == 1
    assert not m.is_cluster
    assert m.total_gpus == 4
    assert m.network is None
    assert m.master.nic_tx is None


def test_cluster_machine_shape():
    env = Environment()
    m = build_gpu_cluster(env, num_nodes=4)
    assert m.num_nodes == 4
    assert m.is_cluster
    assert m.total_gpus == 4
    assert m.network is not None
    assert all(node.nic_tx is not None for node in m.nodes)


def test_node_cpu_cores_limit_concurrency():
    env = Environment()
    m = build_multi_gpu_node(env, num_gpus=1)
    node = m.master
    done = []

    def work(tag):
        yield env.process(node.run_cpu_work(1.0))
        done.append((tag, env.now))

    for tag in range(10):  # node has 8 cores
        env.process(work(tag))
    env.run()
    at_one = [tag for tag, t in done if t == pytest.approx(1.0)]
    at_two = [tag for tag, t in done if t == pytest.approx(2.0)]
    assert len(at_one) == 8
    assert len(at_two) == 2


# -------------------------------------------------------------------- Network

def test_network_transfer_time():
    env = Environment()
    m = build_gpu_cluster(env, num_nodes=2)
    done = []

    def xfer():
        yield env.process(m.network.transfer(m.nodes[0], m.nodes[1], 10**9))
        done.append(env.now)

    env.process(xfer())
    env.run()
    expected = m.network.nic.latency + 10**9 / m.network.nic.bandwidth
    assert done == [pytest.approx(expected)]
    assert m.network.bytes_moved == 10**9


def test_network_loopback_uses_host_memory():
    env = Environment()
    m = build_gpu_cluster(env, num_nodes=2)

    def xfer():
        yield env.process(m.network.transfer(m.nodes[0], m.nodes[0], 10**9))

    env.process(xfer())
    env.run()
    # Loopback is a memcpy, far faster than the wire.
    assert env.now < 10**9 / m.network.nic.bandwidth
    assert m.network.bytes_moved == 0


def test_master_nic_is_contention_point():
    """Sends from the master to N slaves serialize on the master's tx port."""
    env = Environment()
    m = build_gpu_cluster(env, num_nodes=4)
    done = []

    def send(dst):
        yield env.process(m.network.transfer(m.nodes[0], m.nodes[dst], 10**8))
        done.append(env.now)

    for dst in (1, 2, 3):
        env.process(send(dst))
    env.run()
    one_msg = 10**8 / m.network.nic.bandwidth
    assert max(done) >= 3 * one_msg


def test_slave_to_slave_transfers_run_concurrently():
    """Disjoint node pairs do not contend (full crossbar)."""
    env = Environment()
    m = build_gpu_cluster(env, num_nodes=4)
    done = []

    def send(src, dst):
        yield env.process(m.network.transfer(m.nodes[src], m.nodes[dst], 10**8))
        done.append(env.now)

    env.process(send(0, 1))
    env.process(send(2, 3))
    env.run()
    one_msg = m.network.nic.latency + 10**8 / m.network.nic.bandwidth
    assert done == [pytest.approx(one_msg), pytest.approx(one_msg)]
