"""Unit tests for the CounterRegistry instrument kinds and export."""

import json

import pytest

from repro.metrics import Counter, CounterRegistry, Gauge, Histogram


# ---------------------------------------------------------------- Counter

def test_counter_increments():
    c = Counter("x")
    c.inc()
    c.inc(5)
    assert c.value == 6


def test_counter_rejects_decrease():
    with pytest.raises(ValueError, match="cannot decrease"):
        Counter("x").inc(-1)


# ------------------------------------------------------------------ Gauge

def test_gauge_tracks_high_water():
    g = Gauge("g")
    g.set(5)
    g.set(2)
    g.add(1)
    assert g.value == 3
    assert g.high_water == 5


# -------------------------------------------------------------- Histogram

def test_histogram_summary():
    h = Histogram("h")
    for v in (1.0, 3.0, 2.0):
        h.observe(v)
    s = h.summary()
    assert s["count"] == 3
    assert s["min"] == 1.0
    assert s["max"] == 3.0
    assert s["mean"] == pytest.approx(2.0)
    assert s["total"] == pytest.approx(6.0)


def test_empty_histogram_summary_is_zeros():
    s = Histogram("h").summary()
    assert s == {"count": 0, "total": 0.0, "min": 0.0, "max": 0.0,
                 "mean": 0.0}


# --------------------------------------------------------------- Registry

def test_instruments_created_lazily_and_cached():
    m = CounterRegistry()
    assert m.counter("a") is m.counter("a")
    assert m.gauge("b") is m.gauge("b")
    assert m.histogram("c") is m.histogram("c")
    assert len(m) == 3
    assert m.names() == ["a", "b", "c"]


def test_name_cannot_change_kind():
    m = CounterRegistry()
    m.counter("x")
    with pytest.raises(ValueError, match="different kind"):
        m.gauge("x")
    with pytest.raises(ValueError, match="different kind"):
        m.histogram("x")


def test_shortcuts_and_value():
    m = CounterRegistry()
    m.inc("hits")
    m.inc("hits", 2)
    m.set_gauge("level", 7)
    m.observe("dur", 0.5)
    assert m.value("hits") == 3
    assert m.value("level") == 7
    assert m.value("absent", default=-1) == -1


def test_scoped_timer_uses_clock():
    now = {"t": 0.0}
    m = CounterRegistry(clock=lambda: now["t"])
    with m.timer("phase"):
        now["t"] = 2.5
    s = m.histogram("phase").summary()
    assert s["count"] == 1
    assert s["total"] == pytest.approx(2.5)


def test_snapshot_shape():
    m = CounterRegistry()
    m.inc("c", 4)
    m.set_gauge("g", 9)
    m.observe("h", 1.0)
    snap = m.snapshot()
    assert snap["c"] == 4
    assert snap["g"] == 9
    assert snap["g.high_water"] == 9
    assert snap["h"]["count"] == 1
    # JSON round-trips.
    assert json.loads(m.to_json())["c"] == 4


def test_with_prefix_filters():
    m = CounterRegistry()
    m.inc("cache.gpu0.hits")
    m.inc("am.bytes", 10)
    sub = m.with_prefix("cache.")
    assert list(sub) == ["cache.gpu0.hits"]


def test_reset_forgets_everything():
    m = CounterRegistry()
    m.inc("a")
    m.reset()
    assert len(m) == 0
    assert m.snapshot() == {}


def test_info_instrument_last_write_wins():
    reg = CounterRegistry()
    assert reg.info("scheduler.policy") is None
    assert reg.info("scheduler.policy", "unset") == "unset"
    reg.set_info("scheduler.policy", "affinity")
    reg.set_info("scheduler.policy", "adaptive:cp")
    assert reg.info("scheduler.policy") == "adaptive:cp"


def test_info_appears_in_snapshot_and_respects_kinds():
    reg = CounterRegistry()
    reg.set_info("datamove.write_mode", "wb")
    reg.inc("tasks.total")
    snap = reg.snapshot()
    assert snap["datamove.write_mode"] == "wb"
    assert snap["tasks.total"] == 1
    # An info name cannot be reused as another instrument kind.
    with pytest.raises(ValueError):
        reg.counter("datamove.write_mode")
    with pytest.raises(ValueError):
        reg.set_info("tasks.total", "oops")
