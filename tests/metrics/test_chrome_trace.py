"""The Chrome trace-event exporter must emit chrome://tracing-loadable JSON."""

import json

from repro.runtime import Tracer


def make_tracer():
    t = Tracer()
    t.record("task", "t0", "gpu:0:0", 0.0, 1e-3)
    t.record("kernel", "k0", "gpu:0:0", 0.2e-3, 0.9e-3)
    t.record("transfer", "A", "link:node0.host->node0.gpu0", 0.0, 0.1e-3,
             nbytes=4096)
    return t


def test_valid_json_document():
    doc = json.loads(make_tracer().to_chrome())
    assert isinstance(doc["traceEvents"], list)
    assert doc["displayTimeUnit"] == "ms"


def test_thread_metadata_names_places():
    doc = json.loads(make_tracer().to_chrome())
    meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
    named = {e["args"]["name"] for e in meta}
    assert named == {"gpu:0:0", "link:node0.host->node0.gpu0"}
    # Metadata tids must match the tids used by the span events.
    tid_of = {e["args"]["name"]: e["tid"] for e in meta}
    spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    assert {e["tid"] for e in spans} == set(tid_of.values())


def test_complete_events_in_microseconds():
    doc = json.loads(make_tracer().to_chrome())
    spans = {e["name"]: e for e in doc["traceEvents"] if e["ph"] == "X"}
    t0 = spans["t0"]
    assert t0["ts"] == 0.0
    assert t0["dur"] == 1e-3 * 1e6  # microseconds
    assert t0["cat"] == "task"


def test_transfer_spans_carry_nbytes_args():
    doc = json.loads(make_tracer().to_chrome())
    xfer = [e for e in doc["traceEvents"]
            if e["ph"] == "X" and e["cat"] == "transfer"]
    assert xfer and xfer[0]["args"]["nbytes"] == 4096


def test_metrics_snapshot_embedded():
    text = make_tracer().to_chrome(metrics={"cache.hits": 12})
    doc = json.loads(text)
    assert doc["otherData"]["metrics"]["cache.hits"] == 12


def test_empty_tracer_still_valid():
    doc = json.loads(Tracer().to_chrome())
    assert doc["traceEvents"] == []


def test_gaps_query():
    t = Tracer()
    t.record("task", "a", "p", 0.0, 1.0)
    t.record("task", "b", "p", 0.5, 2.0)   # overlaps a -> merged
    t.record("task", "c", "p", 3.0, 4.0)
    assert t.gaps("p") == [(2.0, 3.0)]
    assert t.gaps("unknown-place") == []
