"""End-to-end counter accounting through the instrumented runtime."""

import pytest

from repro.api import Program
from repro.apps.matmul import MatmulSize
from repro.apps.matmul.common import tile_start
from repro.apps.matmul.ompss import matmul_tile
from repro.cuda import KernelSpec
from repro.hardware import build_gpu_cluster, build_multi_gpu_node
from repro.runtime import (
    Access,
    Direction,
    Runtime,
    RuntimeConfig,
    Task,
)
from repro.sim import Environment


def two_task_matmul(cache_policy: str):
    """Two chained matmul tile tasks (C += A*B twice) on one GPU."""
    size = MatmulSize(n=128, bs=128)
    machine = build_multi_gpu_node(Environment(), num_gpus=1)
    prog = Program(machine, RuntimeConfig(functional=False,
                                          cache_policy=cache_policy))
    a = prog.array("A", size.elements)
    b = prog.array("B", size.elements)
    c = prog.array("C", size.elements)
    te = size.tile_elements
    s = tile_start(size, 0, 0)

    def main():
        for _ in range(2):
            matmul_tile(a[s:s + te], b[s:s + te], c[s:s + te],
                        size.bs, size.bs, size.bs)
        yield from prog.taskwait(noflush=True)

    prog.run(main())
    return prog


def cache_totals(snapshot, what):
    return sum(v for k, v in snapshot.items()
               if k.startswith("cache.") and k.endswith(f".{what}"))


# --------------------------------------------------- cache policy ablation

def test_write_back_hits_on_second_task():
    snap = two_task_matmul("wb").metrics.snapshot()
    # Task 1 misses A, B, C; task 2 finds all three resident.
    assert cache_totals(snap, "misses") == 3
    assert cache_totals(snap, "hits") == 3
    assert cache_totals(snap, "evictions") == 0


def test_nocache_never_hits():
    snap = two_task_matmul("nocache").metrics.snapshot()
    # Everything is dropped after each task: 6 misses, no reuse.
    assert cache_totals(snap, "hits") == 0
    assert cache_totals(snap, "misses") == 6
    assert cache_totals(snap, "evictions") > 0


def test_policy_changes_transfer_counters_too():
    wb = two_task_matmul("wb").metrics.snapshot()
    nc = two_task_matmul("nocache").metrics.snapshot()
    assert nc["coherence.bytes_transferred"] > wb["coherence.bytes_transferred"]


def test_legacy_stats_agree_with_registry():
    prog = two_task_matmul("wb")
    snap = prog.metrics.snapshot()
    stats = prog.stats
    assert stats["cache_hits"] == cache_totals(snap, "hits")
    assert stats["cache_misses"] == cache_totals(snap, "misses")
    assert stats["transfers"] == snap["coherence.transfers"]
    assert stats["bytes_transferred"] == snap["coherence.bytes_transferred"]
    assert stats["tasks"] == snap["runtime.tasks_finished"]


# ------------------------------------------------------- GPU-layer counters

def test_gpu_kernel_and_dma_counters():
    prog = two_task_matmul("wb")
    snap = prog.metrics.snapshot()
    assert snap["gpu.gpu:0:0.kernels"] == 2
    assert snap["gpu.gpu:0:0.tasks"] == 2
    assert snap["gpu.gpu:0:0.dma.h2d.copies"] == 3
    assert snap["gpu.gpu:0:0.dma.h2d.bytes"] > 0
    assert snap["tasks.cuda.duration"]["count"] == 2
    # Stream enqueues cover kernels + DMA ops.
    stream_ops = sum(v for k, v in snap.items()
                     if k.startswith("cuda.stream.") and k.endswith(".ops"))
    assert stream_ops >= 5


def test_prefetch_counters():
    env = Environment()
    machine = build_multi_gpu_node(env, num_gpus=1)
    rt = Runtime(machine, RuntimeConfig(functional=False, prefetch=True,
                                        overlap=True))
    kernel = KernelSpec(name="k", cost=lambda spec: 1e-3)
    tasks = []
    for i in range(4):
        obj = rt.register_array(f"x{i}", 1 << 16)
        tasks.append(Task(name=f"t{i}", device="cuda", kernel=kernel,
                          accesses=(Access(obj.whole, Direction.INOUT),)))

    def main():
        for t in tasks:
            rt.submit(t)
        yield from rt.taskwait(noflush=True)

    rt.run_main(main())
    snap = rt.metrics.snapshot()
    assert snap["gpu.gpu:0:0.prefetch.staged"] >= 1
    assert snap["gpu.gpu:0:0.prefetch.hits"] >= 1


# --------------------------------------------------- cluster link accounting

def cluster_run(num_nodes=2, tasks=8):
    env = Environment()
    machine = build_gpu_cluster(env, num_nodes=num_nodes)
    rt = Runtime(machine, RuntimeConfig(functional=False,
                                        scheduler="affinity",
                                        kernel_jitter=0))
    kernel = KernelSpec(name="k", cost=lambda spec: 1e-3)
    task_list = []
    for i in range(tasks):
        obj = rt.register_array(f"x{i}", 1 << 16)
        task_list.append(Task(name=f"t{i}", device="cuda", kernel=kernel,
                              accesses=(Access(obj.whole, Direction.INOUT),)))

    def main():
        for t in task_list:
            rt.submit(t)
        yield from rt.taskwait(noflush=True)

    rt.run_main(main())
    return rt


def test_bytes_per_link_on_two_node_cluster():
    rt = cluster_run()
    snap = rt.metrics.snapshot()
    # Data shipped to node 1 must appear on the master->slave wire link,
    # and the byte count must be an exact multiple of the region size.
    assert snap["link.net:0->1.transfers"] >= 1
    region_bytes = (1 << 16) * 4
    assert snap["link.net:0->1.bytes"] >= region_bytes
    assert snap["link.net:0->1.bytes"] % region_bytes == 0
    # The AM layer accounts the same wire, including control traffic.
    assert snap["am.link.0->1.bytes"] >= snap["link.net:0->1.bytes"]
    assert snap["am.link.0->1.messages"] >= snap["link.net:0->1.transfers"]
    # Completion messages flow back on the reverse link.
    assert snap["am.link.1->0.messages"] >= 1


def test_per_link_counters_sum_to_totals():
    rt = cluster_run()
    snap = rt.metrics.snapshot()
    link_bytes = sum(v for k, v in snap.items()
                     if k.startswith("link.") and k.endswith(".bytes"))
    assert link_bytes == snap["coherence.bytes_transferred"]
    assert snap["coherence.bytes_transferred"] == \
        rt.coherence.bytes_transferred


def test_cluster_dispatch_counters():
    rt = cluster_run()
    snap = rt.metrics.snapshot()
    assert snap["cluster.node1.dispatched"] >= 1
    assert snap["cluster.node1.outstanding"] == 0  # drained at the end
    assert snap["cluster.node1.outstanding.high_water"] >= 1


def test_presend_counter_with_window():
    env = Environment()
    machine = build_gpu_cluster(env, num_nodes=2)
    rt = Runtime(machine, RuntimeConfig(functional=False,
                                        scheduler="affinity", presend=2,
                                        kernel_jitter=0))
    kernel = KernelSpec(name="k", cost=lambda spec: 1e-3)
    obj = rt.register_array("x", 1 << 16)
    # A chain pinned to one region: affinity keeps it on one node, so with
    # presend=2 later tasks ship while earlier ones still run.
    chain = [Task(name=f"t{i}", device="cuda", kernel=kernel,
                  accesses=(Access(obj.whole, Direction.INOUT),))
             for i in range(6)]

    def main():
        for t in chain:
            rt.submit(t)
        yield from rt.taskwait(noflush=True)

    rt.run_main(main())
    snap = rt.metrics.snapshot()
    total_presends = sum(v for k, v in snap.items()
                         if k.startswith("cluster.")
                         and k.endswith(".presends"))
    dispatched = sum(v for k, v in snap.items()
                     if k.startswith("cluster.")
                     and k.endswith(".dispatched"))
    if dispatched >= 2:
        assert total_presends >= 1


# ------------------------------------------------------------ shared registry

def test_registry_can_be_shared_across_runs():
    from repro.metrics import CounterRegistry
    shared = CounterRegistry()
    for _ in range(2):
        env = Environment()
        machine = build_multi_gpu_node(env, num_gpus=1)
        prog = Program(machine, RuntimeConfig(functional=False),
                       metrics=shared)
        size = MatmulSize(n=128, bs=128)
        a = prog.array("A", size.elements)
        b = prog.array("B", size.elements)
        c = prog.array("C", size.elements)
        te = size.tile_elements

        def main():
            matmul_tile(a[0:te], b[0:te], c[0:te],
                        size.bs, size.bs, size.bs)
            yield from prog.taskwait(noflush=True)

        prog.run(main())
    assert shared.value("runtime.tasks_finished") == 2
