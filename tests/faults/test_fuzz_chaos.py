"""Chaos x fuzzing: fuzzed DAGs recover bit-identically from faults.

The structured apps in this suite exercise regular graphs; the fuzzed
workloads add ragged fan-in, inout chains, nested scopes and taskwaits.
Under a GPU loss or a dropped active message, every scheduling policy
must still land every region on exactly the sequential oracle's bytes —
recovery re-executes and re-routes, it never changes numerics.
"""

import numpy as np
import pytest

from repro.dagfuzz import expected_arrays, generate, run_workload
from repro.faults import FaultEvent, FaultPlan
from repro.runtime.config import SCHEDULERS, RuntimeConfig

#: chaos baseline: write-back caches so recovery must re-resolve dirty
#: replicas, plus a little timing noise to perturb schedules.
_BASE = dict(functional=True, cache_policy="wb", kernel_jitter=0.02,
             task_overhead=5e-6)

#: (profile, seed) pairs covering depth, width, clause mix and nesting.
FUZZ_CASES = (("default", 0), ("deep", 1), ("irregular", 2), ("nested", 3))


def _assert_oracle(spec, config, machine):
    outputs, _ = run_workload(spec, machine=machine, config=config)
    exp = expected_arrays(spec)
    for info in spec.regions():
        assert np.array_equal(outputs[info.rid], exp[info.rid]), \
            (f"region {info.rid} diverged under {config.scheduler} "
             f"with faults on {machine} "
             f"({spec.profile} seed {spec.seed})")


@pytest.mark.parametrize("scheduler", SCHEDULERS)
@pytest.mark.parametrize("profile,seed", FUZZ_CASES)
def test_gpu_loss_recovery_matches_oracle(scheduler, profile, seed):
    spec = generate(seed, profile)
    plan = FaultPlan(events=(
        FaultEvent(kind="gpu_loss", node=0, gpu=1, at=2e-5),
    ))
    cfg = RuntimeConfig(**_BASE, scheduler=scheduler, fault_plan=plan)
    _assert_oracle(spec, cfg, "gpu2")


@pytest.mark.parametrize("scheduler", SCHEDULERS)
@pytest.mark.parametrize("profile,seed", FUZZ_CASES)
def test_am_drop_recovery_matches_oracle(scheduler, profile, seed):
    spec = generate(seed, profile)
    plan = FaultPlan(events=(
        FaultEvent(kind="am_drop", nth=2),
    ))
    cfg = RuntimeConfig(**_BASE, scheduler=scheduler, fault_plan=plan)
    _assert_oracle(spec, cfg, "cluster2")


def test_combined_faults_on_datamove_stack():
    """One compound scenario: GPU loss + AM drop with the armed datamove
    layer (elision, coalescing, presend) on a cluster."""
    spec = generate(5, "default")
    plan = FaultPlan(events=(
        FaultEvent(kind="gpu_loss", node=1, gpu=0, at=3e-5),
        FaultEvent(kind="am_drop", nth=3),
    ))
    cfg = RuntimeConfig(**_BASE, scheduler="affinity", fault_plan=plan,
                        wb_elision=True, coalescing=True,
                        cost_aware_eviction=True, presend_depth=1)
    _assert_oracle(spec, cfg, "cluster2")
