"""Shared machinery for the chaos/fault test suite.

Each scenario is a (machine, app, size) combination run in functional mode,
so outputs are real NumPy arrays and "recovered correctly" can be asserted
as bit-identity against the fault-free baseline.  Baselines are computed
once per process and cached (the fault-free run of a scenario is itself
deterministic, so one reference is enough for any number of fault plans).
"""

from __future__ import annotations

import numpy as np

from repro.apps import matmul, nbody, stream
from repro.bench.harness import fresh_cluster, fresh_multi_gpu
from repro.runtime.config import RuntimeConfig

__all__ = ["SCENARIOS", "baseline", "run_scenario", "assert_same_outputs"]

_MM = matmul.MatmulSize(n=96, bs=32)               # 3x3 tiles, 27 mults
_ST = stream.StreamSize(n=1024, bsize=128, ntimes=2)
_NB = nbody.NBodySize(n=256, blocks=4, iters=2)

_BASE = dict(functional=True, cache_policy="wb", scheduler="affinity",
             kernel_jitter=0.02, task_overhead=50e-6)


def _mm_mgpu(plan):
    cfg = RuntimeConfig(**_BASE, fault_plan=plan)
    return matmul.run_ompss(fresh_multi_gpu(2), _MM, config=cfg,
                            verify=True)


def _st_mgpu(plan):
    cfg = RuntimeConfig(**{**_BASE, "scheduler": "default"},
                        fault_plan=plan)
    return stream.run_ompss(fresh_multi_gpu(2), _ST, config=cfg,
                            verify=True)


def _nb_mgpu(plan):
    cfg = RuntimeConfig(**_BASE, fault_plan=plan)
    return nbody.run_ompss(fresh_multi_gpu(2), _NB, config=cfg,
                           verify=True)


def _mm_cluster(plan):
    cfg = RuntimeConfig(**_BASE, presend=2, fault_plan=plan)
    return matmul.run_ompss(fresh_cluster(2), _MM, config=cfg,
                            init="smp", verify=True)


#: name -> callable(plan) -> AppResult.  ``plan=None`` is the baseline.
SCENARIOS = {
    "matmul-mgpu": _mm_mgpu,
    "stream-mgpu": _st_mgpu,
    "nbody-mgpu": _nb_mgpu,
    "matmul-cluster": _mm_cluster,
}

_baselines: dict = {}


def baseline(name: str):
    """The cached fault-free AppResult of a scenario."""
    if name not in _baselines:
        _baselines[name] = SCENARIOS[name](None)
    return _baselines[name]


def run_scenario(name: str, plan):
    return SCENARIOS[name](plan)


def assert_same_outputs(ref, res) -> None:
    """Outputs must be *bit-identical* to the fault-free run — recovery may
    cost virtual time but never changes a single result bit."""
    assert ref.output is not None and res.output is not None
    assert set(ref.output) == set(res.output)
    for key, expected in ref.output.items():
        got = res.output[key]
        assert expected.dtype == got.dtype
        assert np.array_equal(expected, got), (
            f"output {key!r} diverged from the fault-free run")
