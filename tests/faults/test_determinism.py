"""Determinism guarantees of the fault engine.

Two runs of the same (plan, scenario) pair must produce the *same
simulation*: identical makespan, identical fault/recovery timeline —
in-process, across processes, and across ``PYTHONHASHSEED`` values.
And the empty plan must be a true no-op: the runtime must not even
instantiate the engine, so golden makespans stay bit-identical (the
zero-overhead guarantee; the goldens themselves are enforced by
``tests/bench/test_golden_makespan.py``).
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

from repro.apps import matmul
from repro.bench.harness import fresh_multi_gpu
from repro.faults import FaultEngine, FaultEvent, FaultPlan
from repro.hardware import build_multi_gpu_node
from repro.runtime import Runtime, RuntimeConfig
from repro.sim import Environment

from .helpers import SCENARIOS, assert_same_outputs

_PLAN = FaultPlan(events=(
    FaultEvent(kind="kernel_abort", probability=0.12),
    FaultEvent(kind="gpu_loss", node=0, gpu=1, at=2e-3),
    FaultEvent(kind="pcie_degrade", node=0, gpu=0, at=1e-3,
               duration=2e-3, factor=3.0),
), seed=99, paranoid=True)


def _run_once():
    size = matmul.MatmulSize(n=96, bs=32)
    cfg = RuntimeConfig(functional=True, cache_policy="wb",
                        scheduler="affinity", fault_plan=_PLAN)
    prog_result = matmul.run_ompss(fresh_multi_gpu(2), size, config=cfg,
                                   verify=True)
    return prog_result


def test_same_plan_same_timeline_in_process():
    a, b = _run_once(), _run_once()
    assert a.makespan == b.makespan
    assert_same_outputs(a, b)
    # The recovery effort itself is part of the reproducible simulation.
    for key in ("faults.gpu_lost", "faults.kernel_abort",
                "faults.tasks_reexecuted"):
        assert a.metrics.get(key) == b.metrics.get(key)


_SUBPROCESS_SNIPPET = r"""
import json, sys
from repro.apps import matmul
from repro.bench.harness import fresh_multi_gpu
from repro.faults import FaultEvent, FaultPlan
from repro.runtime.config import RuntimeConfig

plan = FaultPlan(events=(
    FaultEvent(kind="kernel_abort", probability=0.12),
    FaultEvent(kind="gpu_loss", node=0, gpu=1, at=2e-3),
), seed=7, paranoid=True)
cfg = RuntimeConfig(functional=True, cache_policy="wb",
                    scheduler="affinity", fault_plan=plan)
res = matmul.run_ompss(fresh_multi_gpu(2), matmul.MatmulSize(n=96, bs=32),
                       config=cfg, verify=True)
digest = __import__("hashlib").sha256(res.output["c"].tobytes()).hexdigest()
print(json.dumps({"makespan": res.makespan, "digest": digest,
                  "aborts": res.metrics.get("faults.kernel_abort", 0)}))
"""


def _run_subprocess(hashseed: str) -> dict:
    root = Path(__file__).resolve().parents[2]
    out = subprocess.run(
        [sys.executable, "-c", _SUBPROCESS_SNIPPET],
        env={"PYTHONPATH": str(root / "src"),
             "PYTHONHASHSEED": hashseed,
             "PATH": "/usr/bin:/bin"},
        capture_output=True, text=True, check=True, cwd=root)
    return json.loads(out.stdout)


def test_timeline_independent_of_pythonhashseed():
    a = _run_subprocess("0")
    b = _run_subprocess("424242")
    assert a == b


def test_engine_timeline_digest_is_stable():
    """Two engines fed the same plan over the same machine hash the same
    timeline (the digest the chaos CI logs for cross-run comparison)."""

    def run():
        env = Environment()
        machine = build_multi_gpu_node(env, num_gpus=2)
        plan = FaultPlan(events=(
            FaultEvent(kind="gpu_loss", node=0, gpu=1, at=1e-3),
        ), seed=3, paranoid=True)
        rt = Runtime(machine, RuntimeConfig(
            functional=False, kernel_jitter=0, task_overhead=0,
            fault_plan=plan))
        from repro.cuda.kernels import KernelSpec
        from repro.runtime.task import Access, Direction, Task
        k = KernelSpec("noop", cost=lambda spec, **kw: 1e-4)
        obj = rt.register_array("x", 1024)

        def main():
            for i in range(24):
                rt.submit(Task(name=f"t{i}", device="cuda", kernel=k,
                               accesses=(Access(obj.whole, Direction.INOUT),)))
            yield from rt.taskwait()

        rt.run_main(main())
        return rt.faults.timeline_digest(), rt.faults.timeline

    (d1, t1), (d2, t2) = run(), run()
    assert t1  # the loss actually happened
    assert d1 == d2
    assert t1 == t2


def test_empty_plan_never_builds_an_engine():
    env = Environment()
    machine = build_multi_gpu_node(env, num_gpus=1)
    rt = Runtime(machine, RuntimeConfig(fault_plan=FaultPlan()))
    assert rt.faults is None
    rt2 = Runtime(build_multi_gpu_node(Environment(), num_gpus=1),
                  RuntimeConfig(fault_plan=None))
    assert rt2.faults is None


def test_empty_plan_makespan_equals_no_plan():
    """The documented zero-overhead guarantee, end to end: with an empty
    plan the simulation schedules not a single extra event."""
    for name, run in SCENARIOS.items():
        bare = run(None)
        empty = run(FaultPlan())
        assert bare.makespan == empty.makespan, name
        assert_same_outputs(bare, empty)


def test_engine_start_is_idempotent():
    env = Environment()
    machine = build_multi_gpu_node(env, num_gpus=2)
    plan = FaultPlan(events=(
        FaultEvent(kind="gpu_loss", node=0, gpu=1, at=5.0),
    ), seed=1)
    rt = Runtime(machine, RuntimeConfig(fault_plan=plan))
    assert isinstance(rt.faults, FaultEngine)
    rt.start()
    before = len(env._queue)
    rt.faults.start()  # second call must not schedule the loss again
    assert len(env._queue) == before
