"""AM retry/backoff machinery, and regression tests for the two latent
retry hazards this subsystem fixed:

1. **Duplicate delivery** (``gasnet/am.py``): a resent request racing a
   still-running generator handler used to execute the handler twice.
   The receiver now keeps an in-progress marker per idempotency token, so
   the duplicate *waits for* the first execution instead of repeating it.
2. **Stale acknowledgement** (``runtime/cluster/master.py``): a completion
   message for a task the master already pulled back from a blacklisted
   node used to double-decrement the presend window.  Completions are now
   deduplicated against the proxy's in-flight table.
"""

from __future__ import annotations

import pytest

from repro.faults import AMTimeoutError, FaultEvent, FaultPlan
from repro.hardware import build_gpu_cluster
from repro.runtime import Runtime, RuntimeConfig
from repro.runtime.task import Task
from repro.sim import Environment


def make_cluster_rt(plan, num_nodes=2, **cfg):
    env = Environment()
    machine = build_gpu_cluster(env, num_nodes=num_nodes)
    defaults = dict(functional=False, kernel_jitter=0, task_overhead=0,
                    fault_plan=plan)
    defaults.update(cfg)
    return Runtime(machine, RuntimeConfig(**defaults))


def send(rt, handler_name, *args, src=0, dst=1):
    """Run one AM request to completion; returns the handler result."""
    box = {}

    def proc():
        box["result"] = yield rt.am.request(src, dst, handler_name, *args)

    rt.start()
    rt.env.run(until=rt.env.process(proc()))
    return box["result"]


# ---------------------------------------------------------------------------
# Retry / backoff / timeout
# ---------------------------------------------------------------------------

def test_dropped_message_is_retried_until_delivered():
    plan = FaultPlan(events=(
        FaultEvent(kind="am_drop", nth=1),
    ), seed=0, am_timeout=1e-3, am_backoff=1e-4)
    rt = make_cluster_rt(plan)
    calls = []
    rt.am.endpoints[1].register("ping", lambda src, x: calls.append(x) or x)
    assert send(rt, "ping", 42) == 42
    assert calls == [42]                      # delivered exactly once
    assert rt.metrics.value("am.retries") == 1
    assert rt.metrics.value("am.timeouts") == 1
    assert rt.metrics.value("faults.am_dropped") == 1


def test_corrupted_message_is_discarded_and_retried():
    plan = FaultPlan(events=(
        FaultEvent(kind="am_corrupt", nth=1),
    ), seed=0, am_timeout=1e-3, am_backoff=1e-4)
    rt = make_cluster_rt(plan)
    calls = []
    rt.am.endpoints[1].register("ping", lambda src: calls.append(1))
    send(rt, "ping")
    assert calls == [1]
    assert rt.metrics.value("faults.am_corrupted") == 1


def test_partition_heals_and_message_gets_through():
    plan = FaultPlan(events=(
        FaultEvent(kind="link_partition", at=0.0, duration=2.5e-3),
    ), seed=0, am_timeout=1e-3, am_backoff=1e-4)
    rt = make_cluster_rt(plan)
    calls = []
    rt.am.endpoints[1].register("ping", lambda src: calls.append(rt.env.now))
    send(rt, "ping")
    assert len(calls) == 1
    assert calls[0] >= 2.5e-3                 # only after the heal
    assert rt.metrics.value("faults.am_blackholed") >= 1


def test_retry_budget_exhaustion_raises_am_timeout():
    plan = FaultPlan(events=(
        FaultEvent(kind="link_partition", at=0.0),   # never heals
    ), seed=0, am_timeout=1e-3, am_backoff=1e-4, am_max_retries=3)
    rt = make_cluster_rt(plan)
    rt.am.endpoints[1].register("ping", lambda src: None)
    with pytest.raises(AMTimeoutError, match="3 attempts"):
        send(rt, "ping")


def test_backoff_grows_between_attempts():
    plan = FaultPlan(events=(
        FaultEvent(kind="am_drop", nth=1),
        FaultEvent(kind="am_drop", nth=2),
    ), seed=0, am_timeout=1e-3, am_backoff=1e-4, am_backoff_factor=2.0)
    rt = make_cluster_rt(plan)
    rt.am.endpoints[1].register("ping", lambda src: None)
    send(rt, "ping")
    # Two losses: timeout + 1e-4 backoff, timeout + 2e-4 backoff, then the
    # third attempt delivers.
    assert rt.env.now >= 2e-3 + 3e-4
    assert rt.metrics.value("am.retries") == 2


# ---------------------------------------------------------------------------
# Hazard 1: duplicate delivery on resend
# ---------------------------------------------------------------------------

def test_ack_drop_does_not_rerun_the_handler():
    """The handler ran, the ack vanished, the sender resent: the receiver
    must recognise the token and answer from its dedup table."""
    plan = FaultPlan(events=(
        FaultEvent(kind="am_ack_drop", nth=1),
    ), seed=0, am_timeout=1e-3, am_backoff=1e-4)
    rt = make_cluster_rt(plan)
    calls = []

    def handler(src, x):
        calls.append(x)
        return x * 2

    rt.am.endpoints[1].register("ping", handler)
    assert send(rt, "ping", 21) == 42
    assert calls == [21]                      # executed exactly once
    assert rt.am.endpoints[1].duplicates_suppressed == 1
    assert rt.metrics.value("am.duplicates_suppressed") == 1


def test_resend_racing_slow_generator_handler_waits_instead_of_rerunning():
    """Regression: the resend used to re-enter a handler that was *still
    running* (its token not yet in the dedup table), executing the side
    effect twice.  The in-progress marker makes the duplicate wait and
    adopt the first execution's result."""
    plan = FaultPlan(events=(
        FaultEvent(kind="am_ack_drop", nth=1),
    ), seed=0, am_timeout=1e-3, am_backoff=1e-4)
    rt = make_cluster_rt(plan)
    state = {"runs": 0}

    def slow_handler(src):
        state["runs"] += 1
        # Runs far longer than the sender's watchdog: the retry arrives
        # while this body is still executing.
        yield rt.env.timeout(5e-3)
        return f"run-{state['runs']}"

    rt.am.endpoints[1].register("slow", slow_handler)
    result = send(rt, "slow")
    assert state["runs"] == 1
    assert result == "run-1"
    assert rt.am.endpoints[1].duplicates_suppressed >= 1


def test_slow_handler_alone_triggers_watchdog_but_never_duplicates():
    """Even with no injected AM fault events, a handler slower than the
    watchdog causes resends — which must all dedup onto one execution.
    (A non-empty plan is needed to arm the resilient path at all.)"""
    plan = FaultPlan(events=(
        FaultEvent(kind="kernel_abort", nth=10**9),   # inert, arms engine
    ), seed=0, am_timeout=1e-3, am_backoff=1e-4)
    rt = make_cluster_rt(plan)
    state = {"runs": 0}

    def slow_handler(src):
        state["runs"] += 1
        yield rt.env.timeout(3.5e-3)
        return "done"

    rt.am.endpoints[1].register("slow", slow_handler)
    assert send(rt, "slow") == "done"
    assert state["runs"] == 1


# ---------------------------------------------------------------------------
# Hazard 2: stale completion for a rerouted task
# ---------------------------------------------------------------------------

def _noop_cuda_task(name):
    from repro.cuda.kernels import KernelSpec
    return Task(name=name, device="cuda",
                kernel=KernelSpec(name, cost=lambda s, **kw: 1e-4))


def test_stale_completion_does_not_double_decrement_window():
    plan = FaultPlan(events=(
        FaultEvent(kind="kernel_abort", nth=10**9),   # inert, arms engine
    ), seed=0)
    rt = make_cluster_rt(plan, presend=2)
    rt.start()
    comm = rt.master_image.comm_thread
    proxy = comm.proxies[0]
    task = _noop_cuda_task("t")
    task.done = rt.env.event()
    rt.graph.add_task(task)

    # Simulate the dispatch bookkeeping the comm thread does.
    proxy.outstanding += 1
    proxy.inflight[task.tid] = task
    task.node_index = proxy.node_index

    # The node's device dies; the fault engine pulls the task back.
    rt.faults.return_to_master(task, proxy.node_index)
    assert task.tid not in proxy.inflight
    assert proxy.outstanding == 0

    # The slave's completion message arrives anyway (it was in flight):
    # it must be recognised as stale, not double-decrement the window.
    comm.on_remote_complete(task, proxy.node_index)
    assert proxy.outstanding == 0
    assert rt.metrics.value("cluster.stale_completions") == 1


def test_duplicate_completion_for_finished_task_is_ignored():
    from repro.runtime.task import TaskState

    plan = FaultPlan(events=(
        FaultEvent(kind="kernel_abort", nth=10**9),
    ), seed=0)
    rt = make_cluster_rt(plan)
    rt.start()
    comm = rt.master_image.comm_thread
    task = _noop_cuda_task("t")
    task.state = TaskState.FINISHED
    comm.on_remote_complete(task, 1)
    assert rt.metrics.value("cluster.stale_completions") == 1


def test_proxy_stops_accepting_cuda_after_node_loses_all_gpus():
    plan = FaultPlan(events=(
        FaultEvent(kind="gpu_loss", node=1, gpu=0, at=1e-3),
    ), seed=0)
    rt = make_cluster_rt(plan)
    rt.start()
    proxy = rt.master_image.proxies[0]
    task = _noop_cuda_task("t")
    assert proxy.accepts(task)

    def main():
        yield rt.env.timeout(2e-3)

    rt.env.run(until=rt.env.process(main()))
    assert not proxy.accepts(task)            # no live GPU on node 1 left
    smp_task = Task(name="s", device="smp", smp_cost=1e-6)
    assert proxy.accepts(smp_task)            # CPUs still fine
