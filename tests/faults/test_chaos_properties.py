"""Property-based chaos suite: random recoverable fault plans must never
change a single output bit.

Hypothesis draws seeded :class:`FaultPlan`s from the *recoverable* subset
(aborts, drops, degradations, and loss of at most one of two GPUs) and the
suite asserts, over real OmpSs runs of the paper's applications:

* results are bit-identical to the fault-free baseline;
* every recovery action leaves the coherence invariants intact (plans run
  ``paranoid``, so :func:`repro.faults.check_coherence` gates every step);
* the run terminates — either everything completes, or a documented error
  surfaces loudly (no silent hangs, no vanished tasks).

``derandomize=True`` keeps CI reproducible; the ``CHAOS_SEED`` environment
variable (exercised by the CI seed matrix) shifts the plan seeds instead.
"""

from __future__ import annotations

import os

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.faults import FaultEvent, FaultPlan

from .helpers import assert_same_outputs, baseline, run_scenario

CHAOS_SEED = int(os.environ.get("CHAOS_SEED", "0"))

_CHAOS = settings(max_examples=12, deadline=None, derandomize=True,
                  suppress_health_check=[HealthCheck.too_slow])


@st.composite
def recoverable_plans(draw, scenario: str, cluster: bool = False):
    """A seeded plan every part of which the runtime can recover from."""
    horizon = baseline(scenario).makespan
    events = []
    if draw(st.booleans()):
        events.append(FaultEvent(
            kind="kernel_abort",
            probability=draw(st.floats(0.02, 0.25))))
    if draw(st.booleans()):
        # Losing one of the two GPUs is always survivable; the paranoid
        # engine checks coherence right after the recovery storm.
        events.append(FaultEvent(
            kind="gpu_loss", node=1 if cluster else 0,
            gpu=0 if cluster else 1,
            at=draw(st.floats(0.0, horizon))))
    if draw(st.booleans()):
        events.append(FaultEvent(
            kind="pcie_degrade", node=0, gpu=0,
            at=draw(st.floats(0.0, horizon)),
            duration=draw(st.floats(horizon * 0.1, horizon)),
            factor=draw(st.floats(1.0, 6.0))))
    if cluster:
        if draw(st.booleans()):
            events.append(FaultEvent(
                kind="am_drop", probability=draw(st.floats(0.01, 0.08))))
        if draw(st.booleans()):
            events.append(FaultEvent(
                kind="am_corrupt", probability=draw(st.floats(0.01, 0.06))))
        if draw(st.booleans()):
            events.append(FaultEvent(
                kind="am_ack_drop", probability=draw(st.floats(0.01, 0.06))))
        if draw(st.booleans()):
            events.append(FaultEvent(
                kind="link_degrade", at=draw(st.floats(0.0, horizon)),
                duration=draw(st.floats(horizon * 0.2, horizon * 2)),
                factor=draw(st.floats(1.0, 4.0))))
    seed = draw(st.integers(min_value=0, max_value=2**16)) + CHAOS_SEED
    return FaultPlan(events=tuple(events), seed=seed, paranoid=True)


@_CHAOS
@given(data=st.data())
def test_matmul_multigpu_survives_random_plans(data):
    plan = data.draw(recoverable_plans("matmul-mgpu"))
    res = run_scenario("matmul-mgpu", plan)
    assert_same_outputs(baseline("matmul-mgpu"), res)


@_CHAOS
@given(data=st.data())
def test_stream_multigpu_survives_random_plans(data):
    plan = data.draw(recoverable_plans("stream-mgpu"))
    res = run_scenario("stream-mgpu", plan)
    assert_same_outputs(baseline("stream-mgpu"), res)


@_CHAOS
@given(data=st.data())
def test_nbody_multigpu_survives_random_plans(data):
    plan = data.draw(recoverable_plans("nbody-mgpu"))
    res = run_scenario("nbody-mgpu", plan)
    assert_same_outputs(baseline("nbody-mgpu"), res)


@_CHAOS
@given(data=st.data())
def test_matmul_cluster_survives_random_plans(data):
    plan = data.draw(recoverable_plans("matmul-cluster", cluster=True))
    res = run_scenario("matmul-cluster", plan)
    assert_same_outputs(baseline("matmul-cluster"), res)


def test_chaos_seed_env_shifts_plans():
    """The CI seed matrix knob really reaches the drawn plans."""
    horizon = baseline("matmul-mgpu").makespan
    plan = FaultPlan(events=(
        FaultEvent(kind="kernel_abort", probability=0.15),
        FaultEvent(kind="gpu_loss", node=0, gpu=1, at=horizon * 0.4),
    ), seed=CHAOS_SEED, paranoid=True)
    res = run_scenario("matmul-mgpu", plan)
    assert_same_outputs(baseline("matmul-mgpu"), res)
    assert res.metrics.get("faults.gpu_lost") == 1
