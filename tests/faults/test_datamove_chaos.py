"""Fault injection with the datamove optimisation layer fully enabled.

Write-back elision deliberately *discards* data the liveness tracker
proved dead; coalescing reorders when bytes cross links; prestaging moves
them speculatively.  All of that must compose with chaos: kernels abort,
GPUs die mid-commit, PCIe degrades — and every recovered run must still
produce outputs bit-identical to the fault-free computation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps import matmul, nbody, stream
from repro.bench.harness import fresh_cluster, fresh_multi_gpu
from repro.faults import FaultEvent, FaultPlan
from repro.runtime.config import RuntimeConfig

from .helpers import assert_same_outputs

_MM = matmul.MatmulSize(n=96, bs=32)
_ST = stream.StreamSize(n=1024, bsize=128, ntimes=2)
_NB = nbody.NBodySize(n=256, blocks=4, iters=2)

#: every datamove mechanism on at once (presend_depth only matters on the
#: cluster scenario but is harmless elsewhere).
_DM = dict(wb_elision=True, coalescing=True, presend_depth=2,
           cost_aware_eviction=True)

_BASE = dict(functional=True, cache_policy="wb", scheduler="affinity",
             kernel_jitter=0.02, task_overhead=50e-6, **_DM)


def _mm_mgpu(plan):
    cfg = RuntimeConfig(**_BASE, fault_plan=plan)
    return matmul.run_ompss(fresh_multi_gpu(2), _MM, config=cfg,
                            verify=True)


def _st_mgpu(plan):
    cfg = RuntimeConfig(**{**_BASE, "scheduler": "default"},
                        fault_plan=plan)
    return stream.run_ompss(fresh_multi_gpu(2), _ST, config=cfg,
                            verify=True)


def _nb_mgpu(plan):
    cfg = RuntimeConfig(**_BASE, fault_plan=plan)
    return nbody.run_ompss(fresh_multi_gpu(2), _NB, config=cfg,
                           verify=True)


def _mm_cluster(plan):
    cfg = RuntimeConfig(**_BASE, presend=2, fault_plan=plan)
    return matmul.run_ompss(fresh_cluster(2), _MM, config=cfg,
                            init="smp", verify=True)


SCENARIOS = {
    "matmul-mgpu": _mm_mgpu,
    "stream-mgpu": _st_mgpu,
    "nbody-mgpu": _nb_mgpu,
    "matmul-cluster": _mm_cluster,
}

_PLANS = {
    "aborts": FaultPlan(events=(
        FaultEvent(kind="kernel_abort", probability=0.15),
    ), seed=11, paranoid=True),
    "gpu-loss": FaultPlan(events=(
        FaultEvent(kind="gpu_loss", node=0, gpu=1, at=1.5e-3),
    ), seed=12, paranoid=True, protect_outputs=True),
    "mixed": FaultPlan(events=(
        FaultEvent(kind="kernel_abort", probability=0.1),
        FaultEvent(kind="pcie_degrade", node=0, gpu=0, at=1e-3,
                   duration=2e-3, factor=3.0),
    ), seed=13, paranoid=True),
}

_baselines: dict = {}


def _baseline(name):
    if name not in _baselines:
        _baselines[name] = SCENARIOS[name](None)
    return _baselines[name]


@pytest.mark.parametrize("plan_name", sorted(_PLANS))
@pytest.mark.parametrize("scenario", sorted(SCENARIOS))
def test_recovery_is_bit_identical_with_datamove_on(scenario, plan_name):
    ref = _baseline(scenario)
    res = SCENARIOS[scenario](_PLANS[plan_name])
    assert_same_outputs(ref, res)


def test_flags_do_not_change_results_under_faults():
    """The same chaos plan with and without datamove flags computes the
    same numbers (timings differ; data never does)."""
    plan = _PLANS["aborts"]
    with_flags = _mm_mgpu(plan)
    off = dict(_BASE)
    for key in _DM:
        off.pop(key)
    without = matmul.run_ompss(
        fresh_multi_gpu(2), _MM,
        config=RuntimeConfig(**off, fault_plan=plan), verify=True)
    assert set(with_flags.output) == set(without.output)
    for key, arr in with_flags.output.items():
        assert np.array_equal(arr, without.output[key]), key


def test_datamove_chaos_runs_are_deterministic():
    plan = _PLANS["mixed"]
    a = _st_mgpu(plan)
    b = _st_mgpu(plan)
    assert a.makespan == b.makespan
    assert_same_outputs(a, b)
