"""The invariant checkers must *detect* violations, not just bless healthy
runs — each violation branch is driven directly against a hand-broken
runtime state."""

from __future__ import annotations

from repro.faults import FaultEvent, FaultPlan, check_coherence, check_quiescent
from repro.hardware import build_multi_gpu_node
from repro.runtime import Runtime, RuntimeConfig
from repro.sim import Environment


def make_rt():
    env = Environment()
    machine = build_multi_gpu_node(env, num_gpus=2)
    plan = FaultPlan(events=(
        FaultEvent(kind="kernel_abort", nth=10**9),   # inert, arms engine
    ), seed=0)
    rt = Runtime(machine, RuntimeConfig(
        functional=False, kernel_jitter=0, task_overhead=0,
        cache_policy="wb", fault_plan=plan))
    return rt


def gpu_space(rt, i=0):
    return rt.images[0].gpu_managers[i].space


def test_healthy_state_has_no_violations():
    rt = make_rt()
    obj = rt.register_array("x", 1024)
    rt.directory.record_write(obj.whole, rt.master_host)
    assert check_coherence(rt) == []
    assert check_quiescent(rt) == []


def test_detects_region_with_no_holder():
    rt = make_rt()
    obj = rt.register_array("x", 1024)
    rt.directory.record_write(obj.whole, rt.master_host)
    rt.directory.entry(obj.whole).holders.clear()
    problems = check_coherence(rt)
    assert any("no holder" in p for p in problems)
    # ...unless its restoration is known to be in flight.
    assert check_coherence(rt, pending=frozenset({obj.whole.key})) == []


def test_detects_holder_on_failed_space():
    rt = make_rt()
    obj = rt.register_array("x", 1024)
    space = gpu_space(rt)
    rt.directory.record_write(obj.whole, space)
    space.failed = True
    problems = check_coherence(rt)
    assert any("failed space" in p for p in problems)


def test_detects_uninvalidated_cache_of_failed_space():
    rt = make_rt()
    obj = rt.register_array("x", 1024)
    cache = rt.images[0].gpu_managers[0].cache
    cache.insert(obj.whole)
    cache.space.failed = True
    problems = check_coherence(rt)
    assert any("not invalidated" in p for p in problems)


def test_detects_byte_accounting_drift():
    rt = make_rt()
    obj = rt.register_array("x", 1024)
    cache = rt.images[0].gpu_managers[0].cache
    rt.directory.record_write(obj.whole, rt.master_host)
    rt.directory.record_copy(obj.whole, cache.space)
    cache.insert(obj.whole)
    cache.bytes_used += 7
    problems = check_coherence(rt)
    assert any("accounting drift" in p for p in problems)


def test_detects_stale_dirty_copy():
    rt = make_rt()
    obj = rt.register_array("x", 1024)
    cache = rt.images[0].gpu_managers[0].cache
    rt.directory.record_write(obj.whole, cache.space)
    cache.insert(obj.whole, dirty=True)
    # Someone else publishes a newer version: the dirty copy is now stale.
    rt.directory.record_write(obj.whole, rt.master_host)
    problems = check_coherence(rt)
    assert any("stale dirty" in p for p in problems)


def test_detects_multiple_dirty_copies():
    rt = make_rt()
    obj = rt.register_array("x", 1024)
    c0 = rt.images[0].gpu_managers[0].cache
    c1 = rt.images[0].gpu_managers[1].cache
    rt.directory.record_write(obj.whole, c0.space)
    rt.directory.record_copy(obj.whole, c1.space)
    c0.insert(obj.whole, dirty=True)
    c1.insert(obj.whole, dirty=True)
    problems = check_coherence(rt)
    assert any("multiple dirty" in p for p in problems)


def test_quiescent_detects_unfinished_restorations():
    rt = make_rt()
    obj = rt.register_array("x", 1024)
    rt.directory.record_write(obj.whole, rt.master_host)
    rt.faults._restores[obj.whole.key] = rt.env.event()
    problems = check_quiescent(rt)
    assert any("never completed" in p for p in problems)


def test_quiescent_detects_leaked_pins():
    rt = make_rt()
    obj = rt.register_array("x", 1024)
    cache = rt.images[0].gpu_managers[0].cache
    rt.directory.record_write(obj.whole, rt.master_host)
    rt.directory.record_copy(obj.whole, cache.space)
    cache.insert(obj.whole)
    cache.pin(obj.whole)
    problems = check_quiescent(rt)
    assert any("still pinned" in p for p in problems)
