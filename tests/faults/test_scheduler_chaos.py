"""Chaos scenarios for the adaptive scheduling tier.

One gpu_loss scenario per new policy (ws / cp / adaptive): the dying
GPU's queued work — deque entries, priority-queue entries, an adaptive
child's whole state — must drain back into circulation, every task must
still run, and the functional outputs must stay bit-identical to the
fault-free baseline.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps import cholesky
from repro.bench.harness import fresh_multi_gpu
from repro.faults import FaultEvent, FaultPlan
from repro.runtime.config import RuntimeConfig

from .helpers import assert_same_outputs

_SIZE = cholesky.TEST_CHOLESKY
NEW_POLICIES = ("ws", "cp", "adaptive")


def _run(policy, plan):
    cfg = RuntimeConfig(functional=True, cache_policy="wb",
                        scheduler=policy, kernel_jitter=0.02,
                        task_overhead=50e-6, fault_plan=plan)
    return cholesky.run_ompss(fresh_multi_gpu(2), _SIZE, config=cfg,
                              verify=True)


_baselines: dict = {}


def _baseline(policy):
    if policy not in _baselines:
        _baselines[policy] = _run(policy, None)
    return _baselines[policy]


@pytest.mark.parametrize("policy", NEW_POLICIES)
def test_gpu_loss_drains_queues_without_losing_tasks(policy):
    plan = FaultPlan(events=(
        FaultEvent(kind="gpu_loss", node=0, gpu=1, at=2.5e-3),
    ), seed=0, paranoid=True)
    res = _run(policy, plan)
    # Recovery costs virtual time, never result bits.
    assert_same_outputs(_baseline(policy), res)
    # And never loses a task: the factorization is complete and correct.
    ref = _baseline(policy).output["a"]
    assert np.array_equal(res.output["a"], ref)


@pytest.mark.parametrize("policy", NEW_POLICIES)
def test_gpu_loss_blacklists_worker_under_policy(policy):
    """The blacklisted manager must leave every child/queue structure:
    later submissions never land on a dead worker."""
    from repro.hardware import build_multi_gpu_node
    from repro.runtime import Runtime
    from repro.sim import Environment

    plan = FaultPlan(events=(
        FaultEvent(kind="gpu_loss", node=0, gpu=1, at=2.5e-3),
    ), seed=0, paranoid=True)
    env = Environment()
    rt = Runtime(build_multi_gpu_node(env, num_gpus=2),
                 RuntimeConfig(functional=True, cache_policy="wb",
                               scheduler=policy, fault_plan=plan))
    from repro.cuda.kernels import KernelSpec
    from repro.runtime.task import Access, Direction, Task

    objs = [rt.register_array(f"x{i}", 256) for i in range(8)]

    def tsk(i):
        k = KernelSpec(f"t{i}", cost=lambda spec, **kw: 1e-3, func=None)
        return Task(name=f"t{i}", device="cuda", kernel=k,
                    accesses=(Access(objs[i].whole, Direction.INOUT),),
                    args=(objs[i].whole,))

    def main():
        for i in range(len(objs)):
            rt.submit(tsk(i))
        yield from rt.taskwait()

    rt.run_main(main())
    dead = rt.images[0].gpu_managers[1]
    assert not dead.alive
    sched = rt.images[0].scheduler
    assert dead not in sched.workers
    if policy == "adaptive":
        for child in sched.children.values():
            assert dead not in child.workers
    assert rt.tasks_finished == 8
