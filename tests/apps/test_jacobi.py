"""Functional correctness, golden makespans, and scheduler bit-identity
for the Jacobi halo-exchange application."""

import numpy as np
import pytest

from repro.apps.jacobi import (
    TEST_JACOBI,
    JacobiSize,
    build_grid,
    jacobi_reference,
    mcells,
    run_ompss,
    run_serial,
)
from repro.bench.harness import fresh_cluster, fresh_multi_gpu
from repro.runtime import RuntimeConfig

#: every scheduling policy, paper tier then adaptive tier.
ALL_POLICIES = ("bf", "default", "affinity", "ws", "cp", "adaptive")

_FUNC = dict(functional=True, overlap=True, prefetch=True)


@pytest.fixture(scope="module")
def reference():
    return run_serial(TEST_JACOBI).output["grid"]


def test_serial_sweep_has_stencil_shape():
    size = TEST_JACOBI
    grid = jacobi_reference(size, build_grid(size))
    g = grid.reshape(size.n, size.n)
    g0 = build_grid(size).reshape(size.n, size.n)
    # Dirichlet boundary untouched, interior smoothed toward neighbours.
    assert np.array_equal(g[0], g0[0]) and np.array_equal(g[-1], g0[-1])
    assert np.array_equal(g[:, 0], g0[:, 0])
    assert not np.array_equal(g[1:-1, 1:-1], g0[1:-1, 1:-1])
    assert float(np.abs(g).max()) <= float(np.abs(g0).max()) + 1e-6


def test_size_validation():
    with pytest.raises(ValueError):
        JacobiSize(n=100, nb=16, iters=1)     # n not a multiple of nb
    with pytest.raises(ValueError):
        JacobiSize(n=32, nb=16, iters=1)      # blocks thinner than 3 rows
    with pytest.raises(ValueError):
        JacobiSize(n=32, nb=1, iters=1)       # no halo to exchange
    with pytest.raises(ValueError):
        JacobiSize(n=32, nb=4, iters=0)
    assert TEST_JACOBI.rows == 8


@pytest.mark.parametrize("policy", ALL_POLICIES)
def test_ompss_bit_identical_to_serial_under_every_policy(policy,
                                                          reference):
    cfg = RuntimeConfig(**_FUNC, scheduler=policy)
    res = run_ompss(fresh_multi_gpu(2), TEST_JACOBI, config=cfg,
                    verify=True)
    # Each block's halo chain totally orders its reads against both
    # neighbours' writes, so every schedule computes the same float32
    # sweep, bit for bit.
    assert np.array_equal(res.output["grid"], reference)


@pytest.mark.parametrize("policy", ["affinity", "adaptive"])
def test_ompss_cluster_bit_identical_to_serial(policy, reference):
    cfg = RuntimeConfig(functional=True, cache_policy="wb",
                        scheduler=policy, presend=2)
    res = run_ompss(fresh_cluster(2), TEST_JACOBI, config=cfg,
                    verify=True)
    assert np.array_equal(res.output["grid"], reference)


# Golden makespans: perf mode, 2 GPUs, overlap + prefetch.  Exact float
# equality on purpose — any drift in the simulated timeline is a
# regression (or an intentional change that must update these pins).
GOLDEN_MGPU2 = {
    "bf": 0.0013533067507157277,
    "default": 0.0013418451769124787,
    "affinity": 0.0013533067507157277,
}

GOLDEN_CLUSTER2_AFFINITY = 0.001602416897818976


@pytest.mark.parametrize("policy,expected", sorted(GOLDEN_MGPU2.items()))
def test_golden_makespan_multi_gpu(policy, expected):
    cfg = RuntimeConfig(functional=False, overlap=True, prefetch=True,
                        scheduler=policy)
    res = run_ompss(fresh_multi_gpu(2), TEST_JACOBI, config=cfg)
    assert res.makespan == expected
    assert res.metric == pytest.approx(mcells(TEST_JACOBI, expected))


def test_golden_makespan_cluster():
    cfg = RuntimeConfig(functional=False, cache_policy="wb",
                        scheduler="affinity", overlap=True, prefetch=True,
                        presend=2)
    res = run_ompss(fresh_cluster(2), TEST_JACOBI, config=cfg)
    assert res.makespan == GOLDEN_CLUSTER2_AFFINITY


def test_makespan_reproducible():
    cfg = dict(functional=False, cache_policy="wb", scheduler="ws",
               presend=2)
    a = run_ompss(fresh_cluster(2), TEST_JACOBI,
                  config=RuntimeConfig(**cfg))
    b = run_ompss(fresh_cluster(2), TEST_JACOBI,
                  config=RuntimeConfig(**cfg))
    assert a.makespan == b.makespan
