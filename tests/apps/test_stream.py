"""Functional correctness tests for the STREAM application."""

import numpy as np
import pytest

from repro.apps.stream import (
    TEST_STREAM,
    StreamSize,
    paper_stream_size,
    run_cuda,
    run_mpi_cuda,
    run_ompss,
    run_serial,
    stream_bytes,
)
from repro.hardware import build_gpu_cluster, build_multi_gpu_node
from repro.runtime import RuntimeConfig
from repro.sim import Environment


@pytest.fixture(scope="module")
def reference():
    return run_serial(TEST_STREAM).output


def assert_same(output, reference):
    for key in ("a", "b", "c"):
        np.testing.assert_allclose(output[key], reference[key], rtol=1e-12)


def test_size_validation():
    with pytest.raises(ValueError):
        StreamSize(n=100, bsize=16)


def test_paper_size_is_768mb_per_gpu():
    size = paper_stream_size(num_gpus=4)
    assert 3 * size.vector_bytes == pytest.approx(4 * 768 * 1024 * 1024,
                                                  rel=0.01)
    assert size.n % size.bsize == 0


def test_stream_bytes_accounting():
    size = TEST_STREAM
    assert stream_bytes(size) == 10 * 8 * size.n * size.ntimes


def test_cuda_matches_serial(reference):
    env = Environment()
    machine = build_multi_gpu_node(env, num_gpus=1)
    res = run_cuda(machine, TEST_STREAM, verify=True)
    assert_same(res.output, reference)
    assert res.metric > 0


@pytest.mark.parametrize("num_gpus", [1, 2, 4])
def test_ompss_multigpu_matches_serial(num_gpus, reference):
    env = Environment()
    machine = build_multi_gpu_node(env, num_gpus=num_gpus)
    res = run_ompss(machine, TEST_STREAM, verify=True)
    assert_same(res.output, reference)


@pytest.mark.parametrize("policy", ["nocache", "wt", "wb"])
def test_ompss_cache_policies_correct(policy, reference):
    env = Environment()
    machine = build_multi_gpu_node(env, num_gpus=2)
    res = run_ompss(machine, TEST_STREAM,
                    config=RuntimeConfig(cache_policy=policy), verify=True)
    assert_same(res.output, reference)


@pytest.mark.parametrize("nodes", [2, 4])
def test_ompss_cluster_matches_serial(nodes, reference):
    env = Environment()
    machine = build_gpu_cluster(env, num_nodes=nodes)
    res = run_ompss(machine, TEST_STREAM, verify=True)
    assert_same(res.output, reference)


@pytest.mark.parametrize("nodes", [1, 2, 4])
def test_mpi_cuda_matches_serial(nodes, reference):
    env = Environment()
    machine = (build_gpu_cluster(env, num_nodes=nodes) if nodes > 1
               else build_multi_gpu_node(env, num_gpus=1))
    res = run_mpi_cuda(machine, TEST_STREAM, verify=True)
    assert_same(res.output, reference)


def test_wb_beats_wt_and_nocache_on_stream():
    """The Fig. 6 shape at small scale: write-back avoids the per-write
    PCIe traffic that cripples write-through and no-cache."""
    results = {}
    for policy in ("nocache", "wt", "wb"):
        env = Environment()
        machine = build_multi_gpu_node(env, num_gpus=2)
        res = run_ompss(machine, StreamSize(n=2 ** 20, bsize=2 ** 16,
                                            ntimes=4),
                        config=RuntimeConfig(cache_policy=policy,
                                             functional=False))
        results[policy] = res.metric
    assert results["wb"] > results["wt"]
    assert results["wb"] > results["nocache"]
