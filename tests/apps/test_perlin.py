"""Functional correctness tests for the Perlin Noise application."""

import numpy as np
import pytest

from repro.apps.perlin import (
    PerlinSize,
    TEST_PERLIN,
    perlin_block,
    run_cuda,
    run_mpi_cuda,
    run_ompss,
    run_serial,
    serial_perlin,
)
from repro.hardware import build_gpu_cluster, build_multi_gpu_node
from repro.runtime import RuntimeConfig
from repro.sim import Environment


@pytest.fixture(scope="module")
def reference():
    return run_serial(TEST_PERLIN).output["image"]


def test_size_validation():
    with pytest.raises(ValueError):
        PerlinSize(height=30, width=32, rows_per_task=8)


def test_perlin_block_is_deterministic():
    b1 = perlin_block(0, 8, 16, 1.0, 8.0)
    b2 = perlin_block(0, 8, 16, 1.0, 8.0)
    np.testing.assert_array_equal(b1, b2)


def test_perlin_block_varies_with_z():
    b1 = perlin_block(0, 8, 16, 0.25, 8.0)
    b2 = perlin_block(0, 8, 16, 1.75, 8.0)
    assert not np.allclose(b1, b2)


def test_perlin_values_bounded():
    block = perlin_block(0, 32, 32, 0.5, 8.0)
    # Classic 2D Perlin with our gradient set stays within +-2.5 or so.
    assert np.all(np.abs(block) < 4.0)
    assert block.dtype == np.float32


def test_perlin_blocks_tile_seamlessly():
    """Row-block decomposition must equal the whole-image evaluation."""
    whole = perlin_block(0, 16, 16, 1.0, 8.0)
    top = perlin_block(0, 8, 16, 1.0, 8.0)
    bottom = perlin_block(8, 8, 16, 1.0, 8.0)
    np.testing.assert_array_equal(np.concatenate([top, bottom]), whole)


def test_cuda_matches_serial(reference):
    env = Environment()
    machine = build_multi_gpu_node(env, num_gpus=1)
    res = run_cuda(machine, TEST_PERLIN, verify=True)
    np.testing.assert_allclose(res.output["image"], reference)


@pytest.mark.parametrize("flush", [True, False])
@pytest.mark.parametrize("num_gpus", [1, 2, 4])
def test_ompss_multigpu_matches_serial(num_gpus, flush, reference):
    env = Environment()
    machine = build_multi_gpu_node(env, num_gpus=num_gpus)
    res = run_ompss(machine, TEST_PERLIN, flush=flush, verify=True)
    np.testing.assert_allclose(res.output["image"], reference)


@pytest.mark.parametrize("flush", [True, False])
def test_ompss_cluster_matches_serial(flush, reference):
    env = Environment()
    machine = build_gpu_cluster(env, num_nodes=2)
    res = run_ompss(machine, TEST_PERLIN, flush=flush, verify=True)
    np.testing.assert_allclose(res.output["image"], reference)


@pytest.mark.parametrize("nodes", [1, 2, 4])
def test_mpi_cuda_matches_serial(nodes, reference):
    env = Environment()
    machine = (build_gpu_cluster(env, num_nodes=nodes) if nodes > 1
               else build_multi_gpu_node(env, num_gpus=1))
    res = run_mpi_cuda(machine, TEST_PERLIN, verify=True)
    np.testing.assert_allclose(res.output["image"], reference)


def test_noflush_faster_than_flush():
    """The Fig. 7 shape: keeping frames on the GPU beats flushing them."""
    size = PerlinSize(height=1024, width=1024, rows_per_task=128, steps=8)
    metrics = {}
    for flush in (True, False):
        env = Environment()
        machine = build_multi_gpu_node(env, num_gpus=2)
        res = run_ompss(machine, size, flush=flush,
                        config=RuntimeConfig(functional=False))
        metrics[flush] = res.metric
    assert metrics[False] > metrics[True]
