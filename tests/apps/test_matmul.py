"""Functional correctness and behavior tests for the Matmul application."""

import numpy as np
import pytest

from repro.apps.matmul import (
    TEST_MATMUL,
    MatmulSize,
    build_matrix,
    process_grid,
    run_cuda,
    run_mpi_cuda,
    run_ompss,
    run_serial,
    serial_matmul_tiled,
    tiled_to_dense,
)
from repro.hardware import build_gpu_cluster, build_multi_gpu_node
from repro.runtime import RuntimeConfig
from repro.sim import Environment


@pytest.fixture(scope="module")
def reference():
    return run_serial(TEST_MATMUL).output["c"]


def test_serial_matches_dense_numpy():
    size = TEST_MATMUL
    a, b = build_matrix(size, "A"), build_matrix(size, "B")
    c = build_matrix(size, "C")
    serial_matmul_tiled(size, a, b, c)
    dense = tiled_to_dense(size, a) @ tiled_to_dense(size, b)
    np.testing.assert_allclose(tiled_to_dense(size, c), dense, rtol=1e-4)


def test_size_validation():
    with pytest.raises(ValueError):
        MatmulSize(n=100, bs=16)


def test_cuda_single_gpu_matches_serial(reference):
    env = Environment()
    machine = build_multi_gpu_node(env, num_gpus=1)
    res = run_cuda(machine, TEST_MATMUL, verify=True)
    np.testing.assert_allclose(res.output["c"], reference, rtol=1e-4)
    assert res.makespan > 0
    assert res.metric > 0


@pytest.mark.parametrize("num_gpus", [1, 2, 4])
def test_ompss_multigpu_matches_serial(num_gpus, reference):
    env = Environment()
    machine = build_multi_gpu_node(env, num_gpus=num_gpus)
    res = run_ompss(machine, TEST_MATMUL, verify=True)
    np.testing.assert_allclose(res.output["c"], reference, rtol=1e-4)


@pytest.mark.parametrize("policy", ["nocache", "wt", "wb"])
def test_ompss_cache_policies_all_correct(policy, reference):
    env = Environment()
    machine = build_multi_gpu_node(env, num_gpus=2)
    res = run_ompss(machine, TEST_MATMUL,
                    config=RuntimeConfig(cache_policy=policy), verify=True)
    np.testing.assert_allclose(res.output["c"], reference, rtol=1e-4)


@pytest.mark.parametrize("sched", ["bf", "default", "affinity"])
def test_ompss_schedulers_all_correct(sched, reference):
    env = Environment()
    machine = build_multi_gpu_node(env, num_gpus=4)
    res = run_ompss(machine, TEST_MATMUL,
                    config=RuntimeConfig(scheduler=sched), verify=True)
    np.testing.assert_allclose(res.output["c"], reference, rtol=1e-4)


@pytest.mark.parametrize("nodes", [2, 4])
def test_ompss_cluster_matches_serial(nodes, reference):
    env = Environment()
    machine = build_gpu_cluster(env, num_nodes=nodes)
    res = run_ompss(machine, TEST_MATMUL, verify=True)
    np.testing.assert_allclose(res.output["c"], reference, rtol=1e-4)


@pytest.mark.parametrize("init", ["smp", "gpu"])
def test_ompss_cluster_parallel_init_matches_serial(init, reference):
    env = Environment()
    machine = build_gpu_cluster(env, num_nodes=2)
    res = run_ompss(machine, TEST_MATMUL, init=init, verify=True)
    np.testing.assert_allclose(res.output["c"], reference, rtol=1e-4)


def test_ompss_mtos_routing_matches_serial(reference):
    env = Environment()
    machine = build_gpu_cluster(env, num_nodes=4)
    res = run_ompss(machine, TEST_MATMUL, init="smp",
                    config=RuntimeConfig(slave_to_slave=False), verify=True)
    np.testing.assert_allclose(res.output["c"], reference, rtol=1e-4)


def test_ompss_presend_matches_serial(reference):
    env = Environment()
    machine = build_gpu_cluster(env, num_nodes=2)
    res = run_ompss(machine, TEST_MATMUL,
                    config=RuntimeConfig(presend=2), verify=True)
    np.testing.assert_allclose(res.output["c"], reference, rtol=1e-4)


def test_ompss_overlap_prefetch_matches_serial(reference):
    env = Environment()
    machine = build_multi_gpu_node(env, num_gpus=2)
    res = run_ompss(machine, TEST_MATMUL,
                    config=RuntimeConfig(overlap=True, prefetch=True),
                    verify=True)
    np.testing.assert_allclose(res.output["c"], reference, rtol=1e-4)


def test_process_grid_factorizations():
    assert process_grid(1) == (1, 1)
    assert process_grid(2) == (2, 1)
    assert process_grid(4) == (2, 2)
    assert process_grid(8) == (4, 2)


@pytest.mark.parametrize("nodes", [1, 2, 4])
def test_mpi_cuda_summa_matches_serial(nodes, reference):
    env = Environment()
    machine = (build_gpu_cluster(env, num_nodes=nodes) if nodes > 1
               else build_multi_gpu_node(env, num_gpus=1))
    res = run_mpi_cuda(machine, TEST_MATMUL, verify=True)
    np.testing.assert_allclose(res.output["c"], reference, rtol=1e-4)


def test_ompss_perf_mode_runs_without_data():
    env = Environment()
    machine = build_multi_gpu_node(env, num_gpus=4)
    res = run_ompss(machine, MatmulSize(n=2048, bs=512),
                    config=RuntimeConfig(functional=False))
    assert res.makespan > 0
    assert res.metric > 0
    assert res.output is None
