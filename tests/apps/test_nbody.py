"""Functional correctness tests for the N-Body application."""

import numpy as np
import pytest

from repro.apps.nbody import (
    NBodySize,
    TEST_NBODY,
    initial_state,
    nbody_step_reference,
    nbody_update_block,
    run_cuda,
    run_mpi_cuda,
    run_ompss,
    run_serial,
)
from repro.hardware import build_gpu_cluster, build_multi_gpu_node
from repro.runtime import RuntimeConfig
from repro.sim import Environment


@pytest.fixture(scope="module")
def reference():
    return run_serial(TEST_NBODY).output["pos"]


def test_size_validation():
    with pytest.raises(ValueError):
        NBodySize(n=100, blocks=3)


def test_block_update_matches_whole_system_step():
    size = TEST_NBODY
    pos, vel = initial_state(size)
    vel_blocked = vel.copy()
    expected = nbody_step_reference(pos, vel)
    out = np.empty_like(pos)
    be = size.block_elements
    blocks = [pos[b * be:(b + 1) * be] for b in range(size.blocks)]
    for b in range(size.blocks):
        nbody_update_block(blocks, b * size.block_bodies, size.block_bodies,
                           vel_blocked[b * be:(b + 1) * be],
                           out[b * be:(b + 1) * be])
    np.testing.assert_allclose(out, expected, rtol=1e-5, atol=1e-6)
    np.testing.assert_allclose(vel_blocked, vel, rtol=1e-5, atol=1e-6)


def test_masses_preserved():
    size = TEST_NBODY
    pos, _vel = initial_state(size)
    masses = pos.reshape(-1, 4)[:, 3].copy()
    after = run_serial(size).output["pos"].reshape(-1, 4)[:, 3]
    np.testing.assert_array_equal(after, masses)


def test_cuda_matches_serial(reference):
    env = Environment()
    machine = build_multi_gpu_node(env, num_gpus=1)
    res = run_cuda(machine, TEST_NBODY, verify=True)
    np.testing.assert_allclose(res.output["pos"], reference,
                               rtol=1e-5, atol=1e-6)


@pytest.mark.parametrize("num_gpus", [1, 2, 4])
def test_ompss_multigpu_matches_serial(num_gpus, reference):
    env = Environment()
    machine = build_multi_gpu_node(env, num_gpus=num_gpus)
    res = run_ompss(machine, TEST_NBODY, verify=True)
    np.testing.assert_allclose(res.output["pos"], reference,
                               rtol=1e-5, atol=1e-6)


@pytest.mark.parametrize("policy", ["nocache", "wt", "wb"])
def test_ompss_cache_policies_correct(policy, reference):
    env = Environment()
    machine = build_multi_gpu_node(env, num_gpus=4)
    res = run_ompss(machine, TEST_NBODY,
                    config=RuntimeConfig(cache_policy=policy), verify=True)
    np.testing.assert_allclose(res.output["pos"], reference,
                               rtol=1e-5, atol=1e-6)


@pytest.mark.parametrize("nodes", [2, 4])
def test_ompss_cluster_matches_serial(nodes, reference):
    env = Environment()
    machine = build_gpu_cluster(env, num_nodes=nodes)
    res = run_ompss(machine, TEST_NBODY, verify=True)
    np.testing.assert_allclose(res.output["pos"], reference,
                               rtol=1e-5, atol=1e-6)


@pytest.mark.parametrize("nodes", [1, 2, 4])
def test_mpi_cuda_matches_serial(nodes, reference):
    env = Environment()
    machine = (build_gpu_cluster(env, num_nodes=nodes) if nodes > 1
               else build_multi_gpu_node(env, num_gpus=1))
    res = run_mpi_cuda(machine, TEST_NBODY, verify=True)
    np.testing.assert_allclose(res.output["pos"], reference,
                               rtol=1e-5, atol=1e-6)


def test_perf_mode_runs():
    env = Environment()
    machine = build_multi_gpu_node(env, num_gpus=4)
    res = run_ompss(machine, NBodySize(n=20000, blocks=4, iters=2),
                    config=RuntimeConfig(functional=False))
    assert res.makespan > 0
    assert res.metric > 0
