"""Tests for the shared application infrastructure."""

import pytest

from repro.apps.base import AppResult, make_contexts
from repro.hardware import build_gpu_cluster, build_multi_gpu_node
from repro.sim import Environment


def test_app_result_repr():
    r = AppResult(name="matmul", version="ompss", makespan=0.5,
                  metric=123.4, metric_unit="GFLOP/s")
    text = repr(r)
    assert "matmul/ompss" in text
    assert "GFLOP/s" in text


def test_make_contexts_multi_gpu():
    env = Environment()
    machine = build_multi_gpu_node(env, num_gpus=4)
    ctxs = make_contexts(machine)
    assert len(ctxs) == 4
    assert all(ctx.node is machine.master for ctx in ctxs)


def test_make_contexts_cluster_one_per_node():
    env = Environment()
    machine = build_gpu_cluster(env, num_nodes=3)
    ctxs = make_contexts(machine)
    assert len(ctxs) == 3
    assert [ctx.node.index for ctx in ctxs] == [0, 1, 2]


def test_make_contexts_jitter_configurable():
    env = Environment()
    machine = build_multi_gpu_node(env, num_gpus=1)
    assert make_contexts(machine, jitter=0.0)[0].jitter == 0.0
    assert make_contexts(machine, jitter=0.05)[0].jitter == 0.05
