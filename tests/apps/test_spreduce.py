"""Functional correctness, golden makespans, and scheduler bit-identity
for the sparse/irregular segment reduction."""

import numpy as np
import pytest

from repro.apps.spreduce import (
    TEST_SPREDUCE,
    SpreduceSize,
    build_input,
    build_plan,
    run_ompss,
    run_serial,
    serial_reduce,
)
from repro.bench.harness import fresh_cluster, fresh_multi_gpu
from repro.runtime import RuntimeConfig

#: every scheduling policy, paper tier then adaptive tier.
ALL_POLICIES = ("bf", "default", "affinity", "ws", "cp", "adaptive")

_FUNC = dict(functional=True, overlap=True, prefetch=True)


@pytest.fixture(scope="module")
def reference():
    out = run_serial(TEST_SPREDUCE).output
    return out["acc"], out["total"]


def test_plan_is_deterministic_and_ragged():
    plan = build_plan(TEST_SPREDUCE)
    assert plan == build_plan(TEST_SPREDUCE)
    assert len(plan) == TEST_SPREDUCE.segments
    degrees = [len(edges) for edges in plan]
    assert all(1 <= d <= TEST_SPREDUCE.max_degree for d in degrees)
    assert len(set(degrees)) > 1               # genuinely irregular fan-in
    for edges in plan:
        blocks = [b for b, _ in edges]
        assert blocks == sorted(blocks)
        assert all(0 <= b < TEST_SPREDUCE.nb for b in blocks)
        assert all(1 <= w <= 5 for _, w in edges)


def test_serial_reduce_matches_direct_sum():
    size = TEST_SPREDUCE
    x = build_input(size)
    acc, total = serial_reduce(size, x)
    for s, edges in enumerate(build_plan(size)):
        seg = np.zeros(size.seg_len, dtype=np.float32)
        for b, w in edges:
            blk = x[b * size.bs:b * size.bs + size.seg_len]
            seg = (seg + blk * np.float32(w)).astype(np.float32)
        assert np.array_equal(
            acc[s * size.seg_len:(s + 1) * size.seg_len], seg)


def test_size_validation():
    with pytest.raises(ValueError):
        SpreduceSize(nb=4, bs=4, segments=2, seg_len=8)  # bs < seg_len
    with pytest.raises(ValueError):
        SpreduceSize(nb=4, bs=64, segments=2, seg_len=8, max_degree=0)


@pytest.mark.parametrize("policy", ALL_POLICIES)
def test_ompss_bit_identical_to_serial_under_every_policy(policy,
                                                          reference):
    acc_ref, total_ref = reference
    cfg = RuntimeConfig(**_FUNC, scheduler=policy)
    res = run_ompss(fresh_multi_gpu(2), TEST_SPREDUCE, config=cfg,
                    verify=True)
    # Every segment's gather chain and the fold spine are totally ordered
    # by their inout dependences, so the ragged graph stresses placement
    # and stealing while the numbers stay bit-identical.
    assert np.array_equal(res.output["acc"], acc_ref)
    assert np.array_equal(res.output["total"], total_ref)


@pytest.mark.parametrize("policy", ["affinity", "adaptive"])
def test_ompss_cluster_bit_identical_to_serial(policy, reference):
    acc_ref, total_ref = reference
    cfg = RuntimeConfig(functional=True, cache_policy="wb",
                        scheduler=policy, presend=2)
    res = run_ompss(fresh_cluster(2), TEST_SPREDUCE, config=cfg,
                    verify=True)
    assert np.array_equal(res.output["acc"], acc_ref)
    assert np.array_equal(res.output["total"], total_ref)


# Golden makespans: perf mode, 2 GPUs, overlap + prefetch.  Exact float
# equality on purpose — any drift in the simulated timeline is a
# regression (or an intentional change that must update these pins).
GOLDEN_MGPU2 = {
    "bf": 0.00309660333831753,
    "default": 0.0029106193767141097,
    "affinity": 0.002954560892899616,
}

GOLDEN_CLUSTER2_AFFINITY = 0.0032452743647873095


@pytest.mark.parametrize("policy,expected", sorted(GOLDEN_MGPU2.items()))
def test_golden_makespan_multi_gpu(policy, expected):
    cfg = RuntimeConfig(functional=False, overlap=True, prefetch=True,
                        scheduler=policy)
    res = run_ompss(fresh_multi_gpu(2), TEST_SPREDUCE, config=cfg)
    assert res.makespan == expected


def test_golden_makespan_cluster():
    cfg = RuntimeConfig(functional=False, cache_policy="wb",
                        scheduler="affinity", overlap=True, prefetch=True,
                        presend=2)
    res = run_ompss(fresh_cluster(2), TEST_SPREDUCE, config=cfg)
    assert res.makespan == GOLDEN_CLUSTER2_AFFINITY


def test_makespan_reproducible():
    cfg = dict(functional=False, cache_policy="wb", scheduler="cp",
               presend=2)
    a = run_ompss(fresh_cluster(2), TEST_SPREDUCE,
                  config=RuntimeConfig(**cfg))
    b = run_ompss(fresh_cluster(2), TEST_SPREDUCE,
                  config=RuntimeConfig(**cfg))
    assert a.makespan == b.makespan
