"""Functional correctness, golden makespans, and scheduler bit-identity
for the tiled Cholesky application."""

import numpy as np
import pytest

from repro.apps.cholesky import (
    TEST_CHOLESKY,
    CholeskySize,
    build_spd_dense,
    dense_to_tiled,
    run_ompss,
    run_serial,
    serial_cholesky_tiled,
    tiled_to_dense,
)
from repro.bench.harness import fresh_cluster, fresh_multi_gpu
from repro.runtime import RuntimeConfig

#: every scheduling policy, paper tier then adaptive tier.
ALL_POLICIES = ("bf", "default", "affinity", "ws", "cp", "adaptive")

_FUNC = dict(functional=True, overlap=True, prefetch=True)


@pytest.fixture(scope="module")
def reference():
    return run_serial(TEST_CHOLESKY).output["a"]


def test_serial_factorization_reconstructs_input():
    size = TEST_CHOLESKY
    a = dense_to_tiled(size, build_spd_dense(size))
    serial_cholesky_tiled(size, a)
    # Lower triangle holds L; L L^T must reproduce the SPD input.
    l = np.tril(tiled_to_dense(size, a))
    np.testing.assert_allclose(l @ l.T, build_spd_dense(size),
                               rtol=2e-3, atol=2e-3)


def test_size_validation():
    with pytest.raises(ValueError):
        CholeskySize(n=100, bs=16)
    assert TEST_CHOLESKY.nt == 8
    assert TEST_CHOLESKY.flops == pytest.approx(128 ** 3 / 3.0)


@pytest.mark.parametrize("policy", ALL_POLICIES)
def test_ompss_bit_identical_to_serial_under_every_policy(policy,
                                                          reference):
    cfg = RuntimeConfig(**_FUNC, scheduler=policy)
    res = run_ompss(fresh_multi_gpu(2), TEST_CHOLESKY, config=cfg,
                    verify=True)
    # The per-tile update chains are totally ordered by the inout
    # dependences, so every schedule computes the same float32 result,
    # bit for bit — scheduling must never change numerics.
    assert np.array_equal(res.output["a"], reference)


@pytest.mark.parametrize("policy", ["affinity", "adaptive"])
def test_ompss_cluster_bit_identical_to_serial(policy, reference):
    cfg = RuntimeConfig(functional=True, cache_policy="wb",
                        scheduler=policy, presend=2)
    res = run_ompss(fresh_cluster(2), TEST_CHOLESKY, config=cfg,
                    verify=True)
    assert np.array_equal(res.output["a"], reference)


# Golden makespans: perf mode, 2 GPUs, overlap + prefetch.  Exact float
# equality on purpose — any drift in the simulated timeline is a
# regression (or an intentional change that must update these pins).
GOLDEN_MGPU2 = {
    "bf": 0.010874618514746909,
    "default": 0.010813263194211404,
    "affinity": 0.01043450742373176,
}

#: 2-node cluster, write-back + presend: pins the cluster timeline, which
#: relies on the deterministic holder ordering in ``_pick_source`` (the
#: Cholesky panel broadcast creates genuinely ambiguous multi-holder
#: reads; id-ordered iteration made this makespan vary run to run).
GOLDEN_CLUSTER2_AFFINITY = 0.019129323226523966


@pytest.mark.parametrize("policy,expected", sorted(GOLDEN_MGPU2.items()))
def test_golden_makespan_multi_gpu(policy, expected):
    cfg = RuntimeConfig(functional=False, overlap=True, prefetch=True,
                        scheduler=policy)
    res = run_ompss(fresh_multi_gpu(2), TEST_CHOLESKY, config=cfg)
    assert res.makespan == expected
    assert res.metric == pytest.approx(TEST_CHOLESKY.flops
                                       / expected / 1e9)


def test_golden_makespan_cluster():
    cfg = RuntimeConfig(functional=False, cache_policy="wb",
                        scheduler="affinity", overlap=True, prefetch=True,
                        presend=2)
    res = run_ompss(fresh_cluster(2), TEST_CHOLESKY, config=cfg)
    assert res.makespan == GOLDEN_CLUSTER2_AFFINITY


def test_cluster_makespan_reproducible():
    """Back-to-back runs of the same cluster point are bit-identical (the
    regression test for the ASLR-dependent source picks)."""
    cfg = dict(functional=False, cache_policy="wb", scheduler="bf",
               presend=2)
    a = run_ompss(fresh_cluster(2), TEST_CHOLESKY,
                  config=RuntimeConfig(**cfg))
    b = run_ompss(fresh_cluster(2), TEST_CHOLESKY,
                  config=RuntimeConfig(**cfg))
    assert a.makespan == b.makespan


