"""Tests for the simulated MPI library."""

import numpy as np
import pytest

from repro.hardware import build_gpu_cluster
from repro.mpi import MPIWorld
from repro.sim import Environment


def make_world(size=2):
    env = Environment()
    machine = build_gpu_cluster(env, num_nodes=size)
    return env, MPIWorld(env, machine.network), machine


def test_rank_accessors():
    _env, world, _m = make_world(4)
    comm = world.comm(2)
    assert comm.Get_rank() == 2
    assert comm.Get_size() == 4


def test_bad_rank_rejected():
    _env, world, _m = make_world(2)
    with pytest.raises(ValueError):
        world.comm(5)


def test_send_recv_payload_and_timing():
    env, world, m = make_world(2)
    got = []

    def rank0():
        data = np.arange(4, dtype=np.float32)
        yield from world.comm(0).Send(data, nbytes=16, dest=1)

    def rank1():
        data = yield from world.comm(1).Recv(source=0)
        got.append((env.now, data))

    env.process(rank0())
    env.process(rank1())
    env.run()
    assert env.now >= m.network.nic.latency
    np.testing.assert_array_equal(got[0][1], [0, 1, 2, 3])


def test_send_is_eager_recv_blocks():
    """Eager protocol: Send completes at wire time; Recv waits for a match."""
    env, world, m = make_world(2)
    log = []

    def rank0():
        yield env.timeout(10)
        yield from world.comm(0).Send("x", nbytes=8, dest=1)
        log.append(("send done", env.now))

    def rank1():
        yield from world.comm(1).Recv(source=0)
        log.append(("recv done", env.now))

    env.process(rank0())
    env.process(rank1())
    env.run()
    # Send finished without waiting for anything beyond the wire; Recv had to
    # wait from t=0 until the message arrived.
    assert log[0][0] == "send done"
    assert log[1][0] == "recv done"
    assert log[1][1] >= 10 + m.network.nic.latency


def test_isend_does_not_block():
    env, world, _m = make_world(2)
    log = []

    def rank0():
        req = world.comm(0).Isend("x", nbytes=8, dest=1)
        log.append(("isend returned", env.now))
        yield req

    def rank1():
        yield env.timeout(5)
        yield from world.comm(1).Recv(source=0)

    env.process(rank0())
    env.process(rank1())
    env.run()
    assert log[0] == ("isend returned", 0)


def test_irecv_value_is_payload():
    env, world, _m = make_world(2)
    got = []

    def rank0():
        yield from world.comm(0).Send("payload", nbytes=8, dest=1)

    def rank1():
        req = world.comm(1).Irecv(source=0)
        value = yield req
        got.append(value)

    env.process(rank0())
    env.process(rank1())
    env.run()
    assert got == ["payload"]


def test_tags_disambiguate_messages():
    env, world, _m = make_world(2)
    got = []

    def rank0():
        yield from world.comm(0).Send("tag7", nbytes=8, dest=1, tag=7)
        yield from world.comm(0).Send("tag3", nbytes=8, dest=1, tag=3)

    def rank1():
        # Receive in the opposite tag order.
        m3 = yield from world.comm(1).Recv(source=0, tag=3)
        m7 = yield from world.comm(1).Recv(source=0, tag=7)
        got.extend([m3, m7])

    env.process(rank0())
    env.process(rank1())
    env.run()
    assert got == ["tag3", "tag7"]


def test_barrier_releases_all_at_once():
    env, world, _m = make_world(3)
    times = []

    def rank(r, delay):
        yield env.timeout(delay)
        yield from world.comm(r).Barrier()
        times.append(env.now)

    env.process(rank(0, 1))
    env.process(rank(1, 5))
    env.process(rank(2, 3))
    env.run()
    assert len(times) == 3
    assert all(t == times[0] for t in times)
    assert times[0] >= 5


def test_bcast_delivers_to_all():
    env, world, _m = make_world(4)
    got = []

    def rank(r):
        data = "blob" if r == 0 else None
        data = yield from world.comm(r).Bcast(data, nbytes=1000, root=0)
        got.append((r, data))

    for r in range(4):
        env.process(rank(r))
    env.run()
    assert sorted(got) == [(r, "blob") for r in range(4)]


def test_allgather_collects_all_contributions():
    env, world, _m = make_world(4)
    results = {}

    def rank(r):
        out = yield from world.comm(r).Allgather(f"c{r}", nbytes=100)
        results[r] = out

    for r in range(4):
        env.process(rank(r))
    env.run()
    expected = [f"c{r}" for r in range(4)]
    for r in range(4):
        assert results[r] == expected


def test_allgather_single_rank():
    env, world, _m = make_world(1)
    results = {}

    def rank0():
        out = yield from world.comm(0).Allgather("only", nbytes=10)
        results[0] = out

    env.process(rank0())
    env.run()
    assert results[0] == ["only"]


def test_traffic_statistics():
    env, world, _m = make_world(2)

    def rank0():
        yield from world.comm(0).Send("x", nbytes=1000, dest=1)

    def rank1():
        yield from world.comm(1).Recv(source=0)

    env.process(rank0())
    env.process(rank1())
    env.run()
    assert world.messages_sent == 1
    assert world.bytes_sent == 1000
