"""Property tests for the simulated MPI collectives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware import build_gpu_cluster
from repro.mpi import MPIWorld
from repro.sim import Environment


def make_world(size):
    env = Environment()
    machine = build_gpu_cluster(env, num_nodes=size)
    return env, MPIWorld(env, machine.network)


@settings(max_examples=25, deadline=None)
@given(size=st.integers(min_value=1, max_value=8),
       nbytes=st.integers(min_value=1, max_value=10**6))
def test_allgather_complete_and_ordered(size, nbytes):
    env, world = make_world(size)
    results = {}

    def rank(r):
        out = yield from world.comm(r).Allgather(("payload", r), nbytes)
        results[r] = out

    for r in range(size):
        env.process(rank(r))
    env.run()
    expected = [("payload", r) for r in range(size)]
    for r in range(size):
        assert results[r] == expected


@settings(max_examples=25, deadline=None)
@given(size=st.integers(min_value=2, max_value=8),
       root=st.integers(min_value=0, max_value=7),
       nbytes=st.integers(min_value=1, max_value=10**6))
def test_bcast_from_any_root(size, root, nbytes):
    root = root % size
    env, world = make_world(size)
    results = {}

    def rank(r):
        data = ("blob", root) if r == root else None
        data = yield from world.comm(r).Bcast(data, nbytes, root=root)
        results[r] = data

    for r in range(size):
        env.process(rank(r))
    env.run()
    assert all(results[r] == ("blob", root) for r in range(size))


@settings(max_examples=20, deadline=None)
@given(size=st.integers(min_value=2, max_value=6),
       messages=st.lists(
           st.tuples(st.integers(0, 5), st.integers(0, 5),
                     st.integers(0, 3)),
           min_size=1, max_size=12))
def test_point_to_point_per_channel_fifo(size, messages):
    """Messages between one (src, dst, tag) channel arrive in send order."""
    env, world = make_world(size)
    sends = [(s % size, d % size, tag) for s, d, tag in messages
             if s % size != d % size]
    if not sends:
        return
    received: dict[tuple, list] = {}

    def sender(r):
        seq = 0
        for s, d, tag in sends:
            if s == r:
                yield from world.comm(r).Send((r, seq), 100, d, tag=tag)
                seq += 1

    def receiver(r):
        incoming = [(s, d, tag) for s, d, tag in sends if d == r]
        by_channel: dict[tuple, int] = {}
        for s, d, tag in incoming:
            by_channel[(s, tag)] = by_channel.get((s, tag), 0) + 1
        for (s, tag), count in by_channel.items():
            for _ in range(count):
                msg = yield from world.comm(r).Recv(source=s, tag=tag)
                received.setdefault((s, r, tag), []).append(msg)

    for r in range(size):
        env.process(sender(r))
        env.process(receiver(r))
    env.run()
    total = sum(len(v) for v in received.values())
    assert total == len(sends)
    # Per (src, dst, tag) channel, sequence numbers are monotone.
    for (s, r, tag), msgs in received.items():
        seqs = [seq for (_src, seq) in msgs]
        assert seqs == sorted(seqs)
